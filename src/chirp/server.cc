#include "chirp/server.h"

#include "auth/hostname.h"
#include "auth/unix.h"
#include "chirp/posix_backend.h"
#include "util/logging.h"

namespace tss::chirp {

Server::Server(ServerOptions options, std::unique_ptr<Backend> backend,
               std::unique_ptr<auth::ServerAuth> auth)
    : options_(std::move(options)),
      backend_(std::move(backend)),
      auth_(std::move(auth)),
      auth_executor_(std::make_unique<AuthExecutor>()) {
  config_.owner = options_.owner;
  config_.root_acl = options_.root_acl;
  config_.auth = auth_.get();
  config_.metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
  if (!options_.cache_peers.empty() && options_.redirect_hot_threshold > 0) {
    RedirectPolicy::Options policy;
    policy.peers = options_.cache_peers;
    policy.hot_threshold = options_.redirect_hot_threshold;
    policy.ttl_ms = options_.redirect_ttl_ms;
    redirect_policy_ = std::make_unique<RedirectPolicy>(std::move(policy));
    config_.redirect = redirect_policy_.get();
  }
  if (options_.enable_allocations) {
    // Only the POSIX backend can journal allocations; a synthetic backend
    // simply runs without the capability (the version handshake never
    // advertises "alloc", so clients see an unchanged protocol).
    if (auto* posix = dynamic_cast<PosixBackend*>(backend_.get())) {
      auto rc = posix->enable_alloc_tracking(options_.root_space_limit,
                                             config_.metrics);
      if (rc.ok()) {
        config_.alloc = posix->alloc_tracker();
      } else {
        TSS_WARN("chirp") << "allocation tracking disabled: "
                          << rc.error().to_string();
      }
    }
  }
  if (!options_.default_quota.unlimited() ||
      !options_.per_subject_quota.empty()) {
    QuotaManager::Options q;
    q.default_limits = options_.default_quota;
    q.per_subject = options_.per_subject_quota;
    q.metrics = config_.metrics;
    quotas_ = std::make_unique<QuotaManager>(std::move(q));
    config_.quotas = quotas_.get();
  }
  if (options_.fair_share_slots > 0) {
    net::FairQueue::Options f;
    f.max_active = options_.fair_share_slots;
    f.max_queued_per_key = options_.fair_share_backlog;
    f.weights = options_.fair_share_weights;
    f.metrics = config_.metrics;
    f.metric_prefix = "tenant.admit";
    fair_ = std::make_unique<net::FairQueue>(std::move(f));
    config_.fair = fair_.get();
  }
}

Server::~Server() { stop(); }

Result<void> Server::start() {
  net::ServerLoop::Limits limits;
  limits.max_connections = options_.max_connections;
  // A refused client gets a parseable Chirp error line, not a bare EOF: its
  // first RPC fails with EBUSY and it can back off and retry.
  limits.reject_notice =
      encode_response_line(
          Response::failure(EBUSY, "server at connection limit")) +
      "\n";
  limits.rejected_counter =
      config_.metrics->counter("chirp.server.rejected_connections");
  limits.mode = options_.mode;
  limits.reactor_workers = options_.reactor_workers;
  limits.acceptors = options_.acceptors;
  limits.force_poll = options_.force_poll;
  limits.metrics = config_.metrics;
  return loop_.start(
      options_.host, options_.port,
      [this]() -> std::shared_ptr<net::ReactorSession> {
        SessionParams params;
        params.config = &config_;
        params.backend = backend_.get();
        params.io_timeout = options_.io_timeout;
        params.idle_timeout = options_.idle_timeout;
        params.auth_executor = auth_executor_.get();
        return std::make_shared<ServerSession>(params);
      },
      limits);
}

void Server::stop() { loop_.stop(); }

Server::Info Server::info() const {
  Info info;
  info.owner = options_.owner;
  info.endpoint = net::Endpoint{options_.host, loop_.port()};
  if (auto space = backend_->statfs(); space.ok()) {
    info.total_bytes = space.value().first;
    info.free_bytes = space.value().second;
  }
  info.root_acl = config_.root_acl.serialize();
  return info;
}

std::unique_ptr<auth::ServerAuth> make_default_auth(
    const std::string& unix_challenge_dir) {
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  auth->add(std::make_unique<auth::UnixServerMethod>(unix_challenge_dir));
  return auth;
}

}  // namespace tss::chirp
