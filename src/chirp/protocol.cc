#include "chirp/protocol.h"

#include <fcntl.h>

#include "util/checksum.h"
#include "util/strings.h"

namespace tss::chirp {

const char* op_name(Op op) {
  switch (op) {
    case Op::kVersion:
      return "version";
    case Op::kAuth:
      return "auth";
    case Op::kOpen:
      return "open";
    case Op::kPread:
      return "pread";
    case Op::kPwrite:
      return "pwrite";
    case Op::kFsync:
      return "fsync";
    case Op::kClose:
      return "close";
    case Op::kStat:
      return "stat";
    case Op::kFstat:
      return "fstat";
    case Op::kUnlink:
      return "unlink";
    case Op::kRename:
      return "rename";
    case Op::kMkdir:
      return "mkdir";
    case Op::kRmdir:
      return "rmdir";
    case Op::kGetdir:
      return "getdir";
    case Op::kGetfile:
      return "getfile";
    case Op::kPutfile:
      return "putfile";
    case Op::kGetacl:
      return "getacl";
    case Op::kSetacl:
      return "setacl";
    case Op::kWhoami:
      return "whoami";
    case Op::kStatfs:
      return "statfs";
    case Op::kTruncate:
      return "truncate";
    case Op::kStats:
      return "stats";
    case Op::kMkalloc:
      return "mkalloc";
    case Op::kLsalloc:
      return "lsalloc";
  }
  return "?";
}

std::string OpenFlags::encode() const {
  std::string s;
  if (read) s += 'r';
  if (write) s += 'w';
  if (create) s += 'c';
  if (truncate) s += 't';
  if (exclusive) s += 'x';
  if (append) s += 'a';
  if (sync) s += 's';
  if (s.empty()) s = "-";
  return s;
}

Result<OpenFlags> OpenFlags::parse(std::string_view s) {
  OpenFlags f;
  if (s == "-") return f;
  for (char c : s) {
    switch (c) {
      case 'r':
        f.read = true;
        break;
      case 'w':
        f.write = true;
        break;
      case 'c':
        f.create = true;
        break;
      case 't':
        f.truncate = true;
        break;
      case 'x':
        f.exclusive = true;
        break;
      case 'a':
        f.append = true;
        break;
      case 's':
        f.sync = true;
        break;
      default:
        return Error(EINVAL, std::string("bad open flag: ") + c);
    }
  }
  return f;
}

int OpenFlags::to_posix() const {
  int flags;
  if (read && write) {
    flags = O_RDWR;
  } else if (write) {
    flags = O_WRONLY;
  } else {
    flags = O_RDONLY;
  }
  if (create) flags |= O_CREAT;
  if (truncate) flags |= O_TRUNC;
  if (exclusive) flags |= O_EXCL;
  if (append) flags |= O_APPEND;
  if (sync) flags |= O_SYNC;
  return flags;
}

OpenFlags OpenFlags::from_posix(int flags) {
  OpenFlags f;
  int acc = flags & O_ACCMODE;
  f.read = acc == O_RDONLY || acc == O_RDWR;
  f.write = acc == O_WRONLY || acc == O_RDWR;
  f.create = flags & O_CREAT;
  f.truncate = flags & O_TRUNC;
  f.exclusive = flags & O_EXCL;
  f.append = flags & O_APPEND;
  f.sync = flags & O_SYNC;
  return f;
}

std::string StatInfo::encode() const {
  return std::to_string(size) + " " + std::to_string(mode) + " " +
         std::to_string(mtime) + " " + std::to_string(inode) + " " +
         (is_dir ? "d" : "f");
}

Result<StatInfo> StatInfo::parse(const std::vector<std::string>& args,
                                 size_t first) {
  if (args.size() < first + 5) return Error(EPROTO, "short stat reply");
  StatInfo s;
  auto size = parse_u64(args[first]);
  auto mode = parse_u64(args[first + 1]);
  auto mtime = parse_i64(args[first + 2]);
  auto inode = parse_u64(args[first + 3]);
  if (!size || !mode || !mtime || !inode) {
    return Error(EPROTO, "bad stat fields");
  }
  s.size = *size;
  s.mode = static_cast<uint32_t>(*mode);
  s.mtime = *mtime;
  s.inode = *inode;
  s.is_dir = args[first + 4] == "d";
  return s;
}

std::string encode_dirent(const DirEntry& e) {
  return url_encode(e.name) + " " + e.info.encode();
}

Result<DirEntry> parse_dirent(const std::string& line) {
  auto words = split_words(line);
  if (words.size() < 6) return Error(EPROTO, "short dirent line");
  DirEntry e;
  e.name = url_decode(words[0]);
  TSS_ASSIGN_OR_RETURN(e.info, StatInfo::parse(words, 1));
  return e;
}

uint64_t Request::payload_len() const {
  if (op == Op::kPwrite || op == Op::kPutfile) return length;
  return 0;
}

std::string encode_request(const Request& r) {
  std::string line = op_name(r.op);
  auto add = [&line](const std::string& tok) {
    line += ' ';
    line += tok;
  };
  switch (r.op) {
    case Op::kVersion:
      add(std::to_string(r.version));
      for (const std::string& cap : r.caps) add(cap);
      break;
    case Op::kAuth:
      add(r.auth_method);
      add(r.auth_arg.empty() ? "-" : url_encode(r.auth_arg));
      break;
    case Op::kOpen:
      add(url_encode(r.path));
      add(r.flags.encode());
      add(std::to_string(r.mode));
      break;
    case Op::kPread:
    case Op::kPwrite:
      add(std::to_string(r.fd));
      add(std::to_string(r.length));
      add(std::to_string(r.offset));
      if (r.op == Op::kPwrite && r.has_checksum) add(hash_to_hex(r.checksum));
      break;
    case Op::kFsync:
    case Op::kClose:
    case Op::kFstat:
      add(std::to_string(r.fd));
      break;
    case Op::kStat:
    case Op::kUnlink:
    case Op::kRmdir:
    case Op::kGetdir:
    case Op::kGetfile:
    case Op::kGetacl:
      add(url_encode(r.path));
      break;
    case Op::kRename:
      add(url_encode(r.path));
      add(url_encode(r.path2));
      break;
    case Op::kMkdir:
      add(url_encode(r.path));
      add(std::to_string(r.mode));
      break;
    case Op::kPutfile:
      add(url_encode(r.path));
      add(std::to_string(r.mode));
      add(std::to_string(r.length));
      break;
    case Op::kSetacl:
      add(url_encode(r.path));
      add(url_encode(r.acl_subject));
      add(r.acl_rights);
      break;
    case Op::kWhoami:
    case Op::kStatfs:
    case Op::kStats:
      break;
    case Op::kTruncate:
      add(url_encode(r.path));
      add(std::to_string(r.length));
      break;
    case Op::kMkalloc:
      // The allocation limit travels in `length`, like truncate's size.
      add(url_encode(r.path));
      add(std::to_string(r.length));
      break;
    case Op::kLsalloc:
      add(url_encode(r.path));
      break;
  }
  return line;
}

namespace {
Result<int64_t> arg_i64(const std::vector<std::string>& w, size_t i) {
  if (i >= w.size()) return Error(EPROTO, "missing argument");
  auto n = parse_i64(w[i]);
  if (!n) return Error(EPROTO, "bad integer argument: " + w[i]);
  return *n;
}
Result<uint64_t> arg_u64(const std::vector<std::string>& w, size_t i) {
  if (i >= w.size()) return Error(EPROTO, "missing argument");
  auto n = parse_u64(w[i]);
  if (!n) return Error(EPROTO, "bad integer argument: " + w[i]);
  return *n;
}
Result<std::string> arg_path(const std::vector<std::string>& w, size_t i) {
  if (i >= w.size()) return Error(EPROTO, "missing path argument");
  return url_decode(w[i]);
}
}  // namespace

Result<Request> parse_request_line(const std::string& line) {
  auto words = split_words(line);
  if (words.empty()) return Error(EPROTO, "empty request");
  Request r;
  const std::string& cmd = words[0];

  if (cmd == "version") {
    r.op = Op::kVersion;
    TSS_ASSIGN_OR_RETURN(int64_t v, arg_i64(words, 1));
    r.version = static_cast<int>(v);
    r.caps.assign(words.begin() + 2, words.end());
    return r;
  }
  if (cmd == "auth") {
    r.op = Op::kAuth;
    if (words.size() < 3) return Error(EPROTO, "auth needs method and arg");
    r.auth_method = words[1];
    r.auth_arg = words[2] == "-" ? "" : url_decode(words[2]);
    return r;
  }
  if (cmd == "open") {
    r.op = Op::kOpen;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    if (words.size() < 3) return Error(EPROTO, "open needs flags");
    TSS_ASSIGN_OR_RETURN(r.flags, OpenFlags::parse(words[2]));
    TSS_ASSIGN_OR_RETURN(uint64_t mode, arg_u64(words, 3));
    r.mode = static_cast<uint32_t>(mode);
    return r;
  }
  if (cmd == "pread" || cmd == "pwrite") {
    r.op = cmd == "pread" ? Op::kPread : Op::kPwrite;
    TSS_ASSIGN_OR_RETURN(r.fd, arg_i64(words, 1));
    TSS_ASSIGN_OR_RETURN(r.length, arg_u64(words, 2));
    TSS_ASSIGN_OR_RETURN(r.offset, arg_i64(words, 3));
    if (r.length > kMaxRpcPayload) {
      return Error(EMSGSIZE, "rpc payload too large");
    }
    if (r.op == Op::kPwrite && words.size() > 4) {
      auto digest = hex_to_hash(words[4]);
      if (!digest) return Error(EPROTO, "bad checksum token: " + words[4]);
      r.has_checksum = true;
      r.checksum = *digest;
    }
    return r;
  }
  if (cmd == "fsync" || cmd == "close" || cmd == "fstat") {
    r.op = cmd == "fsync" ? Op::kFsync
                          : (cmd == "close" ? Op::kClose : Op::kFstat);
    TSS_ASSIGN_OR_RETURN(r.fd, arg_i64(words, 1));
    return r;
  }
  if (cmd == "stat" || cmd == "unlink" || cmd == "rmdir" || cmd == "getdir" ||
      cmd == "getfile" || cmd == "getacl") {
    r.op = cmd == "stat"      ? Op::kStat
           : cmd == "unlink"  ? Op::kUnlink
           : cmd == "rmdir"   ? Op::kRmdir
           : cmd == "getdir"  ? Op::kGetdir
           : cmd == "getfile" ? Op::kGetfile
                              : Op::kGetacl;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    return r;
  }
  if (cmd == "rename") {
    r.op = Op::kRename;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    TSS_ASSIGN_OR_RETURN(r.path2, arg_path(words, 2));
    return r;
  }
  if (cmd == "mkdir") {
    r.op = Op::kMkdir;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    TSS_ASSIGN_OR_RETURN(uint64_t mode, arg_u64(words, 2));
    r.mode = static_cast<uint32_t>(mode);
    return r;
  }
  if (cmd == "putfile") {
    r.op = Op::kPutfile;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    TSS_ASSIGN_OR_RETURN(uint64_t mode, arg_u64(words, 2));
    r.mode = static_cast<uint32_t>(mode);
    TSS_ASSIGN_OR_RETURN(r.length, arg_u64(words, 3));
    return r;
  }
  if (cmd == "setacl") {
    r.op = Op::kSetacl;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    TSS_ASSIGN_OR_RETURN(r.acl_subject, arg_path(words, 2));
    if (words.size() < 4) return Error(EPROTO, "setacl needs rights");
    r.acl_rights = words[3];
    return r;
  }
  if (cmd == "whoami") {
    r.op = Op::kWhoami;
    return r;
  }
  if (cmd == "statfs") {
    r.op = Op::kStatfs;
    return r;
  }
  if (cmd == "stats") {
    r.op = Op::kStats;
    return r;
  }
  if (cmd == "truncate") {
    r.op = Op::kTruncate;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    TSS_ASSIGN_OR_RETURN(r.length, arg_u64(words, 2));
    return r;
  }
  if (cmd == "mkalloc") {
    r.op = Op::kMkalloc;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    TSS_ASSIGN_OR_RETURN(r.length, arg_u64(words, 2));
    if (r.length == 0) return Error(EPROTO, "mkalloc needs a positive limit");
    return r;
  }
  if (cmd == "lsalloc") {
    r.op = Op::kLsalloc;
    TSS_ASSIGN_OR_RETURN(r.path, arg_path(words, 1));
    return r;
  }
  return Error(ENOSYS, "unknown rpc: " + cmd);
}

std::string encode_response_line(const Response& r) {
  if (r.err != 0) {
    return "error " + std::to_string(r.err) + " " + url_encode(r.message);
  }
  if (r.redirect) {
    return "redirect " + url_encode(r.redirect->host) + " " +
           std::to_string(r.redirect->port) + " " +
           std::to_string(r.redirect->ttl_ms);
  }
  std::string line = "ok";
  for (const std::string& a : r.args) {
    line += ' ';
    line += a;
  }
  return line;
}

Result<Response> parse_response_line(const std::string& line) {
  auto words = split_words(line);
  if (words.empty()) return Error(EPROTO, "empty response");
  Response r;
  if (words[0] == "ok") {
    r.args.assign(words.begin() + 1, words.end());
    return r;
  }
  if (words[0] == "error") {
    if (words.size() < 2) return Error(EPROTO, "short error response");
    auto code = parse_i64(words[1]);
    if (!code) return Error(EPROTO, "bad error code");
    r.err = static_cast<int>(*code);
    if (r.err == 0) return Error(EPROTO, "error response with code 0");
    r.message = words.size() > 2 ? url_decode(words[2]) : "";
    return r;
  }
  if (words[0] == "redirect") {
    // Strict shape: exactly host, port, ttl. A peer that garbles any field
    // is violating the protocol — never guess, never fall back to the line
    // as data.
    if (words.size() != 4) return Error(EPROTO, "bad redirect: " + line);
    std::string host = url_decode(words[1]);
    auto port = parse_u64(words[2]);
    auto ttl = parse_u64(words[3]);
    if (host.empty() || !port || *port == 0 || *port > 65535 || !ttl) {
      return Error(EPROTO, "bad redirect: " + line);
    }
    r.redirect = Redirect{std::move(host), static_cast<uint16_t>(*port), *ttl};
    return r;
  }
  // Challenge lines are handled at a different layer; anything else here is
  // a protocol violation.
  return Error(EPROTO, "bad response: " + line);
}

std::string encode_sum_line(uint64_t digest) {
  return "sum " + hash_to_hex(digest);
}

Result<uint64_t> parse_sum_line(const std::string& line) {
  auto words = split_words(line);
  if (words.size() != 2 || words[0] != "sum") {
    return Error(EPROTO, "bad checksum trailer: " + line);
  }
  auto digest = hex_to_hash(words[1]);
  if (!digest) return Error(EPROTO, "bad checksum trailer: " + line);
  return *digest;
}

}  // namespace tss::chirp
