// Store: uniform record access to one table, in-process or remote.
//
// The DSDB's clients (GEMS above all) speak this interface, so the same
// auditor/replicator logic runs against an embedded Table (tests, single-
// process deployments) or against a db::Server across the network — the
// "database server" of §5's DSDB.
#pragma once

#include <string>
#include <vector>

#include "db/client.h"
#include "db/table.h"

namespace tss::db {

class Store {
 public:
  virtual ~Store() = default;
  virtual Result<void> put(const Record& record) = 0;
  virtual Result<Record> get(const std::string& id) = 0;
  virtual Result<void> remove(const std::string& id) = 0;
  virtual Result<std::vector<Record>> query(const std::string& field,
                                            const std::string& value) = 0;
  virtual Result<std::vector<Record>> scan() = 0;
};

// In-process store over a borrowed Table.
class TableStore final : public Store {
 public:
  explicit TableStore(Table* table) : table_(table) {}

  Result<void> put(const Record& record) override {
    return table_->put(record);
  }
  Result<Record> get(const std::string& id) override {
    return table_->get(id);
  }
  Result<void> remove(const std::string& id) override {
    table_->remove(id);
    return Result<void>::success();
  }
  Result<std::vector<Record>> query(const std::string& field,
                                    const std::string& value) override {
    return table_->query(field, value);
  }
  Result<std::vector<Record>> scan() override {
    std::vector<Record> out;
    table_->scan([&out](const Record& r) { out.push_back(r); });
    return out;
  }

 private:
  Table* table_;
};

// Remote store over a borrowed db::Client connection and table name.
class RemoteStore final : public Store {
 public:
  RemoteStore(Client* client, std::string table)
      : client_(client), table_(std::move(table)) {}

  Result<void> put(const Record& record) override {
    return client_->put(table_, record);
  }
  Result<Record> get(const std::string& id) override {
    return client_->get(table_, id);
  }
  Result<void> remove(const std::string& id) override {
    return client_->del(table_, id);
  }
  Result<std::vector<Record>> query(const std::string& field,
                                    const std::string& value) override {
    return client_->query(table_, field, value);
  }
  Result<std::vector<Record>> scan() override {
    return client_->scan(table_);
  }

 private:
  Client* client_;
  std::string table_;
};

}  // namespace tss::db
