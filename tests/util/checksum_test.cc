#include "util/checksum.h"

#include <gtest/gtest.h>

namespace tss {
namespace {

TEST(Fnv1a64, KnownVector) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  Fnv1a64 inc;
  inc.update(data.substr(0, 10));
  inc.update(data.substr(10, 5));
  inc.update(data.substr(15));
  EXPECT_EQ(inc.digest(), fnv1a64(data));
}

TEST(Fnv1a64, SensitiveToEveryByte) {
  std::string a(100, 'x');
  for (size_t i = 0; i < a.size(); i += 13) {
    std::string b = a;
    b[i] = 'y';
    EXPECT_NE(fnv1a64(a), fnv1a64(b)) << "byte " << i;
  }
}

TEST(WeakMac, DeterministicAndHexShaped) {
  std::string tag = weak_mac("ca-key", "dn|12345|nd-ca");
  EXPECT_EQ(tag.size(), 16u);
  EXPECT_EQ(tag, weak_mac("ca-key", "dn|12345|nd-ca"));
}

TEST(WeakMac, KeySeparation) {
  // The unforgeability property the simulated GSI/Kerberos rely on: a
  // different key yields a different tag for the same message.
  EXPECT_NE(weak_mac("key1", "msg"), weak_mac("key2", "msg"));
  EXPECT_NE(weak_mac("key", "msg1"), weak_mac("key", "msg2"));
}

TEST(WeakMac, NoTrivialConcatenationConfusion) {
  // ("ab","c") and ("a","bc") must not collide: field boundaries matter.
  EXPECT_NE(weak_mac("ab", "c"), weak_mac("a", "bc"));
}

TEST(HashToHex, Formats) {
  EXPECT_EQ(hash_to_hex(0), "0000000000000000");
  EXPECT_EQ(hash_to_hex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(hash_to_hex(UINT64_MAX), "ffffffffffffffff");
}

}  // namespace
}  // namespace tss
