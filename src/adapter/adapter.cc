#include "adapter/adapter.h"

#include <fcntl.h>
#include <unistd.h>

#include "util/path.h"
#include "util/strings.h"

namespace tss::adapter {

Adapter::Adapter(Options options) : options_(std::move(options)) {}

Adapter::~Adapter() = default;

void Adapter::mount(const std::string& logical_prefix, fs::FileSystem* fs) {
  std::lock_guard<std::mutex> lock(mutex_);
  mounts_.emplace_back(path::sanitize(logical_prefix), fs);
}

Result<void> Adapter::load_mountlist(const std::string& text) {
  TSS_ASSIGN_OR_RETURN(MountList list, MountList::parse(text));
  std::lock_guard<std::mutex> lock(mutex_);
  for (const MountEntry& entry : list.entries()) {
    mounts_list_.add(entry.logical, entry.target);
  }
  return Result<void>::success();
}

Result<fs::FileSystem*> Adapter::cfs_for(const std::string& hostport) {
  // Caller holds mutex_.
  if (options_.cache_capacity_bytes > 0) {
    auto cached = cfs_read_caches_.find(hostport);
    if (cached != cfs_read_caches_.end()) return cached->second.get();
  }
  auto it = cfs_cache_.find(hostport);
  if (it != cfs_cache_.end()) return it->second.get();
  TSS_ASSIGN_OR_RETURN(net::Endpoint endpoint, net::Endpoint::parse(hostport));
  fs::CfsFs::Options cfs_options;
  cfs_options.retry = options_.retry;
  cfs_options.sync_writes = options_.sync_writes;
  chirp::Client::Options client_options;
  client_options.timeout = options_.io_timeout;
  client_options.cooperative = options_.cooperative;
  auto cfs = std::make_unique<fs::CfsFs>(
      fs::chirp_connector(endpoint, options_.credentials,
                          std::move(client_options)),
      cfs_options);
  fs::FileSystem* raw = cfs.get();
  cfs_cache_[hostport] = std::move(cfs);
  if (options_.cache_capacity_bytes == 0) return raw;
  fs::CachedFs::Options cache_options;
  cache_options.capacity_bytes = options_.cache_capacity_bytes;
  cache_options.lease_ttl = options_.cache_lease_ttl;
  cache_options.metrics = options_.cache_metrics;
  auto cache = std::make_unique<fs::CachedFs>(raw, cache_options);
  fs::FileSystem* wrapper = cache.get();
  cfs_read_caches_[hostport] = std::move(cache);
  return wrapper;
}

Result<Adapter::Resolved> Adapter::resolve(const std::string& p) {
  std::lock_guard<std::mutex> lock(mutex_);
  // 1. Mountlist rewrite (logical names -> targets).
  std::string canonical = mounts_list_.translate(p);

  // 2. Explicit mounts, longest prefix wins.
  const std::pair<std::string, fs::FileSystem*>* best = nullptr;
  for (const auto& entry : mounts_) {
    if (path::is_within(entry.first, canonical)) {
      if (!best || entry.first.size() > best->first.size()) best = &entry;
    }
  }
  if (best) {
    std::string residual = canonical.substr(best->first.size());
    return Resolved{best->second, path::sanitize(residual)};
  }

  // 3. The default namespace: /cfs/<host:port>/... auto-mounts that
  // server; /dsfs/<host:port>@<volume>/... auto-mounts a self-describing
  // DSFS volume (§6's mountlist example).
  auto components = path::components(canonical);
  if (components.size() >= 2 &&
      (components[0] == "cfs" || components[0] == "dsfs")) {
    fs::FileSystem* mounted = nullptr;
    if (components[0] == "cfs") {
      TSS_ASSIGN_OR_RETURN(mounted, cfs_for(components[1]));
    } else {
      TSS_ASSIGN_OR_RETURN(mounted, dsfs_for(components[1]));
    }
    std::string residual = "/";
    for (size_t i = 2; i < components.size(); i++) {
      residual = path::join(residual, components[i]);
    }
    return Resolved{mounted, residual};
  }

  return Error(ENOENT, "path outside the tactical namespace: " + canonical);
}

Result<fs::FileSystem*> Adapter::dsfs_for(const std::string& spec) {
  // Caller holds mutex_. spec = "<host:port>@<volume>".
  auto it = dsfs_cache_.find(spec);
  if (it != dsfs_cache_.end()) return it->second->filesystem();
  size_t at = spec.rfind('@');
  if (at == std::string::npos || at == 0 || at + 1 >= spec.size()) {
    return Error(EINVAL, "dsfs path needs <host:port>@<volume>: " + spec);
  }
  TSS_ASSIGN_OR_RETURN(net::Endpoint directory_server,
                       net::Endpoint::parse(spec.substr(0, at)));
  DsfsMountOptions options;
  options.credentials = options_.credentials;
  options.retry = options_.retry;
  options.io_timeout = options_.io_timeout;
  TSS_ASSIGN_OR_RETURN(
      auto mount, mount_volume(directory_server, spec.substr(at + 1), options));
  fs::FileSystem* raw = mount->filesystem();
  dsfs_cache_[spec] = std::move(mount);
  return raw;
}

Result<int> Adapter::open(const std::string& p, int posix_flags,
                          uint32_t mode) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  fs::OpenFlags flags = fs::OpenFlags::from_posix(posix_flags);
  if (options_.sync_writes) flags.sync = true;
  TSS_ASSIGN_OR_RETURN(auto file, r.fs->open(r.path, flags, mode));
  std::lock_guard<std::mutex> lock(mutex_);
  int fd = next_fd_++;
  fds_[fd] = OpenFd{std::move(file), 0, flags.append};
  return fd;
}

Result<size_t> Adapter::read(int fd, void* buf, size_t size) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
  OpenFd& entry = it->second;
  int64_t offset = entry.offset;
  fs::File* file = entry.file.get();
  lock.unlock();
  TSS_ASSIGN_OR_RETURN(size_t n, file->pread(buf, size, offset));
  lock.lock();
  // Re-find: a concurrent close may have invalidated the entry.
  it = fds_.find(fd);
  if (it != fds_.end()) it->second.offset = offset + static_cast<int64_t>(n);
  return n;
}

Result<size_t> Adapter::write(int fd, const void* buf, size_t size) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
  OpenFd& entry = it->second;
  fs::File* file = entry.file.get();
  int64_t offset = entry.offset;
  bool append = entry.append;
  lock.unlock();
  if (append) {
    TSS_ASSIGN_OR_RETURN(fs::StatInfo info, file->fstat());
    offset = static_cast<int64_t>(info.size);
  }
  TSS_ASSIGN_OR_RETURN(size_t n, file->pwrite(buf, size, offset));
  lock.lock();
  it = fds_.find(fd);
  if (it != fds_.end()) it->second.offset = offset + static_cast<int64_t>(n);
  return n;
}

Result<size_t> Adapter::pread(int fd, void* buf, size_t size, int64_t offset) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
  fs::File* file = it->second.file.get();
  lock.unlock();
  return file->pread(buf, size, offset);
}

Result<size_t> Adapter::pwrite(int fd, const void* buf, size_t size,
                               int64_t offset) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
  fs::File* file = it->second.file.get();
  lock.unlock();
  return file->pwrite(buf, size, offset);
}

Result<int64_t> Adapter::lseek(int fd, int64_t offset, int whence) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
  int64_t base;
  switch (whence) {
    case SEEK_SET:
      base = 0;
      break;
    case SEEK_CUR:
      base = it->second.offset;
      break;
    case SEEK_END: {
      fs::File* file = it->second.file.get();
      lock.unlock();
      TSS_ASSIGN_OR_RETURN(fs::StatInfo info, file->fstat());
      lock.lock();
      it = fds_.find(fd);
      if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
      base = static_cast<int64_t>(info.size);
      break;
    }
    default:
      return Error(EINVAL, "bad whence");
  }
  int64_t target = base + offset;
  if (target < 0) return Error(EINVAL, "negative seek");
  it->second.offset = target;
  return target;
}

Result<void> Adapter::fsync(int fd) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
  fs::File* file = it->second.file.get();
  lock.unlock();
  return file->fsync();
}

Result<void> Adapter::close(int fd) {
  std::unique_ptr<fs::File> file;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = fds_.find(fd);
    if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
    file = std::move(it->second.file);
    fds_.erase(it);
  }
  return file->close();
}

Result<fs::StatInfo> Adapter::fstat(int fd) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = fds_.find(fd);
  if (it == fds_.end()) return Error(EBADF, "bad adapter fd");
  fs::File* file = it->second.file.get();
  lock.unlock();
  return file->fstat();
}

Result<fs::StatInfo> Adapter::stat(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  return r.fs->stat(r.path);
}

Result<void> Adapter::unlink(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  return r.fs->unlink(r.path);
}

Result<void> Adapter::rename(const std::string& from, const std::string& to) {
  TSS_ASSIGN_OR_RETURN(Resolved rf, resolve(from));
  TSS_ASSIGN_OR_RETURN(Resolved rt, resolve(to));
  if (rf.fs != rt.fs) {
    return Error(EXDEV, "rename across abstractions");
  }
  return rf.fs->rename(rf.path, rt.path);
}

Result<void> Adapter::mkdir(const std::string& p, uint32_t mode) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  return r.fs->mkdir(r.path, mode);
}

Result<void> Adapter::rmdir(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  return r.fs->rmdir(r.path);
}

Result<void> Adapter::truncate(const std::string& p, uint64_t size) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  return r.fs->truncate(r.path, size);
}

Result<std::vector<fs::DirEntry>> Adapter::readdir(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  return r.fs->readdir(r.path);
}

Result<std::string> Adapter::read_file(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  return r.fs->read_file(r.path);
}

Result<void> Adapter::write_file(const std::string& p, std::string_view data,
                                 uint32_t mode) {
  TSS_ASSIGN_OR_RETURN(Resolved r, resolve(p));
  return r.fs->write_file(r.path, data, mode);
}

size_t Adapter::open_fd_count() {
  std::lock_guard<std::mutex> lock(mutex_);
  return fds_.size();
}

}  // namespace tss::adapter
