#include "catalog/catalog.h"

#include <condition_variable>

#include "net/line_stream.h"
#include "util/logging.h"
#include "util/strings.h"

namespace tss::catalog {

std::string ServerReport::encode() const {
  return "name=" + url_encode(name) + "&owner=" + url_encode(owner) +
         "&addr=" + url_encode(address.to_string()) +
         "&total=" + std::to_string(total_bytes) +
         "&free=" + std::to_string(free_bytes) +
         "&acl=" + url_encode(root_acl);
}

Result<ServerReport> ServerReport::decode(const std::string& token) {
  ServerReport report;
  bool have_addr = false;
  for (const std::string& pair : split(token, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Error(EINVAL, "catalog: malformed report field");
    }
    std::string key = pair.substr(0, eq);
    std::string value = url_decode(pair.substr(eq + 1));
    if (key == "name") {
      report.name = value;
    } else if (key == "owner") {
      report.owner = value;
    } else if (key == "addr") {
      TSS_ASSIGN_OR_RETURN(report.address, net::Endpoint::parse(value));
      have_addr = true;
    } else if (key == "total") {
      auto n = parse_u64(value);
      if (!n) return Error(EINVAL, "catalog: bad total");
      report.total_bytes = *n;
    } else if (key == "free") {
      auto n = parse_u64(value);
      if (!n) return Error(EINVAL, "catalog: bad free");
      report.free_bytes = *n;
    } else if (key == "acl") {
      report.root_acl = value;
    } else {
      // Unknown keys are skipped for forward compatibility.
    }
  }
  if (!have_addr) return Error(EINVAL, "catalog: report missing address");
  return report;
}

CatalogServer::CatalogServer(Options options, Clock* clock)
    : options_(options),
      clock_(clock ? clock : &RealClock::instance()) {}

CatalogServer::~CatalogServer() { stop(); }

namespace {

// One catalog connection as a resumable session: a line in, a line (plus an
// optional listing body) out. Nothing blocks, so the whole handler runs on
// the loop thread in both execution modes.
class CatalogSession final : public net::ReactorSession {
 public:
  explicit CatalogSession(CatalogServer* server) : server_(server) {}

  void on_start(net::Conn& c) override { c.set_timeout(10 * kSecond); }

  bool on_input(net::Conn& c) override {
    while (true) {
      auto line = c.input().try_line();
      if (!line.ok()) return false;  // oversized line: drop the peer
      if (!line.value().has_value()) break;
      if (!handle_line(c, *line.value())) return false;
    }
    return !c.input_eof();
  }

 private:
  bool handle_line(net::Conn& c, const std::string& line) {
    auto words = split_words(line);
    if (words.empty()) return true;

    if (words[0] == "report" && words.size() >= 2) {
      auto report = ServerReport::decode(words[1]);
      if (report.ok()) {
        server_->accept_report(report.value());
        c.write("ok\n");
      } else {
        c.write("error " + url_encode(report.error().message) + "\n");
      }
      return true;
    }

    if (words[0] == "list") {
      std::string format = words.size() > 1 ? words[1] : "text";
      std::string body =
          format == "json" ? server_->render_json() : server_->render_text();
      c.write("ok " + std::to_string(body.size()) + "\n");
      c.write(body);
      return true;
    }

    c.write("error unknown-command\n");
    return true;
  }

  CatalogServer* server_;
};

}  // namespace

Result<void> CatalogServer::start() {
  return loop_.start(options_.host, options_.port,
                     [this]() -> std::shared_ptr<net::ReactorSession> {
                       return std::make_shared<CatalogSession>(this);
                     },
                     net::ServerLoop::Limits{});
}

void CatalogServer::stop() { loop_.stop(); }

void CatalogServer::accept_report(const ServerReport& report) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& record = records_[report.address.to_string()];
  record.report = report;
  record.last_seen = clock_->now();
}

void CatalogServer::purge_expired() {
  std::lock_guard<std::mutex> lock(mutex_);
  Nanos cutoff = clock_->now() - options_.timeout;
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.last_seen < cutoff) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<ServerRecord> CatalogServer::list() {
  purge_expired();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ServerRecord> out;
  out.reserve(records_.size());
  for (const auto& [addr, record] : records_) out.push_back(record);
  return out;
}

size_t CatalogServer::size() {
  purge_expired();
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::string CatalogServer::render_text() {
  std::string out;
  for (const ServerRecord& record : list()) {
    out += record.report.encode();
    out += '\n';
  }
  return out;
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string CatalogServer::render_json() {
  std::string out = "[\n";
  bool first = true;
  for (const ServerRecord& record : list()) {
    if (!first) out += ",\n";
    first = false;
    const ServerReport& r = record.report;
    out += "  {\"name\": \"" + json_escape(r.name) + "\", \"owner\": \"" +
           json_escape(r.owner) + "\", \"addr\": \"" +
           json_escape(r.address.to_string()) + "\", \"total\": " +
           std::to_string(r.total_bytes) + ", \"free\": " +
           std::to_string(r.free_bytes) + ", \"acl\": \"" +
           json_escape(r.root_acl) + "\"}";
  }
  out += "\n]\n";
  return out;
}

Result<void> send_report(const net::Endpoint& catalog,
                         const ServerReport& report, Nanos timeout) {
  TSS_ASSIGN_OR_RETURN(net::TcpSocket sock,
                       net::TcpSocket::connect(catalog, timeout));
  net::LineStream stream(std::move(sock), timeout);
  TSS_RETURN_IF_ERROR(stream.send_line("report " + report.encode()));
  TSS_ASSIGN_OR_RETURN(std::string response, stream.read_line());
  if (response != "ok") {
    return Error(EPROTO, "catalog rejected report: " + response);
  }
  return Result<void>::success();
}

Result<std::vector<ServerReport>> query(const net::Endpoint& catalog,
                                        Nanos timeout) {
  TSS_ASSIGN_OR_RETURN(net::TcpSocket sock,
                       net::TcpSocket::connect(catalog, timeout));
  net::LineStream stream(std::move(sock), timeout);
  TSS_RETURN_IF_ERROR(stream.send_line("list text"));
  TSS_ASSIGN_OR_RETURN(std::string header, stream.read_line());
  auto words = split_words(header);
  if (words.size() != 2 || words[0] != "ok") {
    return Error(EPROTO, "catalog: bad listing header: " + header);
  }
  auto size = parse_u64(words[1]);
  if (!size) return Error(EPROTO, "catalog: bad listing size");
  std::string body(static_cast<size_t>(*size), '\0');
  if (*size > 0) {
    TSS_RETURN_IF_ERROR(stream.read_blob(body.data(), body.size()));
  }
  std::vector<ServerReport> reports;
  for (const std::string& line : split(body, '\n')) {
    if (trim(line).empty()) continue;
    TSS_ASSIGN_OR_RETURN(ServerReport report,
                         ServerReport::decode(std::string(trim(line))));
    reports.push_back(std::move(report));
  }
  return reports;
}

Reporter::Reporter(std::vector<net::Endpoint> catalogs, Snapshot snapshot,
                   Nanos period)
    : catalogs_(std::move(catalogs)),
      snapshot_(std::move(snapshot)),
      period_(period) {}

Reporter::~Reporter() { stop(); }

void Reporter::report_now() {
  ServerReport report = snapshot_();
  for (const net::Endpoint& catalog : catalogs_) {
    auto rc = send_report(catalog, report);
    if (!rc.ok()) {
      TSS_DEBUG("catalog") << "report to " << catalog.to_string()
                           << " failed: " << rc.error().to_string();
    }
  }
}

void Reporter::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  thread_ = std::thread([this] {
    report_now();
    std::unique_lock<std::mutex> lock(mutex_);
    while (running_) {
      cv_.wait_for(lock, std::chrono::nanoseconds(period_),
                   [this] { return !running_; });
      if (!running_) break;
      lock.unlock();
      report_now();
      lock.lock();
    }
  });
}

void Reporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace tss::catalog
