#include "fs/scrubber.h"

#include <chrono>

#include "util/checksum.h"
#include "util/logging.h"
#include "util/path.h"

namespace tss::fs {

Scrubber::Scrubber(ReplicatedFs* fs, Options options)
    : fs_(fs),
      options_(options),
      clock_(options.clock ? options.clock : &RealClock::instance()) {
  obs::Registry* metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
  m_scrub_bytes_ = metrics->counter("fs.integrity.scrub_bytes");
  m_mismatch_ = metrics->counter("fs.integrity.mismatch");
  m_files_ = metrics->counter("fs.scrub.files");
  m_unresolved_ = metrics->counter("fs.scrub.unresolved");
  m_passes_ = metrics->counter("fs.scrub.passes");
}

Scrubber::~Scrubber() { stop(); }

Result<uint64_t> Scrubber::digest_replica(FileSystem* replica,
                                          const std::string& path) {
  OpenFlags flags;
  flags.read = true;
  TSS_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       replica->open(path, flags, 0));
  Fnv1a64 sum;
  std::vector<char> buf(options_.chunk_size);
  int64_t offset = 0;
  for (;;) {
    auto n = file->pread(buf.data(), buf.size(), offset);
    if (!n.ok()) return std::move(n).take_error();
    if (n.value() == 0) break;
    sum.update(buf.data(), n.value());
    offset += static_cast<int64_t>(n.value());
    m_scrub_bytes_->add(n.value());
    throttle(n.value());
  }
  return sum.digest();
}

Result<Scrubber::FileReport> Scrubber::scrub_file(const std::string& p) {
  std::string canonical = path::sanitize(p);
  size_t n = fs_->replica_count();
  // Each replica is read *directly* (not through the replicated read path),
  // so a corrupt copy cannot hide behind failover.
  std::vector<Result<uint64_t>> digests =
      fan_out(options_.scheduler, n, [&](size_t i) {
        return digest_replica(fs_->replica(i), canonical);
      });

  FileReport report;
  report.digests.assign(n, 0);
  report.readable.assign(n, 0);
  std::vector<char> corrupt(n, 0);  // wire-verified corruption (EBADMSG)
  std::vector<char> missing(n, 0);
  size_t ok_count = 0;
  std::optional<Error> first_error;
  for (size_t i = 0; i < n; i++) {
    if (digests[i].ok()) {
      report.readable[i] = 1;
      report.digests[i] = digests[i].value();
      ok_count++;
      continue;
    }
    const Error& e = digests[i].error();
    if (!first_error) first_error = e;
    if (e.code == EBADMSG) {
      corrupt[i] = 1;
    } else if (e.code == ENOENT) {
      missing[i] = 1;
    }
    // Anything else (unreachable, timeout): no integrity verdict for this
    // replica — availability problems belong to the circuit breaker.
  }

  // An EBADMSG digest is proof of corruption on its own — the transport's
  // checksum already convicted the replica, no vote needed.
  for (size_t i = 0; i < n; i++) {
    if (corrupt[i]) {
      m_mismatch_->add();
      fs_->quarantine(i);
    }
  }

  if (ok_count == 0) {
    return first_error ? *first_error
                       : Error(EIO, "no replica readable: " + canonical);
  }
  m_files_->add();

  // Strict-majority vote among the digests actually read.
  uint64_t majority_digest = 0;
  size_t best = 0;
  for (size_t i = 0; i < n; i++) {
    if (!report.readable[i]) continue;
    size_t votes = 0;
    for (size_t j = 0; j < n; j++) {
      if (report.readable[j] && report.digests[j] == report.digests[i]) {
        votes++;
      }
    }
    if (votes > best) {
      best = votes;
      majority_digest = report.digests[i];
    }
  }
  const bool have_majority = best * 2 > ok_count;

  bool divergent = false;
  for (size_t i = 0; i < n; i++) {
    if (corrupt[i] || missing[i]) divergent = true;
    if (report.readable[i] && report.digests[i] != majority_digest) {
      divergent = true;
    }
  }
  if (!divergent) {
    // All copies agree — but one of them may still carry a quarantine from
    // a *transient* (wire-level) mismatch that has since cleared. repair()
    // re-verifies the bytes and lifts the quarantine when they check out.
    for (size_t i = 0; i < n; i++) {
      if (report.readable[i] && fs_->replica_quarantined(i)) {
        (void)fs_->repair(canonical);
        break;
      }
    }
    return report;
  }
  report.mismatch = true;

  if (!have_majority) {
    // 1-vs-1 (or all-distinct): no copy can be trusted as golden, so
    // rewriting would be a guess. Count it and leave it to the operator —
    // docs/RECOVERY.md has the runbook.
    report.unresolved = true;
    m_unresolved_->add();
    TSS_WARN("scrubber") << "no digest majority for " << canonical
                         << "; unresolved";
    return report;
  }

  // Quarantine the out-voted minority before repair() picks its golden
  // source: read_order then puts every suspect copy behind the majority.
  for (size_t i = 0; i < n; i++) {
    if (report.readable[i] && report.digests[i] != majority_digest) {
      m_mismatch_->add();
      fs_->quarantine(i);
    }
  }
  auto repaired = fs_->repair(canonical);
  if (repaired.ok() && repaired.value() > 0) report.repaired = true;
  return report;
}

Result<int> Scrubber::scrub_tree(const std::string& root) {
  int files = 0;
  std::vector<std::string> stack;
  stack.push_back(path::sanitize(root));
  while (!stack.empty()) {
    std::string dir = stack.back();
    stack.pop_back();
    TSS_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, fs_->readdir(dir));
    for (const DirEntry& e : entries) {
      if (e.name == "." || e.name == "..") continue;
      std::string child = dir == "/" ? "/" + e.name : dir + "/" + e.name;
      if (e.info.is_dir) {
        stack.push_back(child);
      } else if (scrub_file(child).ok()) {
        files++;
      }
      // A file unreadable on every replica is an availability problem; the
      // walk keeps going so one dead file cannot stall a pass.
    }
  }
  return files;
}

void Scrubber::throttle(size_t n) {
  if (options_.max_bytes_per_sec == 0 || n == 0) return;
  Nanos cost = static_cast<Nanos>(static_cast<double>(n) * kSecond /
                                  static_cast<double>(options_.max_bytes_per_sec));
  Nanos wake;
  {
    std::lock_guard<std::mutex> lock(pace_mutex_);
    Nanos now = clock_->now();
    if (next_allowed_ < now) next_allowed_ = now;
    wake = next_allowed_;
    next_allowed_ += cost;
  }
  Nanos now = clock_->now();
  if (wake > now) clock_->sleep_for(wake - now);
}

void Scrubber::run_loop(std::string root) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(run_mutex_);
      if (stopping_) return;
    }
    (void)scrub_tree(root);
    m_passes_->add();
    std::unique_lock<std::mutex> lock(run_mutex_);
    run_cv_.wait_for(lock, std::chrono::nanoseconds(options_.interval),
                     [&] { return stopping_; });
    if (stopping_) return;
  }
}

void Scrubber::start(const std::string& root) {
  std::lock_guard<std::mutex> lock(run_mutex_);
  if (thread_.joinable()) return;
  stopping_ = false;
  std::string canonical = path::sanitize(root);
  thread_ = std::thread([this, canonical] { run_loop(canonical); });
}

void Scrubber::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mutex_);
    if (!thread_.joinable()) return;
    stopping_ = true;
  }
  run_cv_.notify_all();
  thread_.join();
}

}  // namespace tss::fs
