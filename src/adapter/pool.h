// Catalog-driven pool construction.
//
// "Users and abstractions contact catalogs directly in order to discover new
// storage resources" (§2). discover_pool() queries a catalog, filters the
// listing by the caller's policy (minimum free space, owner pattern — the
// Independence principle: pick only servers you trust), mounts a CfsFs per
// surviving server, and hands back a name->FileSystem map ready to drop into
// a DistFs, Gems, ReplicatedFs or StripedFs.
//
// Catalog data "is necessarily stale" (§4): a server may be gone or full by
// the time we connect. Unreachable servers are skipped (reported in
// `skipped`), not fatal — the pool is whatever is actually there.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auth/auth.h"
#include "catalog/catalog.h"
#include "fs/cfs.h"

namespace tss::adapter {

struct PoolPolicy {
  // Only servers advertising at least this much free space.
  uint64_t min_free_bytes = 0;
  // Only servers whose owner subject matches this wildcard ("*" = anyone;
  // narrow it to implement the paper's "only from people I trust").
  std::string owner_pattern = "*";
  // Cap on pool size (0 = unlimited). Servers with the most free space win.
  size_t max_servers = 0;
};

struct Pool {
  // A catalog entry that matched the policy but could not be used, and why
  // — including, for authentication failures, the per-method reasons that
  // chirp::Client::authenticate_any aggregates.
  struct Skipped {
    std::string name;
    Error reason;
  };

  // Owns the connections; `servers` maps catalog names to them.
  std::vector<std::unique_ptr<fs::CfsFs>> mounts;
  std::map<std::string, fs::FileSystem*> servers;
  // Catalog entries that matched the policy but could not be contacted.
  std::vector<Skipped> skipped;
};

struct PoolOptions {
  std::vector<std::shared_ptr<auth::ClientCredential>> credentials;
  fs::RetryPolicy retry;
  Nanos io_timeout = 30 * kSecond;
};

// Queries `catalog` and builds a pool per the policy. Fails only if the
// catalog itself is unreachable or nothing usable remains.
Result<Pool> discover_pool(const net::Endpoint& catalog,
                           const PoolPolicy& policy,
                           const PoolOptions& options);

}  // namespace tss::adapter
