file(REMOVE_RECURSE
  "../lib/libtss_bench_common.a"
)
