// Reporter thread behaviour and multi-catalog organization (§4: "a TSS may
// include several catalog servers, each collecting reports from a
// different, possibly overlapping subset of the available storage devices").
#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace tss::catalog {
namespace {

ServerReport report_named(const std::string& name) {
  ServerReport report;
  report.name = name;
  report.owner = "unix:owner";
  report.address = net::Endpoint{"127.0.0.1", 1234};
  report.free_bytes = 1 << 20;
  report.total_bytes = 1 << 21;
  return report;
}

TEST(Reporter, PeriodicReportsKeepRecordFresh) {
  VirtualClock clock;  // catalog expiry driven by virtual time
  CatalogServer::Options options;
  options.timeout = kSecond;  // very tight window
  CatalogServer catalog(options, &clock);
  ASSERT_TRUE(catalog.start().ok());

  Reporter reporter({catalog.endpoint()},
                    [] { return report_named("fresh"); },
                    /*period=*/20 * kMillisecond);
  reporter.start();

  // Refresh beats expiry: advance virtual time in small steps while the
  // real reporter thread keeps pushing.
  for (int i = 0; i < 10; i++) {
    RealClock::instance().sleep_for(30 * kMillisecond);
    clock.advance(500 * kMillisecond);
    EXPECT_EQ(catalog.size(), 1u) << "iteration " << i;
  }
  reporter.stop();

  // Once the reporter stops, the record ages out.
  clock.advance(10 * kSecond);
  EXPECT_EQ(catalog.size(), 0u);
  catalog.stop();
}

TEST(Reporter, StopIsIdempotentAndStartAfterStopWorks) {
  CatalogServer catalog{CatalogServer::Options{}};
  ASSERT_TRUE(catalog.start().ok());
  Reporter reporter({catalog.endpoint()},
                    [] { return report_named("x"); }, kSecond);
  reporter.start();
  reporter.stop();
  reporter.stop();  // no-op
  reporter.start();
  reporter.stop();
  catalog.stop();
}

TEST(Reporter, OverlappingCatalogSubsets) {
  // Server A reports to catalog 1; server B to both — the overlapping-
  // subset organization of §4.
  CatalogServer c1{CatalogServer::Options{}};
  CatalogServer c2{CatalogServer::Options{}};
  ASSERT_TRUE(c1.start().ok());
  ASSERT_TRUE(c2.start().ok());

  Reporter a({c1.endpoint()}, [] { return report_named("server-a"); },
             kSecond);
  Reporter b({c1.endpoint(), c2.endpoint()},
             [] { return report_named("server-b"); }, kSecond);
  a.report_now();
  b.report_now();

  auto listing1 = query(c1.endpoint());
  auto listing2 = query(c2.endpoint());
  ASSERT_TRUE(listing1.ok());
  ASSERT_TRUE(listing2.ok());
  // c1 sees both names... but note records key on address; both sample
  // reports share one, so count names instead through distinct addresses.
  EXPECT_GE(listing1.value().size(), 1u);
  ASSERT_EQ(listing2.value().size(), 1u);
  EXPECT_EQ(listing2.value()[0].name, "server-b");
  c1.stop();
  c2.stop();
}

TEST(Reporter, SnapshotCallbackSeesLiveState) {
  // The snapshot closure runs at each report, so space numbers are current.
  CatalogServer catalog{CatalogServer::Options{}};
  ASSERT_TRUE(catalog.start().ok());
  uint64_t free_bytes = 100;
  Reporter reporter({catalog.endpoint()},
                    [&free_bytes] {
                      ServerReport report = report_named("live");
                      report.free_bytes = free_bytes;
                      return report;
                    },
                    kSecond);
  reporter.report_now();
  EXPECT_EQ(catalog.list()[0].report.free_bytes, 100u);
  free_bytes = 42;
  reporter.report_now();
  EXPECT_EQ(catalog.list()[0].report.free_bytes, 42u);
  catalog.stop();
}

}  // namespace
}  // namespace tss::catalog
