// tss_chirp_server — deploy a personal file server with one command.
//
// "A basic file server can be deployed by an ordinary user, who runs a
// single command with no configuration, setup, or software installation."
// (§3, Rapid Deployment)
//
//   tss_chirp_server --root /scratch/me
//
// exports /scratch/me on an ephemeral port with hostname+unix auth and an
// owner-only ACL, prints the endpoint, and serves until SIGINT/SIGTERM.
//
// Options:
//   --root DIR          directory to export (required)
//   --port N            TCP port (default 0 = ephemeral)
//   --host ADDR         listen address (default 127.0.0.1)
//   --owner SUBJECT     owner subject (default unix:<current user>)
//   --acl "TEXT"        root ACL text (default: owner everything +
//                       "unix:* v(rwl)" reservations)
//   --gsi-ca NAME:KEY   also accept GSI credentials signed by this CA
//                       (repeatable via comma separation)
//   --catalog HOST:PORT report to this catalog every --report-period secs
//   --report-period N   catalog report period in seconds (default 60)
//   --name NAME         server name in catalog reports (default hostname)
//   --max-connections N refuse connections beyond N live sessions (default
//                       0 = unlimited)
//   --idle-timeout SECS drop sessions idle for this long (default 0 = only
//                       the I/O timeout applies)
//   --allocations BYTES track per-directory space budgets (journal at
//                       <root>/.__alloc__, mkalloc/lsalloc RPCs); BYTES caps
//                       the root, 0 = track but do not cap
//   --quota-ops N       per-subject request quota, operations/sec
//   --quota-bytes N     per-subject request quota, payload bytes/sec
//   --fair-share N      bound concurrently running requests at N slots,
//                       handed out per-subject deficit round-robin
//                       (see docs/MULTITENANCY.md for all four)
//   --log-level LEVEL   debug|info|warn|error (default info)
#include <pwd.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "auth/gsi.h"
#include "auth/hostname.h"
#include "auth/unix.h"
#include "catalog/catalog.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "tools/flags.h"
#include "util/logging.h"

namespace {

std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }

std::string current_user_subject() {
  passwd pwd{};
  passwd* result = nullptr;
  char buf[4096];
  if (getpwuid_r(::getuid(), &pwd, buf, sizeof buf, &result) == 0 && result) {
    return std::string("unix:") + result->pw_name;
  }
  return "unix:uid" + std::to_string(::getuid());
}

int usage() {
  std::fprintf(stderr,
               "usage: tss_chirp_server --root DIR [--port N] [--host ADDR]\n"
               "         [--owner SUBJECT] [--acl TEXT] [--gsi-ca NAME:KEY]\n"
               "         [--catalog HOST:PORT] [--report-period SECS]\n"
               "         [--name NAME] [--max-connections N]\n"
               "         [--idle-timeout SECS] [--allocations BYTES]\n"
               "         [--quota-ops N] [--quota-bytes N] [--fair-share N]\n"
               "         [--log-level LEVEL]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tss;
  auto flags = tools::Flags::parse(
      argc, argv,
      {"root", "port", "host", "owner", "acl", "gsi-ca", "catalog",
       "report-period", "name", "max-connections", "idle-timeout",
       "allocations", "quota-ops", "quota-bytes", "fair-share",
       "log-level"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().to_string().c_str());
    return usage();
  }
  const tools::Flags& f = flags.value();

  auto root = f.get("root");
  if (!root) return usage();

  std::string level = f.get_or("log-level", "info");
  Logger::instance().set_level(level == "debug"  ? LogLevel::kDebug
                               : level == "warn" ? LogLevel::kWarn
                               : level == "error" ? LogLevel::kError
                                                  : LogLevel::kInfo);

  std::string owner = f.get_or("owner", current_user_subject());
  std::string default_acl = owner + " rwlda\nunix:* v(rwl)\n";
  auto acl = acl::Acl::parse(f.get_or("acl", default_acl));
  if (!acl.ok()) {
    std::fprintf(stderr, "bad --acl: %s\n", acl.error().to_string().c_str());
    return 2;
  }

  auto auth = chirp::make_default_auth();
  if (auto ca_spec = f.get("gsi-ca")) {
    auto gsi = std::make_unique<auth::GsiServerMethod>();
    for (const std::string& one : split(*ca_spec, ',')) {
      size_t colon = one.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--gsi-ca expects NAME:KEY\n");
        return 2;
      }
      gsi->trust(auth::GsiCa(one.substr(0, colon), one.substr(colon + 1)));
    }
    auth->add(std::move(gsi));
  }

  chirp::ServerOptions options;
  options.host = f.get_or("host", "127.0.0.1");
  auto port = f.get_int("port", 0);
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n", port.error().to_string().c_str());
    return 2;
  }
  options.port = static_cast<uint16_t>(port.value());
  options.owner = owner;
  options.root_acl = acl.value();
  auto max_connections = f.get_int("max-connections", 0);
  auto idle_timeout = f.get_int("idle-timeout", 0);
  if (!max_connections.ok() || !idle_timeout.ok()) {
    std::fprintf(stderr, "--max-connections and --idle-timeout expect N\n");
    return 2;
  }
  options.max_connections = static_cast<size_t>(max_connections.value());
  options.idle_timeout = idle_timeout.value() * kSecond;

  // Multi-tenancy knobs (docs/MULTITENANCY.md). --allocations present at all
  // (even as 0) enables budget tracking; its value caps the root.
  auto quota_ops = f.get_int("quota-ops", 0);
  auto quota_bytes = f.get_int("quota-bytes", 0);
  auto fair_share = f.get_int("fair-share", 0);
  auto allocations = f.get_int("allocations", 0);
  if (!quota_ops.ok() || !quota_bytes.ok() || !fair_share.ok() ||
      !allocations.ok() || quota_ops.value() < 0 || quota_bytes.value() < 0 ||
      fair_share.value() < 0 || allocations.value() < 0) {
    std::fprintf(stderr,
                 "--allocations, --quota-ops, --quota-bytes and --fair-share "
                 "expect a non-negative integer\n");
    return 2;
  }
  if (f.get("allocations")) {
    options.enable_allocations = true;
    options.root_space_limit = static_cast<uint64_t>(allocations.value());
  }
  options.default_quota.ops_per_sec = static_cast<uint64_t>(quota_ops.value());
  options.default_quota.bytes_per_sec =
      static_cast<uint64_t>(quota_bytes.value());
  options.fair_share_slots = static_cast<int>(fair_share.value());

  chirp::Server server(options,
                       std::make_unique<chirp::PosixBackend>(*root),
                       std::move(auth));
  auto started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n",
                 started.error().to_string().c_str());
    return 1;
  }
  std::printf("tss_chirp_server: exporting %s on %s (owner %s)\n",
              root->c_str(), server.endpoint().to_string().c_str(),
              owner.c_str());
  std::fflush(stdout);

  // Catalog reporting.
  std::unique_ptr<catalog::Reporter> reporter;
  if (auto catalog_addr = f.get("catalog")) {
    auto endpoint = net::Endpoint::parse(*catalog_addr);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "bad --catalog: %s\n",
                   endpoint.error().to_string().c_str());
      return 2;
    }
    auto period = f.get_int("report-period", 60);
    if (!period.ok()) return 2;
    std::string name = f.get_or("name", "chirp-server");
    reporter = std::make_unique<catalog::Reporter>(
        std::vector<net::Endpoint>{endpoint.value()},
        [&server, name] {
          auto info = server.info();
          catalog::ServerReport report;
          report.name = name;
          report.owner = info.owner;
          report.address = info.endpoint;
          report.total_bytes = info.total_bytes;
          report.free_bytes = info.free_bytes;
          report.root_acl = info.root_acl;
          return report;
        },
        period.value() * kSecond);
    reporter->start();
  }

  ::signal(SIGINT, handle_signal);
  ::signal(SIGTERM, handle_signal);
  while (!g_stop.load()) {
    ::usleep(100 * 1000);
  }
  std::printf("tss_chirp_server: shutting down\n");
  if (reporter) reporter->stop();
  server.stop();
  return 0;
}
