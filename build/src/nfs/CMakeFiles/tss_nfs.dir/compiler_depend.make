# Empty compiler generated dependencies file for tss_nfs.
# This may be replaced when dependencies are built.
