file(REMOVE_RECURSE
  "libtss_fs.a"
)
