#include "net/line_stream.h"

#include <cstring>

#include "obs/metrics.h"

namespace tss::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;

// Transport-level injections are visible in the same registry as the
// fs-level FaultSchedule counters, so a chaos run can account for every
// fault it provoked regardless of which layer injected it.
obs::Counter& net_faults_injected() {
  static obs::Counter* counter =
      obs::Registry::global().counter("net.fault_injected");
  return *counter;
}
}

LineStream::LineStream(TcpSocket sock, Nanos timeout)
    : sock_(std::move(sock)), timeout_(timeout) {}

Result<void> LineStream::consult_fault_hook(std::string_view point) {
  if (!fault_hook_) return Result<void>::success();
  TransportFault fault = fault_hook_(point);
  if (fault.action != TransportFault::Action::kNone) {
    net_faults_injected().add();
  }
  switch (fault.action) {
    case TransportFault::Action::kNone:
      return Result<void>::success();
    case TransportFault::Action::kError:
      return Error(fault.error_code,
                   "injected transport fault at " + std::string(point));
    case TransportFault::Action::kSever:
      wbuf_.clear();
      sock_.close();
      return Error(fault.error_code,
                   "injected disconnect at " + std::string(point));
    case TransportFault::Action::kTruncate: {
      // Send a torn frame: half of whatever is pending, then sever. The
      // peer observes a frame shorter than its header promised.
      if (!wbuf_.empty()) {
        (void)sock_.write_all(wbuf_.data(), wbuf_.size() / 2, timeout_);
        wbuf_.clear();
      }
      sock_.close();
      return Error(fault.error_code,
                   "injected frame truncation at " + std::string(point));
    }
  }
  return Result<void>::success();
}

Result<void> LineStream::fill() {
  TSS_RETURN_IF_ERROR(consult_fault_hook("read"));
  // Compact the consumed prefix occasionally so the buffer doesn't grow.
  if (rpos_ > 0 && rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ > kReadChunk) {
    rbuf_.erase(0, rpos_);
    rpos_ = 0;
  }
  size_t old = rbuf_.size();
  rbuf_.resize(old + kReadChunk);
  auto n = sock_.read_some(rbuf_.data() + old, kReadChunk, timeout_);
  if (!n.ok()) {
    rbuf_.resize(old);
    return std::move(n).take_error();
  }
  rbuf_.resize(old + n.value());
  if (n.value() == 0) return Error(EPIPE, "connection closed");
  return Result<void>::success();
}

Result<std::string> LineStream::read_line(size_t max_len) {
  while (true) {
    size_t nl = rbuf_.find('\n', rpos_);
    if (nl != std::string::npos) {
      size_t len = nl - rpos_;
      if (len > max_len) return Error(EMSGSIZE, "protocol line too long");
      std::string line = rbuf_.substr(rpos_, len);
      rpos_ = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (rbuf_.size() - rpos_ > max_len) {
      return Error(EMSGSIZE, "protocol line too long");
    }
    auto rc = fill();
    if (!rc.ok()) {
      // EOF exactly at a line boundary is a clean close.
      if (rc.error().code == EPIPE && rpos_ == rbuf_.size()) {
        return Error(EPIPE, "connection closed");
      }
      if (rc.error().code == EPIPE) {
        return Error(ECONNRESET, "EOF mid-line");
      }
      return std::move(rc).take_error();
    }
  }
}

Result<void> LineStream::read_blob(void* data, size_t size) {
  char* out = static_cast<char*>(data);
  size_t copied = 0;
  // Drain buffered bytes first.
  size_t buffered = rbuf_.size() - rpos_;
  if (buffered > 0) {
    size_t take = std::min(buffered, size);
    std::memcpy(out, rbuf_.data() + rpos_, take);
    rpos_ += take;
    copied = take;
  }
  if (copied < size) {
    TSS_RETURN_IF_ERROR(
        sock_.read_exact(out + copied, size - copied, timeout_));
  }
  return Result<void>::success();
}

void LineStream::write_line(std::string_view line) {
  wbuf_.append(line);
  wbuf_.push_back('\n');
}

void LineStream::write_blob(const void* data, size_t size) {
  wbuf_.append(static_cast<const char*>(data), size);
}

Result<void> LineStream::flush() {
  if (wbuf_.empty()) return Result<void>::success();
  TSS_RETURN_IF_ERROR(consult_fault_hook("flush"));
  auto rc = sock_.write_all(wbuf_.data(), wbuf_.size(), timeout_);
  wbuf_.clear();
  return rc;
}

Result<void> LineStream::send_line(std::string_view line) {
  write_line(line);
  return flush();
}

}  // namespace tss::net
