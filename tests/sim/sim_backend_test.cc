// SimBackend unit tests: the in-memory chirp::Backend with modeled timing.
#include "sim/sim_backend.h"

#include <gtest/gtest.h>

namespace tss::sim {
namespace {

chirp::OpenFlags flags_of(const char* s) {
  return chirp::OpenFlags::parse(s).value();
}

class SimBackendTest : public ::testing::Test {
 protected:
  SimBackendTest() : backend_(engine_, SimBackend::Config{}) {}
  Engine engine_;
  SimBackend backend_;
};

TEST_F(SimBackendTest, FileLifecycleWithRealContent) {
  ASSERT_TRUE(backend_.write_file("/f", "real bytes", 0644).ok());
  auto data = backend_.read_file("/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "real bytes");
  auto info = backend_.stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 10u);
  EXPECT_FALSE(info.value().is_dir);
  ASSERT_TRUE(backend_.unlink("/f").ok());
  EXPECT_EQ(backend_.stat("/f").code(), ENOENT);
}

TEST_F(SimBackendTest, SyntheticFilesTrackSizeOnly) {
  ASSERT_TRUE(backend_.preload_file("/big", 100 << 20).ok());
  auto info = backend_.stat("/big");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 100u << 20);
  // Reads return zeros of the right length.
  auto handle = backend_.open("/big", flags_of("r"), 0);
  ASSERT_TRUE(handle.ok());
  char buf[64];
  auto n = backend_.pread(handle.value(), buf, sizeof buf, 1000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), sizeof buf);
  for (char c : buf) EXPECT_EQ(c, '\0');
}

TEST_F(SimBackendTest, SyntheticPwriteViaNullPayload) {
  auto handle = backend_.open("/s", flags_of("wc"), 0644);
  ASSERT_TRUE(handle.ok());
  auto n = backend_.pwrite(handle.value(), nullptr, 5 << 20, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(backend_.stat("/s").value().size, 5u << 20);
  EXPECT_EQ(backend_.used_bytes(), 5u << 20);
}

TEST_F(SimBackendTest, DirectoryTreeSemantics) {
  ASSERT_TRUE(backend_.mkdir("/a", 0755).ok());
  ASSERT_TRUE(backend_.mkdir("/a/b", 0755).ok());
  EXPECT_EQ(backend_.mkdir("/a", 0755).code(), EEXIST);
  EXPECT_EQ(backend_.mkdir("/x/y", 0755).code(), ENOENT);  // no parent
  ASSERT_TRUE(backend_.write_file("/a/f", "1", 0644).ok());
  EXPECT_EQ(backend_.rmdir("/a").code(), ENOTEMPTY);
  auto entries = backend_.readdir("/a");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 2u);  // b and f
  ASSERT_TRUE(backend_.unlink("/a/f").ok());
  ASSERT_TRUE(backend_.rmdir("/a/b").ok());
  ASSERT_TRUE(backend_.rmdir("/a").ok());
}

TEST_F(SimBackendTest, ReaddirDoesNotLeakGrandchildren) {
  ASSERT_TRUE(backend_.mkdir("/d", 0755).ok());
  ASSERT_TRUE(backend_.mkdir("/d/sub", 0755).ok());
  ASSERT_TRUE(backend_.write_file("/d/sub/deep", "x", 0644).ok());
  ASSERT_TRUE(backend_.write_file("/d/shallow", "y", 0644).ok());
  auto entries = backend_.readdir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 2u);
  for (const auto& e : entries.value()) {
    EXPECT_TRUE(e.name == "sub" || e.name == "shallow") << e.name;
  }
}

TEST_F(SimBackendTest, SiblingPrefixNamesAreNotChildren) {
  // "/ab" must not appear in readdir("/a").
  ASSERT_TRUE(backend_.mkdir("/a", 0755).ok());
  ASSERT_TRUE(backend_.write_file("/ab", "x", 0644).ok());
  auto entries = backend_.readdir("/a");
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries.value().empty());
  // And rmdir("/a") works even though "/ab" sorts right after it.
  EXPECT_TRUE(backend_.rmdir("/a").ok());
}

TEST_F(SimBackendTest, TimingColdReadCostsDiskWarmReadDoesNot) {
  ASSERT_TRUE(backend_.preload_file("/data", 10 << 20).ok());
  backend_.take_completion();

  auto handle = backend_.open("/data", flags_of("r"), 0);
  ASSERT_TRUE(handle.ok());
  backend_.take_completion();

  std::vector<char> buffer(1 << 20);
  ASSERT_TRUE(
      backend_.pread(handle.value(), buffer.data(), buffer.size(), 0).ok());
  Nanos cold = backend_.take_completion();
  // 1 MB at 10 MB/s disk ≈ 100 ms (plus the initial seek).
  EXPECT_GT(cold, 90 * kMillisecond);

  ASSERT_TRUE(
      backend_.pread(handle.value(), buffer.data(), buffer.size(), 0).ok());
  Nanos warm = backend_.take_completion();
  // Cache-resident now: memory rate, well under a millisecond.
  EXPECT_LT(warm, kMillisecond);
}

TEST_F(SimBackendTest, SequentialReadsSkipSeeksRandomReadsPay) {
  SimBackend::Config config;
  config.disk.seek_time = 50 * kMillisecond;  // exaggerate for the test
  SimBackend backend(engine_, config);
  ASSERT_TRUE(backend.preload_file("/d", 10 << 20).ok());
  backend.take_completion();

  auto handle = backend.open("/d", flags_of("r"), 0);
  ASSERT_TRUE(handle.ok());
  backend.take_completion();
  std::vector<char> buffer(64 << 10);

  // First read of a fresh handle: one seek plus 64 KB of streaming.
  ASSERT_TRUE(backend.pread(handle.value(), buffer.data(), buffer.size(), 0)
                  .ok());
  Nanos first = backend.take_completion();
  EXPECT_GT(first, 50 * kMillisecond);

  // Sequential continuation: streaming only, well under the seek time.
  Nanos before = first;
  ASSERT_TRUE(backend.pread(handle.value(), buffer.data(), buffer.size(),
                            64 << 10)
                  .ok());
  Nanos sequential_cost = backend.take_completion() - before;
  EXPECT_LT(sequential_cost, 20 * kMillisecond);

  // A random jump pays the seek again.
  Nanos jump_start = before + sequential_cost;
  ASSERT_TRUE(backend.pread(handle.value(), buffer.data(), buffer.size(),
                            5 << 20)
                  .ok());
  Nanos jump_cost = backend.take_completion() - jump_start;
  EXPECT_GT(jump_cost, 50 * kMillisecond);

  // Cache hits bypass the disk entirely.
  ASSERT_TRUE(backend.pread(handle.value(), buffer.data(), buffer.size(), 0)
                  .ok());
  EXPECT_GT(backend.cache().hits(), 0u);
}

TEST_F(SimBackendTest, TruncateOnOpenInvalidatesCache) {
  ASSERT_TRUE(backend_.write_file("/t", "0123456789", 0644).ok());
  auto handle = backend_.open("/t", flags_of("wt"), 0644);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(backend_.stat("/t").value().size, 0u);
  EXPECT_EQ(backend_.used_bytes(), 0u);
}

TEST_F(SimBackendTest, RenamePreservesContentAndAccounting) {
  ASSERT_TRUE(backend_.write_file("/from", "moved", 0644).ok());
  uint64_t used = backend_.used_bytes();
  ASSERT_TRUE(backend_.rename("/from", "/to").ok());
  EXPECT_EQ(backend_.used_bytes(), used);
  EXPECT_EQ(backend_.read_file("/to").value(), "moved");
  EXPECT_EQ(backend_.stat("/from").code(), ENOENT);
}

TEST_F(SimBackendTest, StatfsTracksUsage) {
  auto before = backend_.statfs().value();
  ASSERT_TRUE(backend_.preload_file("/chunk", 1 << 30).ok());
  auto after = backend_.statfs().value();
  EXPECT_EQ(before.second - after.second, 1u << 30);
  backend_.damage("/chunk");
  auto repaired = backend_.statfs().value();
  EXPECT_EQ(repaired.second, before.second);
}

TEST_F(SimBackendTest, WarmFilePopulatesCacheWithoutTime) {
  ASSERT_TRUE(backend_.preload_file("/w", 10 << 20).ok());
  ASSERT_TRUE(backend_.warm_file("/w").ok());
  EXPECT_EQ(backend_.take_completion(), engine_.now());  // no time charged
  EXPECT_GT(backend_.cache().resident_pages(), 0u);
}

}  // namespace
}  // namespace tss::sim
