file(REMOVE_RECURSE
  "CMakeFiles/tss_acl.dir/acl.cc.o"
  "CMakeFiles/tss_acl.dir/acl.cc.o.d"
  "libtss_acl.a"
  "libtss_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
