// AllocTracker suite: hierarchy semantics against the documented model, a
// randomized oracle property test (tracker vs a plain-map accountant, with
// periodic crash-replay through the journal), torn-tail truncation, and the
// Reservation two-phase protocol.
#include "chirp/alloc.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/path.h"
#include "util/rand.h"

namespace tss::chirp {
namespace {

std::string temp_journal(const std::string& tag) {
  static int counter = 0;
  return ::testing::TempDir() + "/alloc_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         ".journal";
}

std::unique_ptr<AllocTracker> open_or_die(AllocTracker::Options options) {
  auto t = AllocTracker::open(std::move(options));
  EXPECT_TRUE(t.ok()) << t.error().to_string();
  return std::move(t).value();
}

// --- Hierarchy semantics ----------------------------------------------------

TEST(AllocTracker, RootAlwaysExistsAndUnlimitedByDefault) {
  auto t = open_or_die({});
  auto info = t->lsalloc("/any/deep/path");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().root, "/");
  EXPECT_EQ(info.value().limit, 0u);
  EXPECT_EQ(info.value().inuse, 0u);
  // Unlimited root accepts any charge.
  EXPECT_TRUE(t->charge("/any/deep/path", 1ull << 40).ok());
}

TEST(AllocTracker, MkallocValidation) {
  AllocTracker::Options options;
  options.root_limit = 1000;
  auto t = open_or_die(std::move(options));
  EXPECT_EQ(t->mkalloc("/a", 0).error().code, EINVAL);
  EXPECT_EQ(t->mkalloc("/", 100).error().code, EEXIST);
  ASSERT_TRUE(t->mkalloc("/a", 600).ok());
  EXPECT_EQ(t->mkalloc("/a", 100).error().code, EEXIST);
  // The full limit was pre-charged to the root: only 400 remain there.
  EXPECT_EQ(t->mkalloc("/b", 500).error().code, ENOSPC);
  ASSERT_TRUE(t->mkalloc("/b", 400).ok());
  auto root = t->lsalloc("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().inuse, 1000u);
}

TEST(AllocTracker, ChildEnospcEvenWithParentRoom) {
  AllocTracker::Options options;
  options.root_limit = 10000;
  auto t = open_or_die(std::move(options));
  ASSERT_TRUE(t->mkalloc("/small", 100).ok());
  // The child's own budget governs writes under it, not the parent's.
  EXPECT_EQ(t->charge("/small/file", 101).error().code, ENOSPC);
  EXPECT_TRUE(t->charge("/small/file", 100).ok());
  EXPECT_EQ(t->charge("/small/file", 1).error().code, ENOSPC);
  // The parent still has plenty of room for its own files.
  EXPECT_TRUE(t->charge("/other", 5000).ok());
}

TEST(AllocTracker, NestedAllocationsChargeNearestRoot) {
  AllocTracker::Options options;
  options.root_limit = 1000;
  auto t = open_or_die(std::move(options));
  ASSERT_TRUE(t->mkalloc("/a", 500).ok());
  ASSERT_TRUE(t->mkalloc("/a/b", 200).ok());
  ASSERT_TRUE(t->charge("/a/b/file", 50).ok());
  auto b = t->lsalloc("/a/b/file");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().root, "/a/b");
  EXPECT_EQ(b.value().inuse, 50u);
  // /a holds the pre-charged 200 of /a/b but not /a/b's file bytes.
  auto a = t->lsalloc("/a/other");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value().root, "/a");
  EXPECT_EQ(a.value().inuse, 200u);
}

TEST(AllocTracker, RmdirRefundsLimit) {
  AllocTracker::Options options;
  options.root_limit = 1000;
  auto t = open_or_die(std::move(options));
  ASSERT_TRUE(t->mkalloc("/a", 900).ok());
  EXPECT_EQ(t->mkalloc("/b", 900).error().code, ENOSPC);
  t->note_rmdir("/a");
  EXPECT_TRUE(t->mkalloc("/b", 900).ok());
  auto root = t->lsalloc("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().inuse, 900u);
}

TEST(AllocTracker, TransferMovesChargeAndRefusesOverflow) {
  AllocTracker::Options options;
  options.root_limit = 0;
  auto t = open_or_die(std::move(options));
  ASSERT_TRUE(t->mkalloc("/src", 500).ok());
  ASSERT_TRUE(t->mkalloc("/dst", 100).ok());
  ASSERT_TRUE(t->charge("/src/f", 300).ok());
  // Destination lacks room: the rename must be refused.
  EXPECT_EQ(t->transfer("/src/f", "/dst/f", 300).error().code, ENOSPC);
  ASSERT_TRUE(t->transfer("/src/f", "/dst/f", 80).ok());
  EXPECT_EQ(t->lsalloc("/src/x").value().inuse, 220u);
  EXPECT_EQ(t->lsalloc("/dst/x").value().inuse, 80u);
  // Same-root transfer is a no-op.
  ASSERT_TRUE(t->transfer("/dst/f", "/dst/g", 80).ok());
  EXPECT_EQ(t->lsalloc("/dst/x").value().inuse, 80u);
}

TEST(AllocTracker, ReleaseClampsAtZero) {
  auto t = open_or_die({});
  ASSERT_TRUE(t->charge("/f", 100).ok());
  t->release("/f", 1000);
  EXPECT_EQ(t->lsalloc("/").value().inuse, 0u);
}

// --- Reservation protocol ---------------------------------------------------

TEST(AllocTracker, ReservationHoldsAgainstLimit) {
  AllocTracker::Options options;
  options.root_limit = 100;
  auto t = open_or_die(std::move(options));
  auto r = t->reserve("/f", 60);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().held());
  // A racing reserver sees the hold before any commit.
  EXPECT_EQ(t->reserve("/g", 60).error().code, ENOSPC);
  EXPECT_EQ(t->charge("/g", 60).error().code, ENOSPC);
  r.value().commit();
  EXPECT_EQ(t->lsalloc("/").value().inuse, 60u);
  EXPECT_TRUE(t->charge("/g", 40).ok());
}

TEST(AllocTracker, ReservationAbortAndDestructionRelease) {
  AllocTracker::Options options;
  options.root_limit = 100;
  auto t = open_or_die(std::move(options));
  {
    auto r = t->reserve("/f", 100);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(t->reserve("/g", 1).error().code, ENOSPC);
  }  // destruction aborts the hold
  EXPECT_TRUE(t->reserve("/g", 100).ok());
  auto r = t->reserve("/h", 100);
  ASSERT_TRUE(r.ok());
  r.value().abort();
  EXPECT_FALSE(r.value().held());
  r.value().abort();  // double-abort is a safe no-op
  EXPECT_TRUE(t->charge("/h", 100).ok());
}

TEST(AllocTracker, RmdirUnderALiveHoldDoesNotResurrectTheRoot) {
  // Found by the randomized oracle below: settling a reservation whose root
  // was removed while the hold was live must be a no-op — not an accidental
  // re-creation of the root as a phantom limit-0 allocation (which a later
  // journal replay would then silently disagree with).
  AllocTracker::Options options;
  options.journal_path = temp_journal("rmdir_hold");
  options.root_limit = 10000;
  auto t = open_or_die(options);
  ASSERT_TRUE(t->mkalloc("/a", 1000).ok());
  auto held = t->reserve("/a/f", 400);
  ASSERT_TRUE(held.ok());
  t->note_rmdir("/a");  // the tree is deleted out from under the hold
  held.value().commit();
  auto snap = t->snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].root, "/");
  EXPECT_EQ(snap[0].inuse, 0u);  // the mkalloc pre-charge was refunded
  // An aborted orphan hold is equally inert, and replay agrees.
  ASSERT_TRUE(t->mkalloc("/b", 1000).ok());
  auto orphan = t->reserve("/b/f", 300);
  ASSERT_TRUE(orphan.ok());
  t->note_rmdir("/b");
  orphan.value().abort();
  EXPECT_EQ(t->snapshot().size(), 1u);
  t.reset();
  t = open_or_die(options);
  snap = t->snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].inuse, 0u);
}

TEST(AllocTracker, CommitExternalDropsHoldWithoutCharging) {
  AllocTracker::Options options;
  options.root_limit = 100;
  auto t = open_or_die(std::move(options));
  auto r = t->reserve("/f", 80);
  ASSERT_TRUE(r.ok());
  r.value().commit_external();
  // The external accountant owns the bytes now; inuse is untouched until a
  // sync_inuse re-derives it.
  EXPECT_EQ(t->lsalloc("/").value().inuse, 0u);
  t->sync_inuse("/", 80);
  EXPECT_EQ(t->lsalloc("/").value().inuse, 80u);
}

TEST(AllocTracker, ZeroByteReservationIsEmpty) {
  auto t = open_or_die({});
  auto r = t->reserve("/f", 0);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().held());
  r.value().commit();  // all operations are safe no-ops on an empty hold
}

// --- Journal durability -----------------------------------------------------

TEST(AllocTrackerJournal, ReplayRecoversExactState) {
  std::string journal = temp_journal("replay");
  AllocTracker::Options options;
  options.journal_path = journal;
  options.root_limit = 10000;
  {
    auto t = open_or_die(options);
    ASSERT_TRUE(t->mkalloc("/a", 4000).ok());
    ASSERT_TRUE(t->mkalloc("/a/b", 1000).ok());
    ASSERT_TRUE(t->charge("/a/x", 123).ok());
    ASSERT_TRUE(t->charge("/a/b/y", 456).ok());
    t->release("/a/x", 23);
    t->note_rmdir("/a/b");
  }  // process "dies"; no clean shutdown path exists to lose state in
  auto t = open_or_die(options);
  auto snap = t->snapshot();
  std::map<std::string, AllocTracker::Entry> byroot;
  for (auto& e : snap) byroot[e.root] = e;
  ASSERT_EQ(byroot.size(), 2u);
  EXPECT_EQ(byroot["/"].limit, 10000u);
  EXPECT_EQ(byroot["/"].inuse, 4000u);  // /a's pre-charge
  EXPECT_EQ(byroot["/a"].limit, 4000u);
  EXPECT_EQ(byroot["/a"].inuse, 100u);  // 123 - 23; /a/b refunded by rmdir
  // Budgets are enforced identically after the replay.
  EXPECT_EQ(t->charge("/a/z", 3901).error().code, ENOSPC);
  EXPECT_TRUE(t->charge("/a/z", 3900).ok());
  std::remove(journal.c_str());
}

TEST(AllocTrackerJournal, TornLastRecordIsTruncatedNotFatal) {
  std::string journal = temp_journal("torn");
  AllocTracker::Options options;
  options.journal_path = journal;
  options.root_limit = 1000;
  {
    auto t = open_or_die(options);
    ASSERT_TRUE(t->mkalloc("/a", 600).ok());
    ASSERT_TRUE(t->charge("/a/f", 100).ok());
  }
  // Simulate a mid-write kill: a torn, checksum-less fragment at the tail.
  {
    std::ofstream f(journal, std::ios::app | std::ios::binary);
    f << "C %2Fa +99999";  // no checksum, no newline
  }
  auto t = open_or_die(options);
  auto info = t->lsalloc("/a/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().inuse, 100u);  // the torn record did not apply
  // The tracker can keep journaling after the truncation.
  ASSERT_TRUE(t->charge("/a/g", 50).ok());
  t.reset();
  auto t2 = open_or_die(options);
  EXPECT_EQ(t2->lsalloc("/a/f").value().inuse, 150u);
  std::remove(journal.c_str());
}

TEST(AllocTrackerJournal, CorruptMiddleRecordStopsReplayAtFirstBadLine) {
  std::string journal = temp_journal("corrupt");
  AllocTracker::Options options;
  options.journal_path = journal;
  {
    auto t = open_or_die(options);
    ASSERT_TRUE(t->charge("/f", 100).ok());
    ASSERT_TRUE(t->charge("/g", 200).ok());
  }
  // Flip one byte inside the file: everything from the damaged record on is
  // discarded, leaving a consistent (if older) state.
  {
    std::fstream f(journal, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    auto size = static_cast<long>(f.tellg());
    ASSERT_GT(size, 10);
    f.seekp(size / 2);
    f.put('~');
  }
  auto t = open_or_die(options);
  auto info = t->lsalloc("/");
  ASSERT_TRUE(info.ok());
  EXPECT_LE(info.value().inuse, 300u);
  // Whatever survived, the accountant still enforces and still journals.
  ASSERT_TRUE(t->charge("/h", 10).ok());
  uint64_t before = t->lsalloc("/").value().inuse;
  t.reset();
  auto t2 = open_or_die(options);
  EXPECT_EQ(t2->lsalloc("/").value().inuse, before);
  std::remove(journal.c_str());
}

TEST(AllocTrackerJournal, CompactionPreservesStateAndShrinksJournal) {
  std::string journal = temp_journal("compact");
  AllocTracker::Options options;
  options.journal_path = journal;
  options.root_limit = 1 << 20;
  auto t = open_or_die(options);
  ASSERT_TRUE(t->mkalloc("/a", 1 << 16).ok());
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(t->charge("/a/f", 1).ok());
    t->release("/a/f", 1);
  }
  ASSERT_TRUE(t->compact().ok());
  t.reset();
  auto t2 = open_or_die(options);
  // After compaction + reopen the journal is a snapshot: a handful of
  // records, not thousands.
  std::ifstream f(journal);
  int lines = 0;
  std::string line;
  while (std::getline(f, line)) lines++;
  EXPECT_LT(lines, 10);
  EXPECT_EQ(t2->lsalloc("/").value().inuse, static_cast<uint64_t>(1 << 16));
  EXPECT_EQ(t2->lsalloc("/a/x").value().limit, static_cast<uint64_t>(1 << 16));
  std::remove(journal.c_str());
}

TEST(AllocTrackerJournal, AutoCompactionKeepsJournalBounded) {
  std::string journal = temp_journal("auto");
  AllocTracker::Options options;
  options.journal_path = journal;
  auto t = open_or_die(options);
  // Far past the 4096-record threshold; the journal must stay bounded.
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(t->charge("/f", 1).ok());
  }
  struct stat st {};
  ASSERT_EQ(::stat(journal.c_str(), &st), 0);
  // Each record is ~30 bytes; 10000 un-compacted records would be ~300 KB.
  EXPECT_LT(st.st_size, 200 * 1024);
  EXPECT_EQ(t->lsalloc("/").value().inuse, 10000u);
  t.reset();
  auto t2 = open_or_die(options);
  EXPECT_EQ(t2->lsalloc("/").value().inuse, 10000u);
  std::remove(journal.c_str());
}

// --- Oracle property test ---------------------------------------------------

// The model accountant: the documented semantics in ~60 lines of plain map
// code, no journal, no locking. The tracker must agree with it after every
// operation and after every crash-replay cycle.
struct ModelAlloc {
  uint64_t limit = 0;
  uint64_t inuse = 0;
  uint64_t pending = 0;
};

class Model {
 public:
  explicit Model(uint64_t root_limit) { allocs_["/"] = {root_limit, 0, 0}; }

  const std::string& root_of(const std::string& p) const {
    auto best = allocs_.find("/");
    for (auto it = allocs_.begin(); it != allocs_.end(); ++it) {
      const std::string& r = it->first;
      if (r == "/" || p == r ||
          (p.size() > r.size() && p.compare(0, r.size(), r) == 0 &&
           p[r.size()] == '/')) {
        if (r.size() > best->first.size()) best = it;
      }
    }
    return best->first;
  }

  static bool fits(const ModelAlloc& a, uint64_t bytes) {
    return a.limit == 0 || a.inuse + a.pending + bytes <= a.limit;
  }

  bool mkalloc(const std::string& dir, uint64_t limit) {
    if (limit == 0 || dir == "/" || allocs_.count(dir)) return false;
    ModelAlloc& parent = allocs_[root_of(dir)];
    if (!fits(parent, limit)) return false;
    parent.inuse += limit;
    allocs_[dir] = {limit, 0, 0};
    return true;
  }

  bool charge(const std::string& p, uint64_t bytes) {
    if (bytes == 0) return true;
    ModelAlloc& a = allocs_[root_of(p)];
    if (!fits(a, bytes)) return false;
    a.inuse += bytes;
    return true;
  }

  void release(const std::string& p, uint64_t bytes) {
    ModelAlloc& a = allocs_[root_of(p)];
    a.inuse -= std::min(a.inuse, bytes);
  }

  void rmdir(const std::string& dir) {
    auto it = allocs_.find(dir);
    if (it == allocs_.end() || dir == "/") return;
    uint64_t limit = it->second.limit;
    allocs_.erase(it);
    ModelAlloc& parent = allocs_[root_of(dir)];
    parent.inuse -= std::min(parent.inuse, limit);
  }

  bool reserve(const std::string& p, uint64_t bytes) {
    ModelAlloc& a = allocs_[root_of(p)];
    if (!fits(a, bytes)) return false;
    a.pending += bytes;
    return true;
  }

  void settle(const std::string& root, uint64_t bytes, bool commit) {
    // Mirrors the tracker: a hold whose root was rmdir'd while it was live
    // settles as a no-op instead of resurrecting a phantom allocation.
    auto it = allocs_.find(root);
    if (it == allocs_.end()) return;
    it->second.pending -= std::min(it->second.pending, bytes);
    if (commit) it->second.inuse += bytes;
  }

  void drop_pending() {
    for (auto& [_, a] : allocs_) a.pending = 0;
  }

  const std::map<std::string, ModelAlloc>& allocs() const { return allocs_; }

 private:
  std::map<std::string, ModelAlloc> allocs_;
};

void expect_agreement(const AllocTracker& t, const Model& m,
                      const std::string& context) {
  auto snap = t.snapshot();
  std::map<std::string, AllocTracker::Entry> got;
  for (auto& e : snap) got[e.root] = e;
  // On a size mismatch, show both sides — a property test's counterexample
  // is worthless without the diverging state.
  std::string dump = context;
  for (auto& [root, e] : got) {
    dump += "\n  tracker " + root + " limit=" + std::to_string(e.limit) +
            " inuse=" + std::to_string(e.inuse) +
            " pending=" + std::to_string(e.pending);
  }
  for (auto& [root, a] : m.allocs()) {
    dump += "\n  model   " + root + " limit=" + std::to_string(a.limit) +
            " inuse=" + std::to_string(a.inuse) +
            " pending=" + std::to_string(a.pending);
  }
  ASSERT_EQ(got.size(), m.allocs().size()) << dump;
  for (const auto& [root, want] : m.allocs()) {
    ASSERT_TRUE(got.count(root)) << context << ": missing " << root;
    EXPECT_EQ(got[root].limit, want.limit) << context << " at " << root;
    EXPECT_EQ(got[root].inuse, want.inuse) << context << " at " << root;
    EXPECT_EQ(got[root].pending, want.pending) << context << " at " << root;
  }
}

TEST(AllocTrackerOracle, RandomizedInterleavingsMatchModelAcrossReplays) {
  const uint64_t kSeed = 0xA110C*7;  // deterministic; change to explore
  const std::vector<std::string> kDirs = {"/a", "/a/b", "/a/b/c", "/d", "/d/e"};
  const std::vector<std::string> kFiles = {"/f0",      "/a/f1",   "/a/b/f2",
                                           "/a/b/c/f3", "/d/f4",  "/d/e/f5"};
  std::string journal = temp_journal("oracle");
  AllocTracker::Options options;
  options.journal_path = journal;
  options.root_limit = 100000;

  Rng rng(kSeed);
  Model model(options.root_limit);
  auto t = open_or_die(options);
  struct Hold {
    AllocTracker::Reservation res;
    std::string root;
    uint64_t bytes;
  };
  std::vector<Hold> holds;

  for (int step = 0; step < 2000; step++) {
    std::string context = "step " + std::to_string(step);
    switch (rng.below(8)) {
      case 0: {  // mkalloc
        const std::string& dir = kDirs[rng.below(kDirs.size())];
        uint64_t limit = 1 + rng.below(20000);
        bool want = model.mkalloc(dir, limit);
        auto got = t->mkalloc(dir, limit);
        ASSERT_EQ(got.ok(), want) << context << " mkalloc " << dir;
        break;
      }
      case 1:
      case 2: {  // charge
        const std::string& f = kFiles[rng.below(kFiles.size())];
        uint64_t bytes = 1 + rng.below(5000);
        bool want = model.charge(f, bytes);
        auto got = t->charge(f, bytes);
        ASSERT_EQ(got.ok(), want) << context << " charge " << f;
        if (!got.ok()) {
          EXPECT_EQ(got.error().code, ENOSPC) << context;
        }
        break;
      }
      case 3: {  // release
        const std::string& f = kFiles[rng.below(kFiles.size())];
        uint64_t bytes = 1 + rng.below(5000);
        model.release(f, bytes);
        t->release(f, bytes);
        break;
      }
      case 4: {  // rmdir an allocation
        const std::string& dir = kDirs[rng.below(kDirs.size())];
        // Only meaningful when no child allocation remains; mirror exactly.
        bool has_child = false;
        for (const auto& [root, _] : model.allocs()) {
          if (root.size() > dir.size() &&
              root.compare(0, dir.size(), dir) == 0 && root[dir.size()] == '/') {
            has_child = true;
          }
        }
        if (has_child) break;
        model.rmdir(dir);
        t->note_rmdir(dir);
        break;
      }
      case 5: {  // reserve
        const std::string& f = kFiles[rng.below(kFiles.size())];
        uint64_t bytes = 1 + rng.below(3000);
        bool want = model.reserve(f, bytes);
        auto got = t->reserve(f, bytes);
        ASSERT_EQ(got.ok(), want) << context << " reserve " << f;
        if (got.ok()) {
          std::string root = t->lsalloc(f).value().root;
          holds.push_back(Hold{std::move(got).value(), root, bytes});
        }
        break;
      }
      case 6: {  // settle a hold (commit or abort)
        if (holds.empty()) break;
        size_t i = rng.below(holds.size());
        bool commit = rng.below(2) == 0;
        if (commit) {
          holds[i].res.commit();
        } else {
          holds[i].res.abort();
        }
        model.settle(holds[i].root, holds[i].bytes, commit);
        holds.erase(holds.begin() + i);
        break;
      }
      case 7: {  // crash: drop all holds, destroy, replay the journal
        for (auto& h : holds) {
          h.res.abort();
          model.settle(h.root, h.bytes, false);
        }
        holds.clear();
        model.drop_pending();
        t.reset();
        t = open_or_die(options);
        break;
      }
    }
    expect_agreement(*t, model, context);
  }
  // Final crash-replay must also agree.
  for (auto& h : holds) {
    h.res.abort();
    model.settle(h.root, h.bytes, false);
  }
  holds.clear();
  t.reset();
  t = open_or_die(options);
  expect_agreement(*t, model, "final replay");
  std::remove(journal.c_str());
}

TEST(AllocTracker, MetricsAreRecorded) {
  obs::Registry registry;
  AllocTracker::Options options;
  options.root_limit = 100;
  options.metrics = &registry;
  auto t = open_or_die(std::move(options));
  ASSERT_TRUE(t->mkalloc("/a", 50).ok());
  ASSERT_TRUE(t->charge("/b", 50).ok());
  EXPECT_EQ(t->charge("/b", 50).error().code, ENOSPC);
  EXPECT_EQ(registry.counter("tenant.alloc.mkalloc")->value(), 1u);
  EXPECT_EQ(registry.counter("tenant.alloc.enospc")->value(), 1u);
  EXPECT_EQ(registry.gauge("tenant.alloc.inuse")->value(), 50);
}

}  // namespace
}  // namespace tss::chirp
