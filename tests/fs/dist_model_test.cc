// Model-based property test: a long random operation sequence applied both
// to a DistFs (DPFS configuration over three stores) and to a trivial
// in-memory model; after every step the two must agree. This is the
// strongest general check we have that the stub indirection never corrupts
// namespace or content semantics.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <set>

#include "fs/dist.h"
#include "fs/local.h"
#include "util/path.h"
#include "util/rand.h"

namespace tss::fs {
namespace {

// The reference model: path -> content for files; set of directories.
struct Model {
  std::map<std::string, std::string> files;
  std::set<std::string> dirs{"/"};

  bool dir_exists(const std::string& d) const { return dirs.count(d); }
  bool file_exists(const std::string& f) const { return files.count(f); }
};

class DistModelTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/distmodel_" + std::to_string(::getpid()) +
            "_" + std::to_string(GetParam());
    std::filesystem::create_directories(base_ + "/meta");
    meta_ = std::make_unique<LocalFs>(base_ + "/meta");
    for (int i = 0; i < 3; i++) {
      std::string dir = base_ + "/s" + std::to_string(i);
      std::filesystem::create_directories(dir);
      stores_.push_back(std::make_unique<LocalFs>(dir));
      servers_["s" + std::to_string(i)] = stores_.back().get();
    }
    DistFs::Options options;
    options.volume = "/vol";
    options.name_seed = GetParam();
    fs_ = std::make_unique<DistFs>(meta_.get(), servers_, options);
    ASSERT_TRUE(fs_->format().ok());
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string base_;
  std::unique_ptr<LocalFs> meta_;
  std::vector<std::unique_ptr<LocalFs>> stores_;
  std::map<std::string, FileSystem*> servers_;
  std::unique_ptr<DistFs> fs_;
};

TEST_P(DistModelTest, RandomOperationSequenceMatchesModel) {
  Rng rng(GetParam() * 2654435761ULL + 17);
  Model model;

  // A small pool of path components keeps collisions (the interesting
  // cases) frequent.
  const char* names[] = {"a", "b", "c", "d", "e"};
  auto random_dir = [&]() -> std::string {
    std::string dir = "/";
    size_t depth = rng.below(3);
    for (size_t i = 0; i < depth; i++) {
      dir = tss::path::join(dir, names[rng.below(5)]);
    }
    return dir;
  };
  auto random_path = [&]() {
    return tss::path::join(random_dir(), names[rng.below(5)]);
  };
  auto random_content = [&]() {
    return std::string(rng.below(5000), static_cast<char>('a' + rng.below(26)));
  };

  for (int step = 0; step < 400; step++) {
    int op = static_cast<int>(rng.below(6));
    if (op == 0) {  // write (create or overwrite)
      std::string p = random_path();
      std::string content = random_content();
      bool parent_ok = model.dir_exists(tss::path::dirname(p));
      bool is_dir = model.dir_exists(p);
      auto rc = fs_->write_file(p, content);
      if (parent_ok && !is_dir) {
        ASSERT_TRUE(rc.ok()) << step << " write " << p << ": "
                             << rc.error().to_string();
        model.files[p] = content;
      } else {
        EXPECT_FALSE(rc.ok()) << step << " write " << p;
      }
    } else if (op == 1) {  // read
      std::string p = random_path();
      auto data = fs_->read_file(p);
      if (model.file_exists(p)) {
        ASSERT_TRUE(data.ok()) << step << " read " << p;
        EXPECT_EQ(data.value(), model.files[p]) << step << " read " << p;
      } else {
        EXPECT_FALSE(data.ok()) << step << " read " << p;
      }
    } else if (op == 2) {  // unlink
      std::string p = random_path();
      auto rc = fs_->unlink(p);
      if (model.file_exists(p)) {
        ASSERT_TRUE(rc.ok()) << step << " unlink " << p;
        model.files.erase(p);
      } else {
        EXPECT_FALSE(rc.ok()) << step << " unlink " << p;
      }
    } else if (op == 3) {  // mkdir
      std::string d = tss::path::join(random_dir(), names[rng.below(5)]);
      auto rc = fs_->mkdir(d);
      bool parent_ok = model.dir_exists(tss::path::dirname(d));
      bool exists = model.dir_exists(d) || model.file_exists(d);
      if (parent_ok && !exists) {
        ASSERT_TRUE(rc.ok()) << step << " mkdir " << d;
        model.dirs.insert(d);
      } else {
        EXPECT_FALSE(rc.ok()) << step << " mkdir " << d;
      }
    } else if (op == 4) {  // rename a file
      std::string from = random_path();
      std::string to = random_path();
      // Directory renames move whole subtrees; keep the model simple by
      // only exercising file renames.
      if (model.dir_exists(from) || model.dir_exists(to)) continue;
      auto rc = fs_->rename(from, to);
      bool expect_ok = model.file_exists(from) &&
                       model.dir_exists(tss::path::dirname(to));
      if (expect_ok) {
        ASSERT_TRUE(rc.ok()) << step << " rename " << from << " " << to
                             << ": " << rc.error().to_string();
        if (from != to) {
          model.files[to] = model.files[from];
          model.files.erase(from);
        }
      } else {
        EXPECT_FALSE(rc.ok()) << step << " rename " << from << " " << to;
      }
    } else {  // stat
      std::string p = random_path();
      auto info = fs_->stat(p);
      if (model.file_exists(p)) {
        ASSERT_TRUE(info.ok()) << step << " stat " << p;
        EXPECT_EQ(info.value().size, model.files[p].size()) << p;
      } else if (model.dir_exists(p)) {
        ASSERT_TRUE(info.ok());
        EXPECT_TRUE(info.value().is_dir);
      } else {
        EXPECT_FALSE(info.ok()) << step << " stat " << p;
      }
    }
  }

  // Global invariant: every model file is readable with exact content, and
  // every data file on every store is referenced by exactly one stub (no
  // unreferenced garbage — the §5 creation-ordering guarantee).
  for (const auto& [p, content] : model.files) {
    EXPECT_EQ(fs_->read_file(p).value(), content) << p;
  }
  std::set<std::string> referenced;
  for (const auto& [p, content] : model.files) {
    auto stub = fs_->locate(p);
    ASSERT_TRUE(stub.ok());
    referenced.insert(stub.value().server + ":" + stub.value().data_path);
  }
  size_t data_files = 0;
  for (auto& [name, store] : servers_) {
    auto entries = store->readdir("/vol");
    ASSERT_TRUE(entries.ok());
    for (const auto& e : entries.value()) {
      data_files++;
      EXPECT_TRUE(referenced.count(name + ":/vol/" + e.name))
          << "unreferenced data file " << name << ":/vol/" << e.name;
    }
  }
  EXPECT_EQ(data_files, model.files.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace tss::fs
