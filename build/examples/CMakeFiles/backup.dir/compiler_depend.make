# Empty compiler generated dependencies file for backup.
# This may be replaced when dependencies are built.
