# Empty dependencies file for bench_ablation_dirserver.
# This may be replaced when dependencies are built.
