// Connection-scale behaviour of the Chirp server on the reactor: a thousand
// concurrent sessions on a handful of threads, partial-I/O resumption on
// streamed files, and the timer-wheel idle reaper at scale. The thread
// engine is exercised on the same session code at a smaller scale — wire
// behaviour must be identical (the ISSUE-4 contract).
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "auth/hostname.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace tss::chirp {
namespace {

#ifdef TSS_TSAN_BUILD
constexpr size_t kIdleHerd = 128;
#else
constexpr size_t kIdleHerd = 1000;
#endif

// Raises RLIMIT_NOFILE enough for the herd (client + server fds live in this
// one process). Returns the connection count the limit actually allows.
size_t raise_fd_limit(size_t want_conns) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return want_conns;
  rlim_t need = want_conns * 2 + 256;
  if (lim.rlim_cur < need) {
    rlim_t target = std::min<rlim_t>(need, lim.rlim_max);
    lim.rlim_cur = target;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  if (lim.rlim_cur < need) {
    return (lim.rlim_cur - 256) / 2;
  }
  return want_conns;
}

// Threads of this process, from /proc (Linux); 0 if unreadable.
size_t process_threads() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoul(line.substr(8));
    }
  }
  return 0;
}

class ReactorScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/scale_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override {
    if (server_) server_->stop();
    std::filesystem::remove_all(root_);
  }

  void start_server(net::Mode mode, size_t max_connections = 0,
                    Nanos idle_timeout = 0) {
    ServerOptions options;
    options.owner = "hostname:localhost";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    options.mode = mode;
    options.max_connections = max_connections;
    options.idle_timeout = idle_timeout;
    options.metrics = &metrics_;
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<Server>(
        options, std::make_unique<PosixBackend>(root_), std::move(auth));
    ASSERT_TRUE(server_->start().ok());
  }

  Result<Client> connect_client() {
    Client::Options options;
    options.timeout = 10 * kSecond;
    options.metrics = &metrics_;
    return Client::connect(server_->endpoint(), options);
  }

  bool wait_for_active(size_t want, Nanos deadline = 20 * kSecond) {
    auto until = std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(deadline);
    while (std::chrono::steady_clock::now() < until) {
      if (server_->active_sessions() == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return server_->active_sessions() == want;
  }

  std::string root_;
  obs::Registry metrics_;
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

TEST_F(ReactorScaleTest, ThousandIdleSessionsOnBoundedThreads) {
  size_t herd = raise_fd_limit(kIdleHerd);
  ASSERT_GE(herd, 256u) << "fd limit too low for a meaningful scale test";
  size_t threads_before = process_threads();

  start_server(net::Mode::kReactor, /*max_connections=*/herd + 16);

  // Raw TCP connections: each is a live admitted session buffering in the
  // reactor, none gets a thread.
  std::vector<net::TcpSocket> herd_socks;
  herd_socks.reserve(herd);
  for (size_t i = 0; i < herd; i++) {
    auto sock = net::TcpSocket::connect(server_->endpoint(), 10 * kSecond);
    ASSERT_TRUE(sock.ok()) << "conn " << i << ": " << sock.error().to_string();
    herd_socks.push_back(std::move(sock.value()));
  }
  ASSERT_TRUE(wait_for_active(herd))
      << "active=" << server_->active_sessions();

  // The whole herd is served by a fixed pool: workers + acceptor + auth
  // helpers, not O(connections). Allow generous slack for the test runner's
  // own threads.
  size_t threads_now = process_threads();
  if (threads_before > 0 && threads_now > 0) {
    EXPECT_LE(threads_now, threads_before + 16)
        << "thread count scales with connections";
  }

  // The server still does real work under the idle herd.
  auto client = connect_client();
  ASSERT_TRUE(client.ok()) << client.error().to_string();
  auth::HostnameClientCredential credential;
  ASSERT_TRUE(client.value().authenticate(credential).ok());
  ASSERT_TRUE(client.value().mkdir("/under-load").ok());
  EXPECT_TRUE(client.value().stat("/under-load").ok());

  // Dropping the herd drains the reactor completely.
  herd_socks.clear();
  client.value().close();
  EXPECT_TRUE(wait_for_active(0)) << "active=" << server_->active_sessions();
}

TEST_F(ReactorScaleTest, StreamedFilesSurvivePartialIoBothDirections) {
  start_server(net::Mode::kReactor);
  auto client = connect_client();
  ASSERT_TRUE(client.ok());
  auth::HostnameClientCredential credential;
  ASSERT_TRUE(client.value().authenticate(credential).ok());

  // Larger than the output high-water mark and any socket buffer: the send
  // path must stall on watermarks and resume from on_output_space, the
  // receive path must reassemble a body that arrives in many segments.
  std::string blob(3 * 1024 * 1024, '\0');
  for (size_t i = 0; i < blob.size(); i++) {
    blob[i] = static_cast<char>('A' + i % 23);
  }
  ASSERT_TRUE(client.value().putfile("/big", blob).ok());
  auto fetched = client.value().getfile("/big");
  ASSERT_TRUE(fetched.ok()) << fetched.error().to_string();
  EXPECT_EQ(fetched.value(), blob);

  // Interleave control RPCs after streaming: the session state machine is
  // back at the request line.
  EXPECT_TRUE(client.value().stat("/big").ok());
  EXPECT_TRUE(client.value().whoami().ok());
}

TEST_F(ReactorScaleTest, IdleHerdIsReapedByTheTimerWheel) {
  constexpr size_t kHerd = 64;
  start_server(net::Mode::kReactor, /*max_connections=*/0,
               /*idle_timeout=*/200 * kMillisecond);
  std::vector<net::TcpSocket> socks;
  for (size_t i = 0; i < kHerd; i++) {
    auto sock = net::TcpSocket::connect(server_->endpoint(), 5 * kSecond);
    ASSERT_TRUE(sock.ok());
    socks.push_back(std::move(sock.value()));
  }
  ASSERT_TRUE(wait_for_active(kHerd));
  // Nobody sends a request: the timer wheel reaps every session without a
  // single client-side close.
  EXPECT_TRUE(wait_for_active(0)) << "active=" << server_->active_sessions();
  EXPECT_GE(metrics_.counter("chirp.server.idle_reaped")->value(), kHerd);

  // Reaped clients observe EOF, not a hang.
  char ch;
  auto n = socks[0].read_some(&ch, 1, 5 * kSecond);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST_F(ReactorScaleTest, ThreadModeServesTheSameWire) {
  start_server(net::Mode::kThreadPerConnection, /*max_connections=*/0,
               /*idle_timeout=*/200 * kMillisecond);
  auto client = connect_client();
  ASSERT_TRUE(client.ok());
  auth::HostnameClientCredential credential;
  ASSERT_TRUE(client.value().authenticate(credential).ok());

  std::string blob(1024 * 1024, 'x');
  ASSERT_TRUE(client.value().putfile("/same-wire", blob).ok());
  auto fetched = client.value().getfile("/same-wire");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().size(), blob.size());

  // The idle reaper works identically in thread mode (driven by the blocking
  // pump's poll deadline instead of the wheel).
  std::vector<net::TcpSocket> socks;
  for (int i = 0; i < 8; i++) {
    auto sock = net::TcpSocket::connect(server_->endpoint(), 5 * kSecond);
    ASSERT_TRUE(sock.ok());
    socks.push_back(std::move(sock.value()));
  }
  client.value().close();
  EXPECT_TRUE(wait_for_active(0)) << "active=" << server_->active_sessions();
}

TEST_F(ReactorScaleTest, ShutdownUnderLoadIsClean) {
  start_server(net::Mode::kReactor);
  std::vector<net::TcpSocket> socks;
  for (int i = 0; i < 64; i++) {
    auto sock = net::TcpSocket::connect(server_->endpoint(), 5 * kSecond);
    ASSERT_TRUE(sock.ok());
    socks.push_back(std::move(sock.value()));
  }
  ASSERT_TRUE(wait_for_active(64));
  // Stop with the herd still connected: must not hang or crash, and the
  // clients all see EOF.
  server_->stop();
  char ch;
  auto n = socks[0].read_some(&ch, 1, 5 * kSecond);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

}  // namespace
}  // namespace tss::chirp
