#include "fs/cfs.h"

#include <atomic>

#include "util/logging.h"
#include "util/path.h"

namespace tss::fs {

namespace {
constexpr size_t kIoChunk = 1 << 20;  // segment large pread/pwrite requests
}

// An open CFS file. All operations funnel through the owning CfsFs so that
// reconnection can atomically swap the underlying remote descriptor.
class CfsFile final : public File {
 public:
  CfsFile(CfsFs& fs, uint64_t id, CfsFs::OpenState* state)
      : fs_(fs), id_(id), state_(state) {}
  ~CfsFile() override { (void)close(); }

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    char* out = static_cast<char*>(data);
    size_t done = 0;
    while (done < size) {
      size_t chunk = std::min(size - done, kIoChunk);
      TSS_ASSIGN_OR_RETURN(size_t n, rpc_pread(out + done, chunk,
                                               offset + (int64_t)done));
      done += n;
      if (n < chunk) break;  // EOF
    }
    return done;
  }

  Result<size_t> pwrite(const void* data, size_t size,
                        int64_t offset) override {
    const char* in = static_cast<const char*>(data);
    size_t done = 0;
    while (done < size) {
      size_t chunk = std::min(size - done, kIoChunk);
      TSS_ASSIGN_OR_RETURN(size_t n, rpc_pwrite(in + done, chunk,
                                                offset + (int64_t)done));
      if (n == 0) return Error(EIO, "short remote write");
      done += n;
    }
    return done;
  }

  Result<void> fsync() override {
    if (!state_) return Error(EBADF, "file closed");
    return fs_.with_client<void>([this](chirp::Client& c) -> Result<void> {
      if (state_->stale) return Error(ESTALE, "stale file handle");
      return c.fsync(state_->remote_fd);
    });
  }

  Result<StatInfo> fstat() override {
    if (!state_) return Error(EBADF, "file closed");
    return fs_.with_client<StatInfo>(
        [this](chirp::Client& c) -> Result<StatInfo> {
          if (state_->stale) return Error(ESTALE, "stale file handle");
          return c.fstat(state_->remote_fd);
        });
  }

  Result<void> close() override {
    if (!state_) return Result<void>::success();
    CfsFs::OpenState* state = state_;
    state_ = nullptr;
    auto rc = fs_.with_client<void>(
        [state](chirp::Client& c) -> Result<void> {
          if (state->stale) return Result<void>::success();
          return c.close_fd(state->remote_fd);
        });
    {
      std::lock_guard<std::mutex> lock(fs_.mutex_);
      fs_.open_files_.erase(id_);
    }
    delete state;
    // A close that failed because the connection is gone is still a close:
    // the server already dropped the descriptor.
    if (!rc.ok() && CfsFs::is_transport_error(rc.error().code)) {
      return Result<void>::success();
    }
    return rc;
  }

 private:
  Result<size_t> rpc_pread(void* data, size_t size, int64_t offset) {
    if (!state_) return Error(EBADF, "file closed");
    return fs_.with_client<size_t>(
        [this, data, size, offset](chirp::Client& c) -> Result<size_t> {
          if (state_->stale) return Error(ESTALE, "stale file handle");
          return c.pread(state_->remote_fd, data, size, offset);
        });
  }
  Result<size_t> rpc_pwrite(const void* data, size_t size, int64_t offset) {
    if (!state_) return Error(EBADF, "file closed");
    return fs_.with_client<size_t>(
        [this, data, size, offset](chirp::Client& c) -> Result<size_t> {
          if (state_->stale) return Error(ESTALE, "stale file handle");
          return c.pwrite(state_->remote_fd, data, size, offset);
        });
  }

  CfsFs& fs_;
  uint64_t id_;
  CfsFs::OpenState* state_;
};

namespace {
// Distinct default jitter seeds per instance: clients created together must
// not share a jitter stream or they reconnect in lockstep anyway.
uint64_t derive_jitter_seed() {
  static std::atomic<uint64_t> counter{0x6a5d39eae116586dULL};
  return counter.fetch_add(0x9e3779b97f4a7c15ULL) ^
         static_cast<uint64_t>(RealClock::instance().now());
}
}  // namespace

CfsFs::CfsFs(ConnectFn connect, Options options, Clock* clock)
    : connect_(std::move(connect)),
      options_(options),
      clock_(clock ? clock : &RealClock::instance()),
      jitter_rng_(options.jitter_seed ? options.jitter_seed
                                      : derive_jitter_seed()) {
  obs::Registry* metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
  m_reconnect_attempts_ = metrics->counter("cfs.reconnect_attempts");
  m_backoff_sleeps_ = metrics->counter("cfs.backoff_sleeps");
  m_reconnects_ = metrics->counter("cfs.reconnects");
  m_transport_errors_ = metrics->counter("cfs.transport_errors");
  m_stale_handles_ = metrics->counter("cfs.stale_handles");
}

Nanos CfsFs::jittered_locked(Nanos delay) {
  double jitter = options_.retry.jitter;
  if (jitter <= 0) return delay;
  // Factor uniform in [1 - jitter, 1 + jitter].
  double factor = 1.0 + jitter * (2.0 * jitter_rng_.uniform() - 1.0);
  return static_cast<Nanos>(static_cast<double>(delay) * factor);
}

CfsFs::~CfsFs() = default;

bool CfsFs::is_transport_error(int code) {
  return code == EPIPE || code == ECONNRESET || code == ETIMEDOUT ||
         code == ECONNREFUSED || code == EHOSTUNREACH || code == ENETDOWN ||
         code == ENETUNREACH || code == EBADF;
}

bool CfsFs::connected() {
  std::lock_guard<std::mutex> lock(mutex_);
  return client_.has_value() && client_->connected();
}

Result<void> CfsFs::ensure_connected_locked() {
  if (client_.has_value() && client_->connected()) {
    return Result<void>::success();
  }
  return reconnect_locked();
}

Result<void> CfsFs::reconnect_locked() {
  client_.reset();
  Nanos delay = options_.retry.base_delay;
  Error last(EHOSTUNREACH, "never attempted");
  for (int attempt = 0; attempt < options_.retry.max_attempts; attempt++) {
    if (attempt > 0) {
      // "attempting to reconnect to the server with an exponentially
      // increasing delay" (§6), jittered so a pool of clients spreads its
      // reconnect attempts instead of stampeding a restarted server.
      m_backoff_sleeps_->add();
      clock_->sleep_for(jittered_locked(delay));
      delay = std::min(delay * 2, options_.retry.max_delay);
    }
    m_reconnect_attempts_->add();
    auto client = connect_();
    if (!client.ok()) {
      last = std::move(client).take_error();
      continue;
    }
    client_ = std::move(client).value();
    reconnects_++;
    m_reconnects_->add();

    // Re-open every registered file and verify identity via inode: "it uses
    // stat to verify that the file has the same inode number as before. If
    // it does not, ... the client receives a 'stale file handle' error" (§6).
    bool transport_failed = false;
    for (auto& [id, state] : open_files_) {
      if (state->stale) continue;
      auto fd = client_->open(state->path, state->reopen_flags, state->mode);
      if (!fd.ok()) {
        if (is_transport_error(fd.error().code)) {
          transport_failed = true;
          break;
        }
        state->stale = true;  // deleted while we were gone
        m_stale_handles_->add();
        continue;
      }
      auto info = client_->fstat(fd.value());
      if (!info.ok()) {
        if (is_transport_error(info.error().code)) {
          transport_failed = true;
          break;
        }
        state->stale = true;
        m_stale_handles_->add();
        continue;
      }
      if (info.value().inode != state->inode) {
        // Renamed or replaced between open and reconnect.
        (void)client_->close_fd(fd.value());
        state->stale = true;
        m_stale_handles_->add();
        continue;
      }
      state->remote_fd = fd.value();
    }
    if (transport_failed) {
      client_.reset();
      last = Error(ECONNRESET, "connection lost during file re-open");
      continue;
    }
    return Result<void>::success();
  }
  return last;
}

template <typename T>
Result<T> CfsFs::with_client(
    const std::function<Result<T>(chirp::Client&)>& op) {
  std::lock_guard<std::mutex> lock(mutex_);
  // One reconnect incident per call: establish, run, and if the connection
  // died mid-operation, re-establish once and retry.
  for (int round = 0; round < 2; round++) {
    TSS_RETURN_IF_ERROR(ensure_connected_locked());
    auto result = op(*client_);
    if (result.ok() || !is_transport_error(result.code())) {
      return result;
    }
    TSS_DEBUG("cfs") << "transport error (" << result.code()
                     << "), reconnecting";
    m_transport_errors_->add();
    client_.reset();
  }
  return Error(ECONNRESET, "connection lost and retry failed");
}

Result<std::unique_ptr<File>> CfsFs::open(const std::string& p,
                                          const OpenFlags& flags,
                                          uint32_t mode) {
  std::string canonical = path::sanitize(p);
  OpenFlags effective = flags;
  if (options_.sync_writes) effective.sync = true;

  OpenFlags reopen = effective;
  reopen.create = false;
  reopen.truncate = false;
  reopen.exclusive = false;

  struct OpenResult {
    int64_t fd;
    uint64_t inode;
  };
  auto opened = with_client<OpenResult>(
      [&](chirp::Client& c) -> Result<OpenResult> {
        TSS_ASSIGN_OR_RETURN(int64_t fd, c.open(canonical, effective, mode));
        auto info = c.fstat(fd);
        if (!info.ok()) return std::move(info).take_error();
        return OpenResult{fd, info.value().inode};
      });
  if (!opened.ok()) return std::move(opened).take_error();

  auto* state = new OpenState{canonical, reopen, mode, opened.value().fd,
                              opened.value().inode, false};
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_file_id_++;
    open_files_[id] = state;
  }
  return std::unique_ptr<File>(new CfsFile(*this, id, state));
}

Result<StatInfo> CfsFs::stat(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return with_client<StatInfo>(
      [&](chirp::Client& c) { return c.stat(canonical); });
}

Result<void> CfsFs::unlink(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return with_client<void>(
      [&](chirp::Client& c) { return c.unlink(canonical); });
}

Result<void> CfsFs::rename(const std::string& from, const std::string& to) {
  std::string f = path::sanitize(from), t = path::sanitize(to);
  return with_client<void>([&](chirp::Client& c) { return c.rename(f, t); });
}

Result<void> CfsFs::mkdir(const std::string& p, uint32_t mode) {
  std::string canonical = path::sanitize(p);
  return with_client<void>(
      [&](chirp::Client& c) { return c.mkdir(canonical, mode); });
}

Result<void> CfsFs::rmdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return with_client<void>(
      [&](chirp::Client& c) { return c.rmdir(canonical); });
}

Result<void> CfsFs::truncate(const std::string& p, uint64_t size) {
  std::string canonical = path::sanitize(p);
  return with_client<void>(
      [&](chirp::Client& c) { return c.truncate(canonical, size); });
}

Result<std::vector<DirEntry>> CfsFs::readdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return with_client<std::vector<DirEntry>>(
      [&](chirp::Client& c) { return c.getdir(canonical); });
}

Result<std::string> CfsFs::read_file(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return with_client<std::string>(
      [&](chirp::Client& c) { return c.getfile(canonical); });
}

Result<void> CfsFs::write_file(const std::string& p, std::string_view data,
                               uint32_t mode) {
  std::string canonical = path::sanitize(p);
  return with_client<void>(
      [&](chirp::Client& c) { return c.putfile(canonical, data, mode); });
}

Result<std::string> CfsFs::getacl(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return with_client<std::string>(
      [&](chirp::Client& c) { return c.getacl(canonical); });
}

Result<void> CfsFs::setacl(const std::string& p, const std::string& subject,
                           const std::string& rights) {
  std::string canonical = path::sanitize(p);
  return with_client<void>(
      [&](chirp::Client& c) { return c.setacl(canonical, subject, rights); });
}

Result<std::string> CfsFs::whoami() {
  return with_client<std::string>([](chirp::Client& c) { return c.whoami(); });
}

Result<std::pair<uint64_t, uint64_t>> CfsFs::statfs() {
  return with_client<std::pair<uint64_t, uint64_t>>(
      [](chirp::Client& c) { return c.statfs(); });
}

CfsFs::ConnectFn chirp_connector(
    net::Endpoint server,
    std::vector<std::shared_ptr<auth::ClientCredential>> credentials,
    chirp::Client::Options client_options) {
  // A cooperative mount follows server deflections to sibling caches; the
  // dialer connects-and-authenticates with the same credentials, but with
  // cooperative *off* so a misbehaving sibling cannot chain deflections.
  if (client_options.cooperative && !client_options.redirect_dialer) {
    auto peer_options = client_options;
    peer_options.cooperative = false;
    client_options.redirect_dialer =
        [credentials, peer_options](
            const net::Endpoint& peer) -> Result<chirp::Client> {
      TSS_ASSIGN_OR_RETURN(chirp::Client client,
                           chirp::Client::connect(peer, peer_options));
      std::vector<auth::ClientCredential*> raw;
      raw.reserve(credentials.size());
      for (const auto& c : credentials) raw.push_back(c.get());
      auto subject = client.authenticate_any(raw);
      if (!subject.ok()) return std::move(subject).take_error();
      return client;
    };
  }
  return [server, credentials = std::move(credentials),
          options = std::move(client_options)]() -> Result<chirp::Client> {
    TSS_ASSIGN_OR_RETURN(chirp::Client client,
                         chirp::Client::connect(server, options));
    std::vector<auth::ClientCredential*> raw;
    raw.reserve(credentials.size());
    for (const auto& c : credentials) raw.push_back(c.get());
    auto subject = client.authenticate_any(raw);
    if (!subject.ok()) return std::move(subject).take_error();
    return client;
  };
}

CfsFs::ConnectFn chirp_connector(
    net::Endpoint server,
    std::vector<std::shared_ptr<auth::ClientCredential>> credentials,
    Nanos timeout) {
  chirp::Client::Options options;
  options.timeout = timeout;
  return chirp_connector(std::move(server), std::move(credentials),
                         std::move(options));
}

}  // namespace tss::fs
