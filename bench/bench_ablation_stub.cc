// Ablation — the stub-file indirection cost, measured on real sockets.
//
// Figure 4 shows (on the simulated network) that DSFS metadata operations
// pay roughly twice the CFS latency because each must fetch the stub from
// the directory server before touching the data server. This harness
// measures the same effect end to end on live TCP servers over loopback:
// the absolute numbers are microseconds instead of the paper's hundreds of
// microseconds, but the ratio — the protocol's extra round trips — is the
// same real code path.
#include <unistd.h>

#include <chrono>
#include <filesystem>

#include "auth/hostname.h"
#include "bench/common.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/cfs.h"
#include "fs/dist.h"
#include "fs/local.h"

namespace {

using namespace tss;

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<chirp::Server> start_server(const std::string& root) {
  chirp::ServerOptions options;
  options.owner = "unix:bench";
  options.root_acl =
      acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  auto server = std::make_unique<chirp::Server>(
      options, std::make_unique<chirp::PosixBackend>(root), std::move(auth));
  if (!server->start().ok()) return nullptr;
  return server;
}

std::unique_ptr<fs::CfsFs> mount_cfs(const chirp::Server& server) {
  auto credential = std::make_shared<auth::HostnameClientCredential>();
  return std::make_unique<fs::CfsFs>(
      fs::chirp_connector(server.endpoint(), {credential}));
}

}  // namespace

int main() {
  using namespace tss::bench;

  std::string base = "/tmp/tss-ablation-stub-" + std::to_string(::getpid());
  std::filesystem::create_directories(base + "/dir");
  std::filesystem::create_directories(base + "/data");

  auto dir_server = start_server(base + "/dir");
  auto data_server = start_server(base + "/data");
  if (!dir_server || !data_server) {
    std::printf("failed to start servers\n");
    return 1;
  }

  auto dir_mount = mount_cfs(*dir_server);
  auto data_mount = mount_cfs(*data_server);

  // CFS file, directly on the data server.
  if (!data_mount->write_file("/direct.dat", std::string(4096, 'x')).ok()) {
    std::printf("setup failed\n");
    return 1;
  }
  // DSFS file: stub on the directory server, data on the data server.
  std::map<std::string, fs::FileSystem*> servers{{"data", data_mount.get()}};
  fs::DistFs::Options dist_options;
  dist_options.volume = "/vol";
  dist_options.name_seed = 1;
  fs::DistFs dsfs(dir_mount.get(), servers, dist_options);
  if (!dsfs.format().ok() ||
      !dsfs.write_file("/indirect.dat", std::string(4096, 'x')).ok()) {
    std::printf("setup failed\n");
    return 1;
  }

  constexpr int kIterations = 2000;
  auto measure = [&](auto&& op) {
    // Warmup, then measure.
    for (int i = 0; i < 100; i++) op();
    int64_t t0 = now_ns();
    for (int i = 0; i < kIterations; i++) op();
    return double(now_ns() - t0) / kIterations;
  };

  double cfs_stat =
      measure([&] { (void)data_mount->stat("/direct.dat"); });
  double dsfs_stat = measure([&] { (void)dsfs.stat("/indirect.dat"); });
  double cfs_open = measure([&] {
    auto f = data_mount->open("/direct.dat",
                              fs::OpenFlags::parse("r").value(), 0);
    if (f.ok()) (void)f.value()->close();
  });
  double dsfs_open = measure([&] {
    auto f = dsfs.open("/indirect.dat", fs::OpenFlags::parse("r").value(), 0);
    if (f.ok()) (void)f.value()->close();
  });
  double cfs_read = measure([&] { (void)data_mount->read_file("/direct.dat"); });
  double dsfs_read = measure([&] { (void)dsfs.read_file("/indirect.dat"); });

  print_header(
      "Ablation: DSFS stub indirection vs direct CFS access (real loopback "
      "TCP)",
      "Live Chirp servers; the DSFS stub lookup adds directory-server round\n"
      "trips to metadata operations but none to data access (Fig 4's 2x\n"
      "metadata effect, measured on real sockets).");
  print_row({"operation", "cfs", "dsfs", "dsfs/cfs"});
  print_row({"stat", fmt_us(cfs_stat), fmt_us(dsfs_stat),
             fmt_double(dsfs_stat / cfs_stat, 2) + "x"});
  print_row({"open/close", fmt_us(cfs_open), fmt_us(dsfs_open),
             fmt_double(dsfs_open / cfs_open, 2) + "x"});
  print_row({"read 4kb file", fmt_us(cfs_read), fmt_us(dsfs_read),
             fmt_double(dsfs_read / cfs_read, 2) + "x"});

  dir_server->stop();
  data_server->stop();
  std::filesystem::remove_all(base);
  return 0;
}
