#include "nfs/client.h"

#include "util/path.h"
#include "util/strings.h"

namespace tss::nfs {

Result<Client> Client::connect(const net::Endpoint& server, Options options) {
  TSS_ASSIGN_OR_RETURN(net::TcpSocket sock,
                       net::TcpSocket::connect(server, options.timeout));
  Client client(net::LineStream(std::move(sock), options.timeout));
  TSS_ASSIGN_OR_RETURN(client.root_, client.mount());
  return client;
}

Result<std::vector<std::string>> Client::roundtrip(const std::string& line,
                                                   const void* payload,
                                                   size_t payload_size) {
  stream_.write_line(line);
  if (payload && payload_size > 0) stream_.write_blob(payload, payload_size);
  TSS_RETURN_IF_ERROR(stream_.flush());
  TSS_ASSIGN_OR_RETURN(std::string response, stream_.read_line());
  auto words = split_words(response);
  if (words.empty()) return Error(EPROTO, "empty nfs response");
  if (words[0] == "ok") {
    words.erase(words.begin());
    return words;
  }
  if (words[0] == "error" && words.size() >= 2) {
    auto code = parse_i64(words[1]);
    if (!code || *code == 0) return Error(EPROTO, "bad nfs error code");
    return Error(static_cast<int>(*code),
                 words.size() > 2 ? url_decode(words[2]) : "nfs error");
  }
  return Error(EPROTO, "bad nfs response: " + response);
}

Result<FileHandle> Client::mount() {
  TSS_ASSIGN_OR_RETURN(auto args, roundtrip("mount"));
  if (args.empty()) return Error(EPROTO, "short mount reply");
  auto fh = parse_u64(args[0]);
  if (!fh) return Error(EPROTO, "bad mount filehandle");
  return *fh;
}

Result<std::pair<FileHandle, chirp::StatInfo>> Client::lookup(
    FileHandle dir, const std::string& name) {
  TSS_ASSIGN_OR_RETURN(
      auto args, roundtrip("lookup " + std::to_string(dir) + " " +
                           url_encode(name)));
  if (args.empty()) return Error(EPROTO, "short lookup reply");
  auto fh = parse_u64(args[0]);
  if (!fh) return Error(EPROTO, "bad lookup filehandle");
  TSS_ASSIGN_OR_RETURN(chirp::StatInfo info, chirp::StatInfo::parse(args, 1));
  return std::make_pair(*fh, info);
}

Result<chirp::StatInfo> Client::getattr(FileHandle fh) {
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("getattr " + std::to_string(fh)));
  return chirp::StatInfo::parse(args, 0);
}

Result<size_t> Client::read_rpc(FileHandle fh, void* data, size_t size,
                                int64_t offset) {
  if (size > kMaxTransfer) return Error(EMSGSIZE, "read exceeds nfs maximum");
  TSS_ASSIGN_OR_RETURN(
      auto args, roundtrip("read " + std::to_string(fh) + " " +
                           std::to_string(offset) + " " +
                           std::to_string(size)));
  if (args.empty()) return Error(EPROTO, "short read reply");
  auto n = parse_u64(args[0]);
  if (!n || *n > size) return Error(EPROTO, "bad read length");
  if (*n > 0) {
    TSS_RETURN_IF_ERROR(stream_.read_blob(data, static_cast<size_t>(*n)));
  }
  return static_cast<size_t>(*n);
}

Result<size_t> Client::write_rpc(FileHandle fh, const void* data, size_t size,
                                 int64_t offset) {
  if (size > kMaxTransfer) {
    return Error(EMSGSIZE, "write exceeds nfs maximum");
  }
  TSS_ASSIGN_OR_RETURN(
      auto args, roundtrip("write " + std::to_string(fh) + " " +
                               std::to_string(offset) + " " +
                               std::to_string(size),
                           data, size));
  if (args.empty()) return Error(EPROTO, "short write reply");
  auto n = parse_u64(args[0]);
  if (!n) return Error(EPROTO, "bad write length");
  return static_cast<size_t>(*n);
}

Result<std::pair<FileHandle, chirp::StatInfo>> Client::create(
    FileHandle dir, const std::string& name, uint32_t mode) {
  TSS_ASSIGN_OR_RETURN(
      auto args, roundtrip("create " + std::to_string(dir) + " " +
                           url_encode(name) + " " + std::to_string(mode)));
  if (args.empty()) return Error(EPROTO, "short create reply");
  auto fh = parse_u64(args[0]);
  if (!fh) return Error(EPROTO, "bad create filehandle");
  TSS_ASSIGN_OR_RETURN(chirp::StatInfo info, chirp::StatInfo::parse(args, 1));
  return std::make_pair(*fh, info);
}

Result<void> Client::remove(FileHandle dir, const std::string& name) {
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("remove " + std::to_string(dir) + " " +
                                 url_encode(name)));
  (void)args;
  return Result<void>::success();
}

Result<void> Client::rename(FileHandle from_dir, const std::string& from,
                            FileHandle to_dir, const std::string& to) {
  TSS_ASSIGN_OR_RETURN(
      auto args, roundtrip("rename " + std::to_string(from_dir) + " " +
                           url_encode(from) + " " + std::to_string(to_dir) +
                           " " + url_encode(to)));
  (void)args;
  return Result<void>::success();
}

Result<FileHandle> Client::mkdir(FileHandle dir, const std::string& name,
                                 uint32_t mode) {
  TSS_ASSIGN_OR_RETURN(
      auto args, roundtrip("mkdir " + std::to_string(dir) + " " +
                           url_encode(name) + " " + std::to_string(mode)));
  if (args.empty()) return Error(EPROTO, "short mkdir reply");
  auto fh = parse_u64(args[0]);
  if (!fh) return Error(EPROTO, "bad mkdir filehandle");
  return *fh;
}

Result<void> Client::rmdir(FileHandle dir, const std::string& name) {
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("rmdir " + std::to_string(dir) + " " +
                                 url_encode(name)));
  (void)args;
  return Result<void>::success();
}

Result<std::vector<std::string>> Client::readdir(FileHandle fh) {
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("readdir " + std::to_string(fh)));
  if (args.empty()) return Error(EPROTO, "short readdir reply");
  auto count = parse_u64(args[0]);
  if (!count) return Error(EPROTO, "bad readdir count");
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; i++) {
    TSS_ASSIGN_OR_RETURN(std::string line, stream_.read_line());
    names.push_back(url_decode(line));
  }
  return names;
}

Result<void> Client::truncate(FileHandle fh, uint64_t size) {
  TSS_ASSIGN_OR_RETURN(auto args,
                       roundtrip("truncate " + std::to_string(fh) + " " +
                                 std::to_string(size)));
  (void)args;
  return Result<void>::success();
}

Result<FileHandle> Client::resolve(const std::string& p) {
  FileHandle fh = root_;
  for (const std::string& component : path::components(path::sanitize(p))) {
    TSS_ASSIGN_OR_RETURN(auto next, lookup(fh, component));
    fh = next.first;
  }
  return fh;
}

Result<chirp::StatInfo> Client::stat(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(FileHandle fh, resolve(p));
  return getattr(fh);
}

Result<FileHandle> Client::open_file(const std::string& p,
                                     bool create_if_absent, uint32_t mode) {
  std::string canonical = path::sanitize(p);
  std::string dir = path::dirname(canonical);
  std::string name = path::basename(canonical);
  TSS_ASSIGN_OR_RETURN(FileHandle dir_fh, resolve(dir));
  auto existing = lookup(dir_fh, name);
  if (existing.ok()) return existing.value().first;
  if (!create_if_absent) return std::move(existing).take_error();
  TSS_ASSIGN_OR_RETURN(auto created, create(dir_fh, name, mode));
  return created.first;
}

Result<size_t> Client::pread(FileHandle fh, void* data, size_t size,
                             int64_t offset) {
  char* out = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    size_t chunk = std::min<size_t>(size - done, kMaxTransfer);
    TSS_ASSIGN_OR_RETURN(size_t n,
                         read_rpc(fh, out + done, chunk,
                                  offset + static_cast<int64_t>(done)));
    done += n;
    if (n < chunk) break;  // EOF
  }
  return done;
}

Result<size_t> Client::pwrite(FileHandle fh, const void* data, size_t size,
                              int64_t offset) {
  const char* in = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    size_t chunk = std::min<size_t>(size - done, kMaxTransfer);
    TSS_ASSIGN_OR_RETURN(size_t n,
                         write_rpc(fh, in + done, chunk,
                                   offset + static_cast<int64_t>(done)));
    done += n;
    if (n == 0) break;
  }
  return done;
}

}  // namespace tss::nfs
