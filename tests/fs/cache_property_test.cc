// CachedFs consistency properties: seed-deterministic randomized
// interleavings of reads, writes, truncates, renames, unlinks, explicit
// invalidations, and lease expirations through a CachedFs must be
// byte-identical to a plain LocalFs oracle — in-memory and store-backed —
// and a stale lease must never serve bytes newer than their invalidation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fs/cached.h"
#include "fs/local.h"
#include "util/rand.h"

namespace tss::fs {
namespace {

class CachePropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/cacheprop_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string make_root(const std::string& name) {
    std::string root = base_ + "/" + name;
    std::filesystem::create_directories(root);
    return root;
  }

  std::string base_;
  static inline int counter_ = 0;
};

std::string random_payload(Rng& rng, size_t max_len) {
  size_t len = 1 + static_cast<size_t>(rng.below(max_len));
  std::string payload;
  payload.reserve(len);
  for (size_t i = 0; i < len; i++) {
    payload.push_back(static_cast<char>('a' + rng.below(26)));
  }
  return payload;
}

// One randomized round: a dense interleaving applied to the cache and the
// oracle, compared op by op. All mutations flow *through* the cache (that is
// the consistency contract CachedFs makes; external writers are the lease
// tests' subject below).
void run_round(const std::string& cache_base, const std::string& oracle_base,
               uint64_t seed, bool store_backed, uint64_t capacity) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               (store_backed ? " store" : " memory") +
               " capacity=" + std::to_string(capacity));
  LocalFs oracle(oracle_base);
  LocalFs source(cache_base + "/src");
  std::filesystem::create_directories(cache_base + "/src");
  std::unique_ptr<LocalFs> store;
  if (store_backed) {
    std::filesystem::create_directories(cache_base + "/store");
    store = std::make_unique<LocalFs>(cache_base + "/store");
  }
  VirtualClock clock;
  obs::Registry registry;
  CachedFs::Options options;
  options.capacity_bytes = capacity;
  options.lease_ttl = 10 * kSecond;
  options.store = store.get();
  options.clock = &clock;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  const std::vector<std::string> paths = {"/f0", "/f1", "/f2", "/f3"};
  Rng rng(seed);
  for (int op = 0; op < 120; op++) {
    const std::string& path = paths[rng.below(paths.size())];
    switch (rng.below(8)) {
      case 0: {  // whole-file write
        std::string payload = random_payload(rng, 4000);
        auto cw = cache.write_file(path, payload);
        auto ow = oracle.write_file(path, payload);
        ASSERT_EQ(cw.ok(), ow.ok());
        break;
      }
      case 1: {  // write through an open handle
        auto cf = cache.open(path, OpenFlags::parse("rwc").value());
        auto of = oracle.open(path, OpenFlags::parse("rwc").value());
        ASSERT_EQ(cf.ok(), of.ok());
        if (!cf.ok()) break;
        std::string payload = random_payload(rng, 800);
        uint64_t offset = rng.below(512);
        auto cn = cf.value()->pwrite(payload.data(), payload.size(),
                                     static_cast<int64_t>(offset));
        auto on = of.value()->pwrite(payload.data(), payload.size(),
                                     static_cast<int64_t>(offset));
        ASSERT_TRUE(cn.ok()) << cn.error().to_string();
        ASSERT_TRUE(on.ok());
        ASSERT_EQ(cn.value(), on.value());
        ASSERT_TRUE(cf.value()->close().ok());
        ASSERT_TRUE(of.value()->close().ok());
        break;
      }
      case 2: {  // whole-file read
        auto cr = cache.read_file(path);
        auto orr = oracle.read_file(path);
        ASSERT_EQ(cr.ok(), orr.ok()) << path;
        if (cr.ok()) {
          ASSERT_EQ(cr.value(), orr.value()) << path;
        }
        break;
      }
      case 3: {  // ranged reads through a read-only open
        auto cf = cache.open(path, OpenFlags::parse("r").value());
        auto of = oracle.open(path, OpenFlags::parse("r").value());
        ASSERT_EQ(cf.ok(), of.ok()) << path;
        if (!cf.ok()) break;
        for (int r = 0; r < 3; r++) {
          uint64_t offset = rng.below(5000);
          size_t len = 1 + static_cast<size_t>(rng.below(700));
          std::vector<char> got(len, '\0'), want(len, '\1');
          auto cn = cf.value()->pread(got.data(), len,
                                      static_cast<int64_t>(offset));
          auto on = of.value()->pread(want.data(), len,
                                      static_cast<int64_t>(offset));
          ASSERT_TRUE(cn.ok()) << cn.error().to_string();
          ASSERT_TRUE(on.ok());
          ASSERT_EQ(cn.value(), on.value()) << path << " off=" << offset;
          ASSERT_EQ(0, std::memcmp(got.data(), want.data(), cn.value()));
        }
        ASSERT_TRUE(cf.value()->close().ok());
        ASSERT_TRUE(of.value()->close().ok());
        break;
      }
      case 4: {  // truncate
        uint64_t size = rng.below(2000);
        auto ct = cache.truncate(path, size);
        auto ot = oracle.truncate(path, size);
        ASSERT_EQ(ct.ok(), ot.ok());
        break;
      }
      case 5: {  // rename to another slot
        const std::string& to = paths[rng.below(paths.size())];
        if (to == path) break;
        auto cr = cache.rename(path, to);
        auto orr = oracle.rename(path, to);
        ASSERT_EQ(cr.ok(), orr.ok());
        break;
      }
      case 6: {  // unlink or explicit invalidation
        if (rng.below(2) == 0) {
          auto cu = cache.unlink(path);
          auto ou = oracle.unlink(path);
          ASSERT_EQ(cu.ok(), ou.ok());
        } else {
          cache.invalidate(path);  // no oracle effect: purely local state
        }
        break;
      }
      default: {  // stat comparison and the occasional lease expiry
        if (rng.below(3) == 0) clock.advance(11 * kSecond);
        auto cs = cache.stat(path);
        auto os = oracle.stat(path);
        ASSERT_EQ(cs.ok(), os.ok()) << path;
        if (cs.ok()) {
          ASSERT_EQ(cs.value().size, os.value().size) << path;
        }
        break;
      }
    }
  }

  // Final sweep: every slot byte-identical.
  for (const std::string& path : paths) {
    auto cr = cache.read_file(path);
    auto orr = oracle.read_file(path);
    ASSERT_EQ(cr.ok(), orr.ok()) << path;
    if (cr.ok()) {
      EXPECT_EQ(cr.value(), orr.value()) << path;
    }
  }
  // The cache actually cached: the workload must have produced both hits
  // and misses, or the round proved nothing.
  EXPECT_GT(registry.counter("fs.cache.hit")->value() +
                registry.counter("fs.cache.miss")->value(),
            0u);
  EXPECT_LE(cache.cached_bytes(), capacity);
}

TEST_F(CachePropertyTest, RandomInterleavingsMatchLocalOracleInMemory) {
  Rng rng(20260808);
  for (int round = 0; round < 6; round++) {
    std::string tag = "mem" + std::to_string(round);
    run_round(make_root(tag + "_c"), make_root(tag + "_o"), rng.next(),
              /*store_backed=*/false, /*capacity=*/1 << 20);
  }
}

TEST_F(CachePropertyTest, RandomInterleavingsMatchLocalOracleStoreBacked) {
  Rng rng(20260809);
  for (int round = 0; round < 6; round++) {
    std::string tag = "store" + std::to_string(round);
    run_round(make_root(tag + "_c"), make_root(tag + "_o"), rng.next(),
              /*store_backed=*/true, /*capacity=*/1 << 20);
  }
}

TEST_F(CachePropertyTest, TinyCapacityForcesEvictionYetStaysConsistent) {
  Rng rng(20260810);
  for (int round = 0; round < 3; round++) {
    std::string tag = "tiny" + std::to_string(round);
    // Capacity fits roughly one entry, so slots continually evict each other.
    run_round(make_root(tag + "_c"), make_root(tag + "_o"), rng.next(),
              /*store_backed=*/round % 2 == 0, /*capacity=*/4096);
  }
}

// The invalidation half of the contract, directly: a reader holding an open
// cached handle across a mutation must observe the *new* bytes — a stale
// lease can never serve bytes newer than their invalidation.
TEST_F(CachePropertyTest, HeldHandleNeverServesInvalidatedBytes) {
  LocalFs source(make_root("src"));
  VirtualClock clock;
  obs::Registry registry;
  CachedFs::Options options;
  options.clock = &clock;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  ASSERT_TRUE(cache.write_file("/doc", "version-one").ok());
  auto file = cache.open("/doc", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());
  char buf[64] = {};
  auto n = file.value()->pread(buf, sizeof buf, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "version-one");

  // Mutate through the cache while the handle is held.
  ASSERT_TRUE(cache.write_file("/doc", "version-TWO!").ok());
  n = file.value()->pread(buf, sizeof buf, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, n.value()), "version-TWO!");
  ASSERT_TRUE(file.value()->close().ok());
  EXPECT_GE(registry.counter("fs.cache.invalidate")->value(), 1u);
}

// Lease semantics against an *external* writer (one that bypasses the
// cache): within the lease the cache may serve the cached bytes; past it,
// the next open revalidates against the source and must refetch when the
// file's identity changed.
TEST_F(CachePropertyTest, ExpiredLeaseRevalidatesAgainstTheSource) {
  LocalFs source(make_root("src"));
  VirtualClock clock;
  obs::Registry registry;
  CachedFs::Options options;
  options.lease_ttl = 5 * kSecond;
  options.clock = &clock;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  ASSERT_TRUE(source.write_file("/doc", "cached contents").ok());
  EXPECT_EQ(cache.read_file("/doc").value(), "cached contents");
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 1u);

  // External mutation the cache cannot see; a different size so the stat
  // revalidation detects it deterministically.
  ASSERT_TRUE(source.write_file("/doc", "rewritten behind the cache").ok());
  // Within the lease: served from cache, zero source traffic.
  EXPECT_EQ(cache.read_file("/doc").value(), "cached contents");
  EXPECT_EQ(registry.counter("fs.cache.hit")->value(), 1u);

  // Past the lease: stat identity changed -> refetch.
  clock.advance(6 * kSecond);
  EXPECT_EQ(cache.read_file("/doc").value(), "rewritten behind the cache");
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 2u);
}

// An unchanged file renews its lease from one stat instead of refetching.
TEST_F(CachePropertyTest, ExpiredLeaseWithUnchangedIdentityRenews) {
  LocalFs source(make_root("src"));
  VirtualClock clock;
  obs::Registry registry;
  CachedFs::Options options;
  options.lease_ttl = 5 * kSecond;
  options.clock = &clock;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  ASSERT_TRUE(source.write_file("/doc", "steady contents").ok());
  EXPECT_EQ(cache.read_file("/doc").value(), "steady contents");
  clock.advance(6 * kSecond);
  EXPECT_EQ(cache.read_file("/doc").value(), "steady contents");
  EXPECT_EQ(registry.counter("fs.cache.miss")->value(), 1u);
  EXPECT_EQ(registry.counter("fs.cache.hit")->value(), 1u);
}

// Oversize files are served but never cached (they would evict everything).
TEST_F(CachePropertyTest, OversizeFilesBypassTheCache) {
  LocalFs source(make_root("src"));
  obs::Registry registry;
  CachedFs::Options options;
  options.max_file_bytes = 16;
  options.metrics = &registry;
  CachedFs cache(&source, options);

  std::string big(64, 'x');
  ASSERT_TRUE(source.write_file("/big", big).ok());
  EXPECT_EQ(cache.read_file("/big").value(), big);
  EXPECT_EQ(cache.read_file("/big").value(), big);
  EXPECT_EQ(registry.counter("fs.cache.bypass")->value(), 2u);
  EXPECT_EQ(registry.counter("fs.cache.hit")->value(), 0u);
  EXPECT_EQ(cache.cached_bytes(), 0u);
}

}  // namespace
}  // namespace tss::fs
