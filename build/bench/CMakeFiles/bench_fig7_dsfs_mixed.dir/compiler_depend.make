# Empty compiler generated dependencies file for bench_fig7_dsfs_mixed.
# This may be replaced when dependencies are built.
