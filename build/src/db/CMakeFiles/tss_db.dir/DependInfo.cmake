
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/client.cc" "src/db/CMakeFiles/tss_db.dir/client.cc.o" "gcc" "src/db/CMakeFiles/tss_db.dir/client.cc.o.d"
  "/root/repo/src/db/server.cc" "src/db/CMakeFiles/tss_db.dir/server.cc.o" "gcc" "src/db/CMakeFiles/tss_db.dir/server.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/tss_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/tss_db.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tss_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
