// Figure 7 — "DSFS Scalability: Mixed-Bound".
//
// Paper setup: 1280 files of 1 MB (1280 MB total) in a DSFS with 1-8
// servers, 512 MB of buffer cache per server. Expected shape: with one or
// two servers the per-server share of the dataset exceeds the cache and the
// system runs near disk speeds; with three or more servers all data fits in
// aggregate memory and the system is bound only by the switch.
#include "bench/common.h"

int main() {
  using namespace tss::bench;
  print_header(
      "Figure 7: DSFS scalability, mixed-bound (1280 x 1 MB, simulated "
      "cluster)",
      "16 clients read random whole files; 512 MB cache per server.\n"
      "Paper shape: disk-bound below 3 servers, switch-bound at >=3.");

  print_row({"servers", "MB/s", "sim seconds", "cache hit %"});
  for (int servers = 1; servers <= 8; servers++) {
    DsfsScalingParams params;
    params.num_servers = servers;
    params.num_files = 1280;
    params.file_bytes = 1 << 20;
    // Enough reads to reach cache steady state in every configuration.
    params.reads_per_client = 200;
    DsfsScalingResult r = run_dsfs_scaling(params);
    double hit_pct =
        100.0 * static_cast<double>(r.cache_hits) /
        static_cast<double>(std::max<uint64_t>(1, r.cache_hits + r.cache_misses));
    print_row({std::to_string(servers), fmt_double(r.mb_per_sec),
               fmt_double(r.seconds, 2), fmt_double(hit_pct)});
  }
  return 0;
}
