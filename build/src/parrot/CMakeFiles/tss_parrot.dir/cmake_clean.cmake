file(REMOVE_RECURSE
  "CMakeFiles/tss_parrot.dir/tracer.cc.o"
  "CMakeFiles/tss_parrot.dir/tracer.cc.o.d"
  "libtss_parrot.a"
  "libtss_parrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_parrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
