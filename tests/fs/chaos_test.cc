// Seeded chaos soak: the whole stack under randomized fault schedules.
//
// Three scenarios, each run for several fixed seeds so a failure is a
// replayable regression, not a flake:
//   * DistFs over replicated flaky members — injected errnos, injected
//     latency, and a full data-server death and revival.
//   * CfsFs against a real Chirp server — mid-RPC transport severs and a
//     server death/restart.
//   * Pool discovery with a catalog entry whose server has died.
//
// The invariants are the paper's §6 claims: no hangs, every failure is a
// typed error (never a crash), the directory tree stays navigable when a
// data server dies, and replicas reconverge after repair().
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adapter/pool.h"
#include "auth/hostname.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/cfs.h"
#include "fs/dist.h"
#include "fs/faulty.h"
#include "fs/local.h"
#include "fs/replicated.h"

namespace tss {
namespace {

class ChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/chaos_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  uint64_t seed() const { return GetParam(); }

  std::string base_;
  static inline int counter_ = 0;
};

// --- Scenario 1: DistFs over replicated flaky members -----------------------

// Three "data servers", each a 2-way ReplicatedFs whose members are
// FaultyFs-wrapped local trees. Server 0 dies completely mid-storm and is
// revived; server 1 has a flaky member and a slow member; server 2 has a
// flaky member. In every set at least one member never *fails* (it may be
// slow), which is what makes the content invariant checkable: a read that
// succeeds must return the last successfully-written bytes.
struct DistStorm {
  static constexpr int kIterations = 200;
  static constexpr int kDeathAt = 60;
  static constexpr int kRevivalAt = 140;

  explicit DistStorm(uint64_t seed, const std::string& root) {
    for (int s = 0; s < 3; s++) {
      std::vector<fs::FileSystem*> members;
      for (int m = 0; m < 2; m++) {
        std::string dir =
            root + "/s" + std::to_string(s) + "m" + std::to_string(m);
        std::filesystem::create_directories(dir);
        locals.push_back(std::make_unique<fs::LocalFs>(dir));
        schedules.push_back(std::make_unique<fs::FaultSchedule>(
            seed * 10 + s * 2 + m, &clock));
        faulty.push_back(std::make_unique<fs::FaultyFs>(
            locals.back().get(), schedules.back().get()));
        members.push_back(faulty.back().get());
      }
      fs::ReplicatedFs::Options opts;
      opts.failure_threshold = 3;
      replicas.push_back(
          std::make_unique<fs::ReplicatedFs>(std::move(members), opts));
    }
    // The flaky and slow members. Members 2 (= s1m0) and 4 (= s2m0) inject
    // availability errnos with some probability; member 3 (= s1m1) answers
    // slowly through the virtual clock. Members 1 and 5 stay clean.
    schedules[2]->fail_with_probability(0.08, ECONNRESET);
    schedules[4]->fail_with_probability(0.05, EIO);
    schedules[3]->add_latency(5 * kMillisecond);

    std::string meta = root + "/meta";
    std::filesystem::create_directories(meta);
    metadata = std::make_unique<fs::LocalFs>(meta);

    fs::DistFs::Options dopts;
    dopts.volume = "/vol";
    dopts.client_id = "chaos";
    dopts.name_seed = seed;
    dist = std::make_unique<fs::DistFs>(
        metadata.get(),
        std::map<std::string, fs::FileSystem*>{{"srv0", replicas[0].get()},
                                               {"srv1", replicas[1].get()},
                                               {"srv2", replicas[2].get()}},
        dopts);
  }

  size_t set_for(const std::string& server) {
    if (server == "srv0") return 0;
    if (server == "srv1") return 1;
    return 2;
  }

  VirtualClock clock;
  std::vector<std::unique_ptr<fs::LocalFs>> locals;
  std::vector<std::unique_ptr<fs::FaultSchedule>> schedules;
  std::vector<std::unique_ptr<fs::FaultyFs>> faulty;
  std::vector<std::unique_ptr<fs::ReplicatedFs>> replicas;
  std::unique_ptr<fs::LocalFs> metadata;
  std::unique_ptr<fs::DistFs> dist;
};

struct StormOutcome {
  std::string trace;  // one entry per op: kind(path)=errno
  std::map<std::string, std::string> model;  // expected content of clean files
  std::set<std::string> dirty;  // files whose last mutation failed
};

StormOutcome run_dist_storm(uint64_t seed, const std::string& root) {
  DistStorm storm(seed, root);
  StormOutcome out;
  EXPECT_TRUE(storm.dist->format().ok());
  // NB: this helper returns a value, so it must use EXPECT_* (ASSERT_*
  // requires a void function).

  Rng workload(seed ^ 0x5eedf00dULL);
  auto path_for = [&](uint64_t n) { return "/f" + std::to_string(n % 8); };
  auto record = [&](const char* kind, const std::string& path, int code) {
    out.trace += std::string(kind) + "(" + path + ")=" + std::to_string(code) +
                 ";";
  };

  for (int i = 0; i < DistStorm::kIterations; i++) {
    if (i == DistStorm::kDeathAt) {
      // Server 0 dies: both members refuse everything.
      storm.schedules[0]->fail_always(EHOSTUNREACH);
      storm.schedules[1]->fail_always(EHOSTUNREACH);
    }
    if (i == DistStorm::kRevivalAt) {
      storm.schedules[0]->clear();
      storm.schedules[1]->clear();
    }

    std::string path = path_for(workload.next());
    switch (workload.below(5)) {
      case 0: {  // write
        std::string data = "seed" + std::to_string(seed) + "-i" +
                           std::to_string(i);
        auto rc = storm.dist->write_file(path, data);
        record("w", path, rc.ok() ? 0 : rc.error().code);
        if (rc.ok()) {
          out.model[path] = data;
          out.dirty.erase(path);
        } else {
          EXPECT_NE(rc.error().code, 0) << "untyped error";
          out.model.erase(path);
          out.dirty.insert(path);
        }
        break;
      }
      case 1: {  // read — a success must return the last acked content
        auto rc = storm.dist->read_file(path);
        record("r", path, rc.ok() ? 0 : rc.error().code);
        if (rc.ok() && out.model.count(path)) {
          EXPECT_EQ(rc.value(), out.model[path]) << "stale read of " << path;
        }
        if (!rc.ok()) { EXPECT_NE(rc.error().code, 0); }
        break;
      }
      case 2: {  // stat
        auto rc = storm.dist->stat(path);
        record("s", path, rc.ok() ? 0 : rc.error().code);
        if (!rc.ok()) { EXPECT_NE(rc.error().code, 0); }
        break;
      }
      case 3: {  // unlink
        auto rc = storm.dist->unlink(path);
        record("u", path, rc.ok() ? 0 : rc.error().code);
        if (rc.ok()) {
          out.model.erase(path);
          out.dirty.erase(path);
        } else {
          EXPECT_NE(rc.error().code, 0);
          if (out.model.count(path) || out.dirty.count(path)) {
            out.model.erase(path);
            out.dirty.insert(path);
          }
        }
        break;
      }
      case 4: {  // name-only ops never touch a data server (§5)
        std::string dir = "/d" + std::to_string(workload.next() % 4);
        auto mk = storm.dist->mkdir(dir);
        EXPECT_TRUE(mk.ok() || mk.error().code == EEXIST)
            << mk.error().to_string();
        record("m", dir, mk.ok() ? 0 : mk.error().code);
        break;
      }
    }

    // §5 failure coherence: the directory tree stays navigable throughout,
    // including while server 0 is dead.
    if (i % 10 == 0) {
      auto listing = storm.dist->readdir("/");
      EXPECT_TRUE(listing.ok()) << "iteration " << i << ": "
                                << listing.error().to_string();
    }
  }

  // The storm must actually have injected something, or this test is vacuous.
  uint64_t injected = 0;
  for (auto& s : storm.schedules) injected += s->faults_injected();
  EXPECT_GT(injected, 0u);

  // Calm the seas and converge: clear every schedule, repair every surviving
  // file on its replica set, and verify the model.
  for (auto& s : storm.schedules) s->clear();
  for (auto& [path, want] : out.model) {
    auto stub = storm.dist->locate(path);
    EXPECT_TRUE(stub.ok()) << path << ": " << stub.error().to_string();
    if (!stub.ok()) continue;
    size_t set = storm.set_for(stub.value().server);
    fs::ReplicatedFs* owner = storm.replicas[set].get();
    auto repaired = owner->repair(stub.value().data_path);
    EXPECT_TRUE(repaired.ok()) << path << ": " << repaired.error().to_string();
    auto got = storm.dist->read_file(path);
    EXPECT_TRUE(got.ok()) << path << ": " << got.error().to_string();
    if (got.ok()) { EXPECT_EQ(got.value(), want) << path; }
    // Reconvergence is concrete: after repair(), *both* member trees hold
    // the golden bytes for this file. (The set-wide diverged flag may stay
    // up for other files — divergence is per replica, repair is per file.)
    for (int m = 0; m < 2; m++) {
      auto member = storm.locals[set * 2 + m]->read_file(stub.value().data_path);
      EXPECT_TRUE(member.ok())
          << path << " member " << m << ": " << member.error().to_string();
      if (member.ok()) { EXPECT_EQ(member.value(), want) << path; }
    }
  }
  // Dirty files (last mutation failed) may exist or not, but access must
  // stay typed either way.
  for (const auto& path : out.dirty) {
    auto rc = storm.dist->read_file(path);
    if (!rc.ok()) { EXPECT_NE(rc.error().code, 0); }
  }
  return out;
}

TEST_P(ChaosTest, DistOverReplicatedSurvivesTheStorm) {
  run_dist_storm(seed(), base_ + "/run1");
}

TEST_P(ChaosTest, DistStormIsDeterministicPerSeed) {
  auto a = run_dist_storm(seed(), base_ + "/run1");
  auto b = run_dist_storm(seed(), base_ + "/run2");
  // Same seed, fresh trees: the exact same fault and outcome sequence.
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.model, b.model);
}

// --- Scenario 2: CFS under transport severs and server death ----------------

class CfsChaosTest : public ChaosTest {
 protected:
  void start_server(uint16_t port = 0) {
    chirp::ServerOptions options;
    options.port = port;
    options.owner = "hostname:localhost";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    // On revival the old port can take a moment to free up; build a fresh
    // Server each attempt so a failed bind leaves no half-started state.
    Result<void> rc = Result<void>::success();
    for (int i = 0; i < 50; i++) {
      auto auth = std::make_unique<auth::ServerAuth>();
      auth->add(std::make_unique<auth::HostnameServerMethod>());
      server_ = std::make_unique<chirp::Server>(
          options, std::make_unique<chirp::PosixBackend>(base_ + "/export"),
          std::move(auth));
      rc = server_->start();
      if (rc.ok()) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_TRUE(rc.ok()) << rc.error().to_string();
  }

  void SetUp() override {
    ChaosTest::SetUp();
    std::filesystem::create_directories(base_ + "/export");
    start_server();
  }
  void TearDown() override {
    if (server_) server_->stop();
    ChaosTest::TearDown();
  }

  std::unique_ptr<chirp::Server> server_;
};

TEST_P(CfsChaosTest, CfsSurvivesSeversAndServerDeath) {
  // A budgeted, seeded sever hook: every connection the CFS makes may be cut
  // mid-RPC until the budget runs out, so recovery runs several times but
  // the test always terminates.
  struct SeverState {
    std::mutex mutex;
    Rng rng;
    int budget = 6;
    explicit SeverState(uint64_t seed) : rng(seed) {}
  };
  auto state = std::make_shared<SeverState>(seed());
  auto credential = std::make_shared<auth::HostnameClientCredential>();
  auto base_connect = fs::chirp_connector(
      server_->endpoint(), {credential}, 5 * kSecond);
  fs::CfsFs::ConnectFn connect =
      [base_connect, state]() -> Result<chirp::Client> {
    auto client = base_connect();
    if (!client.ok()) return client;
    client.value().set_transport_fault(
        [state](std::string_view) -> net::TransportFault {
          std::lock_guard<std::mutex> lock(state->mutex);
          if (state->budget > 0 && state->rng.uniform() < 0.10) {
            state->budget--;
            return net::TransportFault::sever();
          }
          return net::TransportFault::none();
        });
    return client;
  };

  fs::CfsFs::Options options;
  options.retry.max_attempts = 4;
  options.retry.base_delay = 2 * kMillisecond;
  options.retry.max_delay = 20 * kMillisecond;
  options.jitter_seed = seed();
  fs::CfsFs cfs(connect, options);

  Rng workload(seed() ^ 0xcf5cf5ULL);
  std::map<std::string, std::string> model;
  // Paths whose content is unknowable: a write that recovered mid-flight may
  // be applied twice, and the dying session's duplicate can land after a
  // *later* write to the same file (the at-least-once anomaly —
  // docs/RECOVERY.md). Availability is still asserted for these; content is
  // not.
  std::set<std::string> tainted;
  for (int i = 0; i < 120; i++) {
    std::string path = "/c" + std::to_string(workload.next() % 6);
    switch (workload.below(4)) {
      case 0: {
        std::string data = "v" + std::to_string(i);
        uint64_t before = cfs.reconnect_count();
        auto rc = cfs.write_file(path, data);
        if (!rc.ok()) ASSERT_NE(rc.error().code, 0);
        if (!rc.ok() || cfs.reconnect_count() != before) {
          tainted.insert(path);
        }
        if (rc.ok() && !tainted.count(path)) {
          model[path] = data;
        } else {
          model.erase(path);
        }
        break;
      }
      case 1: {
        auto rc = cfs.read_file(path);
        if (rc.ok() && model.count(path)) { EXPECT_EQ(rc.value(), model[path]); }
        if (!rc.ok()) { ASSERT_NE(rc.error().code, 0); }
        break;
      }
      case 2: {
        auto rc = cfs.stat(path);
        if (!rc.ok()) { ASSERT_NE(rc.error().code, 0); }
        break;
      }
      case 3: {
        auto rc = cfs.readdir("/");
        if (!rc.ok()) { ASSERT_NE(rc.error().code, 0); }
        break;
      }
    }
  }

  // Server death: every operation fails *typed and promptly* — reconnect
  // attempts are bounded by the retry policy, so nothing hangs.
  uint16_t port = server_->port();
  server_->stop();
  auto dead = cfs.stat("/");
  ASSERT_FALSE(dead.ok());
  ASSERT_NE(dead.error().code, 0);

  // Revival on the same port: the filesystem reconnects transparently and
  // the acked data is all there.
  start_server(port);
  auto alive = cfs.readdir("/");
  ASSERT_TRUE(alive.ok()) << alive.error().to_string();
  for (auto& [path, want] : model) {
    auto got = cfs.read_file(path);
    ASSERT_TRUE(got.ok()) << path << ": " << got.error().to_string();
    EXPECT_EQ(got.value(), want) << path;
  }
  // Tainted paths promise availability (a typed result, promptly), not
  // content.
  for (const std::string& path : tainted) {
    auto got = cfs.read_file(path);
    if (!got.ok()) { EXPECT_NE(got.error().code, 0) << path; }
  }
  EXPECT_GE(cfs.reconnect_count(), 1u);
}

// --- Scenario 3: pool discovery with a dead catalog entry -------------------

TEST_P(ChaosTest, PoolDiscoveryToleratesDeadServers) {
  catalog::CatalogServer catalog{catalog::CatalogServer::Options{}};
  ASSERT_TRUE(catalog.start().ok());

  std::vector<std::unique_ptr<chirp::Server>> servers;
  for (int i = 0; i < 3; i++) {
    std::string root = base_ + "/pool" + std::to_string(i);
    std::filesystem::create_directories(root);
    chirp::ServerOptions options;
    options.owner = "hostname:localhost";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    servers.push_back(std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(root),
        std::move(auth)));
    ASSERT_TRUE(servers.back()->start().ok());
    catalog::ServerReport report;
    report.name = "pool" + std::to_string(i);
    report.owner = "hostname:localhost";
    report.address = servers.back()->endpoint();
    report.total_bytes = 1 << 30;
    report.free_bytes = 1 << 29;
    catalog.accept_report(report);
  }

  // A seed-chosen victim dies after reporting; the catalog is now stale.
  size_t victim = seed() % servers.size();
  servers[victim]->stop();

  adapter::PoolOptions options;
  options.credentials = {std::make_shared<auth::HostnameClientCredential>()};
  options.retry.max_attempts = 1;
  options.retry.base_delay = 2 * kMillisecond;
  auto pool = adapter::discover_pool(catalog.endpoint(), adapter::PoolPolicy{},
                                     options);
  ASSERT_TRUE(pool.ok()) << pool.error().to_string();
  EXPECT_EQ(pool.value().servers.size(), 2u);
  ASSERT_EQ(pool.value().skipped.size(), 1u);
  EXPECT_EQ(pool.value().skipped[0].name, "pool" + std::to_string(victim));
  // The skip reason is a typed, explanatory error, not a bare flag.
  EXPECT_NE(pool.value().skipped[0].reason.code, 0);
  EXPECT_FALSE(pool.value().skipped[0].reason.to_string().empty());

  // The surviving pool is usable as-is.
  auto& survivors = pool.value().servers;
  fs::FileSystem* first = survivors.begin()->second;
  ASSERT_TRUE(first->write_file("/alive", "still here").ok());
  EXPECT_EQ(first->read_file("/alive").value(), "still here");

  catalog.stop();
  for (auto& s : servers) s->stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1u, 42u, 20260806u));
INSTANTIATE_TEST_SUITE_P(Seeds, CfsChaosTest,
                         ::testing::Values(1u, 42u, 20260806u));

}  // namespace
}  // namespace tss
