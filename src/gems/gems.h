// GEMS: Grid Enabled Molecular Simulations — the paper's distributed shared
// database (DSDB) instance (§5, §9).
//
// "GEMS stores files on file servers and indexes them with a database. In
// addition, GEMS dynamically replicates files in order to assure survival.
// Two active components work in concert to maintain replicas. An *auditor*
// process periodically scans the database and then verifies the location and
// integrity of data on file servers. If it discovers that files have been
// damaged or removed, it makes note of these problems. A *replicator*
// process examines the notations and then repairs them by re-replicating the
// remaining copies." (§9)
//
// The catalog is a db::Store — an embedded TableStore or a RemoteStore
// speaking to a db::Server across the network (the full DSDB deployment
// shape); data servers are FileSystems — CfsFs mounts in a real deployment,
// LocalFs in tests. Record schema:
//   id        logical dataset name
//   size      bytes
//   checksum  16-hex FNV-1a of the content
//   replicas  comma-joined "server:path" locations
//   problems  replicas the auditor found damaged (notation for the
//             replicator; cleared once repaired)
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chirp/alloc.h"
#include "db/store.h"
#include "fs/filesystem.h"
#include "util/rand.h"

namespace tss::gems {

// One replica location.
struct Replica {
  std::string server;
  std::string path;
  bool operator==(const Replica&) const = default;
};

std::string encode_replicas(const std::vector<Replica>& replicas);
std::vector<Replica> decode_replicas(const std::string& encoded);

struct GemsOptions {
  // Directory on each data server holding GEMS data files.
  std::string volume = "/gems";
  // Hard cap on the sum of replica bytes; the replicator fills available
  // space up to this limit ("the user specifies that up to 40 GB of space
  // may be used", §9). 0 = no cap.
  uint64_t space_budget = 0;
  // Upper bound on replicas per dataset; 0 = bounded only by budget and
  // server count.
  int max_replicas = 0;
  uint64_t name_seed = 0;
};

class Gems {
 public:
  // `catalog` and the mapped data servers are borrowed.
  Gems(db::Store* catalog, std::map<std::string, fs::FileSystem*> servers,
       GemsOptions options);

  // Creates the volume directory on every server (idempotent).
  Result<void> format();

  // --- User operations -------------------------------------------------------
  // Stores one copy of `data` under `logical_name` with free-form metadata
  // attributes (simulation parameters etc.), registers the catalog record.
  Result<void> ingest(const std::string& logical_name, std::string_view data,
                      const std::map<std::string, std::string>& attributes = {});
  // Reads the dataset from any live replica (tries them in order).
  Result<std::string> fetch(const std::string& logical_name);
  // Metadata search: all records whose attribute `field` equals `value`.
  Result<std::vector<db::Record>> search(const std::string& field,
                                         const std::string& value) const;
  Result<db::Record> record_of(const std::string& logical_name) const;

  // --- Active components ------------------------------------------------------
  // Auditor pass: verifies every replica of every record (existence, size,
  // checksum); damaged replicas are noted in the record's `problems` field
  // and removed from `replicas`. Returns the number of problems discovered.
  Result<int> audit_step();

  // Replicator step: performs at most one repair/replication — it prefers
  // records with noted problems or fewest replicas, copies from a surviving
  // replica to a server that lacks one, within the space budget. Returns
  // true if a copy was made.
  Result<bool> replicate_step();
  // Convenience: run replicate_step until it makes no progress.
  Result<int> replicate_until_stable(int max_steps = 1 << 20);

  // Total bytes across all replicas recorded in the catalog.
  Result<uint64_t> stored_bytes() const;
  // Number of live replicas of one dataset.
  Result<int> replica_count(const std::string& logical_name) const;

  // The space-budget arbiter (tests). Null when no budget is configured.
  chirp::AllocTracker* space_tracker() const { return tracker_.get(); }

 private:
  // Reserve-then-commit space admission: syncs the tracker to the catalog's
  // committed total, then holds `bytes` as pending so racing writers see
  // each other before either commits. ENOSPC when the budget lacks room.
  Result<chirp::AllocTracker::Reservation> reserve_space(uint64_t bytes);
  Result<void> verify_replica(const db::Record& record,
                              const Replica& replica);
  std::string new_data_path(const std::string& logical_name);

  db::Store* catalog_;
  std::map<std::string, fs::FileSystem*> servers_;
  std::vector<std::string> server_names_;
  GemsOptions options_;
  Rng rng_;
  // In-memory allocation tracker (chirp/alloc.h) arbitrating the space
  // budget; the catalog remains the durable record (commit_external).
  std::unique_ptr<chirp::AllocTracker> tracker_;
};

}  // namespace tss::gems
