// Buffered line+blob framing over a TCP socket.
//
// All TSS wire protocols (Chirp, catalog, NFS baseline, db) are line-oriented
// ASCII control with length-delimited binary payloads, in the style of the
// real Chirp protocol. LineStream provides buffered reads (so a line and the
// blob following it cost one recv) and buffered writes with explicit flush
// (so a request line plus its payload cost one send — important for the
// latency measurements in Figures 4 and 5).
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "net/socket.h"
#include "util/result.h"

namespace tss::net {

// Transport-level fault injection (tests only). A hook is consulted before
// each socket read ("read") and each buffered send ("flush") and returns the
// action to take: proceed, fail with an errno without touching the socket,
// sever the connection (close, then fail — the peer sees EOF mid-stream), or
// truncate (send only half of the pending frame, then sever — the peer reads
// a torn frame). Severing mid-RPC is how the recovery machinery of CfsFs and
// the teardown path of chirp::Server are exercised for real.
struct TransportFault {
  enum class Action { kNone, kError, kSever, kTruncate };
  Action action = Action::kNone;
  int error_code = ECONNRESET;

  static TransportFault none() { return TransportFault{}; }
  static TransportFault error(int code) {
    return TransportFault{Action::kError, code};
  }
  static TransportFault sever() {
    return TransportFault{Action::kSever, ECONNRESET};
  }
  static TransportFault truncate() {
    return TransportFault{Action::kTruncate, ECONNRESET};
  }
};

class LineStream {
 public:
  using FaultHook = std::function<TransportFault(std::string_view point)>;
  // Default per-operation timeout 30s; override per call site as needed.
  explicit LineStream(TcpSocket sock, Nanos timeout = 30 * kSecond);

  LineStream(LineStream&&) = default;
  LineStream& operator=(LineStream&&) = default;

  void set_timeout(Nanos timeout) { timeout_ = timeout; }
  Nanos timeout() const { return timeout_; }

  // Reads one '\n'-terminated line (terminator stripped; a trailing '\r' is
  // also stripped for telnet-friendliness). Fails with EMSGSIZE if the line
  // exceeds max_len, ECONNRESET on EOF mid-line, and returns an empty
  // optional-style EPIPE error on clean EOF at a line boundary.
  Result<std::string> read_line(size_t max_len = 64 * 1024);

  // Reads exactly `size` raw bytes (payload following a header line).
  Result<void> read_blob(void* data, size_t size);

  // Appends a line (terminator added) to the output buffer.
  void write_line(std::string_view line);

  // Appends raw payload bytes to the output buffer.
  void write_blob(const void* data, size_t size);

  // Sends everything buffered.
  Result<void> flush();

  // Convenience: write line, flush, used by simple request/response turns.
  Result<void> send_line(std::string_view line);

  bool valid() const { return sock_.valid(); }
  void close() { sock_.close(); }
  TcpSocket& socket() { return sock_; }

  // Installs (or clears, with nullptr) the fault hook. Consulted at points
  // "read" and "flush"; see TransportFault above.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  Result<void> fill();
  // Applies the hook's verdict for `point`; error means the op must abort.
  Result<void> consult_fault_hook(std::string_view point);

  TcpSocket sock_;
  Nanos timeout_;
  std::string rbuf_;
  size_t rpos_ = 0;
  std::string wbuf_;
  FaultHook fault_hook_;
};

}  // namespace tss::net
