# Empty compiler generated dependencies file for tss_sim.
# This may be replaced when dependencies are built.
