// IoScheduler: the parallel I/O engine's contract. Ordinary submit/join,
// fan_out ordering, the EBUSY admission bound, both deadline-expiry paths
// (queued and mid-flight) with exactly-once counting, help-on-wait (no
// deadlock with zero workers or nested fan-outs), and multi-thread races.
#include "par/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/clock.h"

namespace tss {
namespace {

// TSan builds run the race-heavy loops at reduced size.
#ifdef TSS_TSAN_BUILD
constexpr int kRaceThreads = 4;
constexpr int kRaceOpsPerThread = 50;
#else
constexpr int kRaceThreads = 8;
constexpr int kRaceOpsPerThread = 200;
#endif

IoScheduler::Options with_registry(obs::Registry* registry, int workers) {
  IoScheduler::Options options;
  options.workers = workers;
  options.metrics = registry;
  return options;
}

TEST(IoSchedulerTest, SubmitReturnsTheJobsResult) {
  obs::Registry registry;
  IoScheduler scheduler(with_registry(&registry, 2));
  auto future = scheduler.submit([]() -> Result<int> { return 41 + 1; });
  auto result = future.get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);

  auto failing = scheduler.submit(
      []() -> Result<int> { return Error(ENOENT, "nope"); });
  auto error = failing.get();
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.error().code, ENOENT);

  EXPECT_EQ(registry.counter_value("client.submitted"), 2u);
  EXPECT_EQ(registry.counter_value("client.completed"), 2u);
  EXPECT_EQ(registry.gauge("client.inflight")->value(), 0);
}

TEST(IoSchedulerTest, ZeroWorkersRunsEverythingOnTheWaitingThread) {
  obs::Registry registry;
  IoScheduler scheduler(with_registry(&registry, 0));
  std::thread::id main_id = std::this_thread::get_id();
  auto future = scheduler.submit([main_id]() -> Result<bool> {
    return std::this_thread::get_id() == main_id;
  });
  auto ran_here = future.get();
  ASSERT_TRUE(ran_here.ok());
  EXPECT_TRUE(ran_here.value());  // help-on-wait stole the job
}

TEST(IoSchedulerTest, FanOutPreservesIndexOrder) {
  obs::Registry registry;
  IoScheduler scheduler(with_registry(&registry, 4));
  std::vector<Result<size_t>> results =
      fan_out(&scheduler, 32, [](size_t i) -> Result<size_t> {
        return i * i;
      });
  ASSERT_EQ(results.size(), 32u);
  for (size_t i = 0; i < results.size(); i++) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value(), i * i);
  }
}

TEST(IoSchedulerTest, NullSchedulerFanOutRunsInline) {
  std::thread::id main_id = std::this_thread::get_id();
  auto results = fan_out(nullptr, 4, [&](size_t) -> Result<bool> {
    return std::this_thread::get_id() == main_id;
  });
  for (auto& r : results) {
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value());
  }
}

TEST(IoSchedulerTest, QueueFullAnswersTypedEbusy) {
  obs::Registry registry;
  IoScheduler::Options options = with_registry(&registry, 0);
  options.max_queue = 2;
  IoScheduler scheduler(options);
  // Zero workers: nothing drains the queue while we fill it.
  auto a = scheduler.submit([]() -> Result<int> { return 1; });
  auto b = scheduler.submit([]() -> Result<int> { return 2; });
  auto c = scheduler.submit([]() -> Result<int> { return 3; });
  // rejected() distinguishes "the queue refused the job" from a fast
  // completion: a's job will run and resolve, but was never rejected.
  EXPECT_FALSE(a.rejected());
  EXPECT_TRUE(c.rejected());
  auto rejected = c.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, EBUSY);
  EXPECT_EQ(registry.counter_value("client.rejected"), 1u);
  // The accepted jobs still run (on this thread, via help-on-wait).
  EXPECT_EQ(a.get().value(), 1);
  EXPECT_EQ(b.get().value(), 2);
  EXPECT_FALSE(a.rejected());
}

TEST(IoSchedulerTest, DeadlinePassedBeforeDispatchExpiresWithoutRunning) {
  obs::Registry registry;
  VirtualClock clock;
  IoScheduler::Options options = with_registry(&registry, 0);
  options.clock = &clock;
  IoScheduler scheduler(options);

  std::atomic<bool> ran{false};
  auto future = scheduler.submit(
      [&]() -> Result<int> {
        ran = true;
        return 1;
      },
      /*deadline=*/clock.now() + 10);
  clock.advance(20);  // deadline passes while the job sits queued
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ETIMEDOUT);
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(registry.counter_value("client.deadline_expired"), 1u);
  // The expired job still sits queued (zero workers, and the waiter already
  // left). Draining it resolves the job *without running it* and balances
  // the books — exactly once, even though the waiter counted the expiry.
  EXPECT_TRUE(scheduler.run_one());
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(registry.counter_value("client.deadline_expired"), 1u);
  EXPECT_EQ(registry.gauge("client.inflight")->value(), 0);
}

TEST(IoSchedulerTest, DeadlineExpiryMidFlightReturnsTimeoutToTheWaiter) {
  obs::Registry registry;
  VirtualClock clock;
  // The job blocks until released — the waiter's deadline passes first.
  // Declared before the scheduler so it outlives the worker threads.
  std::atomic<bool> release{false};
  IoScheduler::Options options = with_registry(&registry, 1);
  options.clock = &clock;
  IoScheduler scheduler(options);
  auto future = scheduler.submit(
      [&]() -> Result<int> {
        while (!release.load()) std::this_thread::yield();
        return 7;
      },
      /*deadline=*/clock.now() + 10);
  // Give the worker a moment to pick the job up, then expire the deadline.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  clock.advance(20);
  auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ETIMEDOUT);
  EXPECT_EQ(registry.counter_value("client.deadline_expired"), 1u);
  release = true;  // the job completes harmlessly in the background
}

TEST(IoSchedulerTest, NestedFanOutCannotDeadlockWithOneWorker) {
  obs::Registry registry;
  IoScheduler scheduler(with_registry(&registry, 1));
  // An outer fan-out whose jobs each fan out again through the same
  // scheduler: with one worker this deadlocks unless waiters help.
  auto outer = fan_out(&scheduler, 4, [&](size_t i) -> Result<size_t> {
    auto inner = fan_out(&scheduler, 4, [&](size_t j) -> Result<size_t> {
      return i * 10 + j;
    });
    size_t sum = 0;
    for (auto& r : inner) {
      TSS_ASSIGN_OR_RETURN(size_t v, std::move(r));
      sum += v;
    }
    return sum;
  });
  size_t total = 0;
  for (auto& r : outer) {
    ASSERT_TRUE(r.ok());
    total += r.value();
  }
  EXPECT_EQ(total, 0u + 1 + 2 + 3 + 10 + 11 + 12 + 13 + 20 + 21 + 22 + 23 +
                       30 + 31 + 32 + 33);
}

TEST(IoSchedulerTest, ManyThreadsSubmittingConcurrentlyStaysConsistent) {
  obs::Registry registry;
  IoScheduler scheduler(with_registry(&registry, 4));
  std::atomic<uint64_t> executed{0};
  std::vector<std::thread> threads;
  threads.reserve(kRaceThreads);
  for (int t = 0; t < kRaceThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRaceOpsPerThread; i++) {
        auto future = scheduler.submit([&]() -> Result<int> {
          executed.fetch_add(1, std::memory_order_relaxed);
          return 0;
        });
        ASSERT_TRUE(future.get().ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t expected =
      static_cast<uint64_t>(kRaceThreads) * kRaceOpsPerThread;
  EXPECT_EQ(executed.load(), expected);
  EXPECT_EQ(registry.counter_value("client.submitted"), expected);
  EXPECT_EQ(registry.counter_value("client.completed"), expected);
  EXPECT_EQ(registry.gauge("client.inflight")->value(), 0);
  EXPECT_EQ(registry.gauge("client.queue_depth")->value(), 0);
}

TEST(IoSchedulerTest, DestructionDrainsUnstartedJobs) {
  obs::Registry registry;
  std::atomic<int> executed{0};
  {
    IoScheduler scheduler(with_registry(&registry, 0));
    for (int i = 0; i < 8; i++) {
      scheduler.submit([&]() -> Result<int> { return ++executed; });
    }
    // No worker and no waiter: all eight jobs are still queued here.
  }
  EXPECT_EQ(executed.load(), 8);
  EXPECT_EQ(registry.counter_value("client.completed"), 8u);
}

}  // namespace
}  // namespace tss
