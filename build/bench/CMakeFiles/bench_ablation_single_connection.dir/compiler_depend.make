# Empty compiler generated dependencies file for bench_ablation_single_connection.
# This may be replaced when dependencies are built.
