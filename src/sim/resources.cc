#include "sim/resources.h"

namespace tss::sim {

Nanos RateQueue::reserve(Nanos earliest, uint64_t bytes,
                         Nanos extra_service) {
  Nanos start = std::max(earliest, std::max(next_free_, engine_.now()));
  Nanos service =
      extra_service +
      static_cast<Nanos>(static_cast<double>(bytes) / bytes_per_sec_ * 1e9);
  next_free_ = start + service;
  total_bytes_ += bytes;
  return next_free_;
}

Nanos Disk::access(Nanos earliest, uint64_t bytes, bool sequential) {
  // The seek is service time on the disk itself: it occupies the head, so
  // it must extend the reservation rather than merely delay its start.
  return queue_.reserve(earliest, bytes, sequential ? 0 : config_.seek_time);
}

BufferCache::AccessResult BufferCache::access(uint64_t file_id,
                                              uint64_t offset,
                                              uint64_t length) {
  AccessResult result;
  if (length == 0) return result;
  uint64_t first_page = offset / kPageSize;
  uint64_t last_page = (offset + length - 1) / kPageSize;
  for (uint64_t page = first_page; page <= last_page; page++) {
    // Bytes of the request that fall on this page.
    uint64_t page_start = page * kPageSize;
    uint64_t page_end = page_start + kPageSize;
    uint64_t lo = std::max(offset, page_start);
    uint64_t hi = std::min(offset + length, page_end);
    uint64_t covered = hi - lo;

    PageKey k = key(file_id, page);
    auto it = pages_.find(k);
    if (it != pages_.end()) {
      result.hit_bytes += covered;
      hits_++;
      lru_.splice(lru_.begin(), lru_, it->second);
    } else {
      result.miss_bytes += covered;
      misses_++;
      if (capacity_pages_ > 0) {
        if (pages_.size() >= capacity_pages_) {
          pages_.erase(lru_.back());
          lru_.pop_back();
        }
        lru_.push_front(k);
        pages_[k] = lru_.begin();
      }
    }
  }
  return result;
}

void BufferCache::invalidate(uint64_t file_id) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it >> 24) == file_id) {
      pages_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace tss::sim
