// GEMS over the wire: the full DSDB deployment shape — catalog behind a
// db::Server over TCP, data on live Chirp servers over TCP, the auditor and
// replicator operating across both protocols at once.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "db/client.h"
#include "db/server.h"
#include "db/store.h"
#include "fs/cfs.h"
#include "gems/gems.h"

namespace tss::gems {
namespace {

class GemsWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/gemswire_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    for (int i = 0; i < 3; i++) {
      std::string root = base_ + "/server" + std::to_string(i);
      std::filesystem::create_directories(root);
      chirp::ServerOptions options;
      options.owner = "unix:testowner";
      options.root_acl =
          acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
      auto auth = std::make_unique<auth::ServerAuth>();
      auth->add(std::make_unique<auth::HostnameServerMethod>());
      chirp_servers_.push_back(std::make_unique<chirp::Server>(
          options, std::make_unique<chirp::PosixBackend>(root),
          std::move(auth)));
      ASSERT_TRUE(chirp_servers_.back()->start().ok());
      auto credential = std::make_shared<auth::HostnameClientCredential>();
      mounts_.push_back(std::make_unique<fs::CfsFs>(
          fs::chirp_connector(chirp_servers_.back()->endpoint(),
                              {credential})));
      pool_["host" + std::to_string(i)] = mounts_.back().get();
    }

    db_server_ = std::make_unique<db::Server>(db::Server::Options{});
    ASSERT_TRUE(db_server_->start().ok());
    db_server_->table("gems", {"project"});
    auto client = db::Client::connect(db_server_->endpoint());
    ASSERT_TRUE(client.ok());
    db_client_ = std::make_unique<db::Client>(std::move(client).value());
    store_ = std::make_unique<db::RemoteStore>(db_client_.get(), "gems");

    GemsOptions options;
    options.max_replicas = 2;
    options.name_seed = 7;
    gems_ = std::make_unique<Gems>(store_.get(), pool_, options);
    ASSERT_TRUE(gems_->format().ok());
  }

  void TearDown() override {
    db_server_->stop();
    for (auto& s : chirp_servers_) s->stop();
    std::filesystem::remove_all(base_);
  }

  std::string base_;
  std::vector<std::unique_ptr<chirp::Server>> chirp_servers_;
  std::vector<std::unique_ptr<fs::CfsFs>> mounts_;
  std::map<std::string, fs::FileSystem*> pool_;
  std::unique_ptr<db::Server> db_server_;
  std::unique_ptr<db::Client> db_client_;
  std::unique_ptr<db::RemoteStore> store_;
  std::unique_ptr<Gems> gems_;
  static inline int counter_ = 0;
};

TEST_F(GemsWireTest, IngestSearchFetchAcrossBothProtocols) {
  ASSERT_TRUE(
      gems_->ingest("run-a", std::string(40000, 'a'), {{"project", "p1"}})
          .ok());
  ASSERT_TRUE(
      gems_->ingest("run-b", std::string(20000, 'b'), {{"project", "p2"}})
          .ok());
  auto matches = gems_->search("project", "p1");
  ASSERT_TRUE(matches.ok());
  ASSERT_EQ(matches.value().size(), 1u);
  EXPECT_EQ(matches.value()[0].at("id"), "run-a");
  EXPECT_EQ(gems_->fetch("run-a").value(), std::string(40000, 'a'));
}

TEST_F(GemsWireTest, ReplicateAuditRepairOverTheWire) {
  ASSERT_TRUE(gems_->ingest("precious", std::string(5000, 'p')).ok());
  ASSERT_TRUE(gems_->replicate_until_stable().ok());
  ASSERT_EQ(gems_->replica_count("precious").value(), 2);

  // Destroy one replica behind GEMS's back through its own chirp mount.
  auto record = gems_->record_of("precious").value();
  auto replicas = decode_replicas(record.at("replicas"));
  ASSERT_TRUE(pool_[replicas[0].server]->unlink(replicas[0].path).ok());

  auto problems = gems_->audit_step();
  ASSERT_TRUE(problems.ok());
  EXPECT_EQ(problems.value(), 1);
  ASSERT_TRUE(gems_->replicate_until_stable().ok());
  EXPECT_EQ(gems_->replica_count("precious").value(), 2);
  EXPECT_EQ(gems_->fetch("precious").value(), std::string(5000, 'p'));

  // The catalog updates really crossed the wire: a second, independent db
  // client sees the repaired record.
  auto second = db::Client::connect(db_server_->endpoint());
  ASSERT_TRUE(second.ok());
  auto remote_record = second.value().get("gems", "precious");
  ASSERT_TRUE(remote_record.ok());
  EXPECT_EQ(decode_replicas(remote_record.value().at("replicas")).size(), 2u);
  EXPECT_TRUE(remote_record.value().at("problems").empty());
}

TEST_F(GemsWireTest, StoredBytesComputedFromRemoteScan) {
  ASSERT_TRUE(gems_->ingest("x", std::string(1000, 'x')).ok());
  ASSERT_TRUE(gems_->ingest("y", std::string(500, 'y')).ok());
  ASSERT_TRUE(gems_->replicate_until_stable().ok());
  EXPECT_EQ(gems_->stored_bytes().value(), 2u * 1500);
}

}  // namespace
}  // namespace tss::gems
