// Figure 6 — "DSFS Scalability: Net-Bound".
//
// Paper setup: 128 files of 1 MB in a DSFS served by 1-8 servers on a
// 1 Gb/s switch; all data fits in the servers' buffer caches. Expected
// shape: one server saturates one port at just over 100 MB/s; adding
// servers raises throughput until ~3 servers saturate the switch backplane
// near 300 MB/s.
#include "bench/common.h"

int main() {
  using namespace tss::bench;
  print_header(
      "Figure 6: DSFS scalability, net-bound (128 x 1 MB, simulated cluster)",
      "16 clients read random whole files; all data cache-resident.\n"
      "Paper shape: ~100 MB/s at 1 server; backplane saturation ~300 MB/s "
      "at >=3 servers.");

  print_row({"servers", "MB/s", "sim seconds", "cache hit %", "read p50",
             "read p95", "read p99"});
  for (int servers = 1; servers <= 8; servers++) {
    DsfsScalingParams params;
    params.num_servers = servers;
    params.num_files = 128;
    params.file_bytes = 1 << 20;
    params.reads_per_client = 100;
    DsfsScalingResult r = run_dsfs_scaling(params);
    double hit_pct =
        100.0 * static_cast<double>(r.cache_hits) /
        static_cast<double>(std::max<uint64_t>(1, r.cache_hits + r.cache_misses));
    print_row({std::to_string(servers), fmt_double(r.mb_per_sec),
               fmt_double(r.seconds, 2), fmt_double(hit_pct),
               fmt_us(static_cast<double>(r.read_p50)),
               fmt_us(static_cast<double>(r.read_p95)),
               fmt_us(static_cast<double>(r.read_p99))});
  }
  return 0;
}
