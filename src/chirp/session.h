// Per-connection server session: authentication state, ACL enforcement, fd
// table, and RPC dispatch.
//
// SessionCore is sans-IO: it consumes parsed Requests and produces Responses
// against a Backend. The real TCP server (server.cc) and the discrete-event
// simulator both pump it, so ACL semantics and protocol behaviour are
// identical in both worlds.
//
// Rights enforcement (per §4 of the paper):
//   open for read            R   on the containing directory
//   open for write/create    W   on the containing directory
//   stat                     L   on the containing directory
//   getdir                   L   on the directory itself
//   unlink                   D   on the containing directory
//   rename                   D   on the source dir and W on the target dir
//   mkdir                    W   on the parent, else the reserve right V
//   rmdir                    D   on the parent
//   getacl                   L   on the directory
//   setacl                   A   on the directory
// The server owner passes every check ("the owner of a file server retains
// access to all data on that server").
//
// ACLs live in a ".__acl__" file per directory, managed exclusively through
// getacl/setacl; the name is hidden from listings and refused by direct file
// operations. A directory without its own ACL file inherits the nearest
// ancestor's ACL, which is what lets an owner export pre-existing data
// without a setup pass. mkdir in a directory where the caller holds V
// initializes the new directory with a fresh ACL granting the caller exactly
// the parenthesized reserve rights; mkdir under W copies the parent's ACL.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "acl/acl.h"
#include "auth/auth.h"
#include "chirp/backend.h"
#include "chirp/protocol.h"
#include "chirp/redirect.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace tss::net {
class FairQueue;
}  // namespace tss::net

namespace tss::chirp {

class AllocTracker;
class QuotaManager;

// The ACL file name reserved inside every directory. (The allocation
// journal name, kAllocJournalName, lives in chirp/alloc.h; both are hidden
// from listings and refused by direct file ops — see names_reserved.)
inline constexpr const char* kAclFileName = ".__acl__";

// Server-wide configuration shared by all sessions.
struct ServerConfig {
  // The owner's subject ("unix:dthain"); passes all ACL checks.
  std::string owner;
  // Root directory ACL used when "/" has no .__acl__ file yet.
  acl::Acl root_acl;
  // Enabled authentication methods. Not owned.
  auth::ServerAuth* auth = nullptr;
  // Observability: per-op latency histograms, request/error/byte counters,
  // and RPC spans are recorded here; the same registry backs the `stats`
  // RPC. Null disables instrumentation entirely (the simulator dispatches
  // through SessionCore synchronously and records virtual-clock latencies
  // itself instead). Not owned.
  obs::Registry* metrics = nullptr;
  // Clock used to timestamp spans and latencies; null = RealClock.
  const Clock* clock = nullptr;
  // Cooperative-cache deflection for hot getfiles (chirp/redirect.h). Null
  // disables the "redirect" capability entirely. Not owned.
  RedirectPolicy* redirect = nullptr;
  // Space allocation tracker (chirp/alloc.h). Null disables the "alloc"
  // capability and the mkalloc/lsalloc RPCs. Not owned.
  AllocTracker* alloc = nullptr;
  // Per-subject request quotas (chirp/quota.h). Null disables quota
  // enforcement; the server owner is always exempt. Not owned.
  QuotaManager* quotas = nullptr;
  // Weighted fair-share admission across subjects (net/fair_queue.h). Used
  // by the reactor transport, not by SessionCore itself; carried here so
  // every engine sees one tenancy configuration. Null disables. Not owned.
  net::FairQueue* fair = nullptr;
};

class SessionCore {
 public:
  SessionCore(const ServerConfig& config, Backend& backend,
              auth::PeerInfo peer);
  ~SessionCore();

  SessionCore(const SessionCore&) = delete;
  SessionCore& operator=(const SessionCore&) = delete;

  // --- Authentication -----------------------------------------------------
  bool authenticated() const { return subject_.has_value(); }
  const auth::Subject& subject() const { return *subject_; }

  // Runs one auth attempt. On success the session is bound to the subject;
  // only one credential set may be used per session.
  Result<auth::Subject> authenticate(const std::string& method,
                                     const std::string& arg,
                                     auth::ChallengeIo& io);

  // --- Dispatch -----------------------------------------------------------
  // Handles one RPC. `payload` carries the request body for pwrite/putfile
  // (data may be null with size set only when the backend is synthetic).
  // Response body bytes (pread/getfile/getacl/getdir listings) are appended
  // to *response_payload.
  struct Payload {
    const char* data = nullptr;
    uint64_t size = 0;
  };
  Response handle(const Request& request, Payload payload,
                  std::string* response_payload);

  // Releases all open handles — the disconnect semantics of §4: "the server
  // frees all resources associated with that connection".
  void close_all();

  // --- Streaming transport hooks -------------------------------------------
  // getfile/putfile bodies can be arbitrarily large; transports that stream
  // them chunkwise (instead of buffering, as handle() does) validate and
  // open through these. Both apply the same sanitization, reserved-name
  // guard, and ACL checks as the buffered path and return a backend handle
  // the transport drives directly; stream_close() releases it.
  Result<int> stream_open_read(const std::string& path, uint64_t* size_out);
  Result<int> stream_open_write(const std::string& path, uint32_t mode);
  void stream_close(int backend_handle);
  Backend& backend() { return backend_; }

  // True once the client offered the "checksum" capability at handshake.
  // Data-carrying RPCs then attach/verify FNV-1a64 digests; the streaming
  // transport consults this to frame the getfile/putfile sum trailers.
  bool checksum_negotiated() const { return checksum_; }

  // True once the client offered "redirect" AND the server has a policy.
  bool redirect_negotiated() const { return redirect_; }

  // True once the client offered "alloc" AND the server has a tracker.
  bool alloc_negotiated() const { return alloc_; }

  // --- Tenancy ---------------------------------------------------------------
  // Token-bucket admission for one request from this session's subject.
  // Returns the typed EDQUOT refusal to send, or nullopt to proceed. No-op
  // (nullopt) for version/auth, unauthenticated sessions, the owner, or when
  // no QuotaManager is configured. handle() applies this to every buffered
  // op; the streaming transport calls it around the ops it streams itself.
  std::optional<Response> quota_admit(Op op);
  // Per-subject accounting for one finished request: bumps the subject's
  // tenant.subject.* counters and, unless `refused`, charges the completed
  // work to the subject's token buckets.
  void quota_account(Op op, uint64_t bytes, bool refused);

  // Consults the redirect policy for one getfile of `path`. Returns the
  // control-only redirect Response when the session negotiated the
  // capability and the path is over threshold; nullopt means serve the data.
  // Both the buffered dispatch (do_getfile) and the streamed transport
  // (ServerSession::begin_getfile) call this, so the two engines deflect
  // identically.
  std::optional<Response> getfile_redirect(const std::string& path);

  // --- Observability --------------------------------------------------------
  // Records one completed RPC (latency histogram, request/error/byte
  // counters, one span). handle() calls this for every dispatched op; the
  // TCP transport calls it directly for the ops it streams around handle()
  // (auth challenge rounds, getfile/putfile bodies). No-op when the config
  // has no registry.
  void record_op(Op op, Nanos start, uint64_t bytes_in, uint64_t bytes_out,
                 int err);
  bool metrics_enabled() const { return config_.metrics != nullptr; }
  // The clock spans and latencies are stamped with (RealClock by default).
  const Clock& clock() const { return *clock_; }

 private:
  // The un-instrumented dispatch body; handle() wraps it with timing.
  Response dispatch(const Request& request, Payload payload,
                    std::string* response_payload);
  // Loads the effective ACL for a directory: its own .__acl__, else the
  // nearest ancestor's, else the configured root ACL.
  acl::Acl effective_acl(const std::string& dir);
  // Does the session's subject hold `rights` in `dir`? Owner always does.
  bool permits(const std::string& dir, acl::Rights rights);
  bool is_owner() const;

  Response do_open(const Request& r);
  Response do_pread(const Request& r, std::string* out);
  Response do_pwrite(const Request& r, Payload payload);
  Response do_stat(const Request& r);
  Response do_fstat(const Request& r);
  Response do_unlink(const Request& r);
  Response do_rename(const Request& r);
  Response do_mkdir(const Request& r);
  Response do_rmdir(const Request& r);
  Response do_getdir(const Request& r, std::string* out);
  Response do_getfile(const Request& r, std::string* out);
  Response do_putfile(const Request& r, Payload payload);
  Response do_getacl(const Request& r, std::string* out);
  Response do_setacl(const Request& r);
  Response do_truncate(const Request& r);
  Response do_statfs();
  Response do_stats(std::string* out);
  Response do_mkalloc(const Request& r);
  Response do_lsalloc(const Request& r);

  // Resolves the per-subject tenant.subject.* counters once after auth.
  void resolve_subject_metrics();

  const ServerConfig& config_;
  Backend& backend_;
  auth::PeerInfo peer_;
  const Clock* clock_;
  std::optional<auth::Subject> subject_;

  // Cached metric handles (resolved once per session; null when the config
  // carries no registry so the record path stays branch-cheap).
  obs::Histogram* op_latency_[kOpCount] = {};
  obs::Counter* requests_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* integrity_mismatch_ = nullptr;
  obs::Counter* redirects_ = nullptr;

  // Per-subject tenancy counters, resolved lazily once authenticated (the
  // names embed the url-encoded subject).
  obs::Counter* subject_requests_ = nullptr;
  obs::Counter* subject_bytes_ = nullptr;
  obs::Counter* subject_rejected_ = nullptr;

  bool checksum_ = false;
  bool redirect_ = false;
  bool alloc_ = false;

  struct OpenFile {
    int backend_handle = -1;
    std::string path;
  };
  std::map<int64_t, OpenFile> fds_;
  int64_t next_fd_ = 3;  // mimic Unix: 0-2 reserved
};

// True if `path`'s final component is the reserved ACL file name.
bool names_acl_file(const std::string& canonical_path);

// True if `path` names any reserved bookkeeping file: the per-directory ACL
// file or the allocation journal (including its compaction temp file).
bool names_reserved(const std::string& canonical_path);

}  // namespace tss::chirp
