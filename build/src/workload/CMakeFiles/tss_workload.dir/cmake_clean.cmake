file(REMOVE_RECURSE
  "CMakeFiles/tss_workload.dir/sp5.cc.o"
  "CMakeFiles/tss_workload.dir/sp5.cc.o.d"
  "libtss_workload.a"
  "libtss_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
