// The abstraction layers under the parallel engine: replicated writes fan
// out concurrently with serial-identical divergence accounting, hedged
// reads return first-success without ever racing a stale replica in, and
// DistFs creation probes its candidate servers in parallel.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fs/dist.h"
#include "fs/faulty.h"
#include "fs/local.h"
#include "fs/replicated.h"
#include "obs/metrics.h"
#include "par/executor.h"
#include "util/clock.h"

namespace tss::fs {
namespace {

class ParallelFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/parfs_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string make_root(const std::string& name) {
    std::string root = base_ + "/" + name;
    std::filesystem::create_directories(root);
    return root;
  }

  std::string base_;
  static inline int counter_ = 0;
};

TEST_F(ParallelFsTest, ConcurrentReplicaWritesLandOnEveryReplica) {
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  IoScheduler scheduler(scheduler_options);
  LocalFs r0(make_root("r0")), r1(make_root("r1")), r2(make_root("r2"));
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  ReplicatedFs fs({&r0, &r1, &r2}, options);

  ASSERT_TRUE(fs.write_file("/doc", "payload").ok());
  EXPECT_EQ(r0.read_file("/doc").value(), "payload");
  EXPECT_EQ(r1.read_file("/doc").value(), "payload");
  EXPECT_EQ(r2.read_file("/doc").value(), "payload");
  EXPECT_EQ(registry.counter_value("replicated.diverged"), 0u);

  // Namespace mutations broadcast concurrently too.
  ASSERT_TRUE(fs.mkdir("/dir", 0755).ok());
  EXPECT_TRUE(r0.stat("/dir").ok());
  EXPECT_TRUE(r1.stat("/dir").ok());
  EXPECT_TRUE(r2.stat("/dir").ok());
}

TEST_F(ParallelFsTest, ConcurrentWriteFailureDivergesExactlyTheLosers) {
  IoScheduler scheduler;
  LocalFs r0(make_root("d0")), r1(make_root("d1"));
  VirtualClock clock;
  obs::Registry registry;
  FaultSchedule schedule(7, &clock, &registry);
  FaultyFs flaky(&r1, &schedule);
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  ReplicatedFs fs({&r0, &flaky}, options);
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());

  schedule.fail_always(EIO, "pwrite");
  auto file = fs.open("/doc", OpenFlags::parse("w").value());
  ASSERT_TRUE(file.ok());
  auto n = file.value()->pwrite("v2", 2, 0);
  ASSERT_TRUE(n.ok());  // replica 0 took the write
  EXPECT_EQ(n.value(), 2u);
  EXPECT_TRUE(fs.replica_diverged(1));
  EXPECT_FALSE(fs.replica_diverged(0));
  EXPECT_EQ(registry.counter_value("replicated.diverged"), 1u);
  EXPECT_EQ(r0.read_file("/doc").value(), "v2");
}

TEST_F(ParallelFsTest, HedgedReadReturnsTheDataFromWhicheverReplicaWins) {
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  IoScheduler scheduler(scheduler_options);
  LocalFs r0(make_root("h0")), r1(make_root("h1")), r2(make_root("h2"));
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  options.hedged_reads = true;
  ReplicatedFs fs({&r0, &r1, &r2}, options);
  ASSERT_TRUE(fs.write_file("/doc", "hedged payload").ok());

  auto file = fs.open("/doc", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());
  char buffer[64];
  for (int i = 0; i < 10; i++) {
    auto n = file.value()->pread(buffer, sizeof buffer, 0);
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    ASSERT_EQ(n.value(), 14u);
    EXPECT_EQ(std::string(buffer, 14), "hedged payload");
  }
  ASSERT_TRUE(file.value()->close().ok());
}

TEST_F(ParallelFsTest, HedgedReadSurvivesASlowAndAFailingReplica) {
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  IoScheduler scheduler(scheduler_options);
  LocalFs r0(make_root("s0")), r1(make_root("s1")), r2(make_root("s2"));
  VirtualClock clock;
  obs::Registry registry;
  FaultSchedule slow_schedule(11, &clock, &registry);
  FaultSchedule dead_schedule(12, &clock, &registry);
  FaultyFs slow(&r1, &slow_schedule);
  FaultyFs dead(&r2, &dead_schedule);
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  options.hedged_reads = true;
  ReplicatedFs fs({&r0, &slow, &dead}, options);
  ASSERT_TRUE(fs.write_file("/doc", "contents").ok());

  slow_schedule.add_latency(5 * kMillisecond, "pread");
  dead_schedule.fail_always(EIO, "pread");
  auto file = fs.open("/doc", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());
  char buffer[32];
  auto n = file.value()->pread(buffer, sizeof buffer, 0);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(std::string(buffer, n.value()), "contents");
  ASSERT_TRUE(file.value()->close().ok());
}

TEST_F(ParallelFsTest, HedgedReadNeverConsultsADivergedReplica) {
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  IoScheduler scheduler(scheduler_options);
  LocalFs r0(make_root("g0")), r1(make_root("g1"));
  VirtualClock clock;
  obs::Registry registry;
  FaultSchedule schedule(13, &clock, &registry);
  FaultyFs flaky(&r1, &schedule);
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  options.hedged_reads = true;
  ReplicatedFs fs({&r0, &flaky}, options);
  ASSERT_TRUE(fs.write_file("/doc", "v1").ok());
  // Replica 1 misses a mutation: it is now diverged and carrying stale
  // bytes, while still perfectly reachable — the dangerous combination for
  // a read race.
  schedule.fail_once(EIO, "pwrite");
  ASSERT_TRUE(fs.write_file("/doc", "fresh").ok());
  ASSERT_TRUE(fs.replica_diverged(1));
  ASSERT_NE(r1.read_file("/doc").value(), "fresh");

  auto file = fs.open("/doc", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());
  char buffer[32];
  for (int i = 0; i < 10; i++) {
    auto n = file.value()->pread(buffer, sizeof buffer, 0);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(std::string(buffer, n.value()), "fresh")
        << "hedged read raced a diverged replica in";
  }
  ASSERT_TRUE(file.value()->close().ok());
}

TEST_F(ParallelFsTest, HedgedReadSurvivesASchedulerThatRejectsEveryHedge) {
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 0;
  scheduler_options.max_queue = 0;  // every submit answers EBUSY
  IoScheduler scheduler(scheduler_options);
  LocalFs r0(make_root("q0")), r1(make_root("q1"));
  ASSERT_TRUE(r0.write_file("/doc", "still here").ok());
  ASSERT_TRUE(r1.write_file("/doc", "still here").ok());
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  options.hedged_reads = true;
  ReplicatedFs fs({&r0, &r1}, options);

  auto file = fs.open("/doc", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());
  char buffer[32];
  // A rejected hedge never consulted its replica, so the serial fallback
  // must still read it — a full queue is back-pressure, not data loss.
  auto n = file.value()->pread(buffer, sizeof buffer, 0);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(std::string(buffer, n.value()), "still here");
  // Regression: a refused hedge used to leak hedges_pending_, hanging this
  // close() (and the destructor) forever.
  ASSERT_TRUE(file.value()->close().ok());
}

TEST_F(ParallelFsTest, DistCreateProbesCandidatesInParallelAndAvoidsTheDead) {
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  IoScheduler scheduler(scheduler_options);
  LocalFs meta(make_root("meta"));
  LocalFs d0(make_root("data0")), d1(make_root("data1")),
      d2(make_root("data2"));
  VirtualClock clock;
  obs::Registry registry;
  FaultSchedule schedule(5, &clock, &registry);
  FaultyFs dead(&d1, &schedule);

  DistFs::Options options;
  options.name_seed = 99;
  options.scheduler = &scheduler;
  DistFs fs(&meta, {{"alpha", &d0}, {"beta", &dead}, {"gamma", &d2}},
            options);
  ASSERT_TRUE(fs.format().ok());
  schedule.fail_always(EHOSTUNREACH);  // server beta drops off the network

  // Every create must land on a live server: the parallel probe rules the
  // dead one out before the stub is written, so no create ever pays a
  // data-write failure against it.
  for (int i = 0; i < 12; i++) {
    std::string path = "/f" + std::to_string(i);
    ASSERT_TRUE(fs.write_file(path, "data").ok());
    auto stub = fs.locate(path);
    ASSERT_TRUE(stub.ok());
    EXPECT_NE(stub.value().server, "beta") << path;
    EXPECT_EQ(fs.read_file(path).value(), "data");
  }
}

TEST_F(ParallelFsTest, DistCreateFallsBackToAllServersWhenProbesAllFail) {
  IoScheduler scheduler;
  LocalFs meta(make_root("m2"));
  LocalFs d0(make_root("x0"));
  VirtualClock clock;
  obs::Registry registry;
  FaultSchedule schedule(6, &clock, &registry);
  FaultyFs flaky(&d0, &schedule);

  DistFs::Options options;
  options.name_seed = 7;
  options.scheduler = &scheduler;
  DistFs fs(&meta, {{"only", &flaky}, {"two", &flaky}}, options);
  ASSERT_TRUE(fs.format().ok());
  // Probes fail (stat is unreachable) but the server answers everything
  // else: the advisory probe must not turn a reachable system into ENODEV.
  schedule.fail_always(EHOSTUNREACH, "stat");
  ASSERT_TRUE(fs.write_file("/f", "data").ok());
  EXPECT_EQ(fs.read_file("/f").value(), "data");
}

}  // namespace
}  // namespace tss::fs
