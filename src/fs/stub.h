// Stub files: the pointers a distributed TSS filesystem stores where its
// directory tree indicates a file.
//
// "Where the directory structure indicates a file, it instead contains a
// stub file pointing to the file data elsewhere" (§5). A stub names the data
// server (by the name it was mounted under) and the data file's path within
// that server, e.g. the paper's /paper.txt -> host5:/mydpfs/file596.
#pragma once

#include <string>

#include "util/result.h"

namespace tss::fs {

struct Stub {
  std::string server;     // data server name as mounted in the DistFs
  std::string data_path;  // canonical path of the data file on that server

  std::string serialize() const;
  static Result<Stub> parse(std::string_view text);
};

}  // namespace tss::fs
