// The `kerberos` method: simulated ticket-based authentication.
//
// A toy KDC holds a principal database (principal -> user key) and a service
// key table. A client proves knowledge of its user key to obtain a service
// ticket; the ticket is MAC'd with the *service's* key, so the file server
// can verify it offline — this mirrors the real system, where the server
// needs access to the host key (hence "requires it to run as root"; here the
// key is handed to the server in its configuration).
//
// Ticket wire form (one token):
//   client=<urlenc principal>&service=<urlenc service>&expires=<unix>&mac=<hex>
#pragma once

#include <map>
#include <string>

#include "auth/auth.h"

namespace tss::auth {

class Kdc {
 public:
  // Registers a user principal with its long-term key.
  void add_principal(const std::string& principal, const std::string& key);
  // Registers a service (e.g. "chirp/host5.nd.edu") with its service key.
  void add_service(const std::string& service, const std::string& key);

  // Issues a service ticket if `user_key` matches the principal's key.
  Result<std::string> issue_ticket(const std::string& principal,
                                   const std::string& user_key,
                                   const std::string& service,
                                   int64_t expires_unix) const;

  // The service key, needed to configure the verifying server (plays the
  // role of the host keytab).
  Result<std::string> service_key(const std::string& service) const;

 private:
  std::map<std::string, std::string> principals_;
  std::map<std::string, std::string> services_;
};

struct KrbTicketFields {
  std::string client;
  std::string service;
  int64_t expires = 0;
  std::string mac;
};
Result<KrbTicketFields> parse_krb_ticket(const std::string& token);

class KerberosServerMethod final : public ServerMethod {
 public:
  // `service` is this server's principal; `service_key` its keytab entry.
  KerberosServerMethod(std::string service, std::string service_key,
                       TimeFn time_fn = real_time_fn());

  std::string method() const override { return "kerberos"; }
  bool interactive() const override { return false; }
  Result<Subject> authenticate(const PeerInfo& peer, const std::string& arg,
                               ChallengeIo& io) override;

 private:
  std::string service_;
  std::string service_key_;
  TimeFn time_fn_;
};

class KerberosClientCredential final : public ClientCredential {
 public:
  explicit KerberosClientCredential(std::string ticket)
      : ticket_(std::move(ticket)) {}
  std::string method() const override { return "kerberos"; }
  Result<std::string> hello_arg() override { return ticket_; }
  Result<std::string> answer(const std::string&) override {
    return Error(EPROTO, "kerberos method has no challenge");
  }

 private:
  std::string ticket_;
};

}  // namespace tss::auth
