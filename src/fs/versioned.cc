#include "fs/versioned.h"

#include <algorithm>

#include "util/path.h"
#include "util/strings.h"

namespace tss::fs {

VersionedFs::VersionedFs(FileSystem* base) : base_(base) {}

std::string VersionedFs::version_dir(const std::string& canonical) const {
  // Fully escape the path (including '/') so every versioned path maps to
  // exactly one flat directory; otherwise a numeric path component could
  // collide with a snapshot file of its parent.
  std::string token = url_encode(canonical);
  std::string escaped;
  for (char ch : token) {
    if (ch == '/') {
      escaped += "%2F";
    } else {
      escaped += ch;
    }
  }
  return std::string(kVersionRoot) + "/" + escaped;
}

Result<int> VersionedFs::next_sequence(const std::string& canonical) {
  auto entries = base_->readdir(version_dir(canonical));
  if (!entries.ok()) return 1;
  int highest = 0;
  for (const DirEntry& e : entries.value()) {
    auto n = parse_i64(e.name);
    if (n && *n > highest) highest = static_cast<int>(*n);
  }
  return highest + 1;
}

Result<void> VersionedFs::snapshot(const std::string& canonical) {
  auto info = base_->stat(canonical);
  if (!info.ok()) {
    // Nothing to preserve (new file): fine.
    if (info.error().code == ENOENT) return Result<void>::success();
    return std::move(info).take_error();
  }
  if (info.value().is_dir) return Result<void>::success();

  std::string dir = version_dir(canonical);
  TSS_RETURN_IF_ERROR(mkdir_recursive(*base_, dir));
  TSS_ASSIGN_OR_RETURN(int sequence, next_sequence(canonical));
  TSS_ASSIGN_OR_RETURN(std::string content, base_->read_file(canonical));
  return base_->write_file(dir + "/" + std::to_string(sequence), content);
}

Result<std::unique_ptr<File>> VersionedFs::open(const std::string& p,
                                                const OpenFlags& flags,
                                                uint32_t mode) {
  std::string canonical = path::sanitize(p);
  if (path::is_within(kVersionRoot, canonical)) {
    return Error(EACCES, "the version tree is managed, not written directly");
  }
  bool mutates =
      flags.write || flags.truncate || flags.append || flags.create;
  if (mutates) {
    TSS_RETURN_IF_ERROR(snapshot(canonical));
  }
  return base_->open(canonical, flags, mode);
}

Result<StatInfo> VersionedFs::stat(const std::string& p) {
  return base_->stat(path::sanitize(p));
}

Result<void> VersionedFs::unlink(const std::string& p) {
  std::string canonical = path::sanitize(p);
  if (path::is_within(kVersionRoot, canonical)) {
    return Error(EACCES, "the version tree is managed, not written directly");
  }
  TSS_RETURN_IF_ERROR(snapshot(canonical));
  return base_->unlink(canonical);
}

Result<void> VersionedFs::rename(const std::string& from,
                                 const std::string& to) {
  std::string f = path::sanitize(from), t = path::sanitize(to);
  if (path::is_within(kVersionRoot, f) || path::is_within(kVersionRoot, t)) {
    return Error(EACCES, "the version tree is managed, not written directly");
  }
  // The destination (if it exists) is about to be overwritten; the source
  // keeps its history under its old name for forensic lookup.
  TSS_RETURN_IF_ERROR(snapshot(t));
  TSS_RETURN_IF_ERROR(snapshot(f));
  return base_->rename(f, t);
}

Result<void> VersionedFs::mkdir(const std::string& p, uint32_t mode) {
  return base_->mkdir(path::sanitize(p), mode);
}

Result<void> VersionedFs::rmdir(const std::string& p) {
  return base_->rmdir(path::sanitize(p));
}

Result<void> VersionedFs::truncate(const std::string& p, uint64_t size) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(snapshot(canonical));
  return base_->truncate(canonical, size);
}

Result<std::vector<DirEntry>> VersionedFs::readdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_ASSIGN_OR_RETURN(auto entries, base_->readdir(canonical));
  if (canonical == "/") {
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [](const DirEntry& e) {
                                   return e.name == ".versions";
                                 }),
                  entries.end());
  }
  return entries;
}

Result<std::vector<VersionedFs::VersionInfo>> VersionedFs::versions(
    const std::string& p) {
  std::string canonical = path::sanitize(p);
  auto entries = base_->readdir(version_dir(canonical));
  if (!entries.ok()) {
    if (entries.error().code == ENOENT) return std::vector<VersionInfo>{};
    return std::move(entries).take_error();
  }
  std::vector<VersionInfo> out;
  for (const DirEntry& e : entries.value()) {
    auto n = parse_i64(e.name);
    if (!n) continue;
    out.push_back(VersionInfo{static_cast<int>(*n), e.info.size,
                              e.info.mtime});
  }
  std::sort(out.begin(), out.end(),
            [](const VersionInfo& a, const VersionInfo& b) {
              return a.sequence < b.sequence;
            });
  return out;
}

Result<std::string> VersionedFs::read_version(const std::string& p,
                                              int sequence) {
  std::string canonical = path::sanitize(p);
  return base_->read_file(version_dir(canonical) + "/" +
                          std::to_string(sequence));
}

Result<void> VersionedFs::restore(const std::string& p, int sequence) {
  std::string canonical = path::sanitize(p);
  TSS_ASSIGN_OR_RETURN(std::string old, read_version(canonical, sequence));
  TSS_RETURN_IF_ERROR(snapshot(canonical));  // restore is undoable
  return base_->write_file(canonical, old);
}

Result<void> VersionedFs::purge_versions(const std::string& p) {
  std::string canonical = path::sanitize(p);
  std::string dir = version_dir(canonical);
  auto entries = base_->readdir(dir);
  if (!entries.ok()) {
    if (entries.error().code == ENOENT) return Result<void>::success();
    return std::move(entries).take_error();
  }
  for (const DirEntry& e : entries.value()) {
    TSS_RETURN_IF_ERROR(base_->unlink(dir + "/" + e.name));
  }
  return base_->rmdir(dir);
}

}  // namespace tss::fs
