#include "util/clock.h"

#include <chrono>
#include <thread>

namespace tss {

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

Nanos RealClock::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::sleep_for(Nanos d) {
  if (d > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(d));
}

}  // namespace tss
