// The `globus` method: simulated Grid Security Infrastructure.
//
// Real GSI authenticates with X.509 proxy certificates signed by a CA. The
// simulation (documented in DESIGN.md §3) keeps the interface shape: a
// *credential* names a distinguished-name subject and an expiry, and carries
// a tag only the CA key can mint. Servers trust one or more CAs and verify
// tags; the resulting subject is "globus:<DN>", which is what the paper's
// ACLs (e.g. "globus:/O=Notre_Dame/*") match against.
//
// Credential wire form (one token, no spaces):
//   dn=<urlenc DN>&expires=<unix seconds>&ca=<ca name>&mac=<hex>
#pragma once

#include <map>
#include <string>

#include "auth/auth.h"

namespace tss::auth {

// A certificate authority: issues credentials. In a real deployment this is
// `grid-proxy-init`; here any test can stand up its own CA.
class GsiCa {
 public:
  GsiCa(std::string name, std::string key)
      : name_(std::move(name)), key_(std::move(key)) {}

  const std::string& name() const { return name_; }
  const std::string& key() const { return key_; }

  // Issues a credential for `dn` valid until `expires_unix`.
  std::string issue(const std::string& dn, int64_t expires_unix) const;

 private:
  std::string name_;
  std::string key_;
};

// Parsed credential fields (exposed for tests).
struct GsiCredentialFields {
  std::string dn;
  int64_t expires = 0;
  std::string ca;
  std::string mac;
};
Result<GsiCredentialFields> parse_gsi_credential(const std::string& token);

class GsiServerMethod final : public ServerMethod {
 public:
  explicit GsiServerMethod(TimeFn time_fn = real_time_fn());
  // Trust `ca` for verification. A server may trust several CAs.
  void trust(const GsiCa& ca);

  std::string method() const override { return "globus"; }
  bool interactive() const override { return false; }
  Result<Subject> authenticate(const PeerInfo& peer, const std::string& arg,
                               ChallengeIo& io) override;

 private:
  std::map<std::string, std::string> trusted_;  // ca name -> key
  TimeFn time_fn_;
};

class GsiClientCredential final : public ClientCredential {
 public:
  explicit GsiClientCredential(std::string credential)
      : credential_(std::move(credential)) {}
  std::string method() const override { return "globus"; }
  Result<std::string> hello_arg() override { return credential_; }
  Result<std::string> answer(const std::string&) override {
    return Error(EPROTO, "globus method has no challenge");
  }

 private:
  std::string credential_;
};

}  // namespace tss::auth
