// Mountlists: the adapter's private-namespace mechanism.
//
// "An application can be given a 'mountlist' that creates a private
// namespace by mapping logical names to external abstractions. For example:
//      /usr/local   /cfs/shared.cse.nd.edu/software
//      /data        /dsfs/archive.cse.nd.edu@run5/data         " (§6)
//
// A mountlist is parsed into (logical prefix, target) pairs; resolution is
// longest-prefix-wins, with the residual path appended to the target.
#pragma once

#include <string>
#include <vector>

#include "util/result.h"

namespace tss::adapter {

struct MountEntry {
  std::string logical;  // canonical logical prefix, e.g. "/usr/local"
  std::string target;   // canonical target, e.g. "/cfs/host:9094/software"
};

class MountList {
 public:
  // One "logical target" pair per line; blanks and '#' comments ignored.
  static Result<MountList> parse(std::string_view text);

  void add(const std::string& logical, const std::string& target);

  // Rewrites `path` through the longest matching logical prefix; returns
  // the path unchanged when nothing matches.
  std::string translate(const std::string& path) const;

  const std::vector<MountEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<MountEntry> entries_;
};

}  // namespace tss::adapter
