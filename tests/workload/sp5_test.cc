#include "workload/sp5.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "fs/local.h"

namespace tss::workload {
namespace {

class Sp5Test : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/sp5_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    fs_ = std::make_unique<fs::LocalFs>(root_);
    config_.script_count = 10;
    config_.script_bytes = 512;
    config_.library_count = 3;
    config_.library_bytes = 64 * 1024;
    config_.input_bytes = 256 * 1024;
    config_.event_input_bytes = 32 * 1024;
    config_.event_output_bytes = 4 * 1024;
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<fs::LocalFs> fs_;
  Sp5Config config_;
  static inline int counter_ = 0;
};

TEST_F(Sp5Test, InstallCreatesFullTree) {
  ASSERT_TRUE(sp5_install(*fs_, config_).ok());
  for (int i = 0; i < config_.script_count; i++) {
    auto info = fs_->stat(config_.script_path(i));
    ASSERT_TRUE(info.ok()) << config_.script_path(i);
    EXPECT_EQ(info.value().size, config_.script_bytes);
  }
  for (int i = 0; i < config_.library_count; i++) {
    EXPECT_EQ(fs_->stat(config_.library_path(i)).value().size,
              config_.library_bytes);
  }
  EXPECT_EQ(fs_->stat(config_.input_path()).value().size, config_.input_bytes);
  EXPECT_EQ(fs_->stat(config_.output_path()).value().size, 0u);
}

TEST_F(Sp5Test, InstallIsDeterministicPerSeed) {
  ASSERT_TRUE(sp5_install(*fs_, config_, 7).ok());
  std::string first = fs_->read_file(config_.script_path(0)).value();

  std::string other_root = root_ + "_b";
  std::filesystem::create_directories(other_root);
  fs::LocalFs other(other_root);
  ASSERT_TRUE(sp5_install(other, config_, 7).ok());
  EXPECT_EQ(other.read_file(config_.script_path(0)).value(), first);
  std::filesystem::remove_all(other_root);
}

TEST_F(Sp5Test, InitReadsWholeWorkingSet) {
  ASSERT_TRUE(sp5_install(*fs_, config_).ok());
  auto bytes = sp5_init(*fs_, config_);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(),
            static_cast<uint64_t>(config_.script_count) * config_.script_bytes +
                static_cast<uint64_t>(config_.library_count) *
                    config_.library_bytes);
}

TEST_F(Sp5Test, EventsAppendOutput) {
  ASSERT_TRUE(sp5_install(*fs_, config_).ok());
  for (int e = 0; e < 5; e++) {
    ASSERT_TRUE(sp5_event(*fs_, config_, e).ok());
  }
  auto info = fs_->stat(config_.output_path());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 5 * config_.event_output_bytes);
}

TEST_F(Sp5Test, InitFailsWithoutInstall) {
  EXPECT_FALSE(sp5_init(*fs_, config_).ok());
}

TEST_F(Sp5Test, ConfigByteAccounting) {
  EXPECT_EQ(config_.install_bytes(),
            10u * 512 + 3u * 64 * 1024 + 256u * 1024);
  EXPECT_EQ(config_.init_file_count(), 13);
}

}  // namespace
}  // namespace tss::workload
