file(REMOVE_RECURSE
  "CMakeFiles/tss_cli.dir/tss_main.cc.o"
  "CMakeFiles/tss_cli.dir/tss_main.cc.o.d"
  "tss"
  "tss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
