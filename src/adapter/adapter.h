// The adapter: what Parrot does for an application, as a library.
//
// "A TSS provides an adapter that securely and transparently connects
// existing applications to abstractions without special privileges or code
// changes." (§2) The ptrace trapping mechanism itself lives in src/parrot/;
// this class is everything above the trap: the namespace, the descriptor
// table, and the recovery/consistency policy.
//
// Namespace (§6):
//  * "By default, the adapter presents each abstraction as a new top-level
//    entry in the directory hierarchy with the second-level name identifying
//    a host or volume": paths of the form /cfs/<host:port>/... auto-mount a
//    CfsFs for that server on first use.
//  * A mountlist maps logical names to those targets.
//  * Abstractions built elsewhere (a DistFs, a LocalFs) can be mounted
//    explicitly with mount().
//
// Descriptor semantics: Chirp I/O uses explicit offsets, so the adapter owns
// the current-position state (open/read/write/lseek), exactly as Parrot
// maintains Unix descriptor state above the Chirp RPCs.
//
// The adapter performs no buffering or caching; `sync_writes` transparently
// appends O_SYNC to every open (§6).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "adapter/dsfs_mount.h"
#include "adapter/mountlist.h"
#include "auth/auth.h"
#include "fs/cached.h"
#include "fs/cfs.h"
#include "fs/filesystem.h"

namespace tss::adapter {

class Adapter {
 public:
  struct Options {
    // Credentials offered (in order) when auto-connecting to Chirp servers.
    std::vector<std::shared_ptr<auth::ClientCredential>> credentials;
    fs::RetryPolicy retry;     // §6 reconnect policy for auto-mounted CFS
    bool sync_writes = false;  // §6 synchronous-write switch
    Nanos io_timeout = 30 * kSecond;
    // Client-side read cache over auto-mounted /cfs targets (fs::CachedFs).
    // 0 (the default) preserves the paper's no-caching semantics; nonzero
    // bounds the cache and enables digest-validated, lease-revalidated
    // local serving of hot reads.
    uint64_t cache_capacity_bytes = 0;
    Nanos cache_lease_ttl = 2 * kSecond;
    // Offer the redirect capability on auto-mounted connections and follow
    // server deflections to sibling caches (cooperative hot-set fan-out).
    bool cooperative = false;
    // Registry for the fs.cache.* counters of auto-mounted caches. Null =
    // the process-wide registry.
    obs::Registry* cache_metrics = nullptr;
  };

  explicit Adapter(Options options);
  ~Adapter();

  // --- Namespace management ------------------------------------------------
  // The default namespace auto-mounts two path families (§6):
  //   /cfs/<host:port>/...           one Chirp server, untranslated
  //   /dsfs/<host:port>@<volume>/... a self-describing DSFS volume
  //
  // Mounts an externally owned abstraction at a logical prefix.
  void mount(const std::string& logical_prefix, fs::FileSystem* fs);
  // Installs mountlist entries (logical -> /cfs/... target or mounted name).
  Result<void> load_mountlist(const std::string& text);

  // Resolution result; exposed for tests and the parrot tracer.
  struct Resolved {
    fs::FileSystem* fs = nullptr;
    std::string path;  // path within `fs`
  };
  Result<Resolved> resolve(const std::string& path);

  // --- POSIX-like surface --------------------------------------------------
  Result<int> open(const std::string& path, int posix_flags,
                   uint32_t mode = 0644);
  Result<size_t> read(int fd, void* buf, size_t size);
  Result<size_t> write(int fd, const void* buf, size_t size);
  Result<size_t> pread(int fd, void* buf, size_t size, int64_t offset);
  Result<size_t> pwrite(int fd, const void* buf, size_t size, int64_t offset);
  Result<int64_t> lseek(int fd, int64_t offset, int whence);
  Result<void> fsync(int fd);
  Result<void> close(int fd);
  Result<fs::StatInfo> fstat(int fd);

  Result<fs::StatInfo> stat(const std::string& path);
  Result<void> unlink(const std::string& path);
  // Cross-abstraction renames fail with EXDEV, as for Unix mount points.
  Result<void> rename(const std::string& from, const std::string& to);
  Result<void> mkdir(const std::string& path, uint32_t mode = 0755);
  Result<void> rmdir(const std::string& path);
  Result<void> truncate(const std::string& path, uint64_t size);
  Result<std::vector<fs::DirEntry>> readdir(const std::string& path);

  // Whole-file convenience (used by the parrot tracer's fetch path).
  Result<std::string> read_file(const std::string& path);
  Result<void> write_file(const std::string& path, std::string_view data,
                          uint32_t mode = 0644);

  // Count of live descriptors (for leak checks in tests).
  size_t open_fd_count();

 private:
  // Returns (creating on first use) the CfsFs for "host:port".
  Result<fs::FileSystem*> cfs_for(const std::string& hostport);
  // Returns (mounting on first use) the DSFS named "host:port@volume".
  Result<fs::FileSystem*> dsfs_for(const std::string& spec);

  Options options_;
  MountList mounts_list_;
  std::mutex mutex_;
  std::vector<std::pair<std::string, fs::FileSystem*>> mounts_;  // explicit
  std::map<std::string, std::unique_ptr<fs::CfsFs>> cfs_cache_;
  // When cache_capacity_bytes > 0, each auto-mounted CfsFs is wrapped in a
  // CachedFs (keyed the same); resolution hands out the wrapper.
  std::map<std::string, std::unique_ptr<fs::CachedFs>> cfs_read_caches_;
  std::map<std::string, std::unique_ptr<DsfsMount>> dsfs_cache_;

  struct OpenFd {
    std::unique_ptr<fs::File> file;
    int64_t offset = 0;
    bool append = false;
  };
  std::map<int, OpenFd> fds_;
  int next_fd_ = 3;
};

}  // namespace tss::adapter
