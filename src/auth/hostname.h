// The `hostname` method: the weakest identity in the paper — the client is
// simply whoever the connecting host claims to be by reverse DNS. Useful for
// ACLs like "hostname:*.cse.nd.edu rwl". The resolver is injectable so tests
// and the simulator can model arbitrary cluster name spaces.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "auth/auth.h"

namespace tss::auth {

// Maps a peer IP to a domain name; empty result means unresolvable.
using HostnameResolver = std::function<std::string(const std::string& ip)>;

// Default resolver: trusts PeerInfo.hostname if present, else maps loopback
// addresses to "localhost", else uses the IP literal itself.
HostnameResolver default_hostname_resolver();

class HostnameServerMethod final : public ServerMethod {
 public:
  explicit HostnameServerMethod(HostnameResolver resolver = nullptr);
  std::string method() const override { return "hostname"; }
  bool interactive() const override { return false; }
  Result<Subject> authenticate(const PeerInfo& peer, const std::string& arg,
                               ChallengeIo& io) override;

 private:
  HostnameResolver resolver_;
};

class HostnameClientCredential final : public ClientCredential {
 public:
  std::string method() const override { return "hostname"; }
  Result<std::string> hello_arg() override { return std::string("-"); }
  Result<std::string> answer(const std::string&) override {
    return Error(EPROTO, "hostname method has no challenge");
  }
};

}  // namespace tss::auth
