// End-to-end data integrity, local half: deterministic corruption injection
// (FaultyFs bit-flip/truncate rules), the EBADMSG quarantine lifecycle in
// ReplicatedFs (serial failover and hedged reads), the background Scrubber's
// detect -> quarantine -> repair loop, and a seeded chaos soak asserting the
// PR's acceptance property: corrupt extents on a minority of replicas are
// never served to a reader and every replica converges back to the golden
// bytes. The wire half (chirp checksums) lives in integrity_wire_test.cc.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fs/faulty.h"
#include "fs/local.h"
#include "fs/replicated.h"
#include "fs/scrubber.h"
#include "obs/metrics.h"
#include "par/executor.h"
#include "util/checksum.h"
#include "util/clock.h"
#include "util/rand.h"

namespace tss::fs {
namespace {

class IntegrityTest : public ::testing::Test {
 protected:
  static constexpr int kReplicas = 3;

  void SetUp() override {
    base_ = ::testing::TempDir() + "/integrity_" +
            std::to_string(::getpid()) + "_" + std::to_string(counter_++);
    for (int i = 0; i < kReplicas; i++) {
      std::string root = base_ + "/r" + std::to_string(i);
      std::filesystem::create_directories(root);
      locals_.push_back(std::make_unique<LocalFs>(root));
      schedules_.push_back(std::make_unique<FaultSchedule>(0xBAD0 + i));
      faulty_.push_back(
          std::make_unique<FaultyFs>(locals_[i].get(), schedules_[i].get()));
    }
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::vector<FileSystem*> members(int count = kReplicas) {
    std::vector<FileSystem*> out;
    for (int i = 0; i < count; i++) out.push_back(faulty_[i].get());
    return out;
  }

  // Flips one bit of `path` directly on replica `i`'s disk — at-rest rot
  // that no wire checksum ever saw.
  void rot_at_rest(int i, const std::string& path, size_t byte_index) {
    auto data = locals_[i]->read_file(path);
    ASSERT_TRUE(data.ok()) << data.error().to_string();
    std::string bytes = data.value();
    ASSERT_LT(byte_index, bytes.size());
    bytes[byte_index] ^= 0x01;
    ASSERT_TRUE(locals_[i]->write_file(path, bytes).ok());
  }

  std::string base_;
  std::vector<std::unique_ptr<LocalFs>> locals_;
  std::vector<std::unique_ptr<FaultSchedule>> schedules_;
  std::vector<std::unique_ptr<FaultyFs>> faulty_;
  static inline int counter_ = 0;
};

// --- FaultyFs corruption rules ----------------------------------------------

TEST_F(IntegrityTest, BitFlipCorruptionIsDeterministicAcrossRuns) {
  const std::string payload = "the bytes that were written";
  std::string seen[2];
  for (int run = 0; run < 2; run++) {
    std::string root = base_ + "/det" + std::to_string(run);
    std::filesystem::create_directories(root);
    LocalFs local(root);
    FaultSchedule schedule(0xD13);  // same seed both runs
    schedule.corrupt_bit_flip("pread");
    FaultyFs flaky(&local, &schedule);
    ASSERT_TRUE(flaky.write_file("/doc", payload).ok());
    auto got = flaky.read_file("/doc");
    ASSERT_TRUE(got.ok());
    seen[run] = got.value();
  }
  // Same seed, same op order: the same single bit is flipped both times.
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_NE(seen[0], payload);
  size_t differing = 0;
  for (size_t i = 0; i < payload.size(); i++) {
    if (seen[0][i] != payload[i]) differing++;
  }
  EXPECT_EQ(differing, 1u);
}

TEST_F(IntegrityTest, ReadTruncationZeroFillsTheTailButReportsFullCount) {
  schedules_[0]->corrupt_truncate("pread");
  ASSERT_TRUE(faulty_[0]->write_file("/doc", "0123456789abcdef").ok());
  auto got = faulty_[0]->read_file("/doc");
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().size(), 16u);  // silent: the count lies
  EXPECT_EQ(got.value().substr(0, 8), "01234567");
  EXPECT_EQ(got.value().substr(8), std::string(8, '\0'));
}

TEST_F(IntegrityTest, WriteCorruptionIsSilentAtRest) {
  // A bad controller on the write path: the caller sees full success (and
  // any digest it computed stays true to what it *sent*), but the bytes at
  // rest are wrong. Exactly the rot the scrubber exists to catch.
  schedules_[1]->corrupt_bit_flip("pwrite");
  const std::string payload = "these bytes will rot in flight";
  ASSERT_TRUE(faulty_[1]->write_file("/doc", payload).ok());
  auto at_rest = locals_[1]->read_file("/doc");
  ASSERT_TRUE(at_rest.ok());
  EXPECT_NE(at_rest.value(), payload);
  EXPECT_EQ(at_rest.value().size(), payload.size());
}

// --- Quarantine lifecycle in ReplicatedFs -----------------------------------

TEST_F(IntegrityTest, IntegrityErrorQuarantinesWithoutTrippingTheBreaker) {
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.write_file("/doc", "verified payload").ok());

  // Replica 0 starts answering reads with bytes that fail verification.
  schedules_[0]->fail_always(EBADMSG, "pread");
  for (int round = 0; round < 5; round++) {
    auto got = fs.read_file("/doc");
    ASSERT_TRUE(got.ok()) << got.error().to_string();
    EXPECT_EQ(got.value(), "verified payload");
  }
  // Quarantined exactly once, and the breaker never opened: the replica is
  // reachable — this is a data problem, not an availability problem.
  EXPECT_TRUE(fs.replica_quarantined(0));
  EXPECT_TRUE(fs.replica_available(0));
  EXPECT_EQ(registry.counter_value("fs.integrity.quarantine"), 1u);
  EXPECT_EQ(registry.counter_value("fs.integrity.mismatch"), 1u);
  EXPECT_EQ(registry.counter_value("replicated.breaker_opens"), 0u);
  EXPECT_EQ(registry.gauge("fs.integrity.quarantined")->value(), 1);

  // Once quarantined, the replica is not consulted for reads at all.
  uint64_t ops_at_quarantine = schedules_[0]->ops_seen();
  for (int round = 0; round < 5; round++) {
    EXPECT_EQ(fs.read_file("/doc").value(), "verified payload");
  }
  EXPECT_EQ(schedules_[0]->ops_seen(), ops_at_quarantine);

  // repair() re-verifies the copy (it was never actually wrong here) and
  // lifts the quarantine.
  schedules_[0]->clear();
  ASSERT_TRUE(fs.repair("/doc").ok());
  EXPECT_FALSE(fs.replica_quarantined(0));
  EXPECT_EQ(registry.counter_value("fs.integrity.repaired"), 1u);
  EXPECT_EQ(registry.gauge("fs.integrity.quarantined")->value(), 0);
}

TEST_F(IntegrityTest, AllReplicasQuarantinedStillAnswersAsLastResort) {
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.write_file("/doc", "payload").ok());
  for (int i = 0; i < kReplicas; i++) fs.quarantine(i);
  // Every replica is suspect, but suspect bytes beat no bytes: the second
  // failover pass consults them rather than synthesizing an error.
  EXPECT_EQ(fs.read_file("/doc").value(), "payload");
}

TEST_F(IntegrityTest, HedgedReadsExcludeTheQuarantinedReplica) {
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  IoScheduler scheduler(scheduler_options);
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  options.hedged_reads = true;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.write_file("/doc", "hedged integrity").ok());

  schedules_[0]->fail_always(EBADMSG, "pread");
  auto file = fs.open("/doc", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());
  char buffer[64];
  // The corrupt replica may be the fastest in the race; it must never win.
  for (int round = 0; round < 20; round++) {
    auto n = file.value()->pread(buffer, sizeof buffer, 0);
    ASSERT_TRUE(n.ok()) << n.error().to_string();
    EXPECT_EQ(std::string(buffer, n.value()), "hedged integrity");
  }
  ASSERT_TRUE(file.value()->close().ok());
  EXPECT_TRUE(fs.replica_quarantined(0));
  EXPECT_EQ(registry.counter_value("fs.integrity.quarantine"), 1u);
}

TEST_F(IntegrityTest, CorruptReplicaUnderHedgePressureNeverBreaksAccounting) {
  // Chaos regression for the PR 5 hedge-accounting fix: a corrupt replica
  // racing hedged reads while the scheduler queue rejects submissions must
  // never drive the pending-hedge count below zero — if it did, the drain
  // in pwrite/close would hang this test forever.
  //
  // The setup write goes through a serial ReplicatedFs: pushing it through
  // the deliberately-tiny queue below would let replica writes be rejected,
  // leaving truncated diverged copies — a different scenario than the one
  // under test.
  {
    ReplicatedFs setup(members(), ReplicatedFs::Options{});
    ASSERT_TRUE(setup.write_file("/doc", "pressure payload").ok());
  }
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 2;
  scheduler_options.max_queue = 1;  // force the rejection path constantly
  IoScheduler scheduler(scheduler_options);
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  options.hedged_reads = true;
  ReplicatedFs fs(members(), options);
  schedules_[0]->fail_always(EBADMSG, "pread");

  char buffer[64];
  for (int round = 0; round < 10; round++) {
    auto file = fs.open("/doc", OpenFlags::parse("r").value());
    ASSERT_TRUE(file.ok()) << file.error().to_string();
    for (int i = 0; i < 10; i++) {
      auto n = file.value()->pread(buffer, sizeof buffer, 0);
      ASSERT_TRUE(n.ok()) << n.error().to_string();
      EXPECT_EQ(std::string(buffer, n.value()), "pressure payload");
    }
    // close() drains every pending hedge (winners, losers, and rolled-back
    // rejections alike); an accounting leak in either direction would wedge
    // right here and time the test out.
    ASSERT_TRUE(file.value()->close().ok());
  }
}

// --- The scrubber ------------------------------------------------------------

TEST_F(IntegrityTest, ScrubberDetectsQuarantinesAndRepairsAtRestRot) {
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  ReplicatedFs fs(members(), options);
  const std::string golden = "bytes worth keeping, replicated thrice";
  ASSERT_TRUE(fs.mkdir("/d").ok());
  ASSERT_TRUE(fs.write_file("/d/doc", golden).ok());
  rot_at_rest(1, "/d/doc", 7);

  Scrubber::Options scrub_options;
  scrub_options.metrics = &registry;
  Scrubber scrubber(&fs, scrub_options);
  auto report = scrubber.scrub_file("/d/doc");
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report.value().mismatch);
  EXPECT_TRUE(report.value().repaired);
  EXPECT_FALSE(report.value().unresolved);

  // The minority copy was quarantined, rewritten from the majority, and the
  // quarantine lifted — a direct read of that replica now verifies clean.
  EXPECT_EQ(locals_[1]->read_file("/d/doc").value(), golden);
  EXPECT_FALSE(fs.replica_quarantined(1));
  EXPECT_EQ(registry.counter_value("fs.integrity.mismatch"), 1u);
  EXPECT_EQ(registry.counter_value("fs.integrity.quarantine"), 1u);
  EXPECT_EQ(registry.counter_value("fs.integrity.repaired"), 1u);
  EXPECT_GE(registry.counter_value("fs.integrity.scrub_bytes"),
            golden.size() * kReplicas);

  // A second pass over the healed file is quiet.
  auto again = scrubber.scrub_file("/d/doc");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().mismatch);
  EXPECT_EQ(registry.counter_value("fs.integrity.mismatch"), 1u);
}

TEST_F(IntegrityTest, ScrubberLeavesATieUnresolvedForTheOperator) {
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  ReplicatedFs fs(members(2), options);  // two replicas: 1-vs-1 on rot
  ASSERT_TRUE(fs.write_file("/doc", "two copies, no referee").ok());
  rot_at_rest(1, "/doc", 3);
  std::string copy0 = locals_[0]->read_file("/doc").value();
  std::string copy1 = locals_[1]->read_file("/doc").value();

  Scrubber::Options scrub_options;
  scrub_options.metrics = &registry;
  Scrubber scrubber(&fs, scrub_options);
  auto report = scrubber.scrub_file("/doc");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().mismatch);
  EXPECT_TRUE(report.value().unresolved);
  EXPECT_FALSE(report.value().repaired);
  EXPECT_EQ(registry.counter_value("fs.scrub.unresolved"), 1u);
  // No strict majority means no golden copy: the scrubber must not guess,
  // so neither replica is rewritten (the operator runbook takes over).
  EXPECT_EQ(locals_[0]->read_file("/doc").value(), copy0);
  EXPECT_EQ(locals_[1]->read_file("/doc").value(), copy1);
}

TEST_F(IntegrityTest, ScrubberTrustsWireProofOverTheVote) {
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  ReplicatedFs fs(members(), options);
  const std::string golden = "majority rules";
  ASSERT_TRUE(fs.write_file("/doc", golden).ok());
  // Replica 2's reads fail verification at the transport: that is proof of
  // corruption on its own — no digest vote needed to convict.
  schedules_[2]->fail_always(EBADMSG, "pread");

  Scrubber::Options scrub_options;
  scrub_options.metrics = &registry;
  Scrubber scrubber(&fs, scrub_options);
  auto report = scrubber.scrub_file("/doc");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().mismatch);
  EXPECT_TRUE(report.value().repaired);
  EXPECT_GE(registry.counter_value("fs.integrity.mismatch"), 1u);
  // repair() rewrote the copy from the (agreeing) majority and lifted the
  // quarantine; with the fault cleared, the replica reads back clean.
  schedules_[2]->clear();
  EXPECT_FALSE(fs.replica_quarantined(2));
  EXPECT_EQ(locals_[2]->read_file("/doc").value(), golden);
}

TEST_F(IntegrityTest, ScrubberLiftsAStaleQuarantineWhenCopiesAgree) {
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.write_file("/doc", "actually fine").ok());
  // A transient wire mismatch quarantined replica 0, but its bytes at rest
  // were never wrong (or the corruption cleared). The scrub re-verifies and
  // releases it instead of leaving the replica benched forever.
  fs.quarantine(0);
  Scrubber::Options scrub_options;
  scrub_options.metrics = &registry;
  Scrubber scrubber(&fs, scrub_options);
  auto report = scrubber.scrub_file("/doc");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().mismatch);
  EXPECT_FALSE(fs.replica_quarantined(0));
  EXPECT_EQ(registry.counter_value("fs.integrity.repaired"), 1u);
}

TEST_F(IntegrityTest, ScrubTreeWalksTheNamespaceAndPacesItself) {
  obs::Registry registry;
  VirtualClock clock;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  ReplicatedFs fs(members(), options);
  ASSERT_TRUE(fs.mkdir("/a").ok());
  ASSERT_TRUE(fs.mkdir("/a/b").ok());
  std::string blob(4096, 'x');
  ASSERT_TRUE(fs.write_file("/a/one", blob).ok());
  ASSERT_TRUE(fs.write_file("/a/b/two", blob).ok());
  ASSERT_TRUE(fs.write_file("/three", blob).ok());

  Scrubber::Options scrub_options;
  scrub_options.metrics = &registry;
  scrub_options.chunk_size = 512;
  scrub_options.max_bytes_per_sec = 64 * 1024;
  scrub_options.clock = &clock;
  Scrubber scrubber(&fs, scrub_options);
  auto files = scrubber.scrub_tree("/");
  ASSERT_TRUE(files.ok()) << files.error().to_string();
  EXPECT_EQ(files.value(), 3);
  EXPECT_EQ(registry.counter_value("fs.scrub.files"), 3u);
  // 3 files x 3 replicas x 4 KiB at 64 KiB/s: the token bucket must have
  // slept the (virtual) clock forward by roughly half a second.
  EXPECT_GE(registry.counter_value("fs.integrity.scrub_bytes"),
            3u * kReplicas * blob.size());
  EXPECT_GT(clock.now(), 400 * kMillisecond);
}

TEST_F(IntegrityTest, BackgroundScrubberHealsRotWhileRunning) {
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  ReplicatedFs fs(members(), options);
  const std::string golden = "healed in the background";
  ASSERT_TRUE(fs.write_file("/doc", golden).ok());
  rot_at_rest(2, "/doc", 0);

  Scrubber::Options scrub_options;
  scrub_options.metrics = &registry;
  scrub_options.interval = kMillisecond;
  Scrubber scrubber(&fs, scrub_options);
  scrubber.start();
  for (int i = 0; i < 500; i++) {
    if (registry.counter_value("fs.integrity.repaired") >= 1 &&
        scrubber.passes() >= 2) {
      break;
    }
    RealClock::instance().sleep_for(10 * kMillisecond);
  }
  scrubber.stop();
  EXPECT_GE(scrubber.passes(), 2u);
  EXPECT_EQ(locals_[2]->read_file("/doc").value(), golden);
  EXPECT_FALSE(fs.replica_quarantined(2));
  // stop() is idempotent and start() after stop() works.
  scrubber.stop();
}

// --- The acceptance soak -----------------------------------------------------

TEST_F(IntegrityTest, ChaosCorruptionSoakNeverServesCorruptBytes) {
  // Seeded end-to-end soak: flip random extents at rest on a random minority
  // replica, scrub, then read everything back serially and hedged. The
  // acceptance bar: zero corrupt bytes ever returned to a reader, and every
  // replica converges back to the golden bytes.
  Rng rng(0x50AC);
  IoScheduler::Options scheduler_options;
  scheduler_options.workers = 4;
  IoScheduler scheduler(scheduler_options);
  obs::Registry registry;
  ReplicatedFs::Options options;
  options.metrics = &registry;
  options.scheduler = &scheduler;
  options.hedged_reads = true;
  ReplicatedFs fs(members(), options);

  constexpr int kFiles = 6;
  constexpr int kRounds = 4;
  ASSERT_TRUE(fs.mkdir("/data").ok());
  std::vector<std::string> paths;
  std::vector<std::string> golden;
  for (int f = 0; f < kFiles; f++) {
    std::string path = "/data/f" + std::to_string(f);
    size_t size = 64 + rng.below(16 * 1024);
    std::string bytes;
    bytes.reserve(size);
    for (size_t i = 0; i < size; i++) {
      bytes.push_back(static_cast<char>(rng.next()));
    }
    ASSERT_TRUE(fs.write_file(path, bytes).ok());
    paths.push_back(path);
    golden.push_back(std::move(bytes));
  }

  Scrubber::Options scrub_options;
  scrub_options.metrics = &registry;
  scrub_options.scheduler = &scheduler;
  Scrubber scrubber(&fs, scrub_options);

  for (int round = 0; round < kRounds; round++) {
    // Corrupt a random extent of every file on one random replica — always
    // a strict minority, so the digest vote can convict it.
    for (int f = 0; f < kFiles; f++) {
      int victim = static_cast<int>(rng.below(kReplicas));
      size_t at = rng.below(golden[f].size());
      if (rng.below(4) == 0) {
        // Occasionally rot a whole tail, as a torn write would.
        auto data = locals_[victim]->read_file(paths[f]);
        ASSERT_TRUE(data.ok());
        std::string bytes = data.value();
        for (size_t i = at; i < bytes.size(); i++) bytes[i] = '\0';
        ASSERT_TRUE(locals_[victim]->write_file(paths[f], bytes).ok());
      } else {
        rot_at_rest(victim, paths[f], at);
      }
    }
    auto scrubbed = scrubber.scrub_tree("/data");
    ASSERT_TRUE(scrubbed.ok()) << scrubbed.error().to_string();
    ASSERT_EQ(scrubbed.value(), kFiles);

    // Phase check: nothing corrupt is ever served, serial or hedged.
    for (int f = 0; f < kFiles; f++) {
      auto hedged = fs.read_file(paths[f]);
      ASSERT_TRUE(hedged.ok()) << hedged.error().to_string();
      ASSERT_EQ(hedged.value(), golden[f]) << "round " << round << " " <<
          paths[f];
    }
  }

  // Convergence: after the last scrub, every replica holds the golden bytes
  // and no quarantine is left standing.
  for (int f = 0; f < kFiles; f++) {
    uint64_t want = fnv1a64(golden[f]);
    for (int i = 0; i < kReplicas; i++) {
      auto copy = locals_[i]->read_file(paths[f]);
      ASSERT_TRUE(copy.ok());
      EXPECT_EQ(fnv1a64(copy.value()), want)
          << paths[f] << " replica " << i;
    }
  }
  for (int i = 0; i < kReplicas; i++) {
    EXPECT_FALSE(fs.replica_quarantined(i)) << "replica " << i;
  }
  EXPECT_EQ(registry.gauge("fs.integrity.quarantined")->value(), 0);
  EXPECT_GE(registry.counter_value("fs.integrity.repaired"), 1u);
  EXPECT_EQ(registry.counter_value("fs.scrub.unresolved"), 0u);
}

}  // namespace
}  // namespace tss::fs
