#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "util/strings.h"

namespace tss::net {

namespace {

Result<Endpoint> endpoint_from_sockaddr(const sockaddr_in& sa) {
  char buf[INET_ADDRSTRLEN];
  if (!inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof buf)) {
    return Error::from_errno("inet_ntop");
  }
  return Endpoint{buf, ntohs(sa.sin_port)};
}

// poll() with EINTR retry against an absolute deadline: a stray signal must
// neither surface as an I/O error nor silently extend the timeout.
int poll_one(int fd, short events, Nanos timeout) {
  Nanos deadline =
      timeout < 0 ? -1 : RealClock::instance().now() + timeout;
  while (true) {
    int ms = -1;
    if (timeout >= 0) {
      Nanos left = deadline - RealClock::instance().now();
      if (left < 0) left = 0;
      ms = static_cast<int>((left + kMillisecond - 1) / kMillisecond);
    }
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc;
  }
}

}  // namespace

std::string Endpoint::to_string() const {
  return host + ":" + std::to_string(port);
}

Result<Endpoint> Endpoint::parse(const std::string& s) {
  size_t pos = s.rfind(':');
  if (pos == std::string::npos || pos == 0 || pos + 1 >= s.size()) {
    return Error(EINVAL, "bad endpoint: " + s);
  }
  auto port = parse_u64(s.substr(pos + 1));
  if (!port || *port > 65535) {
    return Error(EINVAL, "bad endpoint port: " + s);
  }
  return Endpoint{s.substr(0, pos), static_cast<uint16_t>(*port)};
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpSocket> TcpSocket::connect(const Endpoint& ep, Nanos timeout) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string port_str = std::to_string(ep.port);
  int rc = ::getaddrinfo(ep.host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Error(EHOSTUNREACH,
                 "resolve " + ep.host + ": " + gai_strerror(rc));
  }
  Fd fd(::socket(res->ai_family, res->ai_socktype | SOCK_NONBLOCK, 0));
  if (!fd.valid()) {
    ::freeaddrinfo(res);
    return Error::from_errno("socket");
  }
  rc = ::connect(fd.get(), res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  // EINTR on a non-blocking connect means the handshake proceeds
  // asynchronously (POSIX) — fall through to the completion poll, same as
  // EINPROGRESS.
  if (rc < 0 && errno != EINPROGRESS && errno != EINTR) {
    return Error::from_errno("connect " + ep.to_string());
  }
  if (rc < 0) {
    int prc = poll_one(fd.get(), POLLOUT, timeout);
    if (prc == 0) return Error(ETIMEDOUT, "connect " + ep.to_string());
    if (prc < 0) return Error::from_errno("poll");
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Error::from_errno("getsockopt");
    }
    if (err != 0) {
      return Error::from_errno(err, "connect " + ep.to_string());
    }
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpSocket(std::move(fd));
}

Result<void> TcpSocket::wait_io(bool want_read, Nanos timeout) {
  int rc = poll_one(fd_.get(), want_read ? POLLIN : POLLOUT, timeout);
  if (rc == 0) return Error(ETIMEDOUT, "socket timeout");
  if (rc < 0) return Error::from_errno("poll");
  return Result<void>::success();
}

Result<size_t> TcpSocket::read_some(void* data, size_t size, Nanos timeout) {
  if (!fd_.valid()) return Error(EBADF, "socket closed");
  while (true) {
    ssize_t n = ::recv(fd_.get(), data, size, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      TSS_RETURN_IF_ERROR(wait_io(/*want_read=*/true, timeout));
      continue;
    }
    return Error::from_errno("recv");
  }
}

Result<void> TcpSocket::read_exact(void* data, size_t size, Nanos timeout) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    TSS_ASSIGN_OR_RETURN(size_t n, read_some(p + got, size - got, timeout));
    if (n == 0) return Error(ECONNRESET, "unexpected EOF");
    got += n;
  }
  return Result<void>::success();
}

Result<void> TcpSocket::write_all(const void* data, size_t size,
                                  Nanos timeout) {
  if (!fd_.valid()) return Error(EBADF, "socket closed");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_.get(), p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      TSS_RETURN_IF_ERROR(wait_io(/*want_read=*/false, timeout));
      continue;
    }
    return Error::from_errno("send");
  }
  return Result<void>::success();
}

Result<void> TcpSocket::writev_all(const iovec* iov, int iovcnt,
                                   Nanos timeout) {
  if (!fd_.valid()) return Error(EBADF, "socket closed");
  // Mutable copy: partial sends advance base/len without touching the
  // caller's array.
  std::vector<iovec> v(iov, iov + iovcnt);
  size_t idx = 0;
  while (idx < v.size()) {
    msghdr msg{};
    msg.msg_iov = v.data() + idx;
    msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(v.size() - idx);
    ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        TSS_RETURN_IF_ERROR(wait_io(/*want_read=*/false, timeout));
        continue;
      }
      return Error::from_errno("sendmsg");
    }
    size_t left = static_cast<size_t>(n);
    while (idx < v.size() && left >= v[idx].iov_len) {
      left -= v[idx].iov_len;
      ++idx;
    }
    if (idx < v.size() && left > 0) {
      v[idx].iov_base = static_cast<char*>(v[idx].iov_base) + left;
      v[idx].iov_len -= left;
    }
  }
  return Result<void>::success();
}

Result<Endpoint> TcpSocket::peer() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getpeername(fd_.get(), reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    return Error::from_errno("getpeername");
  }
  return endpoint_from_sockaddr(sa);
}

Result<Endpoint> TcpSocket::local() const {
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    return Error::from_errno("getsockname");
  }
  return endpoint_from_sockaddr(sa);
}

Result<TcpListener> TcpListener::listen(const std::string& host, uint16_t port,
                                        int backlog, bool reuse_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Error::from_errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) <
        0) {
      return Error::from_errno("setsockopt SO_REUSEPORT");
    }
#else
    return Error(EOPNOTSUPP, "SO_REUSEPORT unsupported on this platform");
#endif
  }

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    if (host == "localhost") {
      sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    } else {
      return Error(EINVAL, "bad listen address: " + host);
    }
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof sa) < 0) {
    return Error::from_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) < 0) return Error::from_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return Error::from_errno("getsockname");
  }
  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<TcpSocket> TcpListener::accept(Nanos timeout) {
  if (!fd_.valid()) return Error(EBADF, "listener closed");
  Nanos deadline =
      timeout < 0 ? -1 : RealClock::instance().now() + timeout;
  while (true) {
    Nanos left = timeout;
    if (timeout >= 0) {
      left = deadline - RealClock::instance().now();
      if (left < 0) left = 0;
    }
    int prc = poll_one(fd_.get(), POLLIN, left);
    if (prc == 0) return Error(ETIMEDOUT, "accept timeout");
    if (prc < 0) return Error::from_errno("poll");
    int cfd = ::accept4(fd_.get(), nullptr, nullptr, SOCK_NONBLOCK);
    if (cfd < 0) {
      // EINTR: interrupted, retry. ECONNABORTED / EAGAIN: the pending
      // connection died between poll and accept — re-poll with whatever
      // deadline remains rather than failing the acceptor.
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
          errno == EWOULDBLOCK) {
        continue;
      }
      return Error::from_errno("accept");
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return TcpSocket(Fd(cfd));
  }
}

}  // namespace tss::net
