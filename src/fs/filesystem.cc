#include "fs/filesystem.h"

#include "util/path.h"

namespace tss::fs {

Result<std::string> FileSystem::read_file(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(auto file, open(p, OpenFlags::parse("r").value()));
  std::string data;
  char buf[64 * 1024];
  int64_t offset = 0;
  while (true) {
    TSS_ASSIGN_OR_RETURN(size_t n, file->pread(buf, sizeof buf, offset));
    if (n == 0) break;
    data.append(buf, n);
    offset += static_cast<int64_t>(n);
  }
  return data;
}

Result<void> FileSystem::write_file(const std::string& p,
                                    std::string_view data, uint32_t mode) {
  TSS_ASSIGN_OR_RETURN(auto file,
                       open(p, OpenFlags::parse("wct").value(), mode));
  size_t written = 0;
  while (written < data.size()) {
    TSS_ASSIGN_OR_RETURN(
        size_t n, file->pwrite(data.data() + written, data.size() - written,
                               static_cast<int64_t>(written)));
    if (n == 0) return Error(EIO, "short write");
    written += n;
  }
  return file->close();
}

Result<void> mkdir_recursive(FileSystem& fs, const std::string& p,
                             uint32_t mode) {
  std::string canonical = path::sanitize(p);
  std::string current = "/";
  for (const std::string& component : path::components(canonical)) {
    current = path::join(current, component);
    auto rc = fs.mkdir(current, mode);
    if (!rc.ok() && rc.error().code != EEXIST) {
      return rc;
    }
  }
  return Result<void>::success();
}

Result<uint64_t> copy_file(FileSystem& src, const std::string& src_path,
                           FileSystem& dst, const std::string& dst_path,
                           size_t chunk_size) {
  TSS_ASSIGN_OR_RETURN(auto in,
                       src.open(src_path, OpenFlags::parse("r").value()));
  TSS_ASSIGN_OR_RETURN(
      auto out, dst.open(dst_path, OpenFlags::parse("wct").value(), 0644));
  std::string buf(chunk_size, '\0');
  int64_t offset = 0;
  while (true) {
    TSS_ASSIGN_OR_RETURN(size_t n, in->pread(buf.data(), buf.size(), offset));
    if (n == 0) break;
    size_t written = 0;
    while (written < n) {
      TSS_ASSIGN_OR_RETURN(
          size_t w, out->pwrite(buf.data() + written, n - written,
                                offset + static_cast<int64_t>(written)));
      if (w == 0) return Error(EIO, "short write during copy");
      written += w;
    }
    offset += static_cast<int64_t>(n);
  }
  TSS_RETURN_IF_ERROR(out->close());
  return static_cast<uint64_t>(offset);
}

}  // namespace tss::fs
