// The catalog service: storage discovery for a TSS.
//
// "Each file server periodically reports itself to one or more catalogs,
// describing its current state, owner, access controls, and other details.
// The catalogs in turn publish an aggregate list of the file servers in a
// variety of data formats." (§2, §4)
//
// A report is one line on a short-lived TCP connection; listings are served
// as plain text or JSON. Records expire after a configurable timeout ("if a
// server does not report to a catalog after a configurable timeout, it is
// removed from the listing"). All catalog data is necessarily stale —
// abstractions must revalidate against the file servers themselves.
//
// Connections run as resumable sessions on the shared serving stack
// (net::ServerLoop): the epoll reactor by default, or thread-per-connection
// under TSS_NET_MODE=thread. A flood of reporting servers costs buffered
// connections, not threads.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/server_loop.h"
#include "net/socket.h"
#include "util/clock.h"
#include "util/result.h"

namespace tss::catalog {

// What a file server says about itself.
struct ServerReport {
  std::string name;       // server's self-chosen name (usually its hostname)
  std::string owner;      // owner subject, e.g. "unix:dthain"
  net::Endpoint address;  // where to reach the Chirp service
  uint64_t total_bytes = 0;
  uint64_t free_bytes = 0;
  std::string root_acl;   // serialized top-level ACL

  // Wire form: "report k=v&k=v..." with percent-encoded values.
  std::string encode() const;
  static Result<ServerReport> decode(const std::string& token);
};

// A report plus catalog bookkeeping.
struct ServerRecord {
  ServerReport report;
  Nanos last_seen = 0;
};

// The catalog server.
class CatalogServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    Nanos timeout = 5 * 60 * kSecond;  // staleness eviction window
  };

  explicit CatalogServer(Options options, Clock* clock = nullptr);
  ~CatalogServer();

  Result<void> start();
  void stop();
  uint16_t port() const { return loop_.port(); }
  net::Endpoint endpoint() const {
    return net::Endpoint{options_.host, loop_.port()};
  }

  // Direct (in-process) interface, also used by the wire handlers.
  void accept_report(const ServerReport& report);
  std::vector<ServerRecord> list();          // purges expired records first
  size_t size();                             // after purge
  void purge_expired();

  // Listing renderers ("a variety of data formats").
  std::string render_text();
  std::string render_json();

 private:
  Options options_;
  Clock* clock_;
  net::ServerLoop loop_;
  std::mutex mutex_;
  std::map<std::string, ServerRecord> records_;  // keyed by address string
};

// --- Client side ------------------------------------------------------------

// Sends one report to one catalog (one-shot connection).
Result<void> send_report(const net::Endpoint& catalog,
                         const ServerReport& report,
                         Nanos timeout = 5 * kSecond);

// Fetches and parses the catalog listing.
Result<std::vector<ServerReport>> query(const net::Endpoint& catalog,
                                        Nanos timeout = 5 * kSecond);

// Background reporter: periodically pushes a snapshot (produced by a
// callback, so space numbers stay fresh) to one or more catalogs. This is
// the client half of "each file server periodically reports itself to one
// or more catalogs".
class Reporter {
 public:
  using Snapshot = std::function<ServerReport()>;

  Reporter(std::vector<net::Endpoint> catalogs, Snapshot snapshot,
           Nanos period);
  ~Reporter();

  void start();
  void stop();
  // Pushes one report immediately (also used by start()).
  void report_now();

 private:
  std::vector<net::Endpoint> catalogs_;
  Snapshot snapshot_;
  Nanos period_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
};

}  // namespace tss::catalog
