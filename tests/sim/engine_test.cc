#include "sim/engine.h"

#include <gtest/gtest.h>

namespace tss::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, SameTimeEventsAreFifo) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    engine.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, PastEventsClampToNow) {
  Engine engine;
  engine.schedule_at(100, [&] {
    engine.schedule_at(50, [&] {
      // Runs "now" (t=100), never in the past.
      EXPECT_EQ(engine.now(), 100);
    });
  });
  engine.run();
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(10, [&] { fired++; });
  engine.schedule_at(20, [&] { fired++; });
  engine.schedule_at(30, [&] { fired++; });
  engine.run_until(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 20);
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, CoroutineSleepAdvancesVirtualTime) {
  Engine engine;
  Nanos woke = -1;
  spawn(engine, [](Engine& e, Nanos* out) -> Task<void> {
    co_await e.sleep_for(5 * kSecond);
    *out = e.now();
  }(engine, &woke));
  EXPECT_EQ(engine.pending_tasks(), 1u);
  engine.run();
  EXPECT_EQ(woke, 5 * kSecond);
  EXPECT_EQ(engine.pending_tasks(), 0u);
}

Task<int> add_later(Engine& engine, int a, int b) {
  co_await engine.sleep_for(kSecond);
  co_return a + b;
}

Task<void> nested(Engine& engine, int* out) {
  int x = co_await add_later(engine, 2, 3);
  int y = co_await add_later(engine, x, 10);
  *out = y;
}

TEST(Engine, NestedTasksComposeAndReturnValues) {
  Engine engine;
  int result = 0;
  spawn(engine, nested(engine, &result));
  engine.run();
  EXPECT_EQ(result, 15);
  EXPECT_EQ(engine.now(), 2 * kSecond);
}

TEST(Engine, ManyConcurrentTasksInterleave) {
  Engine engine;
  std::vector<Nanos> wake_times;
  for (int i = 1; i <= 50; i++) {
    spawn(engine, [](Engine& e, Nanos delay,
                     std::vector<Nanos>* out) -> Task<void> {
      co_await e.sleep_for(delay);
      out->push_back(e.now());
    }(engine, i * kMillisecond, &wake_times));
  }
  engine.run();
  ASSERT_EQ(wake_times.size(), 50u);
  for (size_t i = 1; i < wake_times.size(); i++) {
    EXPECT_GT(wake_times[i], wake_times[i - 1]);
  }
  EXPECT_EQ(engine.pending_tasks(), 0u);
}

TEST(Engine, ZeroDelaySleepResumesImmediately) {
  Engine engine;
  bool done = false;
  spawn(engine, [](Engine& e, bool* flag) -> Task<void> {
    co_await e.sleep_for(0);
    *flag = true;
  }(engine, &done));
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(engine.now(), 0);
}

}  // namespace
}  // namespace tss::sim
