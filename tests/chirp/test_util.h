// Shared fixture: a live Chirp server exporting a private temp directory
// over loopback TCP, with hostname auth enabled and a configurable root ACL.
#pragma once

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "auth/hostname.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "obs/metrics.h"

namespace tss::chirp::testing {

class ChirpServerFixture : public ::testing::Test {
 protected:
  // Root ACL grants localhost everything by default; tests override by
  // calling set_root_acl() before start().
  void SetUp() override {
    root_ = ::testing::TempDir() + "/chirp_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    root_acl_text_ = "hostname:localhost rwldav(rwlda)\n";
  }

  void TearDown() override {
    if (server_) server_->stop();
    std::filesystem::remove_all(root_);
  }

  void set_root_acl(const std::string& text) { root_acl_text_ = text; }

  void start_server(const std::string& owner = "unix:testowner") {
    ServerOptions options;
    options.owner = owner;
    options.root_acl = acl::Acl::parse(root_acl_text_).value();
    // Each fixture gets its own registry so metric assertions are exact and
    // tests never see each other's counts through the global registry.
    options.metrics = &metrics_;
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<Server>(options,
                                       std::make_unique<PosixBackend>(root_),
                                       std::move(auth));
    ASSERT_TRUE(server_->start().ok());
  }

  // Connects and authenticates as hostname:localhost.
  Client connect_client() {
    auto client = Client::connect(server_->endpoint());
    EXPECT_TRUE(client.ok()) << client.error().to_string();
    auth::HostnameClientCredential credential;
    auto subject = client.value().authenticate(credential);
    EXPECT_TRUE(subject.ok()) << subject.error().to_string();
    return std::move(client).value();
  }

  // Connects without authenticating.
  Client connect_raw() {
    auto client = Client::connect(server_->endpoint());
    EXPECT_TRUE(client.ok()) << client.error().to_string();
    return std::move(client).value();
  }

  std::string host_path(const std::string& virtual_path) {
    return root_ + virtual_path;
  }

  std::string root_;
  std::string root_acl_text_;
  obs::Registry metrics_;
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

}  // namespace tss::chirp::testing
