#include "net/server_loop.h"

#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"

namespace tss::net {

Result<void> ServerLoop::start(const std::string& host, uint16_t port,
                               Handler handler, Limits limits) {
  TSS_ASSIGN_OR_RETURN(listener_, TcpListener::listen(host, port));
  port_ = listener_.port();
  handler_ = std::move(handler);
  limits_ = limits;
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Result<void>::success();
}

void ServerLoop::accept_loop() {
  while (running_.load()) {
    auto sock = listener_.accept(200 * kMillisecond);
    if (!sock.ok()) {
      if (sock.error().code == ETIMEDOUT) {
        std::lock_guard<std::mutex> lock(mutex_);
        reap_finished_locked();
        continue;
      }
      if (running_.load()) {
        TSS_DEBUG("net") << "accept: " << sock.error().to_string();
      }
      break;
    }
    if (limits_.max_connections > 0 &&
        active_.load() >= limits_.max_connections) {
      // Over the cap: tell the client why (best effort), then close. A
      // refusal must be visible — to the client as a typed error instead of
      // a bare EOF, and to the operator in the log and the metrics.
      rejected_.fetch_add(1);
      if (limits_.rejected_counter) limits_.rejected_counter->add();
      TSS_WARN("net") << "connection cap (" << limits_.max_connections
                      << ") reached, refusing client";
      if (!limits_.reject_notice.empty()) {
        (void)sock.value().write_all(limits_.reject_notice.data(),
                                     limits_.reject_notice.size(),
                                     kSecond);
      }
      sock.value().close();
      std::lock_guard<std::mutex> lock(mutex_);
      reap_finished_locked();
      continue;
    }
    accepted_.fetch_add(1);
    active_.fetch_add(1);
    Connection conn;
    // dup the fd so stop() can shutdown() a blocked handler without racing
    // fd reuse: we own the dup until we close it ourselves.
    conn.dup_fd = ::dup(sock.value().raw_fd());
    conn.done = std::make_shared<std::atomic<bool>>(false);
    auto done = conn.done;
    conn.thread = std::thread(
        [this, s = std::move(sock).value(), done]() mutable {
          handler_(std::move(s));
          done->store(true);
          active_.fetch_sub(1);
        });
    std::lock_guard<std::mutex> lock(mutex_);
    conns_.push_back(std::move(conn));
    reap_finished_locked();
  }
}

void ServerLoop::reap_finished_locked() {
  for (size_t i = 0; i < conns_.size();) {
    if (conns_[i].done->load()) {
      if (conns_[i].thread.joinable()) conns_[i].thread.join();
      if (conns_[i].dup_fd >= 0) ::close(conns_[i].dup_fd);
      conns_[i] = std::move(conns_.back());
      conns_.pop_back();
    } else {
      i++;
    }
  }
}

void ServerLoop::stop() {
  if (!running_.exchange(false)) return;
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<Connection> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    if (c.dup_fd >= 0) ::shutdown(c.dup_fd, SHUT_RDWR);
  }
  for (auto& c : conns) {
    if (c.thread.joinable()) c.thread.join();
    if (c.dup_fd >= 0) ::close(c.dup_fd);
  }
}

}  // namespace tss::net
