// tss_stats — dump a live Chirp server's metrics snapshot.
//
//   tss_stats chirp://HOST:PORT/ [PREFIX...]
//
// Issues the `stats` RPC and prints the server's observability snapshot:
// request/error/byte counters, per-op latency histograms with p50/p95/p99,
// and the ring of most recent RPC spans (see docs/OBSERVABILITY.md for the
// line format). Optional PREFIX arguments filter the output to matching
// metric names ("chirp.server", "fault.", "fs.integrity", ...); span lines
// are kept only when no prefix is given.
//
// Integrity triage (docs/RECOVERY.md): `tss_stats URL fs.integrity fs.scrub`
// shows wire-checksum mismatches, the quarantine counters, the currently-
// quarantined gauge, and the background scrubber's progress.
//
// Authentication mirrors the tss CLI: unix, then hostname.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "auth/hostname.h"
#include "auth/unix.h"
#include "chirp/client.h"
#include "util/result.h"

namespace {

using namespace tss;

int usage() {
  std::fprintf(stderr,
               "usage: tss_stats chirp://HOST:PORT/ [PREFIX...]\n"
               "       prints the server's metrics snapshot (stats RPC);\n"
               "       PREFIX arguments keep only matching metric names\n"
               "       (e.g. fs.integrity fs.scrub for corruption triage)\n");
  return 2;
}

Result<net::Endpoint> parse_server(const std::string& url) {
  const std::string prefix = "chirp://";
  std::string rest = url;
  if (rest.rfind(prefix, 0) == 0) rest = rest.substr(prefix.size());
  size_t slash = rest.find('/');
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  return net::Endpoint::parse(rest);
}

bool line_matches(const std::string& line,
                  const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  // "counter chirp.server.requests 42" — the name is the second token.
  size_t space = line.find(' ');
  if (space == std::string::npos) return false;
  std::string name = line.substr(space + 1);
  for (const std::string& p : prefixes) {
    if (name.rfind(p, 0) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  auto server = parse_server(argv[1]);
  if (!server.ok()) {
    std::fprintf(stderr, "tss_stats: %s\n", server.error().to_string().c_str());
    return usage();
  }
  std::vector<std::string> prefixes;
  for (int i = 2; i < argc; i++) prefixes.emplace_back(argv[i]);

  auto client = chirp::Client::connect(server.value());
  if (!client.ok()) {
    std::fprintf(stderr, "tss_stats: connect: %s\n",
                 client.error().to_string().c_str());
    return 1;
  }
  auth::UnixClientCredential unix_cred;
  auth::HostnameClientCredential hostname_cred;
  std::vector<auth::ClientCredential*> credentials{&unix_cred,
                                                   &hostname_cred};
  if (auto subject = client.value().authenticate_any(credentials);
      !subject.ok()) {
    std::fprintf(stderr, "tss_stats: auth: %s\n",
                 subject.error().to_string().c_str());
    return 1;
  }

  auto snapshot = client.value().stats();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "tss_stats: stats: %s\n",
                 snapshot.error().to_string().c_str());
    return 1;
  }
  std::istringstream lines(snapshot.value());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("span ", 0) == 0) {
      if (prefixes.empty()) std::printf("%s\n", line.c_str());
      continue;
    }
    if (line_matches(line, prefixes)) std::printf("%s\n", line.c_str());
  }
  return 0;
}
