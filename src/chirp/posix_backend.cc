#include "chirp/posix_backend.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <algorithm>

#include "util/path.h"
#include "util/strings.h"

namespace tss::chirp {

namespace {
StatInfo stat_from_host(const struct stat& st) {
  StatInfo info;
  info.size = static_cast<uint64_t>(st.st_size);
  info.mode = st.st_mode & 07777;
  info.mtime = st.st_mtime;
  info.inode = st.st_ino;
  info.is_dir = S_ISDIR(st.st_mode);
  return info;
}

// Reserved bookkeeping files (".__acl__", ".__alloc__", ".__alloc__.tmp")
// are never charged against an allocation: their bytes are the server's,
// not the tenant's, and exempting them keeps the accounting model closed
// under the server's own metadata writes.
bool bookkeeping_name(const std::string& canonical) {
  return starts_with(path::basename(canonical), ".__");
}
}  // namespace

PosixBackend::PosixBackend(std::string root) : root_(std::move(root)) {
  while (root_.size() > 1 && root_.back() == '/') root_.pop_back();
}

PosixBackend::~PosixBackend() {
  for (auto& [handle, h] : handles_) ::close(h.fd);
}

std::string PosixBackend::host_path(const std::string& canonical) const {
  return path::to_host(root_, canonical);
}

Result<int> PosixBackend::host_fd(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad backend handle");
  return it->second.fd;
}

Result<PosixBackend::OpenHandle> PosixBackend::handle_of(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad backend handle");
  return it->second;
}

Result<int> PosixBackend::stream_fd(int handle) { return host_fd(handle); }

bool PosixBackend::charged(const std::string& path) const {
  return alloc_ != nullptr && !bookkeeping_name(path);
}

uint64_t PosixBackend::file_size(const std::string& path) const {
  struct stat st{};
  if (::lstat(host_path(path).c_str(), &st) != 0) return 0;
  if (!S_ISREG(st.st_mode)) return 0;
  return static_cast<uint64_t>(st.st_size);
}

uint64_t PosixBackend::scan_bytes(const std::string& canonical_dir) const {
  std::string host = host_path(canonical_dir);
  DIR* dir = ::opendir(host.c_str());
  if (!dir) return 0;
  uint64_t total = 0;
  while (dirent* de = ::readdir(dir)) {
    std::string name = de->d_name;
    if (name == "." || name == ".." || starts_with(name, ".__")) continue;
    struct stat st{};
    if (::lstat((host + "/" + name).c_str(), &st) != 0) continue;
    std::string child = path::join(canonical_dir, name);
    if (S_ISDIR(st.st_mode)) {
      total += scan_bytes(child);
    } else if (S_ISREG(st.st_mode)) {
      total += static_cast<uint64_t>(st.st_size);
    }
  }
  ::closedir(dir);
  return total;
}

Result<void> PosixBackend::enable_alloc_tracking(uint64_t root_limit,
                                                 obs::Registry* metrics) {
  std::string journal = root_ + "/" + kAllocJournalName;
  struct stat st{};
  bool fresh = ::lstat(journal.c_str(), &st) != 0;
  AllocTracker::Options opts;
  opts.journal_path = journal;
  opts.root_limit = root_limit;
  opts.metrics = metrics;
  TSS_ASSIGN_OR_RETURN(alloc_, AllocTracker::open(std::move(opts)));
  if (fresh) {
    // First enable on this export: charge pre-existing data once. From here
    // on the journal is the authority.
    uint64_t existing = scan_bytes("/");
    if (existing > 0) alloc_->sync_inuse("/", existing);
  }
  return Result<void>::success();
}

Result<int> PosixBackend::open(const std::string& path, const OpenFlags& flags,
                               uint32_t mode) {
  // O_TRUNC frees the file's current bytes; size them before the open.
  uint64_t truncated = 0;
  if (flags.truncate && charged(path)) truncated = file_size(path);
  int fd = ::open(host_path(path).c_str(), flags.to_posix(),
                  static_cast<mode_t>(mode));
  if (fd < 0) return Error::from_errno("open " + path);
  if (truncated > 0) alloc_->release(path, truncated);
  std::lock_guard<std::mutex> lock(mutex_);
  int handle = next_handle_++;
  handles_[handle] = OpenHandle{fd, path::sanitize(path)};
  return handle;
}

Result<size_t> PosixBackend::pread(int handle, void* data, size_t size,
                                   int64_t offset) {
  TSS_ASSIGN_OR_RETURN(int fd, host_fd(handle));
  ssize_t n = ::pread(fd, data, size, offset);
  if (n < 0) return Error::from_errno("pread");
  return static_cast<size_t>(n);
}

Result<size_t> PosixBackend::pwrite(int handle, const void* data, size_t size,
                                    int64_t offset) {
  TSS_ASSIGN_OR_RETURN(OpenHandle h, handle_of(handle));
  // Charge the extension (bytes past the current end) before the host
  // write: the journal record precedes the data, so a crash in between
  // overcounts, never undercounts.
  uint64_t extension = 0;
  if (charged(h.path) && size > 0) {
    struct stat st{};
    if (::fstat(h.fd, &st) != 0) return Error::from_errno("fstat");
    uint64_t end = static_cast<uint64_t>(st.st_size);
    uint64_t want_end = static_cast<uint64_t>(offset) + size;
    if (offset >= 0 && want_end > end) {
      extension = want_end - end;
      TSS_RETURN_IF_ERROR(alloc_->charge(h.path, extension));
    }
  }
  ssize_t n = ::pwrite(h.fd, data, size, offset);
  if (n < 0) {
    int e = errno;
    if (extension > 0) alloc_->release(h.path, extension);
    return Error::from_errno(e, "pwrite");
  }
  if (extension > 0 && static_cast<size_t>(n) < size) {
    // Short write: refund the part of the extension that never landed.
    struct stat st{};
    uint64_t actual_end =
        ::fstat(h.fd, &st) == 0 ? static_cast<uint64_t>(st.st_size) : 0;
    uint64_t want_end = static_cast<uint64_t>(offset) + size;
    uint64_t unused =
        want_end > actual_end ? std::min(extension, want_end - actual_end)
                              : 0;
    if (unused > 0) alloc_->release(h.path, unused);
  }
  return static_cast<size_t>(n);
}

Result<void> PosixBackend::fsync(int handle) {
  TSS_ASSIGN_OR_RETURN(int fd, host_fd(handle));
  if (::fsync(fd) < 0) return Error::from_errno("fsync");
  return Result<void>::success();
}

Result<void> PosixBackend::close(int handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad backend handle");
  ::close(it->second.fd);
  handles_.erase(it);
  return Result<void>::success();
}

Result<StatInfo> PosixBackend::fstat(int handle) {
  TSS_ASSIGN_OR_RETURN(int fd, host_fd(handle));
  struct stat st{};
  if (::fstat(fd, &st) < 0) return Error::from_errno("fstat");
  return stat_from_host(st);
}

Result<StatInfo> PosixBackend::stat(const std::string& path) {
  struct stat st{};
  if (::lstat(host_path(path).c_str(), &st) < 0) {
    return Error::from_errno("stat " + path);
  }
  return stat_from_host(st);
}

Result<void> PosixBackend::unlink(const std::string& path) {
  uint64_t size = charged(path) ? file_size(path) : 0;
  if (::unlink(host_path(path).c_str()) < 0) {
    return Error::from_errno("unlink " + path);
  }
  if (size > 0) alloc_->release(path, size);
  return Result<void>::success();
}

Result<void> PosixBackend::rename(const std::string& from,
                                  const std::string& to) {
  uint64_t moved = 0;
  bool transferred = false;
  if (alloc_ != nullptr && charged(from) && charged(to)) {
    struct stat st{};
    if (::lstat(host_path(from).c_str(), &st) == 0) {
      if (S_ISDIR(st.st_mode)) {
        // Directory moves across allocation roots would need a recursive
        // re-charge; refuse them (and refuse moving a root itself), like
        // a cross-device rename.
        auto fr = alloc_->lsalloc(from);
        auto tr = alloc_->lsalloc(to);
        if (fr.ok() && fr.value().root == path::sanitize(from)) {
          return Error(EBUSY, "cannot rename an allocation root");
        }
        if (fr.ok() && tr.ok() && fr.value().root != tr.value().root) {
          return Error(EXDEV, "rename across allocations");
        }
      } else if (S_ISREG(st.st_mode)) {
        moved = static_cast<uint64_t>(st.st_size);
        if (moved > 0) {
          TSS_RETURN_IF_ERROR(alloc_->transfer(from, to, moved));
          transferred = true;
        }
      }
    }
  }
  // Rename over an existing target replaces it: its bytes come free.
  uint64_t replaced = charged(to) ? file_size(to) : 0;
  if (::rename(host_path(from).c_str(), host_path(to).c_str()) < 0) {
    int e = errno;
    if (transferred) (void)alloc_->transfer(to, from, moved);
    return Error::from_errno(e, "rename " + from);
  }
  if (replaced > 0) alloc_->release(to, replaced);
  return Result<void>::success();
}

Result<void> PosixBackend::mkdir(const std::string& path, uint32_t mode) {
  if (::mkdir(host_path(path).c_str(), static_cast<mode_t>(mode)) < 0) {
    return Error::from_errno("mkdir " + path);
  }
  return Result<void>::success();
}

Result<void> PosixBackend::rmdir(const std::string& path) {
  if (::rmdir(host_path(path).c_str()) < 0) {
    return Error::from_errno("rmdir " + path);
  }
  if (alloc_ != nullptr) alloc_->note_rmdir(path);
  return Result<void>::success();
}

Result<void> PosixBackend::truncate(const std::string& path, uint64_t size) {
  uint64_t old = charged(path) ? file_size(path) : 0;
  uint64_t grow = charged(path) && size > old ? size - old : 0;
  if (grow > 0) TSS_RETURN_IF_ERROR(alloc_->charge(path, grow));
  if (::truncate(host_path(path).c_str(), static_cast<off_t>(size)) < 0) {
    int e = errno;
    if (grow > 0) alloc_->release(path, grow);
    return Error::from_errno(e, "truncate " + path);
  }
  if (charged(path) && size < old) alloc_->release(path, old - size);
  return Result<void>::success();
}

Result<std::vector<DirEntry>> PosixBackend::readdir(const std::string& path) {
  std::string host = host_path(path);
  DIR* dir = ::opendir(host.c_str());
  if (!dir) return Error::from_errno("opendir " + path);
  std::vector<DirEntry> entries;
  while (dirent* de = ::readdir(dir)) {
    std::string name = de->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::lstat((host + "/" + name).c_str(), &st) != 0) continue;
    entries.push_back(DirEntry{std::move(name), stat_from_host(st)});
  }
  ::closedir(dir);
  return entries;
}

Result<std::string> PosixBackend::read_file(const std::string& path) {
  int fd = ::open(host_path(path).c_str(), O_RDONLY);
  if (fd < 0) return Error::from_errno("open " + path);
  std::string data;
  char buf[64 * 1024];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      int e = errno;
      ::close(fd);
      return Error::from_errno(e, "read " + path);
    }
    if (n == 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

Result<void> PosixBackend::write_file(const std::string& path,
                                      std::string_view data, uint32_t mode) {
  uint64_t old = charged(path) ? file_size(path) : 0;
  uint64_t grow = charged(path) && data.size() > old ? data.size() - old : 0;
  if (grow > 0) TSS_RETURN_IF_ERROR(alloc_->charge(path, grow));
  int fd = ::open(host_path(path).c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                  static_cast<mode_t>(mode));
  if (fd < 0) {
    int e = errno;
    if (grow > 0) alloc_->release(path, grow);
    return Error::from_errno(e, "open " + path);
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      int e = errno;
      ::close(fd);
      if (grow > 0) alloc_->release(path, grow);
      return Error::from_errno(e, "write " + path);
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  if (charged(path) && data.size() < old) {
    alloc_->release(path, old - data.size());
  }
  return Result<void>::success();
}

Result<std::pair<uint64_t, uint64_t>> PosixBackend::statfs() {
  struct statvfs sv{};
  if (::statvfs(root_.c_str(), &sv) < 0) return Error::from_errno("statvfs");
  uint64_t total = static_cast<uint64_t>(sv.f_blocks) * sv.f_frsize;
  uint64_t free_bytes = static_cast<uint64_t>(sv.f_bavail) * sv.f_frsize;
  if (alloc_ != nullptr) {
    // A capped export advertises its allocation, not the whole host disk.
    auto info = alloc_->lsalloc("/");
    if (info.ok() && info.value().limit != 0) {
      uint64_t limit = info.value().limit;
      uint64_t used = std::min(info.value().inuse, limit);
      total = std::min(total, limit);
      free_bytes = std::min(free_bytes, limit - used);
    }
  }
  return std::make_pair(total, free_bytes);
}

}  // namespace tss::chirp
