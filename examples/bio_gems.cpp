// Bioinformatics: the §9 scenario — GEMS, a distributed shared database for
// molecular simulation outputs.
//
// Four Chirp file servers play the storage pool; a database server indexes
// datasets and their replica locations (the DSDB shape of §5). The example:
//   1. ingests PROTOMOL-style trajectory outputs with searchable metadata;
//   2. lets the replicator fill spare space with extra copies;
//   3. searches the catalog by simulation parameters and fetches a result;
//   4. forcibly deletes data on one server ("generosity and gluttony"...);
//   5. shows the auditor detect the loss and the replicator repair it —
//      the Figure 9 loop, on real servers over real sockets.
//
// Run:  ./bio_gems    (exits 0 on success)
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "db/client.h"
#include "db/server.h"
#include "db/store.h"
#include "fs/cfs.h"
#include "gems/gems.h"
#include "util/strings.h"

using namespace tss;

namespace {
#define CHECK_OK(expr)                                             \
  do {                                                             \
    auto&& _r = (expr);                                              \
    if (!_r.ok()) {                                                \
      std::printf("FAILED: %s: %s\n", #expr,                       \
                  _r.error().to_string().c_str());                 \
      return 1;                                                    \
    }                                                              \
  } while (0)
}  // namespace

int main() {
  std::string base = "/tmp/tss-biogems-" + std::to_string(::getpid());

  // --- The storage pool: four personal file servers. ------------------------
  std::printf("==> starting 4 Chirp file servers (the storage pool)\n");
  std::vector<std::unique_ptr<chirp::Server>> servers;
  std::vector<std::unique_ptr<fs::CfsFs>> mounts;
  std::map<std::string, fs::FileSystem*> pool;
  for (int i = 0; i < 4; i++) {
    std::string root = base + "/server" + std::to_string(i);
    std::filesystem::create_directories(root);
    chirp::ServerOptions options;
    options.owner = "unix:biogroup";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    servers.push_back(std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(root),
        std::move(auth)));
    CHECK_OK(servers.back()->start());

    auto credential = std::make_shared<auth::HostnameClientCredential>();
    mounts.push_back(std::make_unique<fs::CfsFs>(
        fs::chirp_connector(servers.back()->endpoint(), {credential})));
    pool["host" + std::to_string(i)] = mounts.back().get();
  }

  // --- The database server indexing the datasets. ---------------------------
  std::printf("==> starting the database server (DSDB catalog)\n");
  std::string db_dir = base + "/db";
  std::filesystem::create_directories(db_dir);
  db::Server::Options db_options;
  db_options.snapshot_dir = db_dir;
  db::Server db_server(db_options);
  CHECK_OK(db_server.start());
  // GEMS speaks to the database *over the wire* — the full DSDB shape.
  db_server.table("gems", {"project", "molecule", "temperature"});
  auto db_client = db::Client::connect(db_server.endpoint());
  CHECK_OK(db_client);
  db::RemoteStore catalog(&db_client.value(), "gems");

  gems::GemsOptions gems_options;
  gems_options.volume = "/gems";
  gems_options.max_replicas = 3;
  gems_options.name_seed = 42;
  gems::Gems gems(&catalog, pool, gems_options);
  CHECK_OK(gems.format());

  // --- Ingest simulation outputs with searchable metadata. ------------------
  std::printf("==> ingesting PROTOMOL trajectory outputs\n");
  struct Run {
    const char* name;
    const char* molecule;
    const char* temperature;
    size_t bytes;
  };
  const Run runs[] = {
      {"bpti-300k-run1", "bpti", "300", 200000},
      {"bpti-300k-run2", "bpti", "300", 220000},
      {"bpti-330k-run1", "bpti", "330", 180000},
      {"alanine-300k-run1", "alanine", "300", 90000},
  };
  for (const Run& run : runs) {
    std::string trajectory(run.bytes, 0);
    for (size_t i = 0; i < trajectory.size(); i++) {
      trajectory[i] = static_cast<char>((i * 131) ^ run.bytes);
    }
    CHECK_OK(gems.ingest(run.name, trajectory,
                         {{"project", "protomol"},
                          {"molecule", run.molecule},
                          {"temperature", run.temperature}}));
  }

  // --- Replicate for survival. -----------------------------------------------
  std::printf("==> replicator fills spare space (target 3 replicas each)\n");
  auto copies = gems.replicate_until_stable();
  CHECK_OK(copies);
  std::printf("    made %d copies; pool now stores %s\n", copies.value(),
              format_bytes(gems.stored_bytes().value_or(0)).c_str());

  // --- Search and fetch. -------------------------------------------------------
  std::printf("==> searching: all bpti runs at 300 K\n");
  int found = 0;
  auto matches = gems.search("molecule", "bpti");
  CHECK_OK(matches);
  for (const db::Record& record : matches.value()) {
    if (record.at("temperature") != "300") continue;
    found++;
    std::printf("    %s  (%s bytes, %zu replicas)\n",
                record.at("id").c_str(), record.at("size").c_str(),
                gems::decode_replicas(record.at("replicas")).size());
  }
  if (found != 2) {
    std::printf("FAILED: expected 2 matching runs, found %d\n", found);
    return 1;
  }
  auto fetched = gems.fetch("bpti-300k-run1");
  CHECK_OK(fetched);
  std::printf("    fetched bpti-300k-run1: %zu bytes\n",
              fetched.value().size());

  // --- Failure: a server owner evicts everything. ----------------------------
  std::printf("==> host2's owner deletes all guest data (failure injection)\n");
  {
    auto entries = mounts[2]->readdir("/gems");
    CHECK_OK(entries);
    int evicted = 0;
    for (const auto& entry : entries.value()) {
      CHECK_OK(mounts[2]->unlink("/gems/" + entry.name));
      evicted++;
    }
    std::printf("    evicted %d data files from host2\n", evicted);
  }

  // --- Audit and repair: the Figure 9 loop. -----------------------------------
  std::printf("==> auditor scans the catalog\n");
  auto problems = gems.audit_step();
  CHECK_OK(problems);
  std::printf("    auditor found %d lost replicas\n", problems.value());

  std::printf("==> replicator repairs from surviving copies\n");
  auto repairs = gems.replicate_until_stable();
  CHECK_OK(repairs);
  std::printf("    made %d repair copies\n", repairs.value());

  for (const Run& run : runs) {
    auto count = gems.replica_count(run.name);
    CHECK_OK(count);
    auto data = gems.fetch(run.name);
    CHECK_OK(data);
    std::printf("    %-20s back to %d replicas, content verified (%zu B)\n",
                run.name, count.value(), data.value().size());
  }

  // Persist the catalog (survives a database restart; see db tests).
  CHECK_OK(db_server.snapshot_all());

  std::printf("==> bioinformatics example complete\n");
  db_server.stop();
  for (auto& server : servers) server->stop();
  std::filesystem::remove_all(base);
  return 0;
}
