// tss_parrot — run an unmodified command with tactical storage attached.
//
//   tss_parrot --map "/tss /cfs/host:9094" -- cat /tss/data/results.txt
//
// The §6 adapter as a command: system calls of the child (and its children)
// are intercepted with ptrace; path arguments under the virtual prefix are
// fetched through the adapter namespace into a local cache and transparently
// rewritten. This demo tracer covers the read path (open/stat/access/exec);
// the library's adapter::Adapter covers the full interface for linked
// applications.
//
// Options (before the "--"):
//   --map "PREFIX TARGET"   virtual prefix and its adapter target
//                           (e.g. "/tss /cfs/host:9094/data"); required
//   --gsi-credential TOKEN  offer a GSI credential when connecting
//   --cache DIR             where fetched copies land (default: mkdtemp)
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "adapter/adapter.h"
#include "auth/gsi.h"
#include "auth/hostname.h"
#include "auth/unix.h"
#include "parrot/tracer.h"
#include "tools/flags.h"
#include "util/path.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  using namespace tss;

  // Split our flags from the command at "--".
  int split = argc;
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--") {
      split = i;
      break;
    }
  }
  if (split == argc || split + 1 >= argc) {
    std::fprintf(stderr,
                 "usage: tss_parrot --map \"PREFIX TARGET\" "
                 "[--gsi-credential TOKEN] [--cache DIR] -- command args...\n");
    return 2;
  }

  auto flags = tools::Flags::parse(split, argv,
                                   {"map", "gsi-credential", "cache"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().to_string().c_str());
    return 2;
  }
  auto map_spec = flags.value().get("map");
  if (!map_spec) {
    std::fprintf(stderr, "tss_parrot: --map is required\n");
    return 2;
  }
  auto map_words = split_words(*map_spec);
  if (map_words.size() != 2) {
    std::fprintf(stderr, "tss_parrot: --map expects \"PREFIX TARGET\"\n");
    return 2;
  }
  std::string prefix = path::sanitize(map_words[0]);

  if (!parrot::tracer_supported()) {
    std::fprintf(stderr, "tss_parrot: ptrace tracer unsupported here\n");
    return 1;
  }

  adapter::Adapter::Options options;
  if (auto gsi = flags.value().get("gsi-credential")) {
    options.credentials.push_back(
        std::make_shared<auth::GsiClientCredential>(*gsi));
  }
  options.credentials.push_back(std::make_shared<auth::UnixClientCredential>());
  options.credentials.push_back(
      std::make_shared<auth::HostnameClientCredential>());
  adapter::Adapter adapter(options);
  if (auto rc = adapter.load_mountlist(prefix + " " + map_words[1] + "\n");
      !rc.ok()) {
    std::fprintf(stderr, "tss_parrot: %s\n", rc.error().to_string().c_str());
    return 1;
  }

  std::string cache = flags.value().get_or("cache", "");
  if (cache.empty()) {
    char templ[] = "/tmp/tss-parrot-cache-XXXXXX";
    if (!::mkdtemp(templ)) {
      std::fprintf(stderr, "tss_parrot: cannot create cache dir\n");
      return 1;
    }
    cache = templ;
  }

  parrot::TraceOptions trace;
  trace.virtual_prefix = prefix;
  uint64_t fetch_count = 0;
  trace.fetch = [&](const std::string& virtual_path) -> Result<std::string> {
    auto data = adapter.read_file(prefix + virtual_path);
    if (!data.ok()) return std::move(data).take_error();
    std::string local = cache + "/f" + std::to_string(fetch_count++) + "-" +
                        path::basename(virtual_path);
    std::ofstream out(local, std::ios::binary | std::ios::trunc);
    if (!out) return Error(EIO, "cannot write cache copy");
    out << data.value();
    return local;
  };

  std::vector<std::string> command;
  for (int i = split + 1; i < argc; i++) command.push_back(argv[i]);
  auto stats = parrot::trace_run(command, trace);
  if (!stats.ok()) {
    std::fprintf(stderr, "tss_parrot: %s\n",
                 stats.error().to_string().c_str());
    return 1;
  }
  return stats.value().exit_code;
}
