# Empty compiler generated dependencies file for bio_gems.
# This may be replaced when dependencies are built.
