#include "fs/stub.h"

#include "util/strings.h"

namespace tss::fs {

std::string Stub::serialize() const {
  return "tssstub v1\nserver " + url_encode(server) + "\npath " +
         url_encode(data_path) + "\n";
}

Result<Stub> Stub::parse(std::string_view text) {
  auto lines = split(text, '\n');
  if (lines.empty() || trim(lines[0]) != "tssstub v1") {
    return Error(EINVAL, "not a stub file");
  }
  Stub stub;
  for (size_t i = 1; i < lines.size(); i++) {
    auto words = split_words(lines[i]);
    if (words.empty()) continue;
    if (words[0] == "server" && words.size() >= 2) {
      stub.server = url_decode(words[1]);
    } else if (words[0] == "path" && words.size() >= 2) {
      stub.data_path = url_decode(words[1]);
    } else {
      return Error(EINVAL, "bad stub line: " + lines[i]);
    }
  }
  if (stub.server.empty() || stub.data_path.empty()) {
    return Error(EINVAL, "incomplete stub");
  }
  return stub;
}

}  // namespace tss::fs
