file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_single_connection.dir/bench_ablation_single_connection.cc.o"
  "CMakeFiles/bench_ablation_single_connection.dir/bench_ablation_single_connection.cc.o.d"
  "bench_ablation_single_connection"
  "bench_ablation_single_connection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_single_connection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
