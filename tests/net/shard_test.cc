// Accept-path availability and sharded-serving tests (ctest -L shard).
//
// The seed had three availability bugs on the accept path: a transient
// accept() errno (EMFILE under fd pressure) killed the accept thread for
// good; a refused client that never read its reject notice stalled the
// acceptor for the full 1s blocking-send timeout; and an adopt() failure
// dropped the client with only a debug log. These tests pin the fixes, plus
// the SO_REUSEPORT acceptor sharding and the sendfile getfile path that rode
// along in the same rework.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "chirp/test_util.h"
#include "net/server_loop.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace tss::net {
namespace {

// Echoes every complete line back; closes on EOF.
class EchoSession : public ReactorSession {
 public:
  bool on_input(Conn& c) override {
    while (true) {
      auto line = c.input().try_line();
      if (!line.ok()) return false;
      if (!line.value().has_value()) break;
      c.write(*line.value() + "\n");
    }
    return !c.input_eof();
  }
};

ServerLoop::SessionFactory echo_factory() {
  return []() -> std::shared_ptr<ReactorSession> {
    return std::make_shared<EchoSession>();
  };
}

::testing::AssertionResult echo_roundtrip(TcpSocket& sock) {
  std::string msg = "ping\n";
  auto wr = sock.write_all(msg.data(), msg.size(), 5 * kSecond);
  if (!wr.ok()) {
    return ::testing::AssertionFailure()
           << "write: " << wr.error().to_string();
  }
  std::string got;
  char ch;
  while (true) {
    auto n = sock.read_some(&ch, 1, 10 * kSecond);
    if (!n.ok()) {
      return ::testing::AssertionFailure()
             << "read: " << n.error().to_string();
    }
    if (n.value() == 0) return ::testing::AssertionFailure() << "EOF";
    if (ch == '\n') break;
    got += ch;
  }
  if (got != "ping") {
    return ::testing::AssertionFailure() << "echoed '" << got << "'";
  }
  return ::testing::AssertionSuccess();
}

// Same round trip over a raw blocking fd (used where TcpSocket::connect
// would cost fds we are deliberately starving).
::testing::AssertionResult raw_echo_roundtrip(int fd) {
  timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  const char msg[] = "ping\n";
  if (::send(fd, msg, sizeof msg - 1, MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof msg - 1)) {
    return ::testing::AssertionFailure() << "send: " << strerror(errno);
  }
  std::string got;
  char ch;
  while (got.size() < 64) {
    ssize_t n = ::recv(fd, &ch, 1, 0);
    if (n < 0) {
      return ::testing::AssertionFailure() << "recv: " << strerror(errno);
    }
    if (n == 0) return ::testing::AssertionFailure() << "EOF";
    if (ch == '\n') {
      if (got == "ping") return ::testing::AssertionSuccess();
      return ::testing::AssertionFailure() << "echoed '" << got << "'";
    }
    got += ch;
  }
  return ::testing::AssertionFailure() << "no newline in 64 bytes";
}

bool wait_until(const std::function<bool()>& cond, Nanos budget) {
  Nanos deadline = RealClock::instance().now() + budget;
  while (!cond()) {
    if (RealClock::instance().now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

#ifdef __linux__
// Squeezes the process fd table down to zero free slots and restores the
// original limit (and releases all parked fds) on destruction, so an ASSERT
// mid-test can't leave the rest of the binary starved.
struct FdSqueeze {
  rlimit saved{};
  std::vector<int> spares;
  bool clamped = false;

  ~FdSqueeze() { release(); }

  bool squeeze() {
    if (::getrlimit(RLIMIT_NOFILE, &saved) != 0) return false;
    // Park fds we can hand back later to let the server recover.
    for (int i = 0; i < 16; i++) {
      int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
      if (fd < 0) break;
      spares.push_back(fd);
    }
    if (spares.size() < 8) return false;
    // Cap the table at its current high-water mark...
    int maxfd = 0;
    for (const auto& e : std::filesystem::directory_iterator("/proc/self/fd")) {
      maxfd = std::max(maxfd, std::atoi(e.path().filename().c_str()));
    }
    rlimit tight = saved;
    tight.rlim_cur = static_cast<rlim_t>(maxfd + 1);
    if (::setrlimit(RLIMIT_NOFILE, &tight) != 0) return false;
    clamped = true;
    // ...then plug every hole below the cap. After this, open() fails with
    // EMFILE: zero free slots.
    for (int i = 0; i < maxfd + 2; i++) {
      int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
      if (fd < 0) break;
      spares.push_back(fd);
    }
    return true;
  }

  // Frees exactly one slot.
  void free_one() {
    if (spares.empty()) return;
    ::close(spares.back());
    spares.pop_back();
  }

  void release() {
    for (int fd : spares) ::close(fd);
    spares.clear();
    if (clamped) {
      ::setrlimit(RLIMIT_NOFILE, &saved);
      clamped = false;
    }
  }
};
#endif  // __linux__

// Seed bug #1: one EMFILE burst killed the accept thread for good — the
// server stopped admitting clients until restart. The acceptor must count
// the error, back off, and resume accepting once descriptors free up.
TEST(AcceptResilienceTest, SurvivesFdExhaustionAndRecovers) {
#ifndef __linux__
  GTEST_SKIP() << "fd-table squeeze relies on /proc/self/fd";
#else
  obs::Registry reg;
  ServerLoop server;
  ServerLoop::Limits limits;
  limits.metrics = &reg;
  auto rc = server.start("127.0.0.1", 0, echo_factory(), limits);
  ASSERT_TRUE(rc.ok()) << rc.error().to_string();

  FdSqueeze squeeze;
  ASSERT_TRUE(squeeze.squeeze()) << "could not exhaust the fd table";

  // One free slot: the client's own socket takes it, so the server's
  // accept4() of that very connection has none left and hits EMFILE.
  squeeze.free_one();
  int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(cfd, 0) << strerror(errno);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(server.port());
  ASSERT_EQ(1, ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr));
  ASSERT_EQ(0, ::connect(cfd, reinterpret_cast<sockaddr*>(&sa), sizeof sa))
      << strerror(errno);

  bool errored =
      wait_until([&] { return server.accept_errors() > 0; }, 10 * kSecond);

  // Hand the descriptors back; the acceptor's capped backoff retries and
  // must now accept the connection that has been parked in the backlog.
  squeeze.release();

  EXPECT_TRUE(errored) << "acceptor never reported the transient error";
  EXPECT_GE(server.accept_errors(), 1u);
  EXPECT_GE(reg.counter("net.accept.error")->value(), 1u);
  EXPECT_TRUE(raw_echo_roundtrip(cfd));
  ::close(cfd);

  // A fresh client proves the accept thread itself never died.
  auto fresh =
      TcpSocket::connect(Endpoint{"127.0.0.1", server.port()}, 5 * kSecond);
  ASSERT_TRUE(fresh.ok()) << fresh.error().to_string();
  EXPECT_TRUE(echo_roundtrip(fresh.value()));
  server.stop();
#endif
}

// Seed bug #2: the reject notice went out through a blocking write_all with
// a 1s timeout, so a burst of refused clients that never read stalled the
// acceptor for seconds — starving healthy clients of accepts. The notice is
// now one best-effort non-blocking send.
TEST(AcceptResilienceTest, StalledRejectedClientsDoNotStallTheAcceptor) {
  obs::Registry reg;
  ServerLoop server;
  ServerLoop::Limits limits;
  limits.metrics = &reg;
  limits.max_connections = 1;
  limits.rejected_counter = reg.counter("test.rejected");
  // Far larger than any socket buffer: the old blocking path could not
  // finish this send against a non-reading peer and ate its full timeout.
  limits.reject_notice =
      "error EBUSY too many connections\n" + std::string(2 * 1024 * 1024, 'x');
  auto rc = server.start("127.0.0.1", 0, echo_factory(), limits);
  ASSERT_TRUE(rc.ok()) << rc.error().to_string();

  // Occupy the only slot; the round trip guarantees the dispatch finished,
  // so every later connection sees the cap.
  auto keeper =
      TcpSocket::connect(Endpoint{"127.0.0.1", server.port()}, 5 * kSecond);
  ASSERT_TRUE(keeper.ok());
  ASSERT_TRUE(echo_roundtrip(keeper.value()));

  Nanos t0 = RealClock::instance().now();
  std::vector<TcpSocket> doomed;  // kept open, never read: maximal stall
  for (int i = 0; i < 5; i++) {
    auto c =
        TcpSocket::connect(Endpoint{"127.0.0.1", server.port()}, 5 * kSecond);
    ASSERT_TRUE(c.ok()) << c.error().to_string();
    doomed.push_back(std::move(c.value()));
  }
  ASSERT_TRUE(wait_until(
      [&] { return server.connections_rejected() >= 5; }, 10 * kSecond));
  Nanos elapsed = RealClock::instance().now() - t0;

  EXPECT_EQ(server.connections_rejected(), 5u);
  EXPECT_EQ(reg.counter("test.rejected")->value(), 5u);
  // The old path needed >= 5s here (1s blocking send per refusal, serial on
  // the acceptor); the non-blocking path refuses all five near-instantly.
  EXPECT_LT(elapsed, 2500 * kMillisecond)
      << "rejections took " << elapsed / kMillisecond << "ms";
  // And the admitted client is still being served.
  EXPECT_TRUE(echo_roundtrip(keeper.value()));
  server.stop();
}

// Seed bug #3 regression: adopt() refusals during shutdown must keep the
// live-connection accounting exact — every accepted connection is released
// by on_close or, if never adopted, by the CountedSession destructor.
TEST(AcceptResilienceTest, StopDuringConnectStormKeepsAccountingExact) {
  obs::Registry reg;
  ServerLoop server;
  ServerLoop::Limits limits;
  limits.metrics = &reg;
  limits.mode = Mode::kReactor;
  limits.reactor_workers = 2;
  auto rc = server.start("127.0.0.1", 0, echo_factory(), limits);
  ASSERT_TRUE(rc.ok()) << rc.error().to_string();

  std::atomic<bool> storm{true};
  uint16_t port = server.port();
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; t++) {
    clients.emplace_back([port, &storm] {
      while (storm.load()) {
        auto c = TcpSocket::connect(Endpoint{"127.0.0.1", port},
                                    250 * kMillisecond);
        if (c.ok()) {
          std::string msg = "storm\n";
          (void)c.value().write_all(msg.data(), msg.size(),
                                    50 * kMillisecond);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  storm.store(false);
  for (auto& t : clients) t.join();
  EXPECT_EQ(server.active_connections(), 0u);
}

// Sharded accept: with SO_REUSEPORT every acceptor owns a listener on the
// shared port; without it the loop falls back to a single acceptor. Either
// way every client must be served.
TEST(ShardedAcceptorTest, ReusePortAcceptorsServeEveryClient) {
  obs::Registry reg;
  ServerLoop server;
  ServerLoop::Limits limits;
  limits.metrics = &reg;
  limits.acceptors = 4;
  auto rc = server.start("127.0.0.1", 0, echo_factory(), limits);
  ASSERT_TRUE(rc.ok()) << rc.error().to_string();
#ifdef SO_REUSEPORT
  EXPECT_EQ(server.acceptors(), 4);
#else
  EXPECT_EQ(server.acceptors(), 1);
#endif
  for (int i = 0; i < 12; i++) {
    auto c =
        TcpSocket::connect(Endpoint{"127.0.0.1", server.port()}, 5 * kSecond);
    ASSERT_TRUE(c.ok()) << c.error().to_string();
    EXPECT_TRUE(echo_roundtrip(c.value())) << "client " << i;
  }
  EXPECT_EQ(server.connections_accepted(), 12u);
  server.stop();
}

}  // namespace
}  // namespace tss::net

// --- Chirp-level coverage of the zero-copy data path ------------------------

namespace tss::chirp {
namespace {

using testing::ChirpServerFixture;

std::string pattern_bytes(size_t n) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; i++) {
    s[i] = static_cast<char>((i * 131 + (i >> 9)) & 0xff);
  }
  return s;
}

void write_host_file(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(f.good());
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(f.good());
}

class ZeroCopyStreamingTest : public ChirpServerFixture {
 protected:
  // A client that does NOT negotiate checksums: with no digest to compute,
  // large getfile payloads take the sendfile path on the server.
  Client connect_plain() {
    Client::Options options;
    options.integrity = false;
    options.metrics = &metrics_;
    auto client = Client::connect(server_->endpoint(), options);
    EXPECT_TRUE(client.ok()) << client.error().to_string();
    auth::HostnameClientCredential credential;
    auto subject = client.value().authenticate(credential);
    EXPECT_TRUE(subject.ok()) << subject.error().to_string();
    return std::move(client).value();
  }
};

TEST_F(ZeroCopyStreamingTest, SendfileGetfileRoundTripsLargeFile) {
  start_server();
  // Odd size, well over the 32 KiB sendfile threshold.
  const std::string data = pattern_bytes(1024 * 1024 + 12345);
  write_host_file(host_path("/big.bin"), data);

  Client client = connect_plain();
  ASSERT_FALSE(client.checksum_enabled());
  auto got = client.getfile("/big.bin");
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  ASSERT_EQ(got.value().size(), data.size());
  EXPECT_TRUE(got.value() == data) << "payload corrupted in flight";

  // The transfer completion must leave the session in a clean request
  // state: the same connection serves a second transfer.
  auto again = client.getfile("/big.bin");
  ASSERT_TRUE(again.ok()) << again.error().to_string();
  EXPECT_TRUE(again.value() == data);
}

TEST_F(ZeroCopyStreamingTest, SmallGetfileStaysCorrectOnChunkedPath) {
  start_server();
  // Under the sendfile threshold: served through the pooled-buffer chunk
  // path, byte-identical on the wire.
  const std::string data = pattern_bytes(1000);
  write_host_file(host_path("/small.bin"), data);
  Client client = connect_plain();
  auto got = client.getfile("/small.bin");
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_TRUE(got.value() == data);
}

TEST_F(ZeroCopyStreamingTest, ChecksumClientStaysOnDigestedPath) {
  start_server();
  // With checksums negotiated the server must NOT sendfile (payload bytes
  // never cross user space, so nothing could digest them): same content,
  // digest verified end-to-end.
  const std::string data = pattern_bytes(256 * 1024);
  write_host_file(host_path("/sum.bin"), data);
  Client client = connect_client();
  ASSERT_TRUE(client.checksum_enabled());
  auto got = client.getfile("/sum.bin");
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_TRUE(got.value() == data);
}

class ShardedChirpServerTest : public ChirpServerFixture {
 protected:
  void start_sharded(int acceptors) {
    ServerOptions options;
    options.owner = "unix:testowner";
    options.root_acl = acl::Acl::parse(root_acl_text_).value();
    options.metrics = &metrics_;
    options.acceptors = acceptors;
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<Server>(options,
                                       std::make_unique<PosixBackend>(root_),
                                       std::move(auth));
    ASSERT_TRUE(server_->start().ok());
  }
};

TEST_F(ShardedChirpServerTest, ShardedServerServesConcurrentTransfers) {
  start_sharded(4);
  const std::string data = pattern_bytes(200 * 1024);
  write_host_file(host_path("/shared.bin"), data);

  net::Endpoint endpoint = server_->endpoint();
  std::vector<std::thread> workers;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; t++) {
    workers.emplace_back([&, t] {
      Client::Options options;
      options.integrity = (t % 2 == 0);  // both data paths, concurrently
      auto client = Client::connect(endpoint, options);
      if (!client.ok()) return;
      auth::HostnameClientCredential credential;
      if (!client.value().authenticate(credential).ok()) return;
      for (int i = 0; i < 3; i++) {
        auto got = client.value().getfile("/shared.bin");
        if (!got.ok() || got.value() != data) return;
      }
      ok.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(ok.load(), 4);
}

}  // namespace
}  // namespace tss::chirp
