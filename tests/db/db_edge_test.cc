// Edge cases for the db substrate: hostile record content, large scans,
// recovery corner cases.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "db/client.h"
#include "db/server.h"
#include "db/store.h"

namespace tss::db {
namespace {

TEST(TableEdge, HostileFieldContentRoundTrips) {
  Table table({"k"});
  Record record{{"id", "weird id & with = signs\nand newlines"},
                {"k", "value with % and %%2F and \t tabs"},
                {"empty", ""}};
  ASSERT_TRUE(table.put(record).ok());
  auto via_wire = decode_record(encode_record(record));
  ASSERT_TRUE(via_wire.ok());
  EXPECT_EQ(via_wire.value(), record);
  EXPECT_EQ(table.query("k", "value with % and %%2F and \t tabs").size(), 1u);
}

TEST(TableEdge, SnapshotRoundTripsHostileContent) {
  Table table;
  ASSERT_TRUE(table.put(Record{{"id", "a&b=c"}, {"v", "x\ny"}}).ok());
  ASSERT_TRUE(table.put(Record{{"id", "plain"}, {"v", ""}}).ok());
  Table restored;
  ASSERT_TRUE(restored.load(table.serialize()).ok());
  EXPECT_EQ(restored.get("a&b=c").value().at("v"), "x\ny");
  EXPECT_EQ(restored.get("plain").value().at("v"), "");
}

TEST(TableEdge, LoadRejectsCorruptSnapshot) {
  Table table;
  EXPECT_FALSE(table.load("no-equals-sign-here\n").ok());
  EXPECT_FALSE(table.load("v=1\n").ok());  // record without id
}

TEST(TableEdge, LoadReplacesPriorContents) {
  Table table;
  ASSERT_TRUE(table.put(Record{{"id", "old"}}).ok());
  ASSERT_TRUE(table.load("id=new\n").ok());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_FALSE(table.get("old").ok());
  EXPECT_TRUE(table.get("new").ok());
}

TEST(StoreEdge, TableStoreAndRemoteStoreAgree) {
  // The same operation sequence through both Store implementations must
  // leave identical state (the DSDB contract GEMS relies on).
  Server server{Server::Options{}};
  ASSERT_TRUE(server.start().ok());
  server.table("t", {"tag"});
  auto client = Client::connect(server.endpoint());
  ASSERT_TRUE(client.ok());
  RemoteStore remote(&client.value(), "t");

  Table local_table({"tag"});
  TableStore local(&local_table);

  Store* stores[] = {&local, &remote};
  for (Store* store : stores) {
    ASSERT_TRUE(store->put(Record{{"id", "1"}, {"tag", "a"}}).ok());
    ASSERT_TRUE(store->put(Record{{"id", "2"}, {"tag", "a"}}).ok());
    ASSERT_TRUE(store->put(Record{{"id", "3"}, {"tag", "b"}}).ok());
    ASSERT_TRUE(store->remove("2").ok());
    ASSERT_TRUE(store->put(Record{{"id", "3"}, {"tag", "a"}}).ok());
  }
  for (Store* store : stores) {
    auto a = store->query("tag", "a");
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value().size(), 2u);
    EXPECT_TRUE(store->query("tag", "b").value().empty());
    auto all = store->scan();
    ASSERT_TRUE(all.ok());
    EXPECT_EQ(all.value().size(), 2u);
    EXPECT_EQ(store->get("2").code(), ENOENT);
  }
  server.stop();
}

TEST(StoreEdge, LargeScanOverWire) {
  Server server{Server::Options{}};
  ASSERT_TRUE(server.start().ok());
  server.table("big", {});
  auto client = Client::connect(server.endpoint());
  ASSERT_TRUE(client.ok());
  RemoteStore store(&client.value(), "big");
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(store
                    .put(Record{{"id", "r" + std::to_string(i)},
                                {"payload", std::string(200, 'p')}})
                    .ok());
  }
  auto all = store.scan();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), 500u);
  server.stop();
}

TEST(StoreEdge, SnapshotRecoveryPreservesIndexQuerySemantics) {
  std::string dir = ::testing::TempDir() + "/dbedge_" +
                    std::to_string(::getpid());
  std::filesystem::create_directories(dir);
  {
    Server::Options options;
    options.snapshot_dir = dir;
    Server server(options);
    ASSERT_TRUE(server.start().ok());
    Table& t = server.table("idx", {"project"});
    ASSERT_TRUE(t.put(Record{{"id", "a"}, {"project", "p1"}}).ok());
    ASSERT_TRUE(t.put(Record{{"id", "b"}, {"project", "p1"}}).ok());
    server.stop();  // snapshots on stop
  }
  {
    Server::Options options;
    options.snapshot_dir = dir;
    Server server(options);
    ASSERT_TRUE(server.start().ok());
    auto client = Client::connect(server.endpoint());
    ASSERT_TRUE(client.ok());
    auto matches = client.value().query("idx", "project", "p1");
    ASSERT_TRUE(matches.ok());
    EXPECT_EQ(matches.value().size(), 2u);
    server.stop();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tss::db
