// Ablation — multi-tenant isolation: a hog tenant vs a well-behaved one.
//
// The paper assumes cooperative users; the tenancy layer (per-subject
// quotas + weighted fair-share admission, docs/MULTITENANCY.md) is what
// makes that assumption unnecessary. This harness measures a well-behaved
// "meek" tenant's small-file read service on a live server in three
// regimes:
//
//   solo        the meek tenant alone on an isolation-enabled server —
//               the baseline its contended throughput is judged against.
//   contended   a hog tenant floods large getfiles from several
//               connections with NO isolation configured (the paper's
//               configuration): the meek tenant shares one global free-for-
//               all and eats whatever latency the hog leaves behind.
//   isolated    the same flood against per-subject quotas (the hog's
//               byte rate is capped, excess refused with EDQUOT before it
//               reaches dispatch) plus weighted fair-share admission —
//               the hog degrades only itself.
//
// Results go to stdout as a table and to BENCH_tenant_isolation.json.
//
// Usage: bench_ablation_tenant_isolation [out.json|--smoke]
//   --smoke  reduced sizes + regression gates: the meek tenant retains
//            >= 80% of its solo throughput under an isolated hog flood,
//            its p99 stays bounded, and the hog's excess is refused.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "auth/gsi.h"
#include "auth/hostname.h"
#include "bench/common.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"

namespace tss::bench {
namespace {

using chirp::Client;
using chirp::Server;
using chirp::ServerOptions;

constexpr int64_t kFarFuture = int64_t{1} << 40;
constexpr const char* kHogDn = "/CN=hog";
constexpr const char* kMeekDn = "/CN=meek";

struct BenchConfig {
  int meek_reads = 4000;            // timed small getfiles
  uint64_t small_bytes = 4 * 1024;  // the meek tenant's working file
  uint64_t big_bytes = 256 * 1024;  // what the hog pulls, per request
  int hog_connections = 4;
  int hog_backoff_ms = 10;  // a refused hog's retry pause (the EDQUOT contract)
  // Isolation knobs: the hog may pull ~2 MB/s sustained; everything beyond
  // is refused at admission. Fair-share bounds whatever still gets through.
  uint64_t hog_bytes_per_sec = 2 << 20;
  int fair_share_slots = 4;
  int fair_share_backlog = 16;
};

struct Point {
  std::string mode;
  double meek_ops_per_sec = 0;
  double meek_p50_us = 0;
  double meek_p99_us = 0;
  uint64_t hog_served = 0;
  uint64_t hog_refused = 0;  // EDQUOT / EBUSY — the isolation layer working
  uint64_t hog_errors = 0;   // anything else (must stay 0)
};

double micros_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() /
         1000.0;
}

class TenantBench {
 public:
  explicit TenantBench(const BenchConfig& cfg) : cfg_(cfg) {}

  Point run(const std::string& mode, bool isolation, bool with_hog) {
    std::string root = std::filesystem::temp_directory_path().string() +
                       "/bench_tenant_" + std::to_string(::getpid()) + "_" +
                       mode;
    std::filesystem::create_directories(root);

    ServerOptions options;
    options.owner = "hostname:localhost";
    options.root_acl = acl::Acl::parse(
                           "hostname:localhost rwldav(rwlda)\n"
                           "globus:* rwldav(rwlda)\n")
                           .value();
    if (isolation) {
      chirp::QuotaManager::Limits hog_limits;
      hog_limits.bytes_per_sec = cfg_.hog_bytes_per_sec;
      options.per_subject_quota[std::string("globus:") + kHogDn] = hog_limits;
      options.fair_share_slots = cfg_.fair_share_slots;
      options.fair_share_backlog = cfg_.fair_share_backlog;
    }
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    auto gsi = std::make_unique<auth::GsiServerMethod>();
    gsi->trust(ca_);
    auth->add(std::move(gsi));
    Server server(std::move(options),
                  std::make_unique<chirp::PosixBackend>(root),
                  std::move(auth));
    if (!server.start().ok()) {
      std::fprintf(stderr, "server start failed\n");
      std::exit(1);
    }

    // The owner seeds the working set: a small hot file for the meek
    // tenant, a large one for the hog to pull.
    {
      auto owner = Client::connect(server.endpoint());
      auth::HostnameClientCredential credential;
      if (!owner.ok() || !owner.value().authenticate(credential).ok() ||
          !owner.value()
               .putfile("/small", std::string(cfg_.small_bytes, 's'))
               .ok() ||
          !owner.value()
               .putfile("/big", std::string(cfg_.big_bytes, 'b'))
               .ok()) {
        std::fprintf(stderr, "seeding the working set failed\n");
        std::exit(1);
      }
    }

    Point point;
    point.mode = mode;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> hog_served{0};
    std::atomic<uint64_t> hog_refused{0};
    std::atomic<uint64_t> hog_errors{0};
    std::vector<std::thread> hogs;
    if (with_hog) {
      for (int h = 0; h < cfg_.hog_connections; h++) {
        auto conn = connect_tenant(server, kHogDn);
        if (!conn) {
          std::fprintf(stderr, "hog connect failed\n");
          std::exit(1);
        }
        hogs.emplace_back([&, conn] {
          while (!stop.load(std::memory_order_relaxed)) {
            auto r = conn->getfile("/big");
            if (r.ok()) {
              hog_served.fetch_add(1, std::memory_order_relaxed);
            } else if (r.error().code == EDQUOT ||
                       r.error().code == EBUSY) {
              hog_refused.fetch_add(1, std::memory_order_relaxed);
              // EDQUOT/EBUSY is a back-off signal (docs/MULTITENANCY.md):
              // this hog is greedy but compliant. A peer that hot-loops
              // refusals instead is wire spam, a different threat than the
              // bandwidth hogging measured here.
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(cfg_.hog_backoff_ms));
            } else {
              hog_errors.fetch_add(1, std::memory_order_relaxed);
            }
          }
        });
      }
      // Let the flood reach steady state before timing the meek tenant.
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }

    auto meek = connect_tenant(server, kMeekDn);
    if (!meek) {
      std::fprintf(stderr, "meek connect failed\n");
      std::exit(1);
    }
    // Untimed warmup: fault the file into cache and settle the connection.
    for (int i = 0; i < 50; i++) {
      if (!meek->getfile("/small").ok()) {
        std::fprintf(stderr, "meek warmup failed\n");
        std::exit(1);
      }
    }
    std::vector<double> latencies_us;
    latencies_us.reserve(static_cast<size_t>(cfg_.meek_reads));
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < cfg_.meek_reads; i++) {
      auto op_start = std::chrono::steady_clock::now();
      auto r = meek->getfile("/small");
      if (!r.ok() || r.value().size() != cfg_.small_bytes) {
        std::fprintf(stderr, "meek read %d failed: %s\n", i,
                     r.ok() ? "short read" : r.error().to_string().c_str());
        std::exit(1);
      }
      latencies_us.push_back(micros_since(op_start));
    }
    double seconds = micros_since(begin) / 1e6;

    stop.store(true);
    for (auto& t : hogs) t.join();
    server.stop();
    std::filesystem::remove_all(root);

    std::sort(latencies_us.begin(), latencies_us.end());
    point.meek_ops_per_sec =
        seconds > 0 ? static_cast<double>(cfg_.meek_reads) / seconds : 0;
    point.meek_p50_us = latencies_us[latencies_us.size() / 2];
    point.meek_p99_us =
        latencies_us[std::min(latencies_us.size() - 1,
                              latencies_us.size() * 99 / 100)];
    point.hog_served = hog_served;
    point.hog_refused = hog_refused;
    point.hog_errors = hog_errors;
    return point;
  }

 private:
  // An authenticated tenant session; shared_ptr so the hog threads can
  // capture it by value.
  std::shared_ptr<Client> connect_tenant(Server& server,
                                         const std::string& dn) {
    Client::Options options;
    options.timeout = 30 * kSecond;
    auto client = Client::connect(server.endpoint(), options);
    if (!client.ok()) return nullptr;
    auth::GsiClientCredential credential(ca_.issue(dn, kFarFuture));
    if (!client.value().authenticate(credential).ok()) return nullptr;
    return std::make_shared<Client>(std::move(client).value());
  }

  BenchConfig cfg_;
  auth::GsiCa ca_{"bench-ca", "tenant-bench-key"};
};

// The --smoke gates (also run by scripts/check.sh).
int check_regressions(const Point& solo, const Point& isolated) {
  int failures = 0;
  double retention =
      solo.meek_ops_per_sec > 0
          ? isolated.meek_ops_per_sec / solo.meek_ops_per_sec
          : 0;
  if (retention < 0.8) {
    std::fprintf(stderr,
                 "FAIL: meek tenant retained only %.0f%% of solo throughput "
                 "under an isolated hog flood (%.0f vs %.0f ops/s)\n",
                 retention * 100, isolated.meek_ops_per_sec,
                 solo.meek_ops_per_sec);
    failures++;
  }
  if (isolated.hog_refused == 0) {
    std::fprintf(stderr,
                 "FAIL: the isolation layer never refused the hog's "
                 "excess load\n");
    failures++;
  }
  if (isolated.hog_errors > 0) {
    std::fprintf(stderr,
                 "FAIL: hog saw %llu non-quota errors (refusals must be "
                 "typed EDQUOT/EBUSY)\n",
                 static_cast<unsigned long long>(isolated.hog_errors));
    failures++;
  }
  // "Bounded p99": generous against CI noise, but catastrophic starvation
  // (seconds-long stalls behind the hog's queue) must fail.
  if (isolated.meek_p99_us > 100 * 1000.0) {
    std::fprintf(stderr,
                 "FAIL: meek p99 %.1f ms under the isolated flood "
                 "(bound: 100 ms)\n",
                 isolated.meek_p99_us / 1000.0);
    failures++;
  }
  return failures;
}

}  // namespace
}  // namespace tss::bench

int main(int argc, char** argv) {
  using namespace tss::bench;

  bool smoke = false;
  std::string out_path = "BENCH_tenant_isolation.json";
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  BenchConfig cfg;
  if (smoke) {
    cfg.meek_reads = 2000;  // a wide enough window to be stable on 1 core
    cfg.hog_connections = 2;
  }

  print_header(
      "Ablation: multi-tenant isolation (hog vs meek)",
      "A meek tenant reads a small file while a hog floods large getfiles\n"
      "from several connections. solo = no hog; contended = no isolation\n"
      "(global free-for-all); isolated = per-subject quotas + weighted\n"
      "fair-share admission. The gate: isolation keeps the meek tenant at\n"
      ">= 80% of solo throughput while the hog's excess is refused.");
  print_row({"mode", "meek ops/s", "p50 us", "p99 us", "hog served",
             "hog refused", "hog errors"},
            13);

  TenantBench bench(cfg);
  std::vector<Point> points;
  points.push_back(bench.run("solo", /*isolation=*/true, /*with_hog=*/false));
  points.push_back(
      bench.run("contended", /*isolation=*/false, /*with_hog=*/true));
  points.push_back(
      bench.run("isolated", /*isolation=*/true, /*with_hog=*/true));
  for (const Point& p : points) {
    print_row({p.mode, fmt_double(p.meek_ops_per_sec, 0),
               fmt_double(p.meek_p50_us, 1), fmt_double(p.meek_p99_us, 1),
               std::to_string(p.hog_served), std::to_string(p.hog_refused),
               std::to_string(p.hog_errors)},
              13);
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"tenant_isolation\",\n  \"meek_reads\": "
       << cfg.meek_reads << ",\n  \"small_bytes\": " << cfg.small_bytes
       << ",\n  \"big_bytes\": " << cfg.big_bytes
       << ",\n  \"hog_connections\": " << cfg.hog_connections
       << ",\n  \"hog_bytes_per_sec\": " << cfg.hog_bytes_per_sec
       << ",\n  \"fair_share_slots\": " << cfg.fair_share_slots
       << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); i++) {
    const Point& p = points[i];
    json << "    {\"mode\": \"" << p.mode
         << "\", \"meek_ops_per_sec\": " << fmt_double(p.meek_ops_per_sec, 1)
         << ", \"meek_p50_us\": " << fmt_double(p.meek_p50_us, 1)
         << ", \"meek_p99_us\": " << fmt_double(p.meek_p99_us, 1)
         << ", \"hog_served\": " << p.hog_served
         << ", \"hog_refused\": " << p.hog_refused
         << ", \"hog_errors\": " << p.hog_errors << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    int failures = check_regressions(points[0], points[2]);
    if (failures > 0) return 1;
    std::printf(
        "smoke checks passed: meek retains >= 80%% of solo throughput, "
        "hog excess refused, p99 bounded\n");
  }
  return 0;
}
