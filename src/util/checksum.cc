#include "util/checksum.h"

namespace tss {

namespace {
constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t fnv_mix(uint64_t hash, const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; i++) {
    hash ^= p[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// Extra avalanche pass so weak_mac output bits all depend on all input bits.
uint64_t final_mix(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}
}  // namespace

uint64_t fnv1a64(const void* data, size_t size) {
  return fnv_mix(kFnvOffset, data, size);
}

uint64_t fnv1a64(std::string_view s) { return fnv1a64(s.data(), s.size()); }

void Fnv1a64::update(const void* data, size_t size) {
  hash_ = fnv_mix(hash_, data, size);
}

std::string weak_mac(std::string_view key, std::string_view message) {
  // HMAC-like sandwich: H(key || H(key || message)), with avalanche mixing.
  uint64_t inner = kFnvOffset;
  inner = fnv_mix(inner, key.data(), key.size());
  inner = fnv_mix(inner, message.data(), message.size());
  inner = final_mix(inner);
  uint64_t outer = kFnvOffset;
  outer = fnv_mix(outer, key.data(), key.size());
  outer = fnv_mix(outer, &inner, sizeof inner);
  return hash_to_hex(final_mix(outer));
}

std::string hash_to_hex(uint64_t h) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; i--) {
    out[static_cast<size_t>(i)] = kDigits[h & 0xF];
    h >>= 4;
  }
  return out;
}

std::optional<uint64_t> hex_to_hash(std::string_view s) {
  if (s.size() != 16) return std::nullopt;
  uint64_t h = 0;
  for (char c : s) {
    uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    h = (h << 4) | nibble;
  }
  return h;
}

}  // namespace tss
