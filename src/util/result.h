// Lightweight error handling used across the TSS library.
//
// The Chirp protocol and the abstractions built on it are all expressed in
// terms of Unix-like operations, so errors carry an errno-style code plus a
// human-readable message. Result<T> is a minimal expected<T, Error>: we avoid
// exceptions on I/O paths (a remote ENOENT is not exceptional) and reserve
// throwing for programming errors.
#pragma once

#include <cerrno>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace tss {

// An errno-style error. `code` uses the host errno values (ENOENT, EACCES,
// ...) so that the adapter can hand results straight back to applications.
struct Error {
  int code = 0;
  std::string message;

  Error() = default;
  Error(int c, std::string msg) : code(c), message(std::move(msg)) {}

  // Builds an Error from the current errno value.
  static Error from_errno(const std::string& context) {
    int e = errno;
    return Error(e, context + ": " + std::strerror(e));
  }
  static Error from_errno(int e, const std::string& context) {
    return Error(e, context + ": " + std::strerror(e));
  }

  std::string to_string() const {
    return message.empty() ? std::strerror(code) : message;
  }
};

// Result<T>: either a value or an Error. `Result<void>` is specialized below.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const Error& error() const { return std::get<Error>(data_); }
  Error take_error() && { return std::get<Error>(std::move(data_)); }

  // errno-style convenience: 0 when ok.
  int code() const { return ok() ? 0 : error().code; }

 private:
  std::variant<T, Error> data_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}     // NOLINT(google-explicit-constructor)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const { return *error_; }
  Error take_error() && { return std::move(*error_); }
  int code() const { return ok() ? 0 : error_->code; }

  static Result success() { return Result(); }

 private:
  std::optional<Error> error_;
};

// Propagate-on-error helper: evaluates `expr`, and if it failed, returns the
// error from the enclosing function. Usage:
//   TSS_RETURN_IF_ERROR(fs.mkdir("/a"));
#define TSS_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    auto _tss_result = (expr);                       \
    if (!_tss_result.ok()) {                         \
      return std::move(_tss_result).take_error();    \
    }                                                \
  } while (0)

// Assign-or-return helper:
//   TSS_ASSIGN_OR_RETURN(auto fd, fs.open("/a", O_RDONLY));
#define TSS_ASSIGN_OR_RETURN(decl, expr)             \
  TSS_ASSIGN_OR_RETURN_IMPL_(                        \
      TSS_RESULT_CONCAT_(_tss_res_, __LINE__), decl, expr)
#define TSS_RESULT_CONCAT_INNER_(a, b) a##b
#define TSS_RESULT_CONCAT_(a, b) TSS_RESULT_CONCAT_INNER_(a, b)
#define TSS_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr)  \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return std::move(tmp).take_error();              \
  }                                                  \
  decl = std::move(tmp).value()

}  // namespace tss
