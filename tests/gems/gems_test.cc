// GEMS tests: ingest/fetch/search, auditor damage detection, replicator
// repair, space-budget enforcement — the §9 behaviours behind Figure 9.
#include "gems/gems.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <mutex>
#include <thread>

#include "fs/local.h"
#include "util/strings.h"

namespace tss::gems {
namespace {

class GemsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/gems_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    for (int i = 0; i < 4; i++) {
      std::string dir = base_ + "/server" + std::to_string(i);
      std::filesystem::create_directories(dir);
      data_.push_back(std::make_unique<fs::LocalFs>(dir));
      servers_["host" + std::to_string(i)] = data_.back().get();
    }
    catalog_ = std::make_unique<db::Table>(
        std::vector<std::string>{"project"});
    store_ = std::make_unique<db::TableStore>(catalog_.get());
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::unique_ptr<Gems> make_gems(uint64_t budget, int max_replicas = 0) {
    GemsOptions options;
    options.volume = "/gems";
    options.space_budget = budget;
    options.max_replicas = max_replicas;
    options.name_seed = 99;
    auto gems = std::make_unique<Gems>(store_.get(), servers_, options);
    EXPECT_TRUE(gems->format().ok());
    return gems;
  }

  // Destroys every replica of `name` that lives on `server` (failure
  // injection "by forcibly deleting data", §9).
  void damage_server_copies(Gems& gems, const std::string& name,
                            const std::string& server) {
    auto record = gems.record_of(name);
    ASSERT_TRUE(record.ok());
    for (const Replica& replica :
         decode_replicas(record.value().at("replicas"))) {
      if (replica.server == server) {
        ASSERT_TRUE(servers_[server]->unlink(replica.path).ok());
      }
    }
  }

  std::string base_;
  std::vector<std::unique_ptr<fs::LocalFs>> data_;
  std::map<std::string, fs::FileSystem*> servers_;
  std::unique_ptr<db::Table> catalog_;
  std::unique_ptr<db::TableStore> store_;
  static inline int counter_ = 0;
};

TEST_F(GemsTest, IngestAndFetch) {
  auto gems = make_gems(0);
  std::string data(50000, 'm');
  ASSERT_TRUE(gems->ingest("trajectory-1", data,
                           {{"project", "protomol"}, {"temp", "300K"}})
                  .ok());
  auto fetched = gems->fetch("trajectory-1");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value(), data);
}

TEST_F(GemsTest, DuplicateIngestRefused) {
  auto gems = make_gems(0);
  ASSERT_TRUE(gems->ingest("x", "data").ok());
  EXPECT_EQ(gems->ingest("x", "data").code(), EEXIST);
}

TEST_F(GemsTest, SearchByMetadata) {
  auto gems = make_gems(0);
  ASSERT_TRUE(gems->ingest("a", "1", {{"project", "protomol"}}).ok());
  ASSERT_TRUE(gems->ingest("b", "2", {{"project", "protomol"}}).ok());
  ASSERT_TRUE(gems->ingest("c", "3", {{"project", "babar"}}).ok());
  EXPECT_EQ(gems->search("project", "protomol").value().size(), 2u);
  EXPECT_EQ(gems->search("project", "babar").value().size(), 1u);
  EXPECT_TRUE(gems->search("project", "none").value().empty());
}

TEST_F(GemsTest, ReservedAttributeNamesRefused) {
  auto gems = make_gems(0);
  EXPECT_FALSE(gems->ingest("x", "d", {{"replicas", "evil"}}).ok());
  EXPECT_FALSE(gems->ingest("x", "d", {{"checksum", "evil"}}).ok());
}

TEST_F(GemsTest, ReplicatorFillsToMaxReplicas) {
  auto gems = make_gems(0, /*max_replicas=*/3);
  ASSERT_TRUE(gems->ingest("data", std::string(1000, 'd')).ok());
  EXPECT_EQ(gems->replica_count("data").value(), 1);
  auto copies = gems->replicate_until_stable();
  ASSERT_TRUE(copies.ok());
  EXPECT_EQ(copies.value(), 2);
  EXPECT_EQ(gems->replica_count("data").value(), 3);
  EXPECT_EQ(gems->stored_bytes().value(), 3000u);
}

TEST_F(GemsTest, ReplicatorStopsAtSpaceBudget) {
  // 1000-byte dataset, 2500-byte budget: 2 replicas fit, a third does not.
  auto gems = make_gems(2500);
  ASSERT_TRUE(gems->ingest("data", std::string(1000, 'd')).ok());
  ASSERT_TRUE(gems->replicate_until_stable().ok());
  EXPECT_EQ(gems->replica_count("data").value(), 2);
  EXPECT_LE(gems->stored_bytes().value(), 2500u);
}

TEST_F(GemsTest, ReplicatorPrefersLeastReplicated) {
  auto gems = make_gems(0, /*max_replicas=*/2);
  ASSERT_TRUE(gems->ingest("a", std::string(100, 'a')).ok());
  ASSERT_TRUE(gems->ingest("b", std::string(100, 'b')).ok());
  // One step replicates one of them; the next must pick the other.
  ASSERT_TRUE(gems->replicate_step().ok());
  ASSERT_TRUE(gems->replicate_step().ok());
  EXPECT_EQ(gems->replica_count("a").value(), 2);
  EXPECT_EQ(gems->replica_count("b").value(), 2);
}

TEST_F(GemsTest, AuditorDetectsDeletedReplica) {
  auto gems = make_gems(0, 3);
  ASSERT_TRUE(gems->ingest("victim", std::string(500, 'v')).ok());
  ASSERT_TRUE(gems->replicate_until_stable().ok());
  ASSERT_EQ(gems->replica_count("victim").value(), 3);

  // Forcibly delete the copy on one of its servers.
  auto record = gems->record_of("victim").value();
  auto replicas = decode_replicas(record.at("replicas"));
  damage_server_copies(*gems, "victim", replicas[0].server);

  auto problems = gems->audit_step();
  ASSERT_TRUE(problems.ok());
  EXPECT_EQ(problems.value(), 1);
  EXPECT_EQ(gems->replica_count("victim").value(), 2);
  // The notation is recorded for the replicator.
  EXPECT_FALSE(gems->record_of("victim").value().at("problems").empty());
}

TEST_F(GemsTest, AuditorDetectsCorruption) {
  auto gems = make_gems(0, 2);
  ASSERT_TRUE(gems->ingest("bits", std::string(500, 'b')).ok());
  ASSERT_TRUE(gems->replicate_until_stable().ok());

  // Corrupt one replica in place (same size, different content).
  auto record = gems->record_of("bits").value();
  auto replicas = decode_replicas(record.at("replicas"));
  ASSERT_TRUE(servers_[replicas[0].server]
                  ->write_file(replicas[0].path, std::string(500, 'X'))
                  .ok());

  auto problems = gems->audit_step();
  ASSERT_TRUE(problems.ok());
  EXPECT_EQ(problems.value(), 1);
  EXPECT_EQ(gems->replica_count("bits").value(), 1);
  // Fetch still works from the surviving good copy.
  EXPECT_EQ(gems->fetch("bits").value(), std::string(500, 'b'));
}

TEST_F(GemsTest, AuditThenRepairRestoresReplication) {
  // The full §9 loop: damage -> audit notices -> replicator repairs.
  auto gems = make_gems(0, 3);
  ASSERT_TRUE(gems->ingest("precious", std::string(2000, 'p')).ok());
  ASSERT_TRUE(gems->replicate_until_stable().ok());
  ASSERT_EQ(gems->replica_count("precious").value(), 3);

  auto replicas =
      decode_replicas(gems->record_of("precious").value().at("replicas"));
  damage_server_copies(*gems, "precious", replicas[0].server);
  damage_server_copies(*gems, "precious", replicas[1].server);

  ASSERT_TRUE(gems->audit_step().ok());
  EXPECT_EQ(gems->replica_count("precious").value(), 1);

  ASSERT_TRUE(gems->replicate_until_stable().ok());
  EXPECT_EQ(gems->replica_count("precious").value(), 3);
  EXPECT_EQ(gems->fetch("precious").value(), std::string(2000, 'p'));
  // Problem notations cleared by the repair.
  EXPECT_TRUE(gems->record_of("precious").value().at("problems").empty());
}

TEST_F(GemsTest, TotalLossIsUnrecoverableButDetected) {
  auto gems = make_gems(0, 1);
  ASSERT_TRUE(gems->ingest("doomed", "gone soon").ok());
  auto replicas =
      decode_replicas(gems->record_of("doomed").value().at("replicas"));
  damage_server_copies(*gems, "doomed", replicas[0].server);

  ASSERT_TRUE(gems->audit_step().ok());
  EXPECT_EQ(gems->replica_count("doomed").value(), 0);
  // Nothing to copy from: the replicator cannot repair it.
  EXPECT_FALSE(gems->replicate_step().value_or(true));
  EXPECT_FALSE(gems->fetch("doomed").ok());
}

TEST_F(GemsTest, StoredBytesTracksReplicaCount) {
  auto gems = make_gems(0, 4);
  ASSERT_TRUE(gems->ingest("a", std::string(100, 'a')).ok());
  ASSERT_TRUE(gems->ingest("b", std::string(300, 'b')).ok());
  EXPECT_EQ(gems->stored_bytes().value(), 400u);
  ASSERT_TRUE(gems->replicate_until_stable().ok());
  EXPECT_EQ(gems->stored_bytes().value(), 4 * 400u);
}

TEST_F(GemsTest, CatalogRecoveryByRescanSurvivesDbLoss) {
  // §5: "the database could even be recovered automatically by rescanning
  // the existing file data". Ingest through one catalog, destroy it, and
  // rebuild a new catalog from the data servers' volume listings.
  auto gems = make_gems(0, 2);
  ASSERT_TRUE(gems->ingest("ds 1", std::string(64, 'q')).ok());
  ASSERT_TRUE(gems->replicate_until_stable().ok());

  db::Table rebuilt;
  for (const auto& [name, fs] : servers_) {
    auto entries = fs->readdir("/gems");
    if (!entries.ok()) continue;
    for (const auto& entry : entries.value()) {
      // Data file names embed the urlencoded logical name: "<enc>.<nonce>".
      size_t dot = entry.name.rfind('.');
      std::string logical = tss::url_decode(entry.name.substr(0, dot));
      auto existing = rebuilt.get(logical);
      db::Record record = existing.ok()
                              ? existing.value()
                              : db::Record{{"id", logical}, {"replicas", ""}};
      auto replicas = decode_replicas(record["replicas"]);
      replicas.push_back(Replica{name, "/gems/" + entry.name});
      record["replicas"] = encode_replicas(replicas);
      record["size"] = std::to_string(entry.info.size);
      ASSERT_TRUE(rebuilt.put(record).ok());
    }
  }
  auto record = rebuilt.get("ds 1");
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(decode_replicas(record.value().at("replicas")).size(), 2u);
}

// db::TableStore is not thread-safe; racing writers go through a mutexed
// wrapper so the test exercises GEMS' reserve-then-commit admission, not
// catalog data races.
class LockedStore final : public db::Store {
 public:
  explicit LockedStore(db::Store* inner) : inner_(inner) {}
  Result<void> put(const db::Record& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->put(record);
  }
  Result<db::Record> get(const std::string& id) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->get(id);
  }
  Result<void> remove(const std::string& id) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->remove(id);
  }
  Result<std::vector<db::Record>> query(const std::string& field,
                                        const std::string& value) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->query(field, value);
  }
  Result<std::vector<db::Record>> scan() override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->scan();
  }

 private:
  db::Store* inner_;
  std::mutex mutex_;
};

TEST_F(GemsTest, RacingIngestsCannotJointlyOverrunTheBudget) {
  // Regression: the space check used to be check-then-act against the
  // catalog total, so two ingests racing through the gap both passed a
  // stale check and together overshot the budget. The reservation layer
  // makes each racer's pending bytes visible to the others.
  constexpr uint64_t kBudget = 10000;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10;
  constexpr size_t kSize = 1000;  // budget holds exactly 10 datasets

  LockedStore locked(store_.get());
  GemsOptions options;
  options.volume = "/gems";
  options.space_budget = kBudget;
  options.name_seed = 7;
  Gems gems(&locked, servers_, options);
  ASSERT_TRUE(gems.format().ok());

  std::atomic<int> accepted{0}, refused{0}, errors{0};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        std::string name =
            "ds-" + std::to_string(t) + "-" + std::to_string(i);
        auto rc = gems.ingest(name, std::string(kSize, 'g'));
        if (rc.ok()) {
          accepted++;
        } else if (rc.error().code == ENOSPC) {
          refused++;
        } else {
          errors++;
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(accepted.load() + refused.load(), kThreads * kPerThread);
  // The invariant under attack: committed bytes never exceed the budget,
  // no matter how the ingests interleaved.
  auto stored = gems.stored_bytes();
  ASSERT_TRUE(stored.ok());
  EXPECT_LE(stored.value(), kBudget);
  EXPECT_EQ(stored.value(), static_cast<uint64_t>(accepted.load()) * kSize);
  // And the budget is actually usable, not just safe: everything fits.
  EXPECT_EQ(accepted.load(), 10);
}

TEST_F(GemsTest, ReplicatorHoldsReservationAcrossCopyAndRegister) {
  // One dataset of 3000 bytes, budget 7000: the replicator may add exactly
  // one more copy (6000 total); the next attempt must see ENOSPC-as-done,
  // not overshoot.
  auto gems = make_gems(/*budget=*/7000);
  ASSERT_TRUE(gems->ingest("ds", std::string(3000, 'r')).ok());
  auto copies = gems->replicate_until_stable();
  ASSERT_TRUE(copies.ok());
  EXPECT_EQ(copies.value(), 1);
  EXPECT_EQ(gems->stored_bytes().value(), 6000u);
  EXPECT_EQ(gems->replica_count("ds").value(), 2);
}

}  // namespace
}  // namespace tss::gems
