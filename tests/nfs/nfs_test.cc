#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "nfs/client.h"
#include "nfs/server.h"

namespace tss::nfs {
namespace {

class NfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/nfs_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    Server::Options options;
    options.export_root = root_;
    server_ = std::make_unique<Server>(options);
    ASSERT_TRUE(server_->start().ok());
  }

  void TearDown() override {
    server_->stop();
    std::filesystem::remove_all(root_);
  }

  Client connect() {
    auto client = Client::connect(server_->endpoint());
    EXPECT_TRUE(client.ok()) << client.error().to_string();
    return std::move(client).value();
  }

  void write_host_file(const std::string& rel, const std::string& data) {
    std::ofstream out(root_ + "/" + rel);
    out << data;
  }

  std::string root_;
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

TEST_F(NfsTest, MountReturnsRootHandle) {
  Client client = connect();
  auto attrs = client.getattr(1);
  ASSERT_TRUE(attrs.ok());
  EXPECT_TRUE(attrs.value().is_dir);
}

TEST_F(NfsTest, LookupWalksComponents) {
  std::filesystem::create_directories(root_ + "/a/b");
  write_host_file("a/b/c.txt", "hello");
  Client client = connect();
  auto a = client.lookup(1, "a");
  ASSERT_TRUE(a.ok());
  auto b = client.lookup(a.value().first, "b");
  ASSERT_TRUE(b.ok());
  auto c = client.lookup(b.value().first, "c.txt");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().second.size, 5u);
  EXPECT_FALSE(c.value().second.is_dir);
}

TEST_F(NfsTest, LookupMissingNameFails) {
  Client client = connect();
  auto missing = client.lookup(1, "ghost");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ENOENT);
}

TEST_F(NfsTest, StatResolvesFullPath) {
  std::filesystem::create_directories(root_ + "/x/y");
  write_host_file("x/y/z", "12345678");
  Client client = connect();
  auto info = client.stat("/x/y/z");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 8u);
}

TEST_F(NfsTest, ReadWriteSegmentedAt4k) {
  Client client = connect();
  auto fh = client.open_file("/data", /*create_if_absent=*/true);
  ASSERT_TRUE(fh.ok());

  // 10000 bytes forces three write RPCs (4096+4096+1808).
  std::string data(10000, 'x');
  for (size_t i = 0; i < data.size(); i += 3) data[i] = static_cast<char>(i);
  auto wrote = client.pwrite(fh.value(), data.data(), data.size(), 0);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(wrote.value(), data.size());

  std::string got(data.size(), '\0');
  auto read = client.pread(fh.value(), got.data(), got.size(), 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data.size());
  EXPECT_EQ(got, data);
}

TEST_F(NfsTest, SingleRpcRejectsOversizedTransfer) {
  Client client = connect();
  auto fh = client.open_file("/f", true);
  ASSERT_TRUE(fh.ok());
  char buf[8192];
  auto r = client.read_rpc(fh.value(), buf, sizeof buf, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, EMSGSIZE);
}

TEST_F(NfsTest, StaleHandleAfterRemoval) {
  write_host_file("doomed", "bits");
  Client client = connect();
  auto fh = client.resolve("/doomed");
  ASSERT_TRUE(fh.ok());
  std::filesystem::remove(root_ + "/doomed");
  auto attrs = client.getattr(fh.value());
  ASSERT_FALSE(attrs.ok());
  EXPECT_EQ(attrs.error().code, ESTALE);
}

TEST_F(NfsTest, CreateRemoveRename) {
  Client client = connect();
  auto created = client.create(1, "f1", 0644);
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(client.rename(1, "f1", 1, "f2").ok());
  EXPECT_FALSE(client.lookup(1, "f1").ok());
  EXPECT_TRUE(client.lookup(1, "f2").ok());
  ASSERT_TRUE(client.remove(1, "f2").ok());
  EXPECT_FALSE(client.lookup(1, "f2").ok());
}

TEST_F(NfsTest, MkdirRmdirReaddir) {
  Client client = connect();
  auto dir = client.mkdir(1, "sub", 0755);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(client.create(dir.value(), "inner", 0644).ok());
  auto names = client.readdir(dir.value());
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names.value().size(), 1u);
  EXPECT_EQ(names.value()[0], "inner");
  ASSERT_TRUE(client.remove(dir.value(), "inner").ok());
  ASSERT_TRUE(client.rmdir(1, "sub").ok());
}

TEST_F(NfsTest, TruncateViaHandle) {
  write_host_file("t", "0123456789");
  Client client = connect();
  auto fh = client.resolve("/t");
  ASSERT_TRUE(fh.ok());
  ASSERT_TRUE(client.truncate(fh.value(), 3).ok());
  auto info = client.getattr(fh.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 3u);
}

TEST_F(NfsTest, OpenFileWithoutCreateFailsOnMissing) {
  Client client = connect();
  auto fh = client.open_file("/nope", /*create_if_absent=*/false);
  ASSERT_FALSE(fh.ok());
  EXPECT_EQ(fh.error().code, ENOENT);
}

TEST_F(NfsTest, DeepPathCostsOneLookupPerComponent) {
  // Behavioural check of the latency model in Figure 4: stat on a depth-5
  // path is 5 lookups + 1 getattr; we verify it works at depth and leave the
  // timing to the bench.
  std::filesystem::create_directories(root_ + "/1/2/3/4/5");
  write_host_file("1/2/3/4/5/leaf", "x");
  Client client = connect();
  auto info = client.stat("/1/2/3/4/5/leaf");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 1u);
}

}  // namespace
}  // namespace tss::nfs
