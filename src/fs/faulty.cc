#include "fs/faulty.h"

#include <cstring>

#include "util/path.h"
#include "util/strings.h"

namespace tss::fs {

FaultSchedule::FaultSchedule(uint64_t seed, Clock* clock,
                             obs::Registry* metrics)
    : clock_(clock ? clock : &RealClock::instance()), rng_(seed ? seed : 1) {
  obs::Registry* registry = metrics ? metrics : &obs::Registry::global();
  m_ops_ = registry->counter("fault.ops_seen");
  m_injected_ = registry->counter("fault.injected");
}

void FaultSchedule::add(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(ActiveRule{std::move(rule), 0, 0});
}

void FaultSchedule::fail_nth(uint64_t nth, int error_code,
                             std::string op_pattern,
                             std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.skip = nth > 0 ? nth - 1 : 0;
  rule.count = 1;
  rule.error_code = error_code;
  add(std::move(rule));
}

void FaultSchedule::fail_once(int error_code, std::string op_pattern,
                              std::string path_pattern) {
  fail_nth(1, error_code, std::move(op_pattern), std::move(path_pattern));
}

void FaultSchedule::fail_always(int error_code, std::string op_pattern,
                                std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.error_code = error_code;
  add(std::move(rule));
}

void FaultSchedule::fail_with_probability(double p, int error_code,
                                          std::string op_pattern,
                                          std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.probability = p;
  rule.error_code = error_code;
  add(std::move(rule));
}

void FaultSchedule::add_latency(Nanos latency, std::string op_pattern,
                                std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.error_code = 0;
  rule.latency = latency;
  add(std::move(rule));
}

void FaultSchedule::corrupt_bit_flip(std::string op_pattern,
                                     std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.error_code = 0;
  rule.corrupt = FaultRule::Corrupt::kBitFlip;
  add(std::move(rule));
}

void FaultSchedule::corrupt_truncate(std::string op_pattern,
                                     std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.error_code = 0;
  rule.corrupt = FaultRule::Corrupt::kTruncate;
  add(std::move(rule));
}

void FaultSchedule::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
}

namespace {
// splitmix64-style finalizer: spreads the op counter into a full-width seed
// without touching the schedule's Rng stream.
uint64_t mix_seed(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

FaultSchedule::IoVerdict FaultSchedule::decide_io(std::string_view op,
                                                  const std::string& path) {
  Nanos latency = 0;
  IoVerdict verdict;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ops_++;
    m_ops_->add();
    for (ActiveRule& active : rules_) {
      const FaultRule& rule = active.rule;
      if (!wildcard_match(rule.op_pattern, op)) continue;
      if (!wildcard_match(rule.path_pattern, path)) continue;
      active.matched++;
      if (active.matched <= rule.skip) continue;
      if (rule.count >= 0 &&
          active.fired >= static_cast<uint64_t>(rule.count)) {
        continue;
      }
      // The Rng is consumed only for probabilistic rules, so deterministic
      // schedules stay byte-identical regardless of rule order.
      if (rule.probability < 1.0 && rng_.uniform() >= rule.probability) {
        continue;
      }
      active.fired++;
      latency += rule.latency;
      if (rule.corrupt != FaultRule::Corrupt::kNone &&
          verdict.corrupt == FaultRule::Corrupt::kNone) {
        verdict.corrupt = rule.corrupt;
        verdict.corrupt_seed = mix_seed(ops_);
        faults_++;
        m_injected_->add();
      }
      if (rule.error_code != 0 && verdict.error == 0) {
        verdict.error = rule.error_code;
        faults_++;
        m_injected_->add();
      }
    }
  }
  // Sleep outside the lock so a latency rule cannot serialize a whole stack.
  if (latency > 0) clock_->sleep_for(latency);
  return verdict;
}

int FaultSchedule::decide(std::string_view op, const std::string& path) {
  return decide_io(op, path).error;
}

uint64_t FaultSchedule::ops_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

uint64_t FaultSchedule::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

namespace {

// An open file whose every operation first consults the schedule, using the
// path the file was opened with for pattern matching.
class FaultyFile final : public File {
 public:
  FaultyFile(std::unique_ptr<File> target, FaultSchedule* schedule,
             std::string path)
      : target_(std::move(target)),
        schedule_(schedule),
        path_(std::move(path)) {}

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    FaultSchedule::IoVerdict v = schedule_->decide_io("pread", path_);
    if (v.error) {
      return Error(v.error, "injected fault: pread " + path_);
    }
    auto n = target_->pread(data, size, offset);
    if (!n.ok() || n.value() == 0) return n;
    size_t got = n.value();
    switch (v.corrupt) {
      case FaultRule::Corrupt::kNone:
        break;
      case FaultRule::Corrupt::kBitFlip:
        // A bad sector: one bit of the delivered payload is wrong, and the
        // read still reports success.
        static_cast<char*>(data)[(v.corrupt_seed / 8) % got] ^=
            char(1) << (v.corrupt_seed % 8);
        break;
      case FaultRule::Corrupt::kTruncate:
        // A torn read: only the first half arrived, the tail is zero-fill,
        // and the caller is still told the full count.
        std::memset(static_cast<char*>(data) + got / 2, 0, got - got / 2);
        break;
    }
    return got;
  }

  Result<size_t> pwrite(const void* data, size_t size,
                        int64_t offset) override {
    FaultSchedule::IoVerdict v = schedule_->decide_io("pwrite", path_);
    if (v.error) {
      return Error(v.error, "injected fault: pwrite " + path_);
    }
    if (v.corrupt == FaultRule::Corrupt::kNone || size == 0) {
      return target_->pwrite(data, size, offset);
    }
    // At-rest rot: mutate a private copy so the caller's buffer (and any
    // digest it computed) stays true to intent, then report full success —
    // the writer believes everything landed.
    std::string copy(static_cast<const char*>(data), size);
    if (v.corrupt == FaultRule::Corrupt::kBitFlip) {
      copy[(v.corrupt_seed / 8) % size] ^= char(1) << (v.corrupt_seed % 8);
    } else {
      copy.resize(size / 2);
    }
    auto n = target_->pwrite(copy.data(), copy.size(), offset);
    if (!n.ok()) return n;
    return size;
  }

  Result<void> fsync() override {
    if (int err = schedule_->decide("fsync", path_)) {
      return Error(err, "injected fault: fsync " + path_);
    }
    return target_->fsync();
  }

  Result<StatInfo> fstat() override {
    if (int err = schedule_->decide("fstat", path_)) {
      return Error(err, "injected fault: fstat " + path_);
    }
    return target_->fstat();
  }

  Result<void> close() override {
    if (int err = schedule_->decide("close", path_)) {
      return Error(err, "injected fault: close " + path_);
    }
    return target_->close();
  }

 private:
  std::unique_ptr<File> target_;
  FaultSchedule* schedule_;
  std::string path_;
};

}  // namespace

FaultyFs::FaultyFs(FileSystem* target, FaultSchedule* schedule)
    : target_(target), schedule_(schedule) {}

Result<void> FaultyFs::check(std::string_view op, const std::string& path) {
  if (int err = schedule_->decide(op, path)) {
    return Error(err,
                 "injected fault: " + std::string(op) + " " + path);
  }
  return Result<void>::success();
}

Result<std::unique_ptr<File>> FaultyFs::open(const std::string& p,
                                             const OpenFlags& flags,
                                             uint32_t mode) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("open", canonical));
  TSS_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       target_->open(canonical, flags, mode));
  return std::unique_ptr<File>(
      new FaultyFile(std::move(file), schedule_, canonical));
}

Result<StatInfo> FaultyFs::stat(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("stat", canonical));
  return target_->stat(canonical);
}

Result<void> FaultyFs::unlink(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("unlink", canonical));
  return target_->unlink(canonical);
}

Result<void> FaultyFs::rename(const std::string& from, const std::string& to) {
  std::string f = path::sanitize(from);
  TSS_RETURN_IF_ERROR(check("rename", f));
  return target_->rename(f, to);
}

Result<void> FaultyFs::mkdir(const std::string& p, uint32_t mode) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("mkdir", canonical));
  return target_->mkdir(canonical, mode);
}

Result<void> FaultyFs::rmdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("rmdir", canonical));
  return target_->rmdir(canonical);
}

Result<void> FaultyFs::truncate(const std::string& p, uint64_t size) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("truncate", canonical));
  return target_->truncate(canonical, size);
}

Result<std::vector<DirEntry>> FaultyFs::readdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("readdir", canonical));
  return target_->readdir(canonical);
}

}  // namespace tss::fs
