#include "chirp/protocol.h"

#include <fcntl.h>
#include <gtest/gtest.h>

namespace tss::chirp {
namespace {

TEST(OpenFlags, EncodeParseRoundTrip) {
  for (const char* token : {"r", "w", "rw", "wctx", "rwa", "ws", "rwctxas"}) {
    auto parsed = OpenFlags::parse(token);
    ASSERT_TRUE(parsed.ok()) << token;
    EXPECT_EQ(parsed.value().encode(), token);
  }
}

TEST(OpenFlags, PosixMapping) {
  auto flags = OpenFlags::parse("wctx").value();
  int posix = flags.to_posix();
  EXPECT_EQ(posix & O_ACCMODE, O_WRONLY);
  EXPECT_TRUE(posix & O_CREAT);
  EXPECT_TRUE(posix & O_TRUNC);
  EXPECT_TRUE(posix & O_EXCL);
  EXPECT_FALSE(posix & O_APPEND);
}

TEST(OpenFlags, FromPosixRoundTrip) {
  int cases[] = {O_RDONLY, O_WRONLY | O_CREAT, O_RDWR | O_APPEND,
                 O_WRONLY | O_CREAT | O_EXCL | O_SYNC};
  for (int flags : cases) {
    OpenFlags f = OpenFlags::from_posix(flags);
    EXPECT_EQ(f.to_posix(), flags);
  }
}

TEST(OpenFlags, SyncFlagSupportsO_SYNCSemantics) {
  // §6: "Synchronous writes are easily implemented by simply transparently
  // appending the O_SYNC flag to all open calls."
  OpenFlags f = OpenFlags::parse("rw").value();
  f.sync = true;
  EXPECT_TRUE(f.to_posix() & O_SYNC);
}

TEST(OpenFlags, RejectsUnknownLetter) {
  EXPECT_FALSE(OpenFlags::parse("rq").ok());
}

TEST(StatInfo, EncodeParseRoundTrip) {
  StatInfo info{12345, 0644, 1700000000, 987654, false};
  auto parsed = StatInfo::parse(
      {"12345", "420", "1700000000", "987654", "f"}, 0);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size, 12345u);
  EXPECT_EQ(parsed.value().inode, 987654u);
  EXPECT_FALSE(parsed.value().is_dir);
  (void)info;
}

TEST(Request, EncodeParseRoundTripAllOps) {
  std::vector<Request> requests;
  {
    Request r;
    r.op = Op::kOpen;
    r.path = "/dir with space/file.txt";
    r.flags = OpenFlags::parse("wc").value();
    r.mode = 0600;
    requests.push_back(r);
  }
  {
    Request r;
    r.op = Op::kPread;
    r.fd = 7;
    r.length = 8192;
    r.offset = 65536;
    requests.push_back(r);
  }
  {
    Request r;
    r.op = Op::kPwrite;
    r.fd = 7;
    r.length = 100;
    r.offset = 0;
    requests.push_back(r);
  }
  {
    Request r;
    r.op = Op::kRename;
    r.path = "/a/old name";
    r.path2 = "/b/new%name";
    requests.push_back(r);
  }
  {
    Request r;
    r.op = Op::kSetacl;
    r.path = "/data";
    r.acl_subject = "globus:/O=Notre_Dame/*";
    r.acl_rights = "rlv(rwla)";
    requests.push_back(r);
  }
  {
    Request r;
    r.op = Op::kPutfile;
    r.path = "/x";
    r.mode = 0644;
    r.length = 42;
    requests.push_back(r);
  }

  for (const Request& original : requests) {
    std::string line = encode_request(original);
    auto parsed = parse_request_line(line);
    ASSERT_TRUE(parsed.ok()) << line << ": " << parsed.error().to_string();
    const Request& got = parsed.value();
    EXPECT_EQ(got.op, original.op) << line;
    EXPECT_EQ(got.path, original.path) << line;
    EXPECT_EQ(got.path2, original.path2) << line;
    EXPECT_EQ(got.fd, original.fd) << line;
    EXPECT_EQ(got.length, original.length) << line;
    EXPECT_EQ(got.offset, original.offset) << line;
    EXPECT_EQ(got.acl_subject, original.acl_subject) << line;
    EXPECT_EQ(got.acl_rights, original.acl_rights) << line;
  }
}

TEST(Request, PayloadLenOnlyForWriteOps) {
  Request w;
  w.op = Op::kPwrite;
  w.length = 100;
  EXPECT_EQ(w.payload_len(), 100u);
  Request p;
  p.op = Op::kPutfile;
  p.length = 7;
  EXPECT_EQ(p.payload_len(), 7u);
  Request r;
  r.op = Op::kPread;
  r.length = 100;
  EXPECT_EQ(r.payload_len(), 0u);  // the *response* carries the payload
}

TEST(Request, ParseRejectsUnknownAndMalformed) {
  EXPECT_FALSE(parse_request_line("").ok());
  EXPECT_FALSE(parse_request_line("frobnicate /x").ok());
  EXPECT_FALSE(parse_request_line("open").ok());
  EXPECT_FALSE(parse_request_line("pread notanumber 1 2").ok());
  EXPECT_FALSE(parse_request_line("open /x zz 0644").ok());
}

TEST(Request, ParseRejectsOversizedRpcPayload) {
  std::string line =
      "pwrite 3 " + std::to_string(kMaxRpcPayload + 1) + " 0";
  auto parsed = parse_request_line(line);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().code, EMSGSIZE);
}

TEST(Response, OkRoundTrip) {
  Response r;
  r.args = {"42", "1700000000"};
  std::string line = encode_response_line(r);
  EXPECT_EQ(line, "ok 42 1700000000");
  auto parsed = parse_response_line(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ok());
  EXPECT_EQ(parsed.value().args.size(), 2u);
}

TEST(Response, ErrorRoundTripPreservesMessage) {
  Response r = Response::failure(ENOENT, "no such file or directory");
  std::string line = encode_response_line(r);
  auto parsed = parse_response_line(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().err, ENOENT);
  EXPECT_EQ(parsed.value().message, "no such file or directory");
}

TEST(Response, ParseRejectsNonsense) {
  EXPECT_FALSE(parse_response_line("").ok());
  EXPECT_FALSE(parse_response_line("maybe").ok());
  EXPECT_FALSE(parse_response_line("error").ok());
  EXPECT_FALSE(parse_response_line("error zero").ok());
  EXPECT_FALSE(parse_response_line("error 0 impossible").ok());
}

TEST(DirEntry, EncodeParseRoundTrip) {
  DirEntry e{"file with space.dat", StatInfo{99, 0644, 1700, 555, false}};
  auto parsed = parse_dirent(encode_dirent(e));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name, e.name);
  EXPECT_EQ(parsed.value().info.size, 99u);
  EXPECT_EQ(parsed.value().info.inode, 555u);
}

}  // namespace
}  // namespace tss::chirp
