// Ablation — RPC throughput vs reactor/acceptor sharding.
//
// The accept-path rework sharded the server two ways: N acceptor threads on
// SO_REUSEPORT listeners (the kernel spreads accepts across them) and a
// least-loaded adopt() that deals connections across the reactor workers.
// This harness measures what a saturated client population gets out of it:
// aggregate control-RPC throughput with 1024 connections against one server,
// across shard counts {1, 2, 4}.
//
// The offered load is the part that matters. A serial request/response
// client caps at ~65k RPC/s regardless of server parallelism (one in-flight
// RPC ≈ one round-trip per ~14 us, see BENCH_connection_scale.json — the
// baseline this bench is scored against). Here a small set of *pipelined*
// clients each keep a deep batch of stat() requests in flight on their
// connection while the rest of the 1024-connection herd idles — the shape of
// a busy TSS deployment, where a few active clients burst while most sit
// connected. Batching lets the server's readiness loop dispatch many
// requests per wakeup and gather many responses per writev flush, so the
// aggregate is bounded by server dispatch + syscall amortization, not by the
// wire round-trip.
//
// On a single-core host the shard axis is expected to be ~flat (there is no
// parallelism for extra workers to claim; the JSON records
// hardware_concurrency so readers can tell); the ≥4x-over-baseline criterion
// is carried by the pipelined data path.
//
// Usage: bench_ablation_rpc_sharding [--smoke] [out.json]
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "auth/hostname.h"
#include "bench/common.h"
#include "chirp/posix_backend.h"
#include "chirp/protocol.h"
#include "chirp/server.h"
#include "net/line_stream.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace tss::bench {
namespace {

// Serial request/response throughput at 1024 connections, from
// BENCH_connection_scale.json (thread engine, 1024 idle connections): the
// pre-rework ceiling this bench is scored against.
constexpr double kBaselineRpcsPerSec = 65055.0;

constexpr int kPipelineDepth = 32;

struct RunConfig {
  size_t total_connections = 1024;
  int active_clients = 16;
  Nanos duration = 2 * kSecond + 500 * kMillisecond;
};

struct ShardPoint {
  int shards = 0;
  uint64_t completed = 0;
  double seconds = 0;
  double rpcs_per_sec = 0;
};

bool raise_fd_limit(size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  rlim_t need = want * 2 + 512;
  if (lim.rlim_cur >= need) return true;
  lim.rlim_cur = std::min<rlim_t>(need, lim.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &lim);
  ::getrlimit(RLIMIT_NOFILE, &lim);
  return lim.rlim_cur >= need;
}

struct WorkerResult {
  uint64_t completed = 0;
  std::string error;  // empty = clean run
};

// One pipelined client: raw protocol over a blocking LineStream, keeping
// kPipelineDepth stat() requests in flight per flush.
void pipeline_worker(net::Endpoint endpoint, std::atomic<bool>* stop,
                     WorkerResult* out) {
  auto fail = [out](const std::string& what, const Error& e) {
    out->error = what + ": " + e.to_string();
  };
  auto sock = net::TcpSocket::connect(endpoint, 10 * kSecond);
  if (!sock.ok()) return fail("connect", sock.error());
  net::LineStream stream(std::move(sock).value(), 10 * kSecond);

  // Handshake: version, then hostname auth (no challenge rounds).
  auto roundtrip = [&](const chirp::Request& req) -> Result<chirp::Response> {
    TSS_RETURN_IF_ERROR(stream.send_line(chirp::encode_request(req)));
    TSS_ASSIGN_OR_RETURN(std::string line, stream.read_line());
    TSS_ASSIGN_OR_RETURN(chirp::Response resp,
                         chirp::parse_response_line(line));
    if (!resp.ok()) return Error(resp.err, resp.message);
    return resp;
  };
  chirp::Request version;
  version.op = chirp::Op::kVersion;
  if (auto r = roundtrip(version); !r.ok()) return fail("version", r.error());
  chirp::Request auth;
  auth.op = chirp::Op::kAuth;
  auth.auth_method = "hostname";
  auth.auth_arg = "-";
  if (auto r = roundtrip(auth); !r.ok()) return fail("auth", r.error());

  chirp::Request stat;
  stat.op = chirp::Op::kStat;
  stat.path = "/";
  const std::string request_line = chirp::encode_request(stat);

  while (!stop->load(std::memory_order_relaxed)) {
    for (int i = 0; i < kPipelineDepth; i++) {
      stream.write_line(request_line);
    }
    if (auto rc = stream.flush(); !rc.ok()) return fail("flush", rc.error());
    for (int i = 0; i < kPipelineDepth; i++) {
      auto line = stream.read_line();
      if (!line.ok()) return fail("read", line.error());
      auto resp = chirp::parse_response_line(line.value());
      if (!resp.ok()) return fail("parse", resp.error());
      if (!resp.value().ok()) {
        return fail("stat", Error(resp.value().err, resp.value().message));
      }
      out->completed++;
    }
  }
}

Result<ShardPoint> run_point(int shards, const RunConfig& cfg,
                             const std::string& root) {
  obs::Registry server_metrics;
  chirp::ServerOptions options;
  options.owner = "hostname:localhost";
  options.root_acl =
      acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
  options.mode = net::Mode::kReactor;
  options.reactor_workers = shards;
  options.acceptors = shards;
  options.metrics = &server_metrics;
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  chirp::Server server(options, std::make_unique<chirp::PosixBackend>(root),
                       std::move(auth));
  TSS_RETURN_IF_ERROR(server.start());

  // The idle herd: connected, never speaking. They cost the reactor a
  // buffered fd each and make the active clients contend for a realistic
  // connection table, not an empty one.
  size_t idle = cfg.total_connections > static_cast<size_t>(cfg.active_clients)
                    ? cfg.total_connections - cfg.active_clients
                    : 0;
  std::vector<net::TcpSocket> herd;
  herd.reserve(idle);
  for (size_t i = 0; i < idle; i++) {
    TSS_ASSIGN_OR_RETURN(
        net::TcpSocket sock,
        net::TcpSocket::connect(server.endpoint(), 10 * kSecond));
    herd.push_back(std::move(sock));
  }

  std::atomic<bool> stop{false};
  std::vector<WorkerResult> results(cfg.active_clients);
  std::vector<std::thread> workers;
  workers.reserve(cfg.active_clients);
  Nanos start = RealClock::instance().now();
  for (int i = 0; i < cfg.active_clients; i++) {
    workers.emplace_back(pipeline_worker, server.endpoint(), &stop,
                         &results[i]);
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(cfg.duration));
  stop.store(true);
  for (auto& w : workers) w.join();
  Nanos elapsed = RealClock::instance().now() - start;

  ShardPoint point;
  point.shards = shards;
  for (const auto& r : results) {
    if (!r.error.empty()) return Error(EIO, "worker failed: " + r.error);
    point.completed += r.completed;
  }
  point.seconds = static_cast<double>(elapsed) / kSecond;
  point.rpcs_per_sec =
      point.seconds > 0 ? static_cast<double>(point.completed) / point.seconds
                        : 0;

  herd.clear();
  server.stop();
  return point;
}

}  // namespace
}  // namespace tss::bench

int main(int argc, char** argv) {
  using namespace tss::bench;

  bool smoke = false;
  std::string out_path = "BENCH_rpc_sharding.json";
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  RunConfig cfg;
  if (smoke) {
    cfg.total_connections = 64;
    cfg.active_clients = 4;
    cfg.duration = 200 * tss::kMillisecond;
    if (out_path == "BENCH_rpc_sharding.json") {
      // A smoke run is a CI health check; never clobber the recorded run.
      out_path = "/tmp/BENCH_rpc_sharding.smoke.json";
    }
  }
  if (!raise_fd_limit(cfg.total_connections)) {
    std::fprintf(stderr,
                 "warning: RLIMIT_NOFILE too low for %zu connections; "
                 "using 256\n",
                 cfg.total_connections);
    cfg.total_connections = 256;
  }

  std::string root = "/tmp/tss_bench_shard_" + std::to_string(::getpid());
  std::filesystem::create_directories(root);

  print_header(
      "Ablation: RPC throughput vs reactor/acceptor sharding",
      "Aggregate stat() throughput from " +
          std::to_string(cfg.active_clients) + " pipelined clients (depth " +
          std::to_string(kPipelineDepth) + ") among " +
          std::to_string(cfg.total_connections) +
          " connections.\nshards = reactor workers = SO_REUSEPORT "
          "acceptors; baseline = serial request/response\nthroughput at the "
          "same connection count (BENCH_connection_scale.json).");
  print_row({"shards", "rpcs", "seconds", "rpc/s", "vs baseline"}, 14);

  std::vector<ShardPoint> points;
  for (int shards : {1, 2, 4}) {
    auto point = run_point(shards, cfg, root);
    if (!point.ok()) {
      std::fprintf(stderr, "point shards=%d failed: %s\n", shards,
                   point.error().to_string().c_str());
      continue;
    }
    points.push_back(point.value());
    const ShardPoint& p = points.back();
    print_row({std::to_string(p.shards), std::to_string(p.completed),
               fmt_double(p.seconds, 2), fmt_double(p.rpcs_per_sec, 0),
               fmt_double(p.rpcs_per_sec / kBaselineRpcsPerSec, 2) + "x"},
              14);
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"rpc_sharding\",\n"
       << "  \"connections\": " << cfg.total_connections << ",\n"
       << "  \"active_clients\": " << cfg.active_clients << ",\n"
       << "  \"pipeline_depth\": " << kPipelineDepth << ",\n"
       << "  \"hardware_concurrency\": "
       << std::thread::hardware_concurrency() << ",\n"
       << "  \"baseline_rpcs_per_sec\": "
       << static_cast<uint64_t>(kBaselineRpcsPerSec) << ",\n"
       << "  \"points\": [\n";
  for (size_t i = 0; i < points.size(); i++) {
    const ShardPoint& p = points[i];
    json << "    {\"shards\": " << p.shards << ", \"completed\": "
         << p.completed << ", \"seconds\": " << fmt_double(p.seconds, 3)
         << ", \"rpcs_per_sec\": " << static_cast<uint64_t>(p.rpcs_per_sec)
         << ", \"speedup_vs_baseline\": "
         << fmt_double(p.rpcs_per_sec / kBaselineRpcsPerSec, 2) << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  std::filesystem::remove_all(root);
  return 0;
}
