// Shared exponential-backoff policy.
//
// Introduced for the §6 CFS reconnect path and reused verbatim by the
// chirp::ClientPool dialer: one policy type means one tuning surface for
// every "the server went away, try again politely" loop in the stack.
#pragma once

#include "util/clock.h"
#include "util/rand.h"

namespace tss {

struct RetryPolicy {
  int max_attempts = 5;                  // attempts per incident
  Nanos base_delay = 50 * kMillisecond;  // doubled after each failure
  Nanos max_delay = 5 * kSecond;
  // Deterministic jitter: each backoff delay is scaled by a factor drawn
  // uniformly from [1 - jitter, 1 + jitter], so a pool of clients whose
  // server restarts does not reconnect in lockstep (a mini thundering
  // herd). 0 disables. Seeded for reproducibility by the owning component.
  double jitter = 0.25;
};

// One incident's worth of backoff state: delay(k) for attempt k (0-based)
// is base_delay * 2^(k-1), capped at max_delay and jittered. Attempt 0
// carries no delay — callers sleep only between attempts.
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, Rng* jitter_rng)
      : policy_(policy), rng_(jitter_rng) {}

  // Jittered delay to sleep before attempt `k` (0-based); 0 for the first.
  Nanos delay_before(int attempt) {
    if (attempt <= 0) return 0;
    Nanos delay = policy_.base_delay;
    for (int i = 1; i < attempt && delay < policy_.max_delay; i++) {
      delay *= 2;
    }
    if (delay > policy_.max_delay) delay = policy_.max_delay;
    if (policy_.jitter > 0 && rng_) {
      double factor =
          1.0 + policy_.jitter * (2.0 * rng_->uniform() - 1.0);
      delay = static_cast<Nanos>(static_cast<double>(delay) * factor);
    }
    return delay;
  }

 private:
  RetryPolicy policy_;
  Rng* rng_;
};

}  // namespace tss
