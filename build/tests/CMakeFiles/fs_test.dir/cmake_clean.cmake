file(REMOVE_RECURSE
  "CMakeFiles/fs_test.dir/fs/cfs_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/cfs_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/dist_model_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/dist_model_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/dist_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/dist_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/extensions_network_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/extensions_network_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/extensions_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/extensions_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/faulty_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/faulty_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/local_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/local_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/replicated_fault_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/replicated_fault_test.cc.o.d"
  "CMakeFiles/fs_test.dir/fs/versioned_test.cc.o"
  "CMakeFiles/fs_test.dir/fs/versioned_test.cc.o.d"
  "fs_test"
  "fs_test.pdb"
  "fs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
