// The NFS-baseline server.
//
// Exports a host directory through the filehandle protocol described in
// wire.h. Handles map to paths; a handle whose file has vanished yields
// ESTALE, which is also what the adapter surfaces for Chirp files whose
// inode changed — "the client receives a 'stale file handle' error as in
// NFS" (§6).
//
// No authentication and no per-user access control: NFS in the paper's
// setting "assumes that all machines share a common user database" (§3);
// the baseline trusts every connection, which is exactly the property the
// TSS virtual user space is contrasted against.
//
// Connections run as resumable sessions on net::ServerLoop — the epoll
// reactor by default, thread-per-connection under TSS_NET_MODE=thread — so
// baseline-vs-Chirp comparisons measure the protocols on the same engine.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "chirp/protocol.h"
#include "net/server_loop.h"
#include "util/result.h"

namespace tss::nfs {

class NfsSession;

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string export_root;
    Nanos io_timeout = 30 * kSecond;
  };

  explicit Server(Options options);
  ~Server();

  Result<void> start();
  void stop();
  uint16_t port() const { return loop_.port(); }
  net::Endpoint endpoint() const {
    return net::Endpoint{options_.host, loop_.port()};
  }

 private:
  friend class NfsSession;

  // Handle table: fh -> canonical virtual path. fh 1 is "/".
  uint64_t handle_for(const std::string& canonical);
  Result<std::string> path_for(uint64_t fh);
  std::string host_path(const std::string& canonical) const;

  Options options_;
  net::ServerLoop loop_;
  std::mutex mutex_;
  std::map<uint64_t, std::string> handle_to_path_;
  std::map<std::string, uint64_t> path_to_handle_;
  uint64_t next_handle_ = 2;
};

}  // namespace tss::nfs
