// Per-directory access control lists, exactly as described in §4 of the
// paper.
//
// Each entry pairs a wildcard *subject* (a free-form "method:name" identity
// from the virtual user space, e.g. "hostname:*.cse.nd.edu" or
// "globus:/O=Notre_Dame/*") with a set of rights:
//
//   R  read files            W  write / create files
//   L  list the directory    D  delete files
//   A  administer (modify this ACL)
//   V(...) the *reserve* right: the subject may mkdir here, and the fresh
//          directory is initialized with an ACL granting that subject only
//          the rights named inside the parentheses.
//
// Rights from multiple matching entries accumulate (union), as do the
// parenthesized reserve sets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace tss::acl {

enum Right : uint8_t {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kList = 1u << 2,
  kDelete = 1u << 3,
  kAdmin = 1u << 4,
  kReserve = 1u << 5,
};

using Rights = uint8_t;

constexpr Rights kNoRights = 0;
constexpr Rights kAllRights =
    kRead | kWrite | kList | kDelete | kAdmin | kReserve;

// Parses a rights token: lowercase letters from {r,w,l,d,a} plus at most one
// "v" or "v(...)" group, e.g. "rwl", "rwla", "v(rwl)", "rlv(rwla)", "-" (no
// rights). Returns (rights, reserve_rights); the kReserve bit is set in
// rights iff a v group is present.
struct ParsedRights {
  Rights rights = kNoRights;
  Rights reserve = kNoRights;  // rights granted inside v(...)
};
Result<ParsedRights> parse_rights(std::string_view token);

// Formats rights (+ reserve set) back to the token form; "-" when empty.
std::string format_rights(Rights rights, Rights reserve);

// One ACL line.
struct Entry {
  std::string subject;  // wildcard pattern over "method:name"
  Rights rights = kNoRights;
  Rights reserve = kNoRights;

  bool matches(std::string_view subject_name) const;
};

class Acl {
 public:
  Acl() = default;

  // Parses the on-disk / on-wire text format: one "subject rights" pair per
  // line; blank lines and '#' comments ignored.
  static Result<Acl> parse(std::string_view text);

  std::string serialize() const;

  // Does `subject` hold every right in `wanted`?
  bool check(std::string_view subject, Rights wanted) const;

  // Union of all rights held by `subject`.
  Rights rights_for(std::string_view subject) const;

  // Union of the reserve sets of every entry matching `subject`, or nullopt
  // if no matching entry carries V. This is the rights set a reserved mkdir
  // grants the caller in the new directory.
  std::optional<Rights> reserve_rights_for(std::string_view subject) const;

  // Replaces any exact-pattern entry for `subject_pattern`, or appends.
  // Setting empty rights removes the entry.
  void set(std::string_view subject_pattern, Rights rights, Rights reserve);

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  // The ACL a reserved mkdir creates: the concrete calling subject with the
  // parent's reserve set (per the paper's /backup example, the caller does
  // NOT get A unless the parent's v(...) included it).
  static Acl fresh_for(std::string_view subject, Rights granted);

 private:
  std::vector<Entry> entries_;
};

}  // namespace tss::acl
