// CfsFs tests over a live Chirp server, including the §6 recovery semantics:
// reconnect with backoff, transparent re-open, and stale-handle detection.
#include "fs/cfs.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"

namespace tss::fs {
namespace {

class CfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/cfs_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    start_server(/*port=*/0);
  }

  void TearDown() override {
    if (server_) server_->stop();
    std::filesystem::remove_all(root_);
  }

  void start_server(uint16_t port) {
    chirp::ServerOptions options;
    options.port = port;
    options.owner = "unix:testowner";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(root_),
        std::move(auth));
    ASSERT_TRUE(server_->start().ok());
    port_ = server_->port();
  }

  void stop_server() { server_->stop(); }
  void restart_server() { start_server(port_); }

  std::unique_ptr<CfsFs> make_fs(int max_attempts = 5) {
    CfsFs::Options options;
    options.retry.max_attempts = max_attempts;
    options.retry.base_delay = 5 * kMillisecond;
    auto credential = std::make_shared<auth::HostnameClientCredential>();
    return std::make_unique<CfsFs>(
        chirp_connector(net::Endpoint{"127.0.0.1", port_}, {credential}),
        options);
  }

  std::string root_;
  uint16_t port_ = 0;
  std::unique_ptr<chirp::Server> server_;
  static inline int counter_ = 0;
};

TEST_F(CfsTest, BasicFileLifecycle) {
  auto fs = make_fs();
  ASSERT_TRUE(fs->write_file("/hello", "cfs data").ok());
  EXPECT_EQ(fs->read_file("/hello").value(), "cfs data");
  auto info = fs->stat("/hello");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 8u);
  ASSERT_TRUE(fs->unlink("/hello").ok());
  EXPECT_EQ(fs->stat("/hello").code(), ENOENT);
}

TEST_F(CfsTest, OpenPreadPwrite) {
  auto fs = make_fs();
  auto file = fs->open("/f", OpenFlags::parse("rwc").value(), 0644);
  ASSERT_TRUE(file.ok()) << file.error().to_string();
  ASSERT_TRUE(file.value()->pwrite("0123456789", 10, 0).ok());
  char buf[4];
  auto n = file.value()->pread(buf, 4, 3);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 4), "3456");
  EXPECT_EQ(file.value()->fstat().value().size, 10u);
  EXPECT_TRUE(file.value()->close().ok());
}

TEST_F(CfsTest, LargeIoSegmentsTransparently) {
  auto fs = make_fs();
  // > 1 MiB forces the client-side chunking path.
  std::string big(3 * 1024 * 1024 + 17, 'b');
  for (size_t i = 0; i < big.size(); i += 101) {
    big[i] = static_cast<char>(i >> 3);
  }
  ASSERT_TRUE(fs->write_file("/big", big).ok());
  EXPECT_EQ(fs->read_file("/big").value(), big);

  auto file = fs->open("/big", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());
  std::string got(big.size(), '\0');
  auto n = file.value()->pread(got.data(), got.size(), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), big.size());
  EXPECT_EQ(got, big);
}

TEST_F(CfsTest, DirectoryOperations) {
  auto fs = make_fs();
  ASSERT_TRUE(fs->mkdir("/d").ok());
  ASSERT_TRUE(fs->write_file("/d/x", "1").ok());
  auto entries = fs->readdir("/d");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries.value().size(), 1u);
  EXPECT_EQ(entries.value()[0].name, "x");
  ASSERT_TRUE(fs->rename("/d/x", "/d/y").ok());
  ASSERT_TRUE(fs->unlink("/d/y").ok());
  ASSERT_TRUE(fs->rmdir("/d").ok());
}

TEST_F(CfsTest, ReconnectsAfterServerRestart) {
  auto fs = make_fs();
  ASSERT_TRUE(fs->write_file("/persist", "before").ok());
  uint64_t connects_before = fs->reconnect_count();

  stop_server();
  restart_server();

  // The next operation rides through a transparent reconnect.
  auto data = fs->read_file("/persist");
  ASSERT_TRUE(data.ok()) << data.error().to_string();
  EXPECT_EQ(data.value(), "before");
  EXPECT_GT(fs->reconnect_count(), connects_before);
}

TEST_F(CfsTest, OpenFileSurvivesServerRestart) {
  auto fs = make_fs();
  ASSERT_TRUE(fs->write_file("/kept", "0123456789").ok());
  auto file = fs->open("/kept", OpenFlags::parse("rw").value());
  ASSERT_TRUE(file.ok());
  char buf[2];
  ASSERT_TRUE(file.value()->pread(buf, 2, 0).ok());

  stop_server();
  restart_server();

  // §6: "If the connection is re-established, then the adapter re-opens
  // files for the user, hiding any change in the underlying file
  // descriptor."
  auto n = file.value()->pread(buf, 2, 4);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(std::string(buf, 2), "45");
}

TEST_F(CfsTest, ReplacedFileYieldsStaleHandle) {
  auto fs = make_fs();
  ASSERT_TRUE(fs->write_file("/victim", "original").ok());
  auto file = fs->open("/victim", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());

  stop_server();
  // Replace the file behind the server's back: same name, different inode.
  // The imposter is created while the original still exists so the
  // filesystem cannot recycle the original's inode number.
  {
    std::ofstream out(root_ + "/imposter");
    out << "imposter";
  }
  std::filesystem::rename(root_ + "/imposter", root_ + "/victim");
  restart_server();

  // §6: "If it does not [have the same inode], then the file was renamed or
  // deleted between the first open and the disconnection. In this case, the
  // client receives a 'stale file handle' error as in NFS."
  char buf[8];
  auto n = file.value()->pread(buf, sizeof buf, 0);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error().code, ESTALE);
}

TEST_F(CfsTest, DeletedFileYieldsStaleHandle) {
  auto fs = make_fs();
  ASSERT_TRUE(fs->write_file("/gone", "bits").ok());
  auto file = fs->open("/gone", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());

  stop_server();
  std::filesystem::remove(root_ + "/gone");
  restart_server();

  char buf[4];
  auto n = file.value()->pread(buf, sizeof buf, 0);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.error().code, ESTALE);
}

TEST_F(CfsTest, GivesUpAfterRetryBudget) {
  auto fs = make_fs(/*max_attempts=*/2);
  ASSERT_TRUE(fs->write_file("/x", "1").ok());
  stop_server();
  // Server never comes back: the user-placed "upper limit on these retries"
  // (§6) turns into a hard error.
  auto data = fs->read_file("/x");
  ASSERT_FALSE(data.ok());
  restart_server();  // so TearDown has something to stop
}

TEST_F(CfsTest, ReopenDoesNotRetruncate) {
  // A file opened with "wct" must not be truncated again by the transparent
  // re-open after reconnection.
  auto fs = make_fs();
  auto file = fs->open("/t", OpenFlags::parse("rwct").value(), 0644);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->pwrite("important", 9, 0).ok());

  stop_server();
  restart_server();

  char buf[9];
  auto n = file.value()->pread(buf, 9, 0);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(n.value(), 9u);
  EXPECT_EQ(std::string(buf, 9), "important");
}

TEST_F(CfsTest, SyncWritesOptionPropagates) {
  CfsFs::Options options;
  options.retry.base_delay = 5 * kMillisecond;
  options.sync_writes = true;
  auto credential = std::make_shared<auth::HostnameClientCredential>();
  CfsFs fs(chirp_connector(net::Endpoint{"127.0.0.1", port_}, {credential}),
           options);
  // Behavioural smoke test: writes succeed with O_SYNC appended server-side.
  ASSERT_TRUE(fs.write_file("/sync", "durable").ok());
  auto file = fs.open("/sync", OpenFlags::parse("rw").value());
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->pwrite("X", 1, 0).ok());
  EXPECT_TRUE(file.value()->fsync().ok());
}

TEST_F(CfsTest, AclManagementPassthrough) {
  auto fs = make_fs();
  ASSERT_TRUE(fs->mkdir("/shared").ok());
  ASSERT_TRUE(fs->setacl("/shared", "unix:collab", "rwl").ok());
  auto acl = fs->getacl("/shared");
  ASSERT_TRUE(acl.ok());
  EXPECT_NE(acl.value().find("unix:collab"), std::string::npos);
  auto who = fs->whoami();
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(who.value(), "hostname:localhost");
}

}  // namespace
}  // namespace tss::fs
