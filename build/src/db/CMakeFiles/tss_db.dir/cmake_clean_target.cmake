file(REMOVE_RECURSE
  "libtss_db.a"
)
