# Empty dependencies file for tss_auth.
# This may be replaced when dependencies are built.
