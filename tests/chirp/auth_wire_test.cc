// Authentication over the real wire: challenge rounds, credential
// negotiation order, and GSI/Kerberos through a live TCP Chirp server.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "auth/gsi.h"
#include "auth/hostname.h"
#include "auth/kerberos.h"
#include "auth/unix.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"

namespace tss::chirp {
namespace {

class AuthWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/authwire_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    challenge_dir_ = root_ + "-challenges";
    std::filesystem::create_directories(root_);
    std::filesystem::create_directories(challenge_dir_);
  }
  void TearDown() override {
    if (server_) server_->stop();
    std::filesystem::remove_all(root_);
    std::filesystem::remove_all(challenge_dir_);
  }

  void start_server(std::unique_ptr<auth::ServerAuth> auth,
                    const std::string& acl_text) {
    ServerOptions options;
    options.owner = "unix:testowner";
    options.root_acl = acl::Acl::parse(acl_text).value();
    server_ = std::make_unique<Server>(
        options, std::make_unique<PosixBackend>(root_), std::move(auth));
    ASSERT_TRUE(server_->start().ok());
  }

  Client connect() {
    auto client = Client::connect(server_->endpoint());
    EXPECT_TRUE(client.ok());
    return std::move(client).value();
  }

  std::string root_;
  std::string challenge_dir_;
  std::unique_ptr<Server> server_;
  static inline int counter_ = 0;
};

TEST_F(AuthWireTest, UnixChallengeResponseOverTcp) {
  // The full §4 unix flow across a real socket: server sends a challenge
  // line, client touches the file, server infers identity from ownership.
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::UnixServerMethod>(challenge_dir_));
  start_server(std::move(auth), "unix:* rwl\n");

  Client client = connect();
  auth::UnixClientCredential credential;
  auto subject = client.authenticate(credential);
  ASSERT_TRUE(subject.ok()) << subject.error().to_string();
  EXPECT_EQ(subject.value().method, "unix");
  EXPECT_EQ(subject.value().name, auth::username_for_uid(::getuid()));
  // The session works, and the challenge directory is clean again.
  EXPECT_TRUE(client.getfile("/nonexistent").code() == ENOENT);
  EXPECT_TRUE(std::filesystem::is_empty(challenge_dir_));
}

TEST_F(AuthWireTest, GsiCredentialOverTcp) {
  auth::GsiCa ca("test-ca", "ca-secret");
  auto gsi = std::make_unique<auth::GsiServerMethod>();
  gsi->trust(ca);
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::move(gsi));
  start_server(std::move(auth), "globus:/O=Test/* rwl\n");

  Client client = connect();
  auth::GsiClientCredential credential(
      ca.issue("/O=Test/CN=Wire User", ::time(nullptr) + 60));
  auto subject = client.authenticate(credential);
  ASSERT_TRUE(subject.ok()) << subject.error().to_string();
  EXPECT_EQ(subject.value().to_string(), "globus:/O=Test/CN=Wire User");
  EXPECT_TRUE(client.putfile("/from-grid", "data").ok());
}

TEST_F(AuthWireTest, KerberosTicketOverTcp) {
  auth::Kdc kdc;
  kdc.add_principal("alice@TEST", "alice-key");
  kdc.add_service("chirp/testhost", "service-key");
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::KerberosServerMethod>("chirp/testhost",
                                                         "service-key"));
  start_server(std::move(auth), "kerberos:*@TEST rwl\n");

  Client client = connect();
  auto ticket = kdc.issue_ticket("alice@TEST", "alice-key", "chirp/testhost",
                                 ::time(nullptr) + 60);
  ASSERT_TRUE(ticket.ok());
  auth::KerberosClientCredential credential(ticket.value());
  auto subject = client.authenticate(credential);
  ASSERT_TRUE(subject.ok()) << subject.error().to_string();
  EXPECT_EQ(subject.value().to_string(), "kerberos:alice@TEST");
}

TEST_F(AuthWireTest, AuthenticateAnyFallsThroughFailedMethods) {
  // Server only enables hostname; the client offers GSI (refused: method
  // not enabled), then unix (not enabled), then hostname (succeeds) — "a
  // client may attempt any number of authentication methods in any order".
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  start_server(std::move(auth), "hostname:localhost rwl\n");

  Client client = connect();
  auth::GsiCa rogue("somewhere", "key");
  auth::GsiClientCredential gsi(rogue.issue("/O=X/CN=Y", ::time(nullptr) + 60));
  auth::UnixClientCredential unix_credential;
  auth::HostnameClientCredential hostname;
  auto subject =
      client.authenticate_any({&gsi, &unix_credential, &hostname});
  ASSERT_TRUE(subject.ok()) << subject.error().to_string();
  EXPECT_EQ(subject.value().to_string(), "hostname:localhost");
}

TEST_F(AuthWireTest, AllMethodsRefusedYieldsLastError) {
  auth::GsiCa trusted("real-ca", "real-key");
  auto gsi = std::make_unique<auth::GsiServerMethod>();
  gsi->trust(trusted);
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::move(gsi));
  start_server(std::move(auth), "globus:* rwl\n");

  Client client = connect();
  auth::GsiCa rogue("rogue", "rogue-key");
  auth::GsiClientCredential bad(rogue.issue("/O=X/CN=Y", ::time(nullptr) + 60));
  auth::HostnameClientCredential hostname;  // method not enabled server-side
  auto subject = client.authenticate_any({&bad, &hostname});
  ASSERT_FALSE(subject.ok());
  // The session remains usable for a correct retry on a *new* connection
  // (this one is still unauthenticated, so requests are refused).
  EXPECT_EQ(client.stat("/").code(), EACCES);
}

TEST_F(AuthWireTest, MultipleMethodsEnabledDifferentUsersPickTheirs) {
  auth::GsiCa ca("multi-ca", "multi-key");
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  auth->add(std::make_unique<auth::UnixServerMethod>(challenge_dir_));
  auto gsi = std::make_unique<auth::GsiServerMethod>();
  gsi->trust(ca);
  auth->add(std::move(gsi));
  start_server(std::move(auth),
               "hostname:localhost rl\nunix:* rwl\nglobus:/O=M/* rwlda\n");

  {
    Client c = connect();
    auth::HostnameClientCredential credential;
    ASSERT_TRUE(c.authenticate(credential).ok());
    EXPECT_EQ(c.putfile("/h", "x").code(), EACCES);  // hostname: read-only
  }
  {
    Client c = connect();
    auth::UnixClientCredential credential;
    ASSERT_TRUE(c.authenticate(credential).ok());
    EXPECT_TRUE(c.putfile("/u", "x").ok());          // unix: rw
    EXPECT_EQ(c.setacl("/", "unix:evil", "a").code(), EACCES);
  }
  {
    Client c = connect();
    auth::GsiClientCredential credential(
        ca.issue("/O=M/CN=Admin", ::time(nullptr) + 60));
    ASSERT_TRUE(c.authenticate(credential).ok());
    EXPECT_TRUE(c.setacl("/", "unix:friend", "rl").ok());  // globus: admin
  }
}

}  // namespace
}  // namespace tss::chirp
