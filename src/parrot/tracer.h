// The Parrot trapping mechanism: ptrace-based system call interposition.
//
// "This adapter connects to an application through the debugging interface
// and instructs the kernel to intercept all of its system calls. As each
// call is attempted, the application is halted, and the adapter provides a
// new implementation." (§6)
//
// Two capabilities are provided, both with real PTRACE_SYSCALL machinery
// (x86-64 Linux):
//
//  1. Pass-through tracing: every system call of an unmodified child is
//     stopped at entry and exit and immediately resumed. This is the
//     mechanism whose per-call cost Figure 3 measures — the multiple
//     user/kernel context switches charged on every call.
//
//  2. Path redirection: system calls whose path argument falls under a
//     configured virtual prefix (e.g. "/tss/...") are rewritten in the
//     stopped child's registers and memory to point at a locally
//     materialized copy, obtained through a fetch callback (typically an
//     adapter::Adapter that speaks Chirp). This demonstrates transparent
//     access for unmodified binaries; it covers the read-path syscalls
//     (open/openat/stat/access/execve...), a deliberately small slice of
//     what the full Parrot implements.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace tss::parrot {

struct TraceOptions {
  // When non-empty, paths under this prefix are redirected.
  std::string virtual_prefix;
  // Maps a virtual path (prefix stripped, canonical, e.g. "/data/x") to a
  // host path whose content should be substituted. Failures surface to the
  // application as ENOENT.
  std::function<Result<std::string>(const std::string&)> fetch;
};

struct TraceStats {
  int exit_code = -1;
  uint64_t syscall_count = 0;   // number of system calls observed
  uint64_t rewrites = 0;        // path arguments redirected
  uint64_t fetch_failures = 0;  // redirections that failed (app saw ENOENT)
};

// Runs argv[0] with the given arguments under the tracer. Blocks until the
// child exits.
Result<TraceStats> trace_run(const std::vector<std::string>& argv,
                             const TraceOptions& options = {});

// True on platforms where the tracer is implemented (x86-64 Linux).
bool tracer_supported();

}  // namespace tss::parrot
