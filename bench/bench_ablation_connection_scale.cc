// Ablation — execution engine vs connection count.
//
// The paper's file server is a single daemon that must stay responsive as
// the number of concurrently connected clients grows (§7 runs up to 64
// simultaneous clients per server; a deployed TSS sees far more). This
// harness pits the two execution engines of net::ServerLoop against each
// other on one axis: RPC latency for a foreground client while N mostly-idle
// background sessions stay connected.
//
//   thread   one blocking thread per connection (the seed engine):
//            N sessions = N kernel threads, scheduler pressure grows with N.
//   reactor  net::EventLoop: a fixed worker pool multiplexes all N sessions;
//            idle connections cost a buffered fd, not a thread.
//
// The foreground client performs small control RPCs (stat) back to back;
// p50/p99 come from the client-side obs histogram, the same machinery the
// stats RPC exposes. Results go to stdout as a table and to
// BENCH_connection_scale.json for the record.
//
// Usage: bench_ablation_connection_scale [out.json]
#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "auth/hostname.h"
#include "bench/common.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace tss::bench {
namespace {

constexpr int kForegroundRpcs = 2000;

struct ScalePoint {
  std::string mode;
  size_t connections = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  double rpcs_per_sec = 0;
};

bool raise_fd_limit(size_t want) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  rlim_t need = want * 2 + 512;
  if (lim.rlim_cur >= need) return true;
  lim.rlim_cur = std::min<rlim_t>(need, lim.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &lim);
  ::getrlimit(RLIMIT_NOFILE, &lim);
  return lim.rlim_cur >= need;
}

Result<ScalePoint> run_point(net::Mode mode, const std::string& mode_name,
                             size_t idle_conns, const std::string& root) {
  obs::Registry server_metrics;
  obs::Registry client_metrics;

  chirp::ServerOptions options;
  options.owner = "hostname:localhost";
  options.root_acl =
      acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
  options.mode = mode;
  options.metrics = &server_metrics;
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  chirp::Server server(options,
                       std::make_unique<chirp::PosixBackend>(root),
                       std::move(auth));
  TSS_RETURN_IF_ERROR(server.start());

  // The idle herd: admitted sessions that never send a request.
  std::vector<net::TcpSocket> herd;
  herd.reserve(idle_conns);
  for (size_t i = 0; i < idle_conns; i++) {
    TSS_ASSIGN_OR_RETURN(net::TcpSocket sock,
                         net::TcpSocket::connect(server.endpoint(),
                                                 10 * kSecond));
    herd.push_back(std::move(sock));
  }

  chirp::Client::Options copts;
  copts.timeout = 10 * kSecond;
  copts.metrics = &client_metrics;
  TSS_ASSIGN_OR_RETURN(chirp::Client client,
                       chirp::Client::connect(server.endpoint(), copts));
  auth::HostnameClientCredential credential;
  TSS_RETURN_IF_ERROR(client.authenticate(credential));
  auto mk = client.mkdir("/bench");  // shared across points
  if (!mk.ok() && mk.error().code != EEXIST) return mk.error();

  Nanos start = RealClock::instance().now();
  for (int i = 0; i < kForegroundRpcs; i++) {
    TSS_RETURN_IF_ERROR(client.stat("/bench"));
  }
  Nanos elapsed = RealClock::instance().now() - start;

  auto snap = client_metrics.histogram_snapshot("chirp.client.rpc_latency");
  ScalePoint point;
  point.mode = mode_name;
  point.connections = idle_conns;
  point.p50_ns = snap.quantile(0.50);
  point.p99_ns = snap.quantile(0.99);
  point.rpcs_per_sec =
      elapsed > 0 ? kForegroundRpcs / (static_cast<double>(elapsed) / kSecond)
                  : 0;

  client.close();
  herd.clear();
  server.stop();
  return point;
}

}  // namespace
}  // namespace tss::bench

int main(int argc, char** argv) {
  using namespace tss::bench;

  const std::string out_path =
      argc > 1 ? argv[1] : "BENCH_connection_scale.json";
  std::vector<size_t> scales = {64, 256, 1024};
  if (!raise_fd_limit(scales.back())) {
    std::fprintf(stderr,
                 "warning: RLIMIT_NOFILE too low for 1024 connections; "
                 "dropping the largest point\n");
    scales.pop_back();
  }

  std::string root = "/tmp/tss_bench_scale_" + std::to_string(::getpid());
  std::filesystem::create_directories(root);

  print_header(
      "Ablation: thread-per-connection vs reactor under idle connection load",
      "Foreground stat() RPC latency with N idle sessions connected.\n"
      "thread = one blocking thread per session (seed engine);\n"
      "reactor = fixed-pool epoll event loop (net::EventLoop).");
  print_row({"engine", "idle conns", "p50", "p99", "rpc/s"}, 14);

  std::vector<ScalePoint> points;
  struct ModeSpec {
    tss::net::Mode mode;
    const char* name;
  };
  const ModeSpec modes[] = {
      {tss::net::Mode::kThreadPerConnection, "thread"},
      {tss::net::Mode::kReactor, "reactor"},
  };
  for (const auto& spec : modes) {
    for (size_t conns : scales) {
      auto point = run_point(spec.mode, spec.name, conns, root);
      if (!point.ok()) {
        std::fprintf(stderr, "point %s/%zu failed: %s\n", spec.name, conns,
                     point.error().to_string().c_str());
        continue;
      }
      points.push_back(point.value());
      print_row({spec.name, std::to_string(conns),
                 fmt_us(static_cast<double>(point.value().p50_ns)),
                 fmt_us(static_cast<double>(point.value().p99_ns)),
                 fmt_double(point.value().rpcs_per_sec, 0)},
                14);
    }
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"connection_scale\",\n  \"foreground_rpcs\": "
       << kForegroundRpcs << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); i++) {
    const ScalePoint& p = points[i];
    json << "    {\"engine\": \"" << p.mode << "\", \"idle_connections\": "
         << p.connections << ", \"p50_ns\": " << p.p50_ns
         << ", \"p99_ns\": " << p.p99_ns << ", \"rpcs_per_sec\": "
         << static_cast<uint64_t>(p.rpcs_per_sec) << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  std::filesystem::remove_all(root);
  return 0;
}
