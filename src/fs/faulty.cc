#include "fs/faulty.h"

#include "util/path.h"
#include "util/strings.h"

namespace tss::fs {

FaultSchedule::FaultSchedule(uint64_t seed, Clock* clock,
                             obs::Registry* metrics)
    : clock_(clock ? clock : &RealClock::instance()), rng_(seed ? seed : 1) {
  obs::Registry* registry = metrics ? metrics : &obs::Registry::global();
  m_ops_ = registry->counter("fault.ops_seen");
  m_injected_ = registry->counter("fault.injected");
}

void FaultSchedule::add(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.push_back(ActiveRule{std::move(rule), 0, 0});
}

void FaultSchedule::fail_nth(uint64_t nth, int error_code,
                             std::string op_pattern,
                             std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.skip = nth > 0 ? nth - 1 : 0;
  rule.count = 1;
  rule.error_code = error_code;
  add(std::move(rule));
}

void FaultSchedule::fail_once(int error_code, std::string op_pattern,
                              std::string path_pattern) {
  fail_nth(1, error_code, std::move(op_pattern), std::move(path_pattern));
}

void FaultSchedule::fail_always(int error_code, std::string op_pattern,
                                std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.error_code = error_code;
  add(std::move(rule));
}

void FaultSchedule::fail_with_probability(double p, int error_code,
                                          std::string op_pattern,
                                          std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.probability = p;
  rule.error_code = error_code;
  add(std::move(rule));
}

void FaultSchedule::add_latency(Nanos latency, std::string op_pattern,
                                std::string path_pattern) {
  FaultRule rule;
  rule.op_pattern = std::move(op_pattern);
  rule.path_pattern = std::move(path_pattern);
  rule.error_code = 0;
  rule.latency = latency;
  add(std::move(rule));
}

void FaultSchedule::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rules_.clear();
}

int FaultSchedule::decide(std::string_view op, const std::string& path) {
  Nanos latency = 0;
  int injected = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ops_++;
    m_ops_->add();
    for (ActiveRule& active : rules_) {
      const FaultRule& rule = active.rule;
      if (!wildcard_match(rule.op_pattern, op)) continue;
      if (!wildcard_match(rule.path_pattern, path)) continue;
      active.matched++;
      if (active.matched <= rule.skip) continue;
      if (rule.count >= 0 &&
          active.fired >= static_cast<uint64_t>(rule.count)) {
        continue;
      }
      // The Rng is consumed only for probabilistic rules, so deterministic
      // schedules stay byte-identical regardless of rule order.
      if (rule.probability < 1.0 && rng_.uniform() >= rule.probability) {
        continue;
      }
      active.fired++;
      latency += rule.latency;
      if (rule.error_code != 0 && injected == 0) {
        injected = rule.error_code;
        faults_++;
        m_injected_->add();
      }
    }
  }
  // Sleep outside the lock so a latency rule cannot serialize a whole stack.
  if (latency > 0) clock_->sleep_for(latency);
  return injected;
}

uint64_t FaultSchedule::ops_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_;
}

uint64_t FaultSchedule::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

namespace {

// An open file whose every operation first consults the schedule, using the
// path the file was opened with for pattern matching.
class FaultyFile final : public File {
 public:
  FaultyFile(std::unique_ptr<File> target, FaultSchedule* schedule,
             std::string path)
      : target_(std::move(target)),
        schedule_(schedule),
        path_(std::move(path)) {}

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    if (int err = schedule_->decide("pread", path_)) {
      return Error(err, "injected fault: pread " + path_);
    }
    return target_->pread(data, size, offset);
  }

  Result<size_t> pwrite(const void* data, size_t size,
                        int64_t offset) override {
    if (int err = schedule_->decide("pwrite", path_)) {
      return Error(err, "injected fault: pwrite " + path_);
    }
    return target_->pwrite(data, size, offset);
  }

  Result<void> fsync() override {
    if (int err = schedule_->decide("fsync", path_)) {
      return Error(err, "injected fault: fsync " + path_);
    }
    return target_->fsync();
  }

  Result<StatInfo> fstat() override {
    if (int err = schedule_->decide("fstat", path_)) {
      return Error(err, "injected fault: fstat " + path_);
    }
    return target_->fstat();
  }

  Result<void> close() override {
    if (int err = schedule_->decide("close", path_)) {
      return Error(err, "injected fault: close " + path_);
    }
    return target_->close();
  }

 private:
  std::unique_ptr<File> target_;
  FaultSchedule* schedule_;
  std::string path_;
};

}  // namespace

FaultyFs::FaultyFs(FileSystem* target, FaultSchedule* schedule)
    : target_(target), schedule_(schedule) {}

Result<void> FaultyFs::check(std::string_view op, const std::string& path) {
  if (int err = schedule_->decide(op, path)) {
    return Error(err,
                 "injected fault: " + std::string(op) + " " + path);
  }
  return Result<void>::success();
}

Result<std::unique_ptr<File>> FaultyFs::open(const std::string& p,
                                             const OpenFlags& flags,
                                             uint32_t mode) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("open", canonical));
  TSS_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                       target_->open(canonical, flags, mode));
  return std::unique_ptr<File>(
      new FaultyFile(std::move(file), schedule_, canonical));
}

Result<StatInfo> FaultyFs::stat(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("stat", canonical));
  return target_->stat(canonical);
}

Result<void> FaultyFs::unlink(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("unlink", canonical));
  return target_->unlink(canonical);
}

Result<void> FaultyFs::rename(const std::string& from, const std::string& to) {
  std::string f = path::sanitize(from);
  TSS_RETURN_IF_ERROR(check("rename", f));
  return target_->rename(f, to);
}

Result<void> FaultyFs::mkdir(const std::string& p, uint32_t mode) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("mkdir", canonical));
  return target_->mkdir(canonical, mode);
}

Result<void> FaultyFs::rmdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("rmdir", canonical));
  return target_->rmdir(canonical);
}

Result<void> FaultyFs::truncate(const std::string& p, uint64_t size) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("truncate", canonical));
  return target_->truncate(canonical, size);
}

Result<std::vector<DirEntry>> FaultyFs::readdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  TSS_RETURN_IF_ERROR(check("readdir", canonical));
  return target_->readdir(canonical);
}

}  // namespace tss::fs
