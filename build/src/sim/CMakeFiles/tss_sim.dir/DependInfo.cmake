
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chirp_sim.cc" "src/sim/CMakeFiles/tss_sim.dir/chirp_sim.cc.o" "gcc" "src/sim/CMakeFiles/tss_sim.dir/chirp_sim.cc.o.d"
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/tss_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/tss_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/tss_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/tss_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/resources.cc" "src/sim/CMakeFiles/tss_sim.dir/resources.cc.o" "gcc" "src/sim/CMakeFiles/tss_sim.dir/resources.cc.o.d"
  "/root/repo/src/sim/sim_backend.cc" "src/sim/CMakeFiles/tss_sim.dir/sim_backend.cc.o" "gcc" "src/sim/CMakeFiles/tss_sim.dir/sim_backend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/chirp/CMakeFiles/tss_chirp.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/tss_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/acl/CMakeFiles/tss_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tss_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
