#include "util/path.h"

#include <gtest/gtest.h>

namespace tss::path {
namespace {

TEST(Sanitize, Basics) {
  EXPECT_EQ(sanitize(""), "/");
  EXPECT_EQ(sanitize("/"), "/");
  EXPECT_EQ(sanitize("a"), "/a");
  EXPECT_EQ(sanitize("/a/b"), "/a/b");
  EXPECT_EQ(sanitize("a/b/"), "/a/b");
}

TEST(Sanitize, CollapsesDotsAndSlashes) {
  EXPECT_EQ(sanitize("/a/./b"), "/a/b");
  EXPECT_EQ(sanitize("//a///b//"), "/a/b");
  EXPECT_EQ(sanitize("./a"), "/a");
  EXPECT_EQ(sanitize("/."), "/");
}

// The software-chroot property: no input may name anything above the root.
TEST(Sanitize, ChrootClampStopsEscapes) {
  EXPECT_EQ(sanitize(".."), "/");
  EXPECT_EQ(sanitize("/.."), "/");
  EXPECT_EQ(sanitize("/../.."), "/");
  EXPECT_EQ(sanitize("../../../etc/passwd"), "/etc/passwd");
  EXPECT_EQ(sanitize("/a/../../b"), "/b");
  EXPECT_EQ(sanitize("a/b/../../../../x"), "/x");
}

TEST(Sanitize, DotDotWithinTreeResolves) {
  EXPECT_EQ(sanitize("/a/b/../c"), "/a/c");
  EXPECT_EQ(sanitize("/a/b/.."), "/a");
  EXPECT_EQ(sanitize("/a/b/c/../../d"), "/a/d");
}

// Property sweep: every sanitized result is canonical and re-sanitizing is
// the identity (idempotence).
class SanitizeProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(SanitizeProperty, CanonicalAndIdempotent) {
  std::string out = sanitize(GetParam());
  EXPECT_TRUE(is_canonical(out)) << GetParam() << " -> " << out;
  EXPECT_EQ(sanitize(out), out);
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, SanitizeProperty,
    ::testing::Values("", "/", "a", "/a/b/c", "../..", "a/../b", "a//b/./c",
                      "/..../x", "...", "/a/b/../../../..", "%2e%2e",
                      ".hidden/..", "a/b/c/d/e/f/g", "////", "/.x/..y/",
                      "a/./././b", "..a/b..", "/a/..b/c"));

TEST(IsCanonical, AcceptsOnlyNormalizedPaths) {
  EXPECT_TRUE(is_canonical("/"));
  EXPECT_TRUE(is_canonical("/a"));
  EXPECT_TRUE(is_canonical("/a/b"));
  EXPECT_FALSE(is_canonical(""));
  EXPECT_FALSE(is_canonical("a"));
  EXPECT_FALSE(is_canonical("/a/"));
  EXPECT_FALSE(is_canonical("/a//b"));
  EXPECT_FALSE(is_canonical("/a/./b"));
  EXPECT_FALSE(is_canonical("/a/../b"));
}

TEST(Components, SplitsCanonical) {
  EXPECT_TRUE(components("/").empty());
  auto c = components("/a/b/c");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], "a");
  EXPECT_EQ(c[2], "c");
}

TEST(Join, RelativeAndAbsoluteSuffixes) {
  EXPECT_EQ(join("/a", "b/c"), "/a/b/c");
  EXPECT_EQ(join("/a", "/b"), "/a/b");
  EXPECT_EQ(join("/", "x"), "/x");
  EXPECT_EQ(join("/a", ".."), "/");
  EXPECT_EQ(join("/a", "../../.."), "/");
}

TEST(DirnameBasename, Inverses) {
  EXPECT_EQ(dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(dirname("/a"), "/");
  EXPECT_EQ(dirname("/"), "/");
  EXPECT_EQ(basename("/a/b/c"), "c");
  EXPECT_EQ(basename("/"), "");
}

TEST(IsWithin, PrefixSemantics) {
  EXPECT_TRUE(is_within("/a", "/a"));
  EXPECT_TRUE(is_within("/a", "/a/b"));
  EXPECT_FALSE(is_within("/a", "/ab"));  // not a path prefix
  EXPECT_FALSE(is_within("/a/b", "/a"));
  EXPECT_TRUE(is_within("/", "/anything"));
}

TEST(ToHost, MapsUnderRoot) {
  EXPECT_EQ(to_host("/srv/export", "/x/y"), "/srv/export/x/y");
  EXPECT_EQ(to_host("/srv/export", "/"), "/srv/export");
  EXPECT_EQ(to_host("/srv/export/", "/x"), "/srv/export/x");
}

}  // namespace
}  // namespace tss::path
