file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_dsfs_net.dir/bench_fig6_dsfs_net.cc.o"
  "CMakeFiles/bench_fig6_dsfs_net.dir/bench_fig6_dsfs_net.cc.o.d"
  "bench_fig6_dsfs_net"
  "bench_fig6_dsfs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_dsfs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
