#include "auth/auth.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "auth/gsi.h"
#include "auth/hostname.h"
#include "auth/kerberos.h"
#include "auth/unix.h"

namespace tss::auth {
namespace {

// In-process ChallengeIo connecting a server method to a client credential.
class LoopIo final : public ChallengeIo {
 public:
  explicit LoopIo(ClientCredential* credential) : credential_(credential) {}

  Result<void> send_challenge(const std::string& data) override {
    if (!credential_) return Error(EPROTO, "unexpected challenge");
    auto answer = credential_->answer(data);
    if (!answer.ok()) return std::move(answer).take_error();
    pending_ = answer.value();
    return Result<void>::success();
  }

  Result<std::string> read_response() override {
    if (!pending_) return Error(EPROTO, "no pending response");
    std::string r = *pending_;
    pending_.reset();
    return r;
  }

 private:
  ClientCredential* credential_;
  std::optional<std::string> pending_;
};

TEST(Subject, ParseAndFormat) {
  auto s = Subject::parse("globus:/O=Notre_Dame/CN=X");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().method, "globus");
  EXPECT_EQ(s.value().name, "/O=Notre_Dame/CN=X");
  EXPECT_EQ(s.value().to_string(), "globus:/O=Notre_Dame/CN=X");
}

TEST(Subject, RejectsMalformed) {
  EXPECT_FALSE(Subject::parse("nomethod").ok());
  EXPECT_FALSE(Subject::parse(":noname").ok());
  EXPECT_FALSE(Subject::parse("method:").ok());
}

TEST(Hostname, ResolvesLoopbackToLocalhost) {
  HostnameServerMethod method;
  LoopIo io(nullptr);
  auto subject = method.authenticate(PeerInfo{"127.0.0.1", ""}, "", io);
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(subject.value().to_string(), "hostname:localhost");
}

TEST(Hostname, CustomResolverInjectsClusterNames) {
  HostnameServerMethod method(
      [](const std::string& ip) { return "node" + ip + ".cluster.nd.edu"; });
  LoopIo io(nullptr);
  auto subject = method.authenticate(PeerInfo{"42", ""}, "", io);
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(subject.value().name, "node42.cluster.nd.edu");
}

class UnixAuthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/unix_auth_" + std::to_string(::getpid());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(UnixAuthTest, ChallengeResponseIdentifiesLocalUser) {
  UnixServerMethod method(dir_, /*seed=*/1);
  UnixClientCredential credential;
  LoopIo io(&credential);
  auto subject = method.authenticate(PeerInfo{"127.0.0.1", ""}, "", io);
  ASSERT_TRUE(subject.ok()) << subject.error().to_string();
  EXPECT_EQ(subject.value().method, "unix");
  EXPECT_EQ(subject.value().name, username_for_uid(::getuid()));
  // Challenge file is cleaned up.
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(UnixAuthTest, FailsWhenClientDoesNotTouchFile) {
  // A credential that answers "done" without creating the file.
  class LazyCredential final : public ClientCredential {
   public:
    std::string method() const override { return "unix"; }
    Result<std::string> hello_arg() override { return std::string("-"); }
    Result<std::string> answer(const std::string&) override {
      return std::string("done");
    }
  };
  UnixServerMethod method(dir_, /*seed=*/2);
  LazyCredential credential;
  LoopIo io(&credential);
  auto subject = method.authenticate(PeerInfo{"127.0.0.1", ""}, "", io);
  ASSERT_FALSE(subject.ok());
  EXPECT_EQ(subject.error().code, EACCES);
}

TEST_F(UnixAuthTest, ClientRefusesTraversalChallenge) {
  UnixClientCredential credential;
  EXPECT_FALSE(credential.answer("/tmp/../etc/cron.d/evil").ok());
  EXPECT_FALSE(credential.answer("relative/path").ok());
}

TEST(GsiAuth, IssuedCredentialAuthenticates) {
  GsiCa ca("nd-ca", "secret-ca-key");
  TimeFn frozen = [] { return int64_t{1000}; };
  GsiServerMethod method(frozen);
  method.trust(ca);

  std::string cred = ca.issue("/O=Notre_Dame/CN=Douglas_Thain", 2000);
  LoopIo io(nullptr);
  auto subject = method.authenticate(PeerInfo{"10.0.0.1", ""}, cred, io);
  ASSERT_TRUE(subject.ok()) << subject.error().to_string();
  EXPECT_EQ(subject.value().to_string(),
            "globus:/O=Notre_Dame/CN=Douglas_Thain");
}

TEST(GsiAuth, RejectsExpiredCredential) {
  GsiCa ca("nd-ca", "secret-ca-key");
  GsiServerMethod method([] { return int64_t{5000}; });
  method.trust(ca);
  std::string cred = ca.issue("/O=Notre_Dame/CN=X", 2000);
  LoopIo io(nullptr);
  EXPECT_FALSE(method.authenticate(PeerInfo{}, cred, io).ok());
}

TEST(GsiAuth, RejectsUntrustedCa) {
  GsiCa good("nd-ca", "key1");
  GsiCa rogue("rogue-ca", "key2");
  GsiServerMethod method([] { return int64_t{0}; });
  method.trust(good);
  LoopIo io(nullptr);
  EXPECT_FALSE(
      method.authenticate(PeerInfo{}, rogue.issue("/O=X/CN=Y", 100), io).ok());
}

TEST(GsiAuth, RejectsForgedMac) {
  GsiCa ca("nd-ca", "key");
  GsiServerMethod method([] { return int64_t{0}; });
  method.trust(ca);
  std::string cred = ca.issue("/O=Notre_Dame/CN=X", 100);
  // Tamper with the DN while keeping the MAC.
  size_t pos = cred.find("Notre_Dame");
  cred.replace(pos, 10, "Evil_State");
  LoopIo io(nullptr);
  auto subject = method.authenticate(PeerInfo{}, cred, io);
  ASSERT_FALSE(subject.ok());
  EXPECT_EQ(subject.error().code, EACCES);
}

TEST(GsiAuth, DnWithSpacesSurvivesEncoding) {
  GsiCa ca("nd-ca", "key");
  GsiServerMethod method([] { return int64_t{0}; });
  method.trust(ca);
  std::string dn = "/O=Notre Dame/CN=Jane Q. Public";
  LoopIo io(nullptr);
  auto subject = method.authenticate(PeerInfo{}, ca.issue(dn, 100), io);
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(subject.value().name, dn);
}

class KerberosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    kdc_.add_principal("alice@ND.EDU", "alice-key");
    kdc_.add_service("chirp/host5.nd.edu", "host5-service-key");
  }
  Kdc kdc_;
};

TEST_F(KerberosTest, TicketAuthenticates) {
  auto ticket =
      kdc_.issue_ticket("alice@ND.EDU", "alice-key", "chirp/host5.nd.edu", 100);
  ASSERT_TRUE(ticket.ok());
  KerberosServerMethod method("chirp/host5.nd.edu", "host5-service-key",
                              [] { return int64_t{0}; });
  LoopIo io(nullptr);
  auto subject = method.authenticate(PeerInfo{}, ticket.value(), io);
  ASSERT_TRUE(subject.ok()) << subject.error().to_string();
  EXPECT_EQ(subject.value().to_string(), "kerberos:alice@ND.EDU");
}

TEST_F(KerberosTest, KdcRejectsWrongUserKey) {
  EXPECT_FALSE(
      kdc_.issue_ticket("alice@ND.EDU", "wrong", "chirp/host5.nd.edu", 100)
          .ok());
}

TEST_F(KerberosTest, ServerRejectsTicketForOtherService) {
  kdc_.add_service("chirp/other.nd.edu", "other-key");
  auto ticket =
      kdc_.issue_ticket("alice@ND.EDU", "alice-key", "chirp/other.nd.edu", 100);
  ASSERT_TRUE(ticket.ok());
  KerberosServerMethod method("chirp/host5.nd.edu", "host5-service-key",
                              [] { return int64_t{0}; });
  LoopIo io(nullptr);
  EXPECT_FALSE(method.authenticate(PeerInfo{}, ticket.value(), io).ok());
}

TEST_F(KerberosTest, ServerRejectsExpiredTicket) {
  auto ticket =
      kdc_.issue_ticket("alice@ND.EDU", "alice-key", "chirp/host5.nd.edu", 50);
  ASSERT_TRUE(ticket.ok());
  KerberosServerMethod method("chirp/host5.nd.edu", "host5-service-key",
                              [] { return int64_t{100}; });
  LoopIo io(nullptr);
  EXPECT_FALSE(method.authenticate(PeerInfo{}, ticket.value(), io).ok());
}

TEST(ServerAuth, RegistryDispatchesAndReportsMethods) {
  ServerAuth registry;
  registry.add(std::make_unique<HostnameServerMethod>());
  EXPECT_TRUE(registry.has("hostname"));
  EXPECT_FALSE(registry.has("globus"));
  auto methods = registry.methods();
  ASSERT_EQ(methods.size(), 1u);
  EXPECT_EQ(methods[0], "hostname");

  LoopIo io(nullptr);
  auto subject =
      registry.attempt("hostname", PeerInfo{"127.0.0.1", ""}, "", io);
  ASSERT_TRUE(subject.ok());

  auto missing = registry.attempt("globus", PeerInfo{}, "", io);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ENOSYS);
}

}  // namespace
}  // namespace tss::auth
