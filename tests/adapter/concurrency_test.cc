// Concurrency stress: many threads hammering one Adapter (shared descriptor
// table, shared auto-mounted connections) against a live server. Run under
// -DTSS_SANITIZE=ON for the full effect; even without sanitizers this
// catches table corruption and lost updates.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "adapter/adapter.h"
#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/local.h"

namespace tss::adapter {
namespace {

class AdapterConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/adaptconc_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    chirp::ServerOptions options;
    options.owner = "unix:testowner";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(root_),
        std::move(auth));
    ASSERT_TRUE(server_->start().ok());

    Adapter::Options adapter_options;
    adapter_options.credentials = {
        std::make_shared<auth::HostnameClientCredential>()};
    adapter_ = std::make_unique<Adapter>(adapter_options);
    base_ = "/cfs/" + server_->endpoint().to_string();
  }
  void TearDown() override {
    adapter_.reset();
    server_->stop();
    std::filesystem::remove_all(root_);
  }

  std::string root_;
  std::string base_;
  std::unique_ptr<chirp::Server> server_;
  std::unique_ptr<Adapter> adapter_;
  static inline int counter_ = 0;
};

TEST_F(AdapterConcurrencyTest, ParallelIndependentFiles) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 30;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        std::string p =
            base_ + "/t" + std::to_string(t) + "-" + std::to_string(i);
        std::string content =
            "thread " + std::to_string(t) + " op " + std::to_string(i);
        if (!adapter_->write_file(p, content).ok()) {
          failures++;
          continue;
        }
        auto data = adapter_->read_file(p);
        if (!data.ok() || data.value() != content) failures++;
        if (!adapter_->unlink(p).ok()) failures++;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(adapter_->open_fd_count(), 0u);
}

TEST_F(AdapterConcurrencyTest, ParallelDescriptorChurn) {
  ASSERT_TRUE(adapter_->write_file(base_ + "/shared", "0123456789").ok());
  constexpr int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 40; i++) {
        auto fd = adapter_->open(base_ + "/shared", O_RDONLY);
        if (!fd.ok()) {
          failures++;
          continue;
        }
        char buf[4];
        auto n = adapter_->pread(fd.value(), buf, 4, 2);
        if (!n.ok() || n.value() != 4 || std::string(buf, 4) != "2345") {
          failures++;
        }
        if (!adapter_->close(fd.value()).ok()) failures++;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(adapter_->open_fd_count(), 0u);
}

TEST_F(AdapterConcurrencyTest, MixedNamespaceAndIoTraffic) {
  fs::LocalFs scratch(root_);  // second mount over the same dir, local
  adapter_->mount("/local", &scratch);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Writers via chirp, readers via the local mount, listers in between.
  threads.emplace_back([&] {
    for (int i = 0; i < 50; i++) {
      if (!adapter_->write_file(base_ + "/w" + std::to_string(i), "data")
               .ok()) {
        failures++;
      }
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 100; i++) {
      auto entries = adapter_->readdir("/local");
      if (!entries.ok()) failures++;
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 100; i++) {
      // May or may not exist yet; only transport-level errors count.
      auto data = adapter_->read_file("/local/w0");
      if (!data.ok() && data.error().code != ENOENT) failures++;
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tss::adapter
