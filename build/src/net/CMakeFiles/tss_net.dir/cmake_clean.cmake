file(REMOVE_RECURSE
  "CMakeFiles/tss_net.dir/line_stream.cc.o"
  "CMakeFiles/tss_net.dir/line_stream.cc.o.d"
  "CMakeFiles/tss_net.dir/server_loop.cc.o"
  "CMakeFiles/tss_net.dir/server_loop.cc.o.d"
  "CMakeFiles/tss_net.dir/socket.cc.o"
  "CMakeFiles/tss_net.dir/socket.cc.o.d"
  "libtss_net.a"
  "libtss_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
