// Exporting pre-existing data: the recursive-abstraction payoff the paper
// leads with ("a file server can be used to export an existing filesystem
// without expensive copies or transformations", §3) — including how ACLs
// behave over directory trees that were never created through Chirp and so
// carry no .__acl__ files: the nearest ancestor's policy applies.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "chirp/test_util.h"

namespace tss::chirp {
namespace {

using testing::ChirpServerFixture;

class ExportedDataTest : public ChirpServerFixture {
 protected:
  // Builds a tree on disk, outside Chirp, before the server starts.
  void build_tree() {
    std::filesystem::create_directories(root_ + "/project/results/run1");
    std::filesystem::create_directories(root_ + "/project/src");
    write_host("/project/README", "existing project");
    write_host("/project/results/run1/out.dat", "results!");
    write_host("/project/src/main.c", "int main(){}");
  }
  void write_host(const std::string& rel, const std::string& content) {
    std::ofstream out(root_ + rel);
    out << content;
  }
};

TEST_F(ExportedDataTest, DeepPreexistingTreeFullyAccessible) {
  build_tree();
  start_server();
  Client client = connect_client();
  EXPECT_EQ(client.getfile("/project/results/run1/out.dat").value(),
            "results!");
  auto entries = client.getdir("/project");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 3u);  // README, results, src
}

TEST_F(ExportedDataTest, RootAclGovernsAclLessSubtrees) {
  // No directory in the exported tree has a .__acl__ file; every check
  // walks up to the configured root ACL.
  build_tree();
  set_root_acl("hostname:localhost rl\n");  // read+list only
  start_server();
  Client client = connect_client();

  EXPECT_TRUE(client.stat("/project/src/main.c").ok());
  EXPECT_EQ(client.getfile("/project/src/main.c").value(), "int main(){}");
  // ...but the subtree is as read-only as the root says.
  EXPECT_EQ(client.putfile("/project/src/evil.c", "x").code(), EACCES);
  EXPECT_EQ(client.unlink("/project/README").code(), EACCES);
  EXPECT_EQ(client.mkdir("/project/new").code(), EACCES);
}

TEST_F(ExportedDataTest, SetaclOnExportedDirOverridesInheritance) {
  build_tree();
  set_root_acl("hostname:localhost rl\n");
  start_server(/*owner=*/"hostname:localhost");  // owner can setacl anywhere

  Client owner = connect_client();
  // The owner opens up just /project/results for writing.
  ASSERT_TRUE(owner.setacl("/project/results", "hostname:localhost", "rwl")
                  .ok());

  // A (same-identity) client can now write there but nowhere else... the
  // owner bypasses ACLs, so verify via the ACL itself and a second subject.
  auto acl_text = owner.getacl("/project/results");
  ASSERT_TRUE(acl_text.ok());
  auto acl = acl::Acl::parse(acl_text.value()).value();
  EXPECT_TRUE(acl.check("hostname:localhost", acl::kWrite));
  // Sibling subtree still inherits the read-only root policy.
  auto src_acl = acl::Acl::parse(owner.getacl("/project/src").value()).value();
  EXPECT_FALSE(src_acl.check("hostname:localhost", acl::kWrite));
  // And the children of the newly-opened dir inherit ITS ACL now.
  auto run_acl =
      acl::Acl::parse(owner.getacl("/project/results/run1").value()).value();
  EXPECT_TRUE(run_acl.check("hostname:localhost", acl::kWrite));
}

TEST_F(ExportedDataTest, ChirpCreatedDirsInsideExportedTreeGetAclFiles) {
  build_tree();
  set_root_acl("hostname:localhost rwlda\n");
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/project/results/run2").ok());
  // The new directory carries its own (inherited) ACL file on disk...
  EXPECT_TRUE(std::filesystem::exists(
      root_ + "/project/results/run2/.__acl__"));
  // ...while its pre-existing siblings still have none.
  EXPECT_FALSE(
      std::filesystem::exists(root_ + "/project/results/run1/.__acl__"));
}

TEST_F(ExportedDataTest, OwnerEditsFilesOutOfBandAndClientsSeeThem) {
  // "Files and directories are stored without transformation" (§4): the
  // owner can keep using the directory directly.
  build_tree();
  start_server();
  Client client = connect_client();
  EXPECT_EQ(client.getfile("/project/README").value(), "existing project");
  write_host("/project/README", "edited out of band");
  EXPECT_EQ(client.getfile("/project/README").value(), "edited out of band");
}

}  // namespace
}  // namespace tss::chirp
