
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chirp/client.cc" "src/chirp/CMakeFiles/tss_chirp.dir/client.cc.o" "gcc" "src/chirp/CMakeFiles/tss_chirp.dir/client.cc.o.d"
  "/root/repo/src/chirp/posix_backend.cc" "src/chirp/CMakeFiles/tss_chirp.dir/posix_backend.cc.o" "gcc" "src/chirp/CMakeFiles/tss_chirp.dir/posix_backend.cc.o.d"
  "/root/repo/src/chirp/protocol.cc" "src/chirp/CMakeFiles/tss_chirp.dir/protocol.cc.o" "gcc" "src/chirp/CMakeFiles/tss_chirp.dir/protocol.cc.o.d"
  "/root/repo/src/chirp/server.cc" "src/chirp/CMakeFiles/tss_chirp.dir/server.cc.o" "gcc" "src/chirp/CMakeFiles/tss_chirp.dir/server.cc.o.d"
  "/root/repo/src/chirp/session.cc" "src/chirp/CMakeFiles/tss_chirp.dir/session.cc.o" "gcc" "src/chirp/CMakeFiles/tss_chirp.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tss_net.dir/DependInfo.cmake"
  "/root/repo/build/src/acl/CMakeFiles/tss_acl.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/tss_auth.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
