// Distributed backups: the paper's closing application sketch (§10).
//
// "A TSS is a natural platform for distributed backups, allowing cooperating
// users to easily record many backup images, thus allowing for on-line
// perusal, recovery, and forensic analysis of data over time."
//
// This example stacks three recursive abstractions:
//
//     VersionedFs            every modification preserved as a version
//        over ReplicatedFs   every byte (incl. the history) on two servers
//           over CfsFs x2    two ordinary Chirp file servers
//
// then walks a user's backup story: record images, peruse history online,
// lose an entire server, keep full history, recover an old version, and
// finally repair the mirror.
//
// Run:  ./backup    (exits 0 on success)
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/cfs.h"
#include "fs/replicated.h"
#include "fs/versioned.h"

using namespace tss;

namespace {
#define CHECK_OK(expr)                                             \
  do {                                                             \
    auto&& _r = (expr);                                            \
    if (!_r.ok()) {                                                \
      std::printf("FAILED: %s: %s\n", #expr,                       \
                  _r.error().to_string().c_str());                 \
      return 1;                                                    \
    }                                                              \
  } while (0)
}  // namespace

int main() {
  std::string base = "/tmp/tss-backup-" + std::to_string(::getpid());

  std::printf("==> starting two Chirp servers (a friend's disk and mine)\n");
  std::vector<std::unique_ptr<chirp::Server>> servers;
  std::vector<std::unique_ptr<fs::CfsFs>> mounts;
  for (int i = 0; i < 2; i++) {
    std::string root = base + "/disk" + std::to_string(i);
    std::filesystem::create_directories(root);
    chirp::ServerOptions options;
    options.owner = "unix:friend" + std::to_string(i);
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    servers.push_back(std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(root),
        std::move(auth)));
    CHECK_OK(servers.back()->start());
    auto credential = std::make_shared<auth::HostnameClientCredential>();
    fs::CfsFs::Options cfs_options;
    cfs_options.retry.max_attempts = 2;
    cfs_options.retry.base_delay = 10 * kMillisecond;
    mounts.push_back(std::make_unique<fs::CfsFs>(
        fs::chirp_connector(servers.back()->endpoint(), {credential}),
        cfs_options));
  }

  std::printf("==> stacking VersionedFs over ReplicatedFs over two CfsFs\n");
  fs::ReplicatedFs mirror({mounts[0].get(), mounts[1].get()});
  fs::VersionedFs backup(&mirror);

  std::printf("==> recording three backup images of the thesis\n");
  CHECK_OK(backup.write_file("/thesis.tex", "ch1: introduction"));
  CHECK_OK(backup.write_file("/thesis.tex",
                             "ch1: introduction\nch2: design"));
  CHECK_OK(backup.write_file(
      "/thesis.tex", "ch1: introduction\nch2: design\nch3: a terrible edit"));

  std::printf("==> on-line perusal of the history\n");
  auto history = backup.versions("/thesis.tex");
  CHECK_OK(history);
  for (const auto& version : history.value()) {
    std::printf("    image %d: %llu bytes\n", version.sequence,
                (unsigned long long)version.size);
  }

  std::printf("==> disaster: my own disk dies entirely\n");
  servers[0]->stop();
  std::filesystem::remove_all(base + "/disk0");

  std::printf("==> history still fully readable from the friend's disk\n");
  auto current = backup.read_file("/thesis.tex");
  CHECK_OK(current);
  std::printf("    current: %zu bytes\n", current.value().size());
  auto image2 = backup.read_version("/thesis.tex", 2);
  CHECK_OK(image2);
  std::printf("    image 2 recovered: \"%s...\"\n",
              image2.value().substr(0, 17).c_str());

  std::printf("==> forensic recovery: roll back the terrible edit\n");
  CHECK_OK(backup.restore("/thesis.tex", 2));
  auto restored = backup.read_file("/thesis.tex");
  CHECK_OK(restored);
  if (restored.value().find("terrible") != std::string::npos) {
    std::printf("FAILED: rollback did not remove the bad edit\n");
    return 1;
  }
  std::printf("    rolled back; the bad edit is preserved as a version\n");

  std::printf("==> repairing the mirror onto a replacement disk\n");
  std::filesystem::create_directories(base + "/disk0");
  {
    chirp::ServerOptions options;
    options.port = servers[0]->port();  // the replacement reuses the address
    options.owner = "unix:friend0";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    servers[0] = std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(base + "/disk0"),
        std::move(auth));
    CHECK_OK(servers[0]->start());
  }
  auto repaired = mirror.repair("/thesis.tex");
  CHECK_OK(repaired);
  std::printf("    repaired current image on %d replica(s)\n",
              repaired.value());
  // The history directory is repaired file by file.
  int history_repaired = 0;
  auto final_history = backup.versions("/thesis.tex");
  CHECK_OK(final_history);
  for (const auto& version : final_history.value()) {
    std::string vpath = std::string(fs::VersionedFs::kVersionRoot) +
                        "/%2Fthesis.tex/" +
                        std::to_string(version.sequence);
    auto rc = mirror.repair(vpath);
    if (rc.ok()) {
      history_repaired += rc.value();
    } else {
      std::printf("    (history repair %s: %s)\n", vpath.c_str(),
                  rc.error().to_string().c_str());
    }
  }
  std::printf("    repaired %d history images\n", history_repaired);
  if (!std::filesystem::exists(base + "/disk0/thesis.tex")) {
    std::printf("FAILED: replacement disk did not receive the data\n");
    return 1;
  }

  std::printf("==> backup example complete\n");
  for (auto& server : servers) server->stop();
  std::filesystem::remove_all(base);
  return 0;
}
