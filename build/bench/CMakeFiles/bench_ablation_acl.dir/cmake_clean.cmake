file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_acl.dir/bench_ablation_acl.cc.o"
  "CMakeFiles/bench_ablation_acl.dir/bench_ablation_acl.cc.o.d"
  "bench_ablation_acl"
  "bench_ablation_acl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_acl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
