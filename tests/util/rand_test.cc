#include "util/rand.h"

#include <gtest/gtest.h>

#include <set>

namespace tss {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.next() == b.next()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; i++) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; i++) {
    int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, HexStringShapeAndUniqueness) {
  Rng rng(17);
  std::string h = rng.hex(24);
  EXPECT_EQ(h.size(), 24u);
  for (char c : h) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
  // Collisions across a batch would break DSFS unique data-file naming.
  std::set<std::string> names;
  for (int i = 0; i < 1000; i++) names.insert(rng.hex(16));
  EXPECT_EQ(names.size(), 1000u);
}

}  // namespace
}  // namespace tss
