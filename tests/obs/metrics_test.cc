// The metrics layer under load: lock-free counters and histograms hammered
// from many threads, quantile extraction against a sorted reference, and
// snapshots taken while writers are running. This file is also compiled
// into the obs_tsan_test target (-fsanitize=thread), so every assertion
// here doubles as a data-race check.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "util/rand.h"
#include "util/strings.h"

namespace tss::obs {
namespace {

constexpr int kThreads = 8;

TEST(HistogramBuckets, IndexIsMonotonicAndBoundsAreConsistent) {
  size_t prev = 0;
  const uint64_t probes[] = {0,    1,        7,          8,
                             9,    63,       64,         100,
                             1000, 123456,   1ull << 20, (1ull << 20) + 1,
                             1ull << 40,     UINT64_MAX};
  for (uint64_t v : probes) {
    size_t index = Histogram::bucket_index(v);
    ASSERT_LT(index, Histogram::kNumBuckets);
    ASSERT_GE(index, prev) << "index not monotonic at v=" << v;
    prev = index;
    // The value lands inside its bucket's [low, next-low) range.
    EXPECT_LE(Histogram::bucket_low(index), v);
    if (index + 1 < Histogram::kNumBuckets) {
      EXPECT_LT(v, Histogram::bucket_low(index + 1));
    }
  }
  // Small values are exact buckets.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; v++) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_low(v), v);
  }
}

TEST(CounterConcurrency, EightThreadsOfAddsLoseNothing) {
  Counter counter;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; i++) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kPerThread * kThreads);
}

TEST(HistogramConcurrency, EightThreadsOfRecordsLoseNothing) {
  Histogram histogram;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  std::vector<uint64_t> sums(kThreads, 0);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&histogram, &sums, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (uint64_t i = 0; i < kPerThread; i++) {
        uint64_t v = rng.below(1u << 20);
        sums[static_cast<size_t>(t)] += v;
        histogram.record(static_cast<int64_t>(v));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kPerThread * kThreads);
  uint64_t want_sum = 0;
  for (uint64_t s : sums) want_sum += s;
  EXPECT_EQ(snap.sum, want_sum);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// Quantiles from the log-scale buckets must track a sorted reference to
// within the documented bucket resolution (sub-bucket width <= 1/8 of the
// value, i.e. 12.5% relative error).
TEST(HistogramQuantiles, MatchSortedReferenceWithinBucketResolution) {
  Rng rng(20050101);
  Histogram histogram;
  std::vector<uint64_t> reference;
  // A latency-shaped mixture: a fast mode, a slow mode, and a long tail.
  for (int i = 0; i < 20000; i++) {
    uint64_t v;
    switch (rng.below(10)) {
      case 0:
        v = 1000000 + rng.below(50000000);  // slow mode: 1-51 ms
        break;
      case 1:
      case 2:
        v = rng.below(1000);  // sub-microsecond
        break;
      default:
        v = 10000 + rng.below(90000);  // fast mode: 10-100 us
        break;
    }
    reference.push_back(v);
    histogram.record(static_cast<int64_t>(v));
  }
  std::sort(reference.begin(), reference.end());

  Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, reference.size());
  EXPECT_EQ(snap.min, reference.front());
  EXPECT_EQ(snap.max, reference.back());
  for (double q : {0.0, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    uint64_t exact =
        reference[std::min(reference.size() - 1,
                           static_cast<size_t>(q * static_cast<double>(
                                                       reference.size())))];
    uint64_t approx = snap.quantile(q);
    double lo = static_cast<double>(exact) / 1.125 - 1.0;
    double hi = static_cast<double>(exact) * 1.125 + 1.0;
    EXPECT_GE(static_cast<double>(approx), lo) << "q=" << q;
    EXPECT_LE(static_cast<double>(approx), hi) << "q=" << q;
  }
}

// Snapshots taken while writers are mid-flight must stay internally
// consistent: bucket totals define the count, quantiles stay within
// [min, max] bounds, and counts never move backwards between snapshots.
TEST(HistogramConcurrency, SnapshotWhileWritingIsSelfConsistent) {
  Histogram histogram;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&histogram, &stop, t] {
      Rng rng(static_cast<uint64_t>(t) + 99);
      while (!stop.load(std::memory_order_relaxed)) {
        histogram.record(static_cast<int64_t>(rng.below(1u << 24)));
      }
    });
  }

  uint64_t last_count = 0;
  for (int round = 0; round < 200; round++) {
    Histogram::Snapshot snap = histogram.snapshot();
    uint64_t bucket_total = 0;
    for (uint64_t b : snap.buckets) bucket_total += b;
    ASSERT_EQ(bucket_total, snap.count) << "round " << round;
    ASSERT_GE(snap.count, last_count) << "count went backwards";
    last_count = snap.count;
    if (snap.count > 0) {
      uint64_t p50 = snap.quantile(0.5);
      // Quantiles are clamped into the observed [min, max] envelope.
      ASSERT_GE(p50, snap.min);
      ASSERT_LE(p50, snap.max);
    }
  }
  stop.store(true);
  for (auto& writer : writers) writer.join();
}

TEST(SpanRing, KeepsTheLastNSpansOldestFirst) {
  SpanRing ring(4);
  for (int i = 0; i < 10; i++) {
    Span span;
    span.op = "op" + std::to_string(i);
    span.bytes = static_cast<uint64_t>(i);
    ring.record(std::move(span));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  std::vector<Span> spans = ring.spans();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); i++) {
    EXPECT_EQ(spans[i].seq, 6 + i);
    EXPECT_EQ(spans[i].op, "op" + std::to_string(6 + i));
  }
}

TEST(SpanRing, ConcurrentRecordsAllLand) {
  SpanRing ring(1024);
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < kPerThread; i++) {
        Span span;
        span.op = "x";
        ring.record(std::move(span));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ring.recorded(), static_cast<uint64_t>(kThreads * kPerThread));
  std::vector<Span> spans = ring.spans();
  ASSERT_EQ(spans.size(), 1024u);
  // Seqs are unique and oldest-first.
  for (size_t i = 1; i < spans.size(); i++) {
    EXPECT_EQ(spans[i].seq, spans[i - 1].seq + 1);
  }
}

TEST(Registry, LookupsAreStableAndConcurrentlySafe) {
  Registry registry;
  Counter* counter = registry.counter("a.b");
  Histogram* histogram = registry.histogram("a.h");
  EXPECT_EQ(registry.counter("a.b"), counter);
  EXPECT_EQ(registry.histogram("a.h"), histogram);

  // Concurrent lookup-or-create of overlapping names while earlier pointers
  // keep being written through.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 200; i++) {
        registry.counter("shared." + std::to_string(i % 17))->add();
        registry.histogram("h." + std::to_string((i + t) % 5))->record(i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  uint64_t total = 0;
  for (int i = 0; i < 17; i++) {
    total += registry.counter_value("shared." + std::to_string(i));
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads * 200));
}

TEST(Registry, RenderTextEmitsEveryMetricInWireFormat) {
  Registry registry(/*span_capacity=*/8);
  registry.counter("requests")->add(3);
  registry.gauge("active")->set(2);
  Histogram* h = registry.histogram("latency");
  for (int i = 1; i <= 100; i++) h->record(i * 1000);
  registry.record_span("open", "unix:alice", 123, 0, 1000, 456);
  registry.record_span("pread", "sub with space", 0, 5, 2000, 789);

  std::string text = registry.render_text();
  EXPECT_NE(text.find("counter requests 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge active 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram latency count 100 "), std::string::npos)
      << text;
  EXPECT_NE(text.find(" p50 "), std::string::npos) << text;
  EXPECT_NE(text.find(" p95 "), std::string::npos) << text;
  EXPECT_NE(text.find(" p99 "), std::string::npos) << text;
  EXPECT_NE(text.find("span 0 open unix%3Aalice 123 0 1000 456\n"),
            std::string::npos)
      << text;
  // Subjects are url-encoded so the line stays single-space-delimited.
  EXPECT_NE(text.find("span 1 pread sub%20with%20space 0 5 2000 789\n"),
            std::string::npos)
      << text;
}

TEST(ScopedLatencyTest, RecordsOnScopeExitAndToleratesNulls) {
  VirtualClock clock(1000);
  Histogram histogram;
  {
    ScopedLatency latency(&histogram, &clock);
    clock.advance(500);
  }
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_EQ(histogram.sum(), 500u);
  {
    ScopedLatency noop(nullptr, nullptr);  // must not crash
  }
  EXPECT_EQ(histogram.count(), 1u);
}

}  // namespace
}  // namespace tss::obs
