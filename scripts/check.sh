#!/bin/sh
# Full verification: the tier-1 build+test pass (which includes the `obs`
# observability suite and the ThreadSanitizer metrics tests), then the same
# suite under ASan/UBSan (-DTSS_SANITIZE=ON) in a separate build tree.
#
# Usage: scripts/check.sh [jobs]
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 4)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

echo "== tier-1: build + ctest =="
cmake -B "$root/build" -S "$root"
cmake --build "$root/build" -j "$jobs"
(cd "$root/build" && ctest --output-on-failure -j "$jobs")

echo "== observability suite (ctest -L obs, incl. TSan metrics tests) =="
(cd "$root/build" && ctest -L obs --output-on-failure -j "$jobs")

echo "== engine parity: obs + chaos suites on both net engines =="
# The reactor is the default engine; the same suites must pass bit-for-bit
# on the thread-per-connection engine (TSS_NET_MODE=thread).
(cd "$root/build" && ctest -L obs --output-on-failure -j "$jobs")
(cd "$root/build" && ctest -L chaos --output-on-failure -j "$jobs")
(cd "$root/build" && TSS_NET_MODE=thread ctest -L obs --output-on-failure -j "$jobs")
(cd "$root/build" && TSS_NET_MODE=thread ctest -L chaos --output-on-failure -j "$jobs")

echo "== parallel client I/O suite (ctest -L par, incl. TSan) on both engines =="
(cd "$root/build" && ctest -L par --output-on-failure -j "$jobs")
(cd "$root/build" && TSS_NET_MODE=thread ctest -L par --output-on-failure -j "$jobs")

echo "== integrity suite (ctest -L integrity, incl. TSan + corruption soak) =="
# Wire checksums, quarantine lifecycle, the scrubber, and the seeded chaos
# corruption soak — on both net engines (the wire tests run live servers).
(cd "$root/build" && ctest -L integrity --output-on-failure -j "$jobs")
(cd "$root/build" && TSS_NET_MODE=thread ctest -L integrity --output-on-failure -j "$jobs")

echo "== accept-path/sharding suite (ctest -L shard) on both engines =="
# Acceptor fd-exhaustion recovery, non-blocking refusals, exact accounting
# through a shutdown storm, SO_REUSEPORT sharding, and the sendfile/chunked
# getfile paths — the adopt/least-loaded picker also runs under TSan via the
# tsan.* event-loop tests in the obs label above.
(cd "$root/build" && ctest -L shard --output-on-failure -j "$jobs")
(cd "$root/build" && TSS_NET_MODE=thread ctest -L shard --output-on-failure -j "$jobs")

echo "== cooperative-cache suite (ctest -L cache, incl. TSan) on both engines =="
# CachedFs vs the LocalFs oracle, chaos/integrity accounting, readers racing
# eviction/invalidation (again under TSan as cache_tsan_test), and the
# redirect wire tests over live servers on both engines.
(cd "$root/build" && ctest -L cache --output-on-failure -j "$jobs")
(cd "$root/build" && TSS_NET_MODE=thread ctest -L cache --output-on-failure -j "$jobs")

echo "== multi-tenant isolation suite (ctest -L tenant, incl. TSan) on both engines =="
# The AllocTracker randomized oracle + journal crash-recovery, quota and
# fair-queue units (the same races again under TSan as tenant_tsan_test),
# and the live hog-vs-meek fairness chaos suite over GSI-authenticated
# tenants — on both net engines (the fairness tests run live servers).
(cd "$root/build" && ctest -L tenant --output-on-failure -j "$jobs")
(cd "$root/build" && TSS_NET_MODE=thread ctest -L tenant --output-on-failure -j "$jobs")

echo "== tenant-isolation ablation smoke: meek retains >=80% of solo + hog excess refused =="
(cd "$root/build" && bench/bench_ablation_tenant_isolation --smoke /tmp/tss_check_tenant.json)
rm -f /tmp/tss_check_tenant.json

echo "== hot-read fan-in ablation smoke: warm>=5x cold + sublinear fan-in gate =="
(cd "$root/build" && bench/bench_ablation_hot_read_fanin --smoke /tmp/tss_check_fanin.json)
rm -f /tmp/tss_check_fanin.json

echo "== rpc-sharding ablation smoke: pipelined throughput across shards =="
(cd "$root/build" && bench/bench_ablation_rpc_sharding --smoke /tmp/tss_check_shard.json)
rm -f /tmp/tss_check_shard.json

echo "== stripe-width ablation smoke: scaling + single-extent latency gate =="
(cd "$root/build" && bench/bench_ablation_stripe_width --smoke /tmp/tss_check_stripe.json)
rm -f /tmp/tss_check_stripe.json

echo "== connection-scale smoke: 1000 idle sessions on the reactor =="
(cd "$root/build" && ctest -R "ReactorScaleTest" --output-on-failure)

echo "== sanitizers: ASan/UBSan build + ctest =="
cmake -B "$root/build-asan" -S "$root" -DTSS_SANITIZE=ON
cmake --build "$root/build-asan" -j "$jobs"
(cd "$root/build-asan" && ctest --output-on-failure -j "$jobs")
# The tenant label again, explicitly, in the instrumented tree: the tracker
# journal and the admission queue must be clean under ASan/UBSan too.
(cd "$root/build-asan" && ctest -L tenant --output-on-failure -j "$jobs")

echo "== all checks passed =="
