file(REMOVE_RECURSE
  "CMakeFiles/chirp_test.dir/chirp/acl_enforcement_test.cc.o"
  "CMakeFiles/chirp_test.dir/chirp/acl_enforcement_test.cc.o.d"
  "CMakeFiles/chirp_test.dir/chirp/auth_wire_test.cc.o"
  "CMakeFiles/chirp_test.dir/chirp/auth_wire_test.cc.o.d"
  "CMakeFiles/chirp_test.dir/chirp/exported_data_test.cc.o"
  "CMakeFiles/chirp_test.dir/chirp/exported_data_test.cc.o.d"
  "CMakeFiles/chirp_test.dir/chirp/fuzz_test.cc.o"
  "CMakeFiles/chirp_test.dir/chirp/fuzz_test.cc.o.d"
  "CMakeFiles/chirp_test.dir/chirp/protocol_test.cc.o"
  "CMakeFiles/chirp_test.dir/chirp/protocol_test.cc.o.d"
  "CMakeFiles/chirp_test.dir/chirp/server_limits_test.cc.o"
  "CMakeFiles/chirp_test.dir/chirp/server_limits_test.cc.o.d"
  "CMakeFiles/chirp_test.dir/chirp/server_test.cc.o"
  "CMakeFiles/chirp_test.dir/chirp/server_test.cc.o.d"
  "CMakeFiles/chirp_test.dir/chirp/streaming_test.cc.o"
  "CMakeFiles/chirp_test.dir/chirp/streaming_test.cc.o.d"
  "chirp_test"
  "chirp_test.pdb"
  "chirp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chirp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
