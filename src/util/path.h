// Path manipulation and the "software chroot" sanitizer.
//
// The paper's file server exports a directory chosen by its owner and notes
// that, because chroot(2) needs root, "the server provides an equivalent
// facility in software". That facility is here: every client-supplied path is
// lexically normalized and clamped so that no sequence of "..", ".", "//" or
// embedded tricks can name anything above the export root.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tss::path {

// Lexically normalizes a client path into canonical absolute form:
//  - result always begins with '/',
//  - no "." or empty components,
//  - ".." is resolved lexically and cannot climb above "/".
// "foo/../../bar" -> "/bar"; "" and "/" -> "/".
std::string sanitize(std::string_view raw);

// True if `s` is already in the canonical form produced by sanitize().
bool is_canonical(std::string_view s);

// Splits a canonical path into components ("/a/b" -> {"a","b"}; "/" -> {}).
std::vector<std::string> components(std::string_view canonical);

// Joins a canonical directory and a relative or absolute suffix, then
// sanitizes. join("/a", "b/c") == "/a/b/c"; join("/a", "/b") == "/a/b".
std::string join(std::string_view canonical_dir, std::string_view suffix);

// "/a/b/c" -> "/a/b"; "/a" -> "/"; "/" -> "/".
std::string dirname(std::string_view canonical);

// "/a/b/c" -> "c"; "/" -> "".
std::string basename(std::string_view canonical);

// True if `p` equals `dir` or lies beneath it ("/a/b" is within "/a").
bool is_within(std::string_view canonical_dir, std::string_view p);

// Maps a canonical virtual path into the host filesystem under `root`.
// root="/srv/export", p="/x/y" -> "/srv/export/x/y".
std::string to_host(std::string_view root, std::string_view canonical);

}  // namespace tss::path
