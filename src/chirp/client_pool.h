// ClientPool: a thread-safe pool of authenticated Chirp connections to one
// endpoint.
//
// The parallel I/O engine (par/executor.h) runs N RPCs in flight at once;
// Chirp pipelines one request per connection, so N in-flight RPCs need N
// connections. Dialing and authenticating per request would drown the win
// in handshakes — the pool keeps authenticated connections warm and hands
// them out as RAII leases:
//
//   checkout  reuse the most-recently-used idle connection. Stale entries
//             (idle past idle_timeout) are evicted on the way; survivors are
//             health-checked — a cheap connected() test always, a whoami()
//             probe when the connection has been idle longer than
//             probe_idle_age (it may be silently half-dead). Nothing idle?
//             Dial a fresh connection under the PR 1 RetryPolicy backoff —
//             unless the pool is at max_connections, in which case checkout
//             answers a typed EBUSY immediately (never blocks behind other
//             leases; mirrors the server's admission control).
//   checkin   automatic at Lease destruction. A connection that died in
//             service (or was poison()ed) is closed, not recycled; healthy
//             ones return to the idle list, newest first.
//
// Everything lands in the net.pool.* metrics family (see
// docs/OBSERVABILITY.md). The pool must outlive its leases.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>

#include "chirp/client.h"
#include "obs/metrics.h"
#include "util/backoff.h"
#include "util/clock.h"
#include "util/rand.h"

namespace tss::chirp {

class ClientPool {
 public:
  // Dials *and authenticates* one connection (the same contract as
  // fs::CfsFs::ConnectFn).
  using DialFn = std::function<Result<Client>()>;

  struct Options {
    // Cap on leased + dialing connections; checkout at the cap with no
    // idle connection answers EBUSY.
    size_t max_connections = 8;
    // Idle connections kept after checkin; the rest are closed.
    size_t max_idle = 8;
    // Idle entries older than this are evicted (lazily at checkout, or by
    // evict_idle()).
    Nanos idle_timeout = 60 * kSecond;
    // Idle age at which checkout adds a whoami() round trip to the health
    // check. 0 probes every reuse; negative disables the probe.
    Nanos probe_idle_age = 1 * kSecond;
    // Backoff applied between failed dial attempts (util/backoff.h — the
    // same policy the §6 CFS reconnect path uses).
    RetryPolicy dial_retry;
    uint64_t jitter_seed = 0;  // 0 = per-pool derived seed
    // net.pool.* metrics registry. Null = the process-wide registry.
    obs::Registry* metrics = nullptr;
    Clock* clock = nullptr;  // null = RealClock
  };

  ClientPool(DialFn dial, Options options);
  ~ClientPool();  // closes idle connections; leases must be gone by now

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  // RAII handle on a checked-out connection.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      release();
      pool_ = other.pool_;
      client_ = std::move(other.client_);
      poisoned_ = other.poisoned_;
      other.pool_ = nullptr;
      return *this;
    }
    ~Lease() { release(); }

    bool valid() const { return client_ != nullptr; }
    Client& operator*() { return *client_; }
    Client* operator->() { return client_.get(); }

    // Marks the connection unfit for reuse; checkin will close it. (A
    // connection that reports !connected() is discarded regardless.)
    void poison() { poisoned_ = true; }

   private:
    friend class ClientPool;
    Lease(ClientPool* pool, std::unique_ptr<Client> client)
        : pool_(pool), client_(std::move(client)) {}
    void release() {
      if (pool_ && client_) pool_->checkin(std::move(client_), poisoned_);
      pool_ = nullptr;
      client_.reset();
    }

    ClientPool* pool_ = nullptr;
    std::unique_ptr<Client> client_;
    bool poisoned_ = false;
  };

  Result<Lease> checkout();

  size_t idle_count() const;
  size_t in_use_count() const;

  // Closes idle connections older than idle_timeout; returns how many.
  size_t evict_idle();

 private:
  struct IdleEntry {
    std::unique_ptr<Client> client;
    Nanos since = 0;  // checkin timestamp
  };

  void checkin(std::unique_ptr<Client> client, bool poisoned);
  Result<std::unique_ptr<Client>> dial_with_backoff();
  void release_slot_locked();

  DialFn dial_;
  Options options_;
  Clock* clock_;
  Rng jitter_rng_;  // guarded by mutex_

  obs::Counter* m_dials_ = nullptr;
  obs::Counter* m_dial_failures_ = nullptr;
  obs::Counter* m_backoff_sleeps_ = nullptr;
  obs::Counter* m_checkouts_ = nullptr;
  obs::Counter* m_reused_ = nullptr;
  obs::Counter* m_exhausted_ = nullptr;
  obs::Counter* m_health_evictions_ = nullptr;
  obs::Counter* m_idle_evictions_ = nullptr;
  obs::Counter* m_discarded_ = nullptr;
  obs::Gauge* m_idle_gauge_ = nullptr;
  obs::Gauge* m_in_use_gauge_ = nullptr;

  mutable std::mutex mutex_;
  // Checkin pushes back, checkout pops back (LIFO keeps the working set
  // warm); the front is therefore the oldest entry, where eviction starts.
  std::deque<IdleEntry> idle_;
  size_t in_use_ = 0;  // leased or mid-dial
};

}  // namespace tss::chirp
