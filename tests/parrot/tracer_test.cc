// Tests for the ptrace-based Parrot tracer: pass-through tracing and path
// redirection of an unmodified binary.
#include "parrot/tracer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace tss::parrot {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!tracer_supported()) GTEST_SKIP() << "tracer unsupported here";
    dir_ = ::testing::TempDir() + "/parrot_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter_++);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::string write_file(const std::string& name, const std::string& data) {
    std::string p = dir_ + "/" + name;
    std::ofstream out(p);
    out << data;
    return p;
  }

  std::string dir_;
  static inline int counter_ = 0;
};

TEST_F(TracerTest, PassThroughPreservesExitCode) {
  auto stats = trace_run({"/bin/true"});
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(stats.value().exit_code, 0);
  EXPECT_GT(stats.value().syscall_count, 0u);

  auto failing = trace_run({"/bin/false"});
  ASSERT_TRUE(failing.ok());
  EXPECT_EQ(failing.value().exit_code, 1);
}

TEST_F(TracerTest, PassThroughPreservesOutputBehaviour) {
  // The child writes a file through normal syscalls; tracing must not
  // disturb any of it.
  std::string out = dir_ + "/out.txt";
  auto stats = trace_run({"/bin/sh", "-c", "echo traced > " + out});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().exit_code, 0);
  std::ifstream in(out);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "traced");
}

TEST_F(TracerTest, CountsSyscallsProportionally) {
  // A loop issuing N extra syscalls must raise the observed count by ~N.
  auto small = trace_run(
      {"/bin/sh", "-c", "i=0; while [ $i -lt 10 ]; do i=$((i+1)); done"});
  auto large = trace_run(
      {"/bin/sh", "-c",
       "i=0; while [ $i -lt 10 ]; do cat /dev/null; i=$((i+1)); done"});
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large.value().syscall_count, small.value().syscall_count);
}

TEST_F(TracerTest, RedirectsVirtualPathsToFetchedCopies) {
  // An unmodified /bin/cat reads "/tss/greeting" even though no such path
  // exists: the tracer rewrites the openat to a locally fetched copy.
  std::string backing = write_file("backing.txt", "hello from tactical storage\n");
  std::string out = dir_ + "/cat-out.txt";

  TraceOptions options;
  options.virtual_prefix = "/tss";
  std::vector<std::string> fetched;
  options.fetch = [&](const std::string& virtual_path) -> Result<std::string> {
    fetched.push_back(virtual_path);
    if (virtual_path == "/greeting") return backing;
    return Error(ENOENT, "no such virtual file");
  };

  auto stats = trace_run(
      {"/bin/sh", "-c", "cat /tss/greeting > " + out}, options);
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(stats.value().exit_code, 0);
  EXPECT_GT(stats.value().rewrites, 0u);
  ASSERT_FALSE(fetched.empty());
  EXPECT_EQ(fetched.front(), "/greeting");

  std::ifstream in(out);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello from tactical storage");
}

TEST_F(TracerTest, MissingVirtualFileSurfacesAsEnoent) {
  TraceOptions options;
  options.virtual_prefix = "/tss";
  options.fetch = [](const std::string&) -> Result<std::string> {
    return Error(ENOENT, "nothing here");
  };
  auto stats = trace_run({"/bin/cat", "/tss/ghost"}, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().exit_code, 0);  // cat: No such file or directory
  EXPECT_GT(stats.value().fetch_failures, 0u);
}

TEST_F(TracerTest, PathsOutsidePrefixUntouched) {
  std::string real = write_file("real.txt", "untouched\n");
  TraceOptions options;
  options.virtual_prefix = "/tss";
  bool fetch_called = false;
  options.fetch = [&](const std::string&) -> Result<std::string> {
    fetch_called = true;
    return Error(ENOENT, "x");
  };
  auto stats = trace_run({"/bin/cat", real}, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().exit_code, 0);
  EXPECT_FALSE(fetch_called);
}

TEST_F(TracerTest, SignalTerminationReported) {
  auto stats = trace_run({"/bin/sh", "-c", "kill -KILL $$"});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().exit_code, 128 + SIGKILL);
}

TEST_F(TracerTest, MissingBinaryYieldsExit127) {
  auto stats = trace_run({"/definitely/not/a/binary"});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().exit_code, 127);
}

}  // namespace
}  // namespace tss::parrot
