#include "sim/sim_backend.h"

#include <cstring>

#include "util/path.h"

namespace tss::sim {

SimBackend::SimBackend(Engine& engine, Config config)
    : engine_(engine),
      config_(config),
      disk_(engine, config.disk),
      cache_(config.cache_bytes) {
  Entry root;
  root.is_dir = true;
  root.inode = next_inode_++;
  tree_["/"] = root;
}

SimBackend::Entry* SimBackend::find(const std::string& p) {
  auto it = tree_.find(p);
  return it == tree_.end() ? nullptr : &it->second;
}

Result<SimBackend::Entry*> SimBackend::require(const std::string& p) {
  Entry* e = find(p);
  if (!e) return Error(ENOENT, "no such file: " + p);
  return e;
}

bool SimBackend::parent_exists(const std::string& p) {
  Entry* parent = find(path::dirname(p));
  return parent && parent->is_dir;
}

chirp::StatInfo SimBackend::info_of(const Entry& e) const {
  chirp::StatInfo info;
  info.size = e.size;
  info.mode = e.is_dir ? 0755 : 0644;
  info.mtime = e.mtime;
  info.inode = e.inode;
  info.is_dir = e.is_dir;
  return info;
}

void SimBackend::charge_metadata() {
  Nanos start = std::max(completion_, engine_.now());
  completion_ = start + config_.metadata_op_cost;
}

void SimBackend::charge_read(Entry& e, uint64_t offset, uint64_t length,
                             bool sequential) {
  Nanos start = std::max(completion_, engine_.now());
  auto split = cache_.access(e.inode, offset, length);
  Nanos done = start;
  if (split.hit_bytes > 0) {
    done += static_cast<Nanos>(static_cast<double>(split.hit_bytes) /
                               config_.memory_bytes_per_sec * 1e9);
  }
  if (split.miss_bytes > 0) {
    done = disk_.access(done, split.miss_bytes, sequential);
  }
  completion_ = done;
}

void SimBackend::charge_write(Entry& e, uint64_t offset, uint64_t length) {
  // Asynchronous writes (the configuration the paper benchmarks): data
  // lands in the buffer cache at memory speed; the eventual writeback is
  // not on the request's critical path.
  Nanos start = std::max(completion_, engine_.now());
  cache_.access(e.inode, offset, length);
  completion_ = start + static_cast<Nanos>(static_cast<double>(length) /
                                           config_.memory_bytes_per_sec * 1e9);
}

Nanos SimBackend::take_completion() {
  Nanos done = std::max(completion_, engine_.now());
  completion_ = 0;
  return done;
}

Result<int> SimBackend::open(const std::string& p,
                             const chirp::OpenFlags& flags, uint32_t mode) {
  (void)mode;
  charge_metadata();
  Entry* e = find(p);
  if (e && e->is_dir) return Error(EISDIR, "is a directory: " + p);
  if (e && flags.create && flags.exclusive) {
    return Error(EEXIST, "file exists: " + p);
  }
  if (!e) {
    if (!flags.create) return Error(ENOENT, "no such file: " + p);
    if (!parent_exists(p)) return Error(ENOENT, "no parent: " + p);
    Entry fresh;
    fresh.inode = next_inode_++;
    fresh.mtime = engine_.now() / kSecond;
    tree_[p] = fresh;
    e = find(p);
  } else if (flags.truncate) {
    used_bytes_ -= e->size;
    e->size = 0;
    e->content.clear();
    cache_.invalidate(e->inode);
  }
  int handle = next_handle_++;
  // A fresh handle's first access is never "sequential": the head has to
  // get there (the inter-file seek that shapes the disk-bound regime).
  handles_[handle] = OpenHandle{p, UINT64_MAX};
  return handle;
}

Result<size_t> SimBackend::pread(int handle, void* data, size_t size,
                                 int64_t offset) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad handle");
  TSS_ASSIGN_OR_RETURN(Entry * e, require(it->second.path));
  if (offset < 0) return Error(EINVAL, "negative offset");
  uint64_t off = static_cast<uint64_t>(offset);
  if (off >= e->size) return size_t{0};
  size_t n = static_cast<size_t>(std::min<uint64_t>(size, e->size - off));
  bool sequential = off == it->second.next_sequential_offset;
  it->second.next_sequential_offset = off + n;
  charge_read(*e, off, n, sequential);
  if (data) {
    if (e->synthetic) {
      std::memset(data, 0, n);
    } else {
      std::memcpy(data, e->content.data() + off, n);
    }
  }
  return n;
}

Result<size_t> SimBackend::pwrite(int handle, const void* data, size_t size,
                                  int64_t offset) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad handle");
  TSS_ASSIGN_OR_RETURN(Entry * e, require(it->second.path));
  if (offset < 0) return Error(EINVAL, "negative offset");
  uint64_t off = static_cast<uint64_t>(offset);
  uint64_t new_size = std::max<uint64_t>(e->size, off + size);
  if (data && !e->synthetic) {
    if (e->content.size() < off + size) e->content.resize(off + size, '\0');
    std::memcpy(e->content.data() + off, data, size);
  } else {
    // Synthetic write: track size only. A real-content file written with a
    // null payload degrades to synthetic.
    if (data == nullptr && !e->synthetic && e->size == 0) {
      e->synthetic = true;
    }
    if (data == nullptr) e->synthetic = true;
    e->content.clear();
  }
  used_bytes_ += new_size - e->size;
  e->size = new_size;
  e->mtime = engine_.now() / kSecond;
  charge_write(*e, off, size);
  return size;
}

Result<void> SimBackend::fsync(int handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad handle");
  charge_metadata();
  return Result<void>::success();
}

Result<void> SimBackend::close(int handle) {
  if (handles_.erase(handle) == 0) return Error(EBADF, "bad handle");
  return Result<void>::success();
}

Result<chirp::StatInfo> SimBackend::fstat(int handle) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Error(EBADF, "bad handle");
  charge_metadata();
  TSS_ASSIGN_OR_RETURN(Entry * e, require(it->second.path));
  return info_of(*e);
}

Result<chirp::StatInfo> SimBackend::stat(const std::string& p) {
  charge_metadata();
  TSS_ASSIGN_OR_RETURN(Entry * e, require(p));
  return info_of(*e);
}

Result<void> SimBackend::unlink(const std::string& p) {
  charge_metadata();
  TSS_ASSIGN_OR_RETURN(Entry * e, require(p));
  if (e->is_dir) return Error(EISDIR, "is a directory: " + p);
  used_bytes_ -= e->size;
  cache_.invalidate(e->inode);
  tree_.erase(p);
  return Result<void>::success();
}

Result<void> SimBackend::rename(const std::string& from,
                                const std::string& to) {
  charge_metadata();
  TSS_ASSIGN_OR_RETURN(Entry * e, require(from));
  if (!parent_exists(to)) return Error(ENOENT, "no parent: " + to);
  Entry moved = *e;
  tree_.erase(from);
  tree_[to] = std::move(moved);
  return Result<void>::success();
}

Result<void> SimBackend::mkdir(const std::string& p, uint32_t mode) {
  (void)mode;
  charge_metadata();
  if (find(p)) return Error(EEXIST, "exists: " + p);
  if (!parent_exists(p)) return Error(ENOENT, "no parent: " + p);
  Entry dir;
  dir.is_dir = true;
  dir.inode = next_inode_++;
  dir.mtime = engine_.now() / kSecond;
  tree_[p] = dir;
  return Result<void>::success();
}

Result<void> SimBackend::rmdir(const std::string& p) {
  charge_metadata();
  TSS_ASSIGN_OR_RETURN(Entry * e, require(p));
  if (!e->is_dir) return Error(ENOTDIR, "not a directory: " + p);
  // Any child => not empty. Children sort immediately after "p + '/'".
  std::string prefix = p == "/" ? "/" : p + "/";
  auto it = tree_.upper_bound(p);
  if (it != tree_.end() && path::is_within(p, it->first)) {
    return Error(ENOTEMPTY, "directory not empty: " + p);
  }
  if (p == "/") return Error(EBUSY, "cannot remove root");
  tree_.erase(p);
  return Result<void>::success();
}

Result<void> SimBackend::truncate(const std::string& p, uint64_t size) {
  charge_metadata();
  TSS_ASSIGN_OR_RETURN(Entry * e, require(p));
  if (e->is_dir) return Error(EISDIR, "is a directory: " + p);
  used_bytes_ += size;
  used_bytes_ -= e->size;
  e->size = size;
  if (!e->synthetic) e->content.resize(size, '\0');
  return Result<void>::success();
}

Result<std::vector<chirp::DirEntry>> SimBackend::readdir(
    const std::string& p) {
  charge_metadata();
  TSS_ASSIGN_OR_RETURN(Entry * e, require(p));
  if (!e->is_dir) return Error(ENOTDIR, "not a directory: " + p);
  std::vector<chirp::DirEntry> out;
  std::string prefix = p == "/" ? "/" : p + "/";
  for (auto it = tree_.upper_bound(prefix);
       it != tree_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    std::string_view rest(it->first);
    rest.remove_prefix(prefix.size());
    if (rest.find('/') != std::string_view::npos) continue;  // grandchild
    out.push_back(chirp::DirEntry{std::string(rest), info_of(it->second)});
  }
  return out;
}

Result<std::string> SimBackend::read_file(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(Entry * e, require(p));
  if (e->is_dir) return Error(EISDIR, "is a directory: " + p);
  charge_read(*e, 0, e->size, /*sequential=*/true);
  if (e->synthetic) return std::string(e->size, '\0');
  return e->content;
}

Result<void> SimBackend::write_file(const std::string& p,
                                    std::string_view data, uint32_t mode) {
  (void)mode;
  charge_metadata();
  Entry* e = find(p);
  if (e && e->is_dir) return Error(EISDIR, "is a directory: " + p);
  if (!e) {
    if (!parent_exists(p)) return Error(ENOENT, "no parent: " + p);
    Entry fresh;
    fresh.inode = next_inode_++;
    tree_[p] = fresh;
    e = find(p);
  }
  used_bytes_ += data.size();
  used_bytes_ -= e->size;
  e->synthetic = false;
  e->content.assign(data);
  e->size = data.size();
  e->mtime = engine_.now() / kSecond;
  charge_write(*e, 0, data.size());
  return Result<void>::success();
}

Result<std::pair<uint64_t, uint64_t>> SimBackend::statfs() {
  charge_metadata();
  uint64_t free_bytes =
      used_bytes_ >= config_.total_bytes ? 0 : config_.total_bytes - used_bytes_;
  return std::make_pair(config_.total_bytes, free_bytes);
}

Result<void> SimBackend::preload_file(const std::string& p, uint64_t size) {
  std::string canonical = path::sanitize(p);
  // Create parent directories.
  std::string dir = path::dirname(canonical);
  std::vector<std::string> missing;
  while (dir != "/" && !find(dir)) {
    missing.push_back(dir);
    dir = path::dirname(dir);
  }
  for (auto it = missing.rbegin(); it != missing.rend(); ++it) {
    Entry d;
    d.is_dir = true;
    d.inode = next_inode_++;
    tree_[*it] = d;
  }
  Entry e;
  e.synthetic = true;
  e.size = size;
  e.inode = next_inode_++;
  used_bytes_ += size;
  tree_[canonical] = e;
  return Result<void>::success();
}

Result<void> SimBackend::warm_file(const std::string& p) {
  TSS_ASSIGN_OR_RETURN(Entry * e, require(path::sanitize(p)));
  cache_.access(e->inode, 0, e->size);
  return Result<void>::success();
}

void SimBackend::damage(const std::string& p) {
  std::string canonical = path::sanitize(p);
  Entry* e = find(canonical);
  if (!e) return;
  used_bytes_ -= e->size;
  cache_.invalidate(e->inode);
  tree_.erase(canonical);
}

}  // namespace tss::sim
