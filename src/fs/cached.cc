#include "fs/cached.h"

#include <algorithm>
#include <cstring>

#include "util/checksum.h"

namespace tss::fs {

namespace {

// One flat block file per cached path in the at-rest store. FNV-1a64 of the
// path keeps store names filesystem-safe; a 64-bit collision between live
// cache entries is vanishingly unlikely and at worst costs a digest-mismatch
// refetch (never a wrong serve — the digest check guards every open).
std::string store_name(const std::string& path) {
  return "/" + hash_to_hex(fnv1a64(path)) + ".blk";
}

}  // namespace

// A read-only handle whose reads are served from validated cached blocks
// while the entry stays trustworthy (not invalidated, lease unexpired), and
// fall through to the source the moment it is not — a stale lease never
// serves bytes a mutation has superseded.
class CachedFile final : public File {
 public:
  CachedFile(CachedFs* fs, std::string path,
             std::shared_ptr<CachedFs::Entry> entry,
             std::shared_ptr<const std::string> image, OpenFlags flags,
             uint32_t mode)
      : fs_(fs),
        path_(std::move(path)),
        entry_(std::move(entry)),
        image_(std::move(image)),
        flags_(flags),
        mode_(mode) {}

  ~CachedFile() override = default;

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    if (trusted()) {
      if (offset < 0) return Error(EINVAL, "negative offset");
      uint64_t off = static_cast<uint64_t>(offset);
      if (off >= image_->size()) return static_cast<size_t>(0);
      size_t n = static_cast<size_t>(
          std::min<uint64_t>(size, image_->size() - off));
      std::memcpy(data, image_->data() + off, n);
      return n;
    }
    TSS_ASSIGN_OR_RETURN(File * f, fallback());
    return f->pread(data, size, offset);
  }

  Result<size_t> pwrite(const void*, size_t, int64_t) override {
    return Error(EBADF, "read-only cached handle");
  }

  Result<void> fsync() override { return Result<void>::success(); }

  Result<StatInfo> fstat() override {
    if (trusted()) return entry_->info;
    TSS_ASSIGN_OR_RETURN(File * f, fallback());
    return f->fstat();
  }

  Result<void> close() override {
    if (fallback_) return fallback_->close();
    return Result<void>::success();
  }

 private:
  bool trusted() const { return entry_ && fs_->entry_live(*entry_); }

  Result<File*> fallback() {
    if (!fallback_) {
      TSS_ASSIGN_OR_RETURN(fallback_,
                           fs_->source_->open(path_, flags_, mode_));
    }
    return fallback_.get();
  }

  CachedFs* fs_;
  std::string path_;
  std::shared_ptr<CachedFs::Entry> entry_;  // null when publish was skipped
  std::shared_ptr<const std::string> image_;
  OpenFlags flags_;
  uint32_t mode_;
  std::unique_ptr<File> fallback_;
};

// Write-path passthrough: every mutation through the handle invalidates the
// cache entry *after* it lands, so no later open can publish stale bytes.
class CacheInvalidatingFile final : public File {
 public:
  CacheInvalidatingFile(CachedFs* fs, std::string path,
                        std::unique_ptr<File> inner)
      : fs_(fs), path_(std::move(path)), inner_(std::move(inner)) {}

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    return inner_->pread(data, size, offset);
  }
  Result<size_t> pwrite(const void* data, size_t size,
                        int64_t offset) override {
    auto n = inner_->pwrite(data, size, offset);
    // Even a failed write may have mutated some bytes; drop the entry.
    fs_->invalidate(path_);
    return n;
  }
  Result<void> fsync() override { return inner_->fsync(); }
  Result<StatInfo> fstat() override { return inner_->fstat(); }
  Result<void> close() override { return inner_->close(); }

 private:
  CachedFs* fs_;
  std::string path_;
  std::unique_ptr<File> inner_;
};

CachedFs::CachedFs(FileSystem* source, Options options)
    : source_(source),
      options_(options),
      clock_(options.clock ? options.clock : &RealClock::instance()) {
  obs::Registry* metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
  hits_ = metrics->counter("fs.cache.hit");
  misses_ = metrics->counter("fs.cache.miss");
  evicts_ = metrics->counter("fs.cache.evict");
  invalidates_ = metrics->counter("fs.cache.invalidate");
  bypasses_ = metrics->counter("fs.cache.bypass");
  integrity_mismatch_ = metrics->counter("fs.integrity.mismatch");
  bytes_gauge_ = metrics->gauge("fs.cache.bytes");
}

CachedFs::~CachedFs() = default;

bool CachedFs::entry_live(const Entry& entry) const {
  return !entry.invalidated.load(std::memory_order_acquire) &&
         clock_->now() < entry.lease_expiry.load(std::memory_order_acquire);
}

void CachedFs::touch(const std::shared_ptr<Entry>& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entry->last_use = ++tick_;
}

void CachedFs::update_bytes_gauge_locked() {
  bytes_gauge_->set(static_cast<int64_t>(bytes_));
}

bool CachedFs::drop_locked(const std::string& path) {
  auto it = entries_.find(path);
  if (it == entries_.end()) return false;
  std::shared_ptr<Entry> entry = it->second;
  entry->invalidated.store(true, std::memory_order_release);
  bytes_ -= entry->bytes;
  if (!entry->store_path.empty() && options_.store) {
    (void)options_.store->unlink(entry->store_path);
  }
  entries_.erase(it);
  update_bytes_gauge_locked();
  return true;
}

void CachedFs::invalidate(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  gen_[path]++;
  if (drop_locked(path)) invalidates_->add();
}

void CachedFs::invalidate_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!entries_.empty()) {
    gen_[entries_.begin()->first]++;
    if (drop_locked(entries_.begin()->first)) invalidates_->add();
  }
}

uint64_t CachedFs::cached_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

void CachedFs::evict_over_capacity_locked() {
  while (bytes_ > options_.capacity_bytes && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second->last_use < victim->second->last_use) victim = it;
    }
    std::string path = victim->first;
    if (drop_locked(path)) evicts_->add();
  }
}

Result<std::shared_ptr<const std::string>> CachedFs::load_validated(
    const std::shared_ptr<Entry>& entry) {
  std::shared_ptr<const std::string> image = entry->content;
  if (!image) {
    auto data = options_.store->read_file(entry->store_path);
    if (!data.ok()) return std::move(data).take_error();
    image = std::make_shared<const std::string>(std::move(data).value());
  }
  if (fnv1a64(*image) != entry->digest) {
    // At-rest rot: the blocks no longer match the digest recorded at fetch
    // time. Counted, discarded by the caller, never served.
    integrity_mismatch_->add();
    return Error(EBADMSG, "cached blocks failed digest validation");
  }
  return image;
}

Result<std::shared_ptr<const std::string>> CachedFs::fetch_and_publish(
    const std::string& path, bool* bypassed) {
  uint64_t fetch_gen;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fetch_gen = gen_[path];
  }
  auto data = source_->read_file(path);
  if (!data.ok()) {
    if (data.error().code == EBADMSG) {
      // A wire-integrity failure must bypass — not poison — the cache.
      bypasses_->add();
      *bypassed = true;
    }
    return std::move(data).take_error();
  }
  auto image =
      std::make_shared<const std::string>(std::move(data).value());
  if (image->size() > options_.max_file_bytes ||
      image->size() > options_.capacity_bytes) {
    bypasses_->add();
    return image;  // served, never cached
  }
  misses_->add();

  // Metadata for the cache entry; identity fields drive lease revalidation.
  StatInfo info;
  if (auto stat = source_->stat(path); stat.ok()) info = stat.value();
  info.size = image->size();

  auto entry = std::make_shared<Entry>();
  entry->info = info;
  entry->digest = fnv1a64(*image);
  entry->bytes = image->size();
  entry->lease_expiry.store(clock_->now() + options_.lease_ttl,
                            std::memory_order_release);
  if (options_.store) {
    entry->store_path = store_name(path);
    if (!options_.store->write_file(entry->store_path, *image, 0600).ok()) {
      return image;  // cache home unavailable: serve uncached
    }
  } else {
    entry->content = image;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (gen_[path] != fetch_gen) {
    // The path was mutated while we fetched; publishing would hand later
    // opens a fresh lease on stale bytes. Serve this image, cache nothing.
    if (!entry->store_path.empty()) {
      (void)options_.store->unlink(entry->store_path);
    }
    return image;
  }
  if (drop_locked(path)) invalidates_->add();  // racing fetch published first
  entry->last_use = ++tick_;
  bytes_ += entry->bytes;
  entries_[path] = entry;
  evict_over_capacity_locked();
  update_bytes_gauge_locked();
  return image;
}

Result<std::unique_ptr<File>> CachedFs::open_cached(const std::string& path,
                                                    const OpenFlags& flags,
                                                    uint32_t mode) {
  Nanos now = clock_->now();
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(path);
    if (it != entries_.end()) entry = it->second;
  }
  if (entry && !entry->invalidated.load(std::memory_order_acquire)) {
    bool live = now < entry->lease_expiry.load(std::memory_order_acquire);
    if (!live) {
      // Lease expired: revalidate the metadata against the source. The same
      // identity (size, mtime, inode) renews the lease; any change means
      // the file moved on without us — refetch.
      auto info = source_->stat(path);
      if (info.ok() && info.value().size == entry->info.size &&
          info.value().mtime == entry->info.mtime &&
          info.value().inode == entry->info.inode) {
        entry->lease_expiry.store(now + options_.lease_ttl,
                                  std::memory_order_release);
        live = true;
      }
    }
    if (live) {
      auto image = load_validated(entry);
      if (image.ok()) {
        hits_->add();
        touch(entry);
        return std::unique_ptr<File>(new CachedFile(
            this, path, entry, image.value(), flags, mode));
      }
    }
    // Expired-and-changed, unloadable, or corrupt: discard and refetch.
    invalidate(path);
    entry.reset();
  }

  bool bypassed = false;
  auto image = fetch_and_publish(path, &bypassed);
  if (!image.ok()) {
    if (bypassed) return source_->open(path, flags, mode);
    return std::move(image).take_error();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(path);
    if (it != entries_.end()) entry = it->second;
  }
  return std::unique_ptr<File>(
      new CachedFile(this, path, entry, image.value(), flags, mode));
}

Result<std::unique_ptr<File>> CachedFs::open(const std::string& path,
                                             const OpenFlags& flags,
                                             uint32_t mode) {
  if (flags.write || flags.create || flags.truncate || flags.append) {
    auto inner = source_->open(path, flags, mode);
    if (!inner.ok()) return inner;
    // create/truncate mutate at open time; writes invalidate per-pwrite too.
    invalidate(path);
    return std::unique_ptr<File>(new CacheInvalidatingFile(
        this, path, std::move(inner).value()));
  }
  return open_cached(path, flags, mode);
}

Result<StatInfo> CachedFs::stat(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(path);
    if (it != entries_.end() && entry_live(*it->second)) {
      hits_->add();
      it->second->last_use = ++tick_;
      return it->second->info;
    }
  }
  return source_->stat(path);
}

Result<void> CachedFs::unlink(const std::string& path) {
  auto rc = source_->unlink(path);
  invalidate(path);
  return rc;
}

Result<void> CachedFs::rename(const std::string& from, const std::string& to) {
  auto rc = source_->rename(from, to);
  invalidate(from);
  invalidate(to);
  return rc;
}

Result<void> CachedFs::mkdir(const std::string& path, uint32_t mode) {
  return source_->mkdir(path, mode);
}

Result<void> CachedFs::rmdir(const std::string& path) {
  return source_->rmdir(path);
}

Result<void> CachedFs::truncate(const std::string& path, uint64_t size) {
  auto rc = source_->truncate(path, size);
  invalidate(path);
  return rc;
}

Result<std::vector<DirEntry>> CachedFs::readdir(const std::string& path) {
  return source_->readdir(path);
}

Result<void> CachedFs::write_file(const std::string& path,
                                  std::string_view data, uint32_t mode) {
  auto rc = source_->write_file(path, data, mode);
  invalidate(path);
  return rc;
}

}  // namespace tss::fs
