// Blocking Chirp client.
//
// Mirrors the RPC fragment printed in §4 of the paper:
//
//   conn = chirp_connect(host, port, timeout);
//   chirp_open(conn, path, flags, mode, timeout);
//   chirp_pread(conn, fd, data, length, off, timeout);
//   ...
//
// pread/pwrite take explicit offsets — "the client is responsible for
// maintaining state such as the current file descriptor position" — which is
// exactly what the adapter layer does. getfile/putfile stream whole files
// over the same connection as control.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "auth/auth.h"
#include "chirp/alloc.h"
#include "chirp/protocol.h"
#include "net/line_stream.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace tss::chirp {

class Client {
 public:
  struct Options {
    Nanos timeout = 30 * kSecond;
    // Registry for client-side RPC metrics (round-trip latency histogram,
    // rpc/error counters). Null = the process-wide obs::Registry::global().
    obs::Registry* metrics = nullptr;
    // Offer the "checksum" capability at handshake. When the server echoes
    // it back, pread/getfile payloads are verified against the server's
    // FNV-1a64 digest (mismatch = EBADMSG) and pwrite/putfile payloads carry
    // the client's digest for the server to verify. Off the wire stays
    // byte-compatible with old servers either way.
    bool integrity = true;
    // Offer the "redirect" capability: the server may answer a getfile for
    // an over-threshold hot file with a deflection to a sibling cache
    // instead of the bytes. With a `redirect_dialer` the client follows the
    // hint (and remembers it for the hint's TTL, going straight to the peer
    // until the lease expires); without one a deflection surfaces as the
    // typed errno EREMOTE. Off (the default), the server always serves us
    // directly — a redirect reply then is a protocol violation (EPROTO).
    bool cooperative = false;
    // Connects *and authenticates* to a sibling cache named by a redirect
    // hint. Peers dialed through this must not themselves be cooperative
    // (set cooperative = false in the dialed options) or a deflection chain
    // could loop; max_redirect_hops bounds the origin-side retries either
    // way.
    using Dialer = std::function<Result<Client>(const net::Endpoint&)>;
    Dialer redirect_dialer;
    int max_redirect_hops = 2;
    // Offer the "alloc" capability: when the server tracks space
    // allocations it echoes the token and the mkalloc/lsalloc RPCs become
    // available. Off (the default), this client is byte-for-byte identical
    // on the wire to a pre-allocation one.
    bool alloc_ops = false;
  };

  // Connects and performs the version handshake.
  static Result<Client> connect(const net::Endpoint& server, Options options);
  static Result<Client> connect(const net::Endpoint& server) {
    return connect(server, Options{});
  }

  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  bool connected() const { return stream_.valid(); }
  void close() { stream_.close(); }
  const net::Endpoint& server() const { return server_; }

  // True when the server accepted the checksum capability at handshake.
  bool checksum_enabled() const { return checksum_; }

  // True when the server accepted the alloc capability at handshake.
  bool alloc_enabled() const { return alloc_; }

  // The last redirect hint received (tests; valid after an EREMOTE getfile).
  const std::optional<Redirect>& last_redirect() const {
    return last_redirect_;
  }

  // Transport-level fault injection (tests): sever or truncate mid-RPC so
  // the recovery paths above this client run for real. See net::LineStream.
  void set_transport_fault(net::LineStream::FaultHook hook) {
    stream_.set_fault_hook(std::move(hook));
  }

  // Attempts one authentication method.
  Result<auth::Subject> authenticate(auth::ClientCredential& credential);
  // Tries each credential in order until one succeeds (the paper: "a client
  // may attempt any number of authentication methods in any order").
  Result<auth::Subject> authenticate_any(
      const std::vector<auth::ClientCredential*>& credentials);

  // --- Unix-like RPCs ------------------------------------------------------
  Result<int64_t> open(const std::string& path, const OpenFlags& flags,
                       uint32_t mode = 0644);
  Result<size_t> pread(int64_t fd, void* data, size_t size, int64_t offset);
  Result<size_t> pwrite(int64_t fd, const void* data, size_t size,
                        int64_t offset);
  Result<void> fsync(int64_t fd);
  Result<void> close_fd(int64_t fd);
  Result<StatInfo> stat(const std::string& path);
  Result<StatInfo> fstat(int64_t fd);
  Result<void> unlink(const std::string& path);
  Result<void> rename(const std::string& from, const std::string& to);
  Result<void> mkdir(const std::string& path, uint32_t mode = 0755);
  Result<void> rmdir(const std::string& path);
  Result<void> truncate(const std::string& path, uint64_t size);
  Result<std::vector<DirEntry>> getdir(const std::string& path);

  // --- Space allocations (alloc capability; docs/MULTITENANCY.md) ----------
  // Carves a `limit`-byte allocation out of the one enclosing `path`.
  Result<void> mkalloc(const std::string& path, uint64_t limit);
  // The allocation governing `path`: its root, limit, and bytes in use.
  Result<AllocInfo> lsalloc(const std::string& path);

  // --- Streaming and management RPCs ---------------------------------------
  Result<std::string> getfile(const std::string& path);
  Result<void> putfile(const std::string& path, std::string_view data,
                       uint32_t mode = 0644);

  // Streaming variants for files too large to hold in memory: the sink is
  // called with successive chunks; the source must deliver exactly `size`
  // bytes into the buffer it is given, returning how many it wrote (0 =
  // premature end, which aborts the transfer and the connection).
  using Sink = std::function<Result<void>(std::string_view chunk)>;
  using Source = std::function<Result<size_t>(char* buffer, size_t capacity)>;
  Result<uint64_t> getfile_to(const std::string& path, const Sink& sink);
  Result<void> putfile_from(const std::string& path, uint64_t size,
                            const Source& source, uint32_t mode = 0644);
  Result<std::string> getacl(const std::string& path);
  Result<void> setacl(const std::string& path, const std::string& subject,
                      const std::string& rights);
  Result<std::string> whoami();
  Result<std::pair<uint64_t, uint64_t>> statfs();
  // Fetches the server's metrics snapshot (counters, latency histograms,
  // recent spans) in the text format of obs::Registry::render_text().
  Result<std::string> stats();

 private:
  explicit Client(net::LineStream stream, net::Endpoint server)
      : stream_(std::move(stream)), server_(std::move(server)) {}

  // Sends a request (+payload[+trailer line]), reads the response line.
  Result<Response> roundtrip(const Request& request,
                             const void* payload = nullptr,
                             const std::string* trailer = nullptr);
  // Reads and parses the "sum <16hex>" trailer that follows a streamed
  // payload, then compares it against the locally computed digest.
  Result<void> verify_sum_trailer(uint64_t local_digest, const char* what);
  // Typed integrity failure: bumps the mismatch counter and returns EBADMSG.
  Error integrity_error(const char* what);

  // Records a received redirect hint as a lease for its TTL.
  void remember_redirect(const std::string& path, const Redirect& hint);
  // The dialed sibling cache a live lease for `path` points at, or null
  // (no lease, lease expired, no dialer, or the peer is unreachable —
  // expired and dead entries are dropped).
  Client* lease_peer(const std::string& path);
  void drop_lease(const std::string& path);
  // Typed deflection error when a hint cannot be followed.
  static Error redirect_error(const Redirect& hint);

  net::LineStream stream_;
  net::Endpoint server_;
  bool checksum_ = false;
  bool alloc_ = false;
  Options options_;

  // Cooperative-cache state: per-path redirect leases and the sibling-cache
  // connections dialed to follow them. Leases expire on their TTL; peers are
  // dropped when a fetch through them fails.
  struct Lease {
    Redirect hint;
    Nanos expiry = 0;
  };
  std::map<std::string, Lease> leases_;
  std::map<std::string, std::unique_ptr<Client>> peers_;
  std::optional<Redirect> last_redirect_;

  // Client-side RPC metrics, resolved once in connect(). Null on a
  // default-constructed (disconnected) client — roundtrip() skips recording.
  obs::Histogram* rpc_latency_ = nullptr;
  obs::Counter* rpcs_ = nullptr;
  obs::Counter* rpc_errors_ = nullptr;
  obs::Counter* integrity_mismatches_ = nullptr;
  obs::Counter* redirects_ = nullptr;
};

}  // namespace tss::chirp
