#include "acl/acl.h"

#include "util/strings.h"

namespace tss::acl {

namespace {

std::optional<Rights> letter_to_right(char c) {
  switch (c) {
    case 'r':
      return kRead;
    case 'w':
      return kWrite;
    case 'l':
      return kList;
    case 'd':
      return kDelete;
    case 'a':
      return kAdmin;
    default:
      return std::nullopt;
  }
}

void append_letters(std::string& out, Rights rights) {
  if (rights & kRead) out += 'r';
  if (rights & kWrite) out += 'w';
  if (rights & kList) out += 'l';
  if (rights & kDelete) out += 'd';
  if (rights & kAdmin) out += 'a';
}

}  // namespace

Result<ParsedRights> parse_rights(std::string_view token) {
  ParsedRights out;
  if (token == "-") return out;
  size_t i = 0;
  bool saw_reserve = false;
  while (i < token.size()) {
    char c = token[i];
    if (c == 'v') {
      if (saw_reserve) {
        return Error(EINVAL, "duplicate v group in rights");
      }
      saw_reserve = true;
      out.rights |= kReserve;
      i++;
      if (i < token.size() && token[i] == '(') {
        size_t close = token.find(')', i);
        if (close == std::string_view::npos) {
          return Error(EINVAL, "unterminated v( in rights");
        }
        for (size_t j = i + 1; j < close; j++) {
          auto r = letter_to_right(token[j]);
          if (!r) {
            return Error(EINVAL, std::string("bad right in v(): ") + token[j]);
          }
          out.reserve |= *r;
        }
        i = close + 1;
      }
      continue;
    }
    auto r = letter_to_right(c);
    if (!r) return Error(EINVAL, std::string("bad right letter: ") + c);
    out.rights |= *r;
    i++;
  }
  return out;
}

std::string format_rights(Rights rights, Rights reserve) {
  std::string out;
  append_letters(out, rights);
  if (rights & kReserve) {
    out += 'v';
    out += '(';
    append_letters(out, reserve);
    out += ')';
  }
  if (out.empty()) out = "-";
  return out;
}

bool Entry::matches(std::string_view subject_name) const {
  return wildcard_match(subject, subject_name);
}

Result<Acl> Acl::parse(std::string_view text) {
  Acl acl;
  for (const std::string& raw_line : split(text, '\n')) {
    std::string_view line = trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto words = split_words(line);
    if (words.size() != 2) {
      return Error(EINVAL, "bad ACL line: " + std::string(line));
    }
    TSS_ASSIGN_OR_RETURN(ParsedRights parsed, parse_rights(words[1]));
    acl.entries_.push_back(Entry{words[0], parsed.rights, parsed.reserve});
  }
  return acl;
}

std::string Acl::serialize() const {
  std::string out;
  for (const Entry& e : entries_) {
    out += e.subject;
    out += ' ';
    out += format_rights(e.rights, e.reserve);
    out += '\n';
  }
  return out;
}

bool Acl::check(std::string_view subject, Rights wanted) const {
  if (wanted == kNoRights) return true;
  return (rights_for(subject) & wanted) == wanted;
}

Rights Acl::rights_for(std::string_view subject) const {
  Rights held = kNoRights;
  for (const Entry& e : entries_) {
    if (e.matches(subject)) held |= e.rights;
  }
  return held;
}

std::optional<Rights> Acl::reserve_rights_for(std::string_view subject) const {
  bool any = false;
  Rights granted = kNoRights;
  for (const Entry& e : entries_) {
    if ((e.rights & kReserve) && e.matches(subject)) {
      any = true;
      granted |= e.reserve;
    }
  }
  if (!any) return std::nullopt;
  return granted;
}

void Acl::set(std::string_view subject_pattern, Rights rights,
              Rights reserve) {
  for (size_t i = 0; i < entries_.size(); i++) {
    if (entries_[i].subject == subject_pattern) {
      if (rights == kNoRights) {
        entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        entries_[i].rights = rights;
        entries_[i].reserve = reserve;
      }
      return;
    }
  }
  if (rights != kNoRights) {
    entries_.push_back(Entry{std::string(subject_pattern), rights, reserve});
  }
}

Acl Acl::fresh_for(std::string_view subject, Rights granted) {
  Acl acl;
  if (granted != kNoRights) {
    acl.entries_.push_back(Entry{std::string(subject), granted, kNoRights});
  }
  return acl;
}

}  // namespace tss::acl
