#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace tss {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_words(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) i++;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) i++;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) b++;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) e--;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<int64_t> parse_i64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool negative = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    i = 1;
    if (s.size() == 1) return std::nullopt;
  }
  uint64_t magnitude = 0;
  for (; i < s.size(); i++) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
    uint64_t digit = static_cast<uint64_t>(s[i] - '0');
    if (magnitude > (UINT64_MAX - digit) / 10) return std::nullopt;
    magnitude = magnitude * 10 + digit;
  }
  if (negative) {
    if (magnitude > static_cast<uint64_t>(INT64_MAX) + 1) return std::nullopt;
    return static_cast<int64_t>(~magnitude + 1);
  }
  if (magnitude > static_cast<uint64_t>(INT64_MAX)) return std::nullopt;
  return static_cast<int64_t>(magnitude);
}

std::optional<uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

bool wildcard_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with backtracking to the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      p++;
      t++;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') p++;
  return p == pattern.size();
}

namespace {
bool url_safe(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '~' ||
         c == '/' || c == '-';
}
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string url_encode(std::string_view s) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (url_safe(c)) {
      out += c;
    } else {
      unsigned char u = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    }
  }
  return out;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); i++) {
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = hex_value(s[i + 1]);
      int lo = hex_value(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
        continue;
      }
    }
    out += s[i];
  }
  return out;
}

std::string format_bytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    unit++;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string join_words(const std::vector<std::string>& words) {
  std::string out;
  for (size_t i = 0; i < words.size(); i++) {
    if (i) out += ' ';
    out += words[i];
  }
  return out;
}

}  // namespace tss
