// Adapter tests: namespace resolution, mountlists, descriptor semantics.
#include "adapter/adapter.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "adapter/mountlist.h"
#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/local.h"

namespace tss::adapter {
namespace {

TEST(MountList, ParsesPaperExample) {
  auto list = MountList::parse(
      "# application namespace\n"
      "/usr/local /cfs/shared.cse.nd.edu:9094/software\n"
      "/data      /dsfs/archive\n");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().entries().size(), 2u);
  EXPECT_EQ(list.value().translate("/usr/local/bin/sim"),
            "/cfs/shared.cse.nd.edu:9094/software/bin/sim");
  EXPECT_EQ(list.value().translate("/data/run5"), "/dsfs/archive/run5");
}

TEST(MountList, LongestPrefixWins) {
  MountList list;
  list.add("/a", "/cfs/one:1");
  list.add("/a/b", "/cfs/two:2");
  EXPECT_EQ(list.translate("/a/x"), "/cfs/one:1/x");
  EXPECT_EQ(list.translate("/a/b/x"), "/cfs/two:2/x");
}

TEST(MountList, UnmatchedPathsPassThrough) {
  MountList list;
  list.add("/data", "/cfs/h:1/d");
  EXPECT_EQ(list.translate("/etc/passwd"), "/etc/passwd");
}

TEST(MountList, RejectsMalformedLines) {
  EXPECT_FALSE(MountList::parse("one-field-only\n").ok());
  EXPECT_FALSE(MountList::parse("three fields here\n").ok());
}

class AdapterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/adapter_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);

    chirp::ServerOptions options;
    options.owner = "unix:testowner";
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    server_ = std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(root_),
        std::move(auth));
    ASSERT_TRUE(server_->start().ok());

    Adapter::Options adapter_options;
    adapter_options.credentials = {
        std::make_shared<auth::HostnameClientCredential>()};
    adapter_options.retry.base_delay = 5 * kMillisecond;
    adapter_ = std::make_unique<Adapter>(adapter_options);
    hostport_ = "127.0.0.1:" + std::to_string(server_->port());
  }

  void TearDown() override {
    adapter_.reset();
    server_->stop();
    std::filesystem::remove_all(root_);
  }

  std::string cfs_path(const std::string& rest) {
    return "/cfs/" + hostport_ + rest;
  }

  std::string root_;
  std::string hostport_;
  std::unique_ptr<chirp::Server> server_;
  std::unique_ptr<Adapter> adapter_;
  static inline int counter_ = 0;
};

TEST_F(AdapterTest, DefaultNamespaceAutoMountsCfs) {
  // §6: a file server on host H is accessible under /cfs/H.
  ASSERT_TRUE(adapter_->write_file(cfs_path("/hello.txt"), "via adapter").ok());
  EXPECT_EQ(adapter_->read_file(cfs_path("/hello.txt")).value(),
            "via adapter");
  // The bytes really live in the server's export root.
  EXPECT_TRUE(std::filesystem::exists(root_ + "/hello.txt"));
}

TEST_F(AdapterTest, PathOutsideNamespaceRejected) {
  auto r = adapter_->stat("/etc/passwd");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ENOENT);
}

TEST_F(AdapterTest, MountlistMapsLogicalNames) {
  ASSERT_TRUE(adapter_
                  ->load_mountlist("/usr/local " + cfs_path("/software") +
                                   "\n")
                  .ok());
  ASSERT_TRUE(adapter_->mkdir(cfs_path("/software")).ok());
  ASSERT_TRUE(adapter_->write_file("/usr/local/app.cfg", "cfg").ok());
  EXPECT_EQ(adapter_->read_file(cfs_path("/software/app.cfg")).value(), "cfg");
}

TEST_F(AdapterTest, ExplicitMountOfLocalFs) {
  std::string scratch = root_ + "_scratch";
  std::filesystem::create_directories(scratch);
  fs::LocalFs local(scratch);
  adapter_->mount("/scratch", &local);
  ASSERT_TRUE(adapter_->write_file("/scratch/x", "local bytes").ok());
  EXPECT_EQ(adapter_->read_file("/scratch/x").value(), "local bytes");
  std::filesystem::remove_all(scratch);
}

TEST_F(AdapterTest, SequentialReadWriteTracksOffset) {
  auto fd = adapter_->open(cfs_path("/seq"), O_WRONLY | O_CREAT);
  ASSERT_TRUE(fd.ok()) << fd.error().to_string();
  EXPECT_TRUE(adapter_->write(fd.value(), "hello ", 6).ok());
  EXPECT_TRUE(adapter_->write(fd.value(), "world", 5).ok());
  ASSERT_TRUE(adapter_->close(fd.value()).ok());

  auto rfd = adapter_->open(cfs_path("/seq"), O_RDONLY);
  ASSERT_TRUE(rfd.ok());
  char buf[6];
  EXPECT_EQ(adapter_->read(rfd.value(), buf, 6).value(), 6u);
  EXPECT_EQ(std::string(buf, 6), "hello ");
  EXPECT_EQ(adapter_->read(rfd.value(), buf, 5).value(), 5u);
  EXPECT_EQ(std::string(buf, 5), "world");
  // EOF.
  EXPECT_EQ(adapter_->read(rfd.value(), buf, 6).value(), 0u);
  ASSERT_TRUE(adapter_->close(rfd.value()).ok());
}

TEST_F(AdapterTest, LseekSetCurEnd) {
  ASSERT_TRUE(adapter_->write_file(cfs_path("/seek"), "0123456789").ok());
  auto fd = adapter_->open(cfs_path("/seek"), O_RDONLY);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(adapter_->lseek(fd.value(), 4, SEEK_SET).value(), 4);
  char c;
  ASSERT_TRUE(adapter_->read(fd.value(), &c, 1).ok());
  EXPECT_EQ(c, '4');
  EXPECT_EQ(adapter_->lseek(fd.value(), 2, SEEK_CUR).value(), 7);
  EXPECT_EQ(adapter_->lseek(fd.value(), -1, SEEK_END).value(), 9);
  ASSERT_TRUE(adapter_->read(fd.value(), &c, 1).ok());
  EXPECT_EQ(c, '9');
  EXPECT_FALSE(adapter_->lseek(fd.value(), -100, SEEK_SET).ok());
  ASSERT_TRUE(adapter_->close(fd.value()).ok());
}

TEST_F(AdapterTest, AppendModeWritesAtEnd) {
  ASSERT_TRUE(adapter_->write_file(cfs_path("/log"), "line1\n").ok());
  auto fd = adapter_->open(cfs_path("/log"), O_WRONLY | O_APPEND);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(adapter_->write(fd.value(), "line2\n", 6).ok());
  ASSERT_TRUE(adapter_->close(fd.value()).ok());
  EXPECT_EQ(adapter_->read_file(cfs_path("/log")).value(), "line1\nline2\n");
}

TEST_F(AdapterTest, PreadPwriteDoNotMoveOffset) {
  ASSERT_TRUE(adapter_->write_file(cfs_path("/p"), "abcdef").ok());
  auto fd = adapter_->open(cfs_path("/p"), O_RDWR);
  ASSERT_TRUE(fd.ok());
  char buf[2];
  EXPECT_EQ(adapter_->pread(fd.value(), buf, 2, 4).value(), 2u);
  EXPECT_EQ(std::string(buf, 2), "ef");
  // Sequential read still starts at 0.
  EXPECT_EQ(adapter_->read(fd.value(), buf, 2).value(), 2u);
  EXPECT_EQ(std::string(buf, 2), "ab");
  ASSERT_TRUE(adapter_->close(fd.value()).ok());
}

TEST_F(AdapterTest, RenameAcrossAbstractionsIsExdev) {
  std::string scratch = root_ + "_scratch2";
  std::filesystem::create_directories(scratch);
  fs::LocalFs local(scratch);
  adapter_->mount("/scratch", &local);
  ASSERT_TRUE(adapter_->write_file("/scratch/f", "x").ok());
  auto rc = adapter_->rename("/scratch/f", cfs_path("/f"));
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, EXDEV);
  std::filesystem::remove_all(scratch);
}

TEST_F(AdapterTest, MetadataOperationsPassThrough) {
  ASSERT_TRUE(adapter_->mkdir(cfs_path("/dir")).ok());
  ASSERT_TRUE(adapter_->write_file(cfs_path("/dir/a"), "1").ok());
  auto entries = adapter_->readdir(cfs_path("/dir"));
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 1u);
  ASSERT_TRUE(adapter_->rename(cfs_path("/dir/a"), cfs_path("/dir/b")).ok());
  auto info = adapter_->stat(cfs_path("/dir/b"));
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, 1u);
  ASSERT_TRUE(adapter_->truncate(cfs_path("/dir/b"), 0).ok());
  EXPECT_EQ(adapter_->stat(cfs_path("/dir/b")).value().size, 0u);
  ASSERT_TRUE(adapter_->unlink(cfs_path("/dir/b")).ok());
  ASSERT_TRUE(adapter_->rmdir(cfs_path("/dir")).ok());
}

TEST_F(AdapterTest, BadFdIsEbadf) {
  char buf[1];
  EXPECT_EQ(adapter_->read(99, buf, 1).code(), EBADF);
  EXPECT_EQ(adapter_->write(99, buf, 1).code(), EBADF);
  EXPECT_EQ(adapter_->close(99).code(), EBADF);
  EXPECT_EQ(adapter_->lseek(99, 0, SEEK_SET).code(), EBADF);
  EXPECT_EQ(adapter_->fstat(99).code(), EBADF);
}

TEST_F(AdapterTest, FdsAreReleasedOnClose) {
  EXPECT_EQ(adapter_->open_fd_count(), 0u);
  auto fd = adapter_->open(cfs_path("/leak"), O_WRONLY | O_CREAT);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(adapter_->open_fd_count(), 1u);
  ASSERT_TRUE(adapter_->close(fd.value()).ok());
  EXPECT_EQ(adapter_->open_fd_count(), 0u);
}

TEST_F(AdapterTest, SameServerReusesOneConnection) {
  // Two paths on the same server share an auto-mounted CfsFs (and thus one
  // TCP connection), mirroring Parrot's connection management.
  uint64_t before = server_->backend().statfs().ok() ? 0 : 0;  // touch server
  (void)before;
  ASSERT_TRUE(adapter_->write_file(cfs_path("/one"), "1").ok());
  ASSERT_TRUE(adapter_->write_file(cfs_path("/two"), "2").ok());
  // If each op opened a fresh connection, accepted-connection count would
  // exceed 1 (the CfsFs connects lazily, exactly once).
  // We can't reach ServerLoop internals from here, so assert behaviourally:
  // both files are readable and nothing leaked.
  EXPECT_EQ(adapter_->read_file(cfs_path("/one")).value(), "1");
  EXPECT_EQ(adapter_->read_file(cfs_path("/two")).value(), "2");
  EXPECT_EQ(adapter_->open_fd_count(), 0u);
}

}  // namespace
}  // namespace tss::adapter
