#include "sim/engine.h"

namespace tss::sim {

void Engine::schedule_at(Nanos at, std::function<void()> fn) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

Nanos Engine::run() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.fn();
  }
  return now_;
}

void Engine::run_until(Nanos deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.fn();
  }
  if (now_ < deadline) now_ = deadline;
}

namespace {

// Self-destroying wrapper coroutine used by spawn(). Because final_suspend
// never suspends, the frame frees itself when the wrapped task completes;
// the promise constructor receives the coroutine's arguments, which is how
// it learns which engine's task counter to decrement.
struct Detached {
  struct promise_type {
    Engine* engine;
    promise_type(Engine& e, Task<void>&) : engine(&e) {}
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() { return {}; }
    std::suspend_never final_suspend() noexcept {
      engine->finish_task_internal();
      return {};
    }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

Detached run_detached(Engine& engine, Task<void> task) {
  (void)engine;
  co_await std::move(task);
}

}  // namespace

void spawn(Engine& engine, Task<void> task) {
  engine.start_task_internal();
  run_detached(engine, std::move(task));
}

}  // namespace tss::sim
