// Buffered line+blob framing over a TCP socket.
//
// All TSS wire protocols (Chirp, catalog, NFS baseline, db) are line-oriented
// ASCII control with length-delimited binary payloads, in the style of the
// real Chirp protocol. Framing is factored into FrameDecoder — an
// incremental, non-blocking decoder (feed bytes, ask for a maybe-complete
// frame) — so the same decode logic serves both execution modes of the
// serving stack: the blocking LineStream used by clients and
// thread-per-connection servers, and the epoll reactor (net::EventLoop),
// which feeds the decoder from readiness events and never blocks.
//
// LineStream provides buffered reads (so a line and the blob following it
// cost one recv) and buffered writes with explicit flush (so a request line
// plus its payload cost one send — important for the latency measurements in
// Figures 4 and 5).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "net/socket.h"
#include "util/result.h"

namespace tss::net {

// Incremental frame decoder: an append-only byte buffer with line and blob
// extraction. feed()/commit() never block and never fail; extraction either
// yields a complete frame or reports that more bytes are needed, which is
// what lets the reactor resume a half-received frame on the next readiness
// event instead of blocking a thread on it.
class FrameDecoder {
 public:
  // Appends bytes to the buffer.
  void feed(const void* data, size_t n);

  // Zero-copy append: writable_span(n) returns space for n bytes at the
  // buffer tail; after writing m <= n bytes into it, commit(m) makes them
  // part of the stream and discards the rest of the span. The pair must be
  // used back-to-back: no other decoder call may intervene.
  char* writable_span(size_t n);
  void commit(size_t n);

  // If a complete '\n'-terminated line is buffered, consumes it and returns
  // it (terminator stripped; a trailing '\r' too, for telnet-friendliness).
  // nullopt = need more bytes. Fails with EMSGSIZE once more than max_len
  // bytes are buffered without a terminator.
  Result<std::optional<std::string>> try_line(size_t max_len = 64 * 1024);

  // Unconsumed byte count.
  size_t available() const { return buf_.size() - pos_; }
  bool empty() const { return available() == 0; }

  // Consumes up to `size` buffered bytes into `out`; returns bytes taken.
  size_t read(void* out, size_t size);

  // Consumes up to `size` buffered bytes without copying; returns bytes
  // dropped. Used to drain an unwanted payload.
  size_t discard(size_t size);

 private:
  void maybe_compact();

  std::string buf_;
  size_t pos_ = 0;        // consumed prefix
  size_t scan_ = 0;       // bytes already scanned for '\n' (avoids re-scans)
  size_t span_base_ = 0;  // logical size at the last writable_span()
};

// Transport-level fault injection (tests only). A hook is consulted before
// each socket read ("read") and each buffered send ("flush") and returns the
// action to take: proceed, fail with an errno without touching the socket,
// sever the connection (close, then fail — the peer sees EOF mid-stream), or
// truncate (send only half of the pending frame, then sever — the peer reads
// a torn frame). Severing mid-RPC is how the recovery machinery of CfsFs and
// the teardown path of chirp::Server are exercised for real.
//
// Payload corruption points: the hook is also consulted at "read_blob"
// (after a complete payload has been assembled) and "write_blob" (as payload
// bytes enter the output buffer). kCorrupt there flips one bit of the blob —
// a deterministic stand-in for a mangled frame — and the header lines stay
// intact, so the peer's checksum machinery (not its parser) must catch it.
// kCorrupt at any other point, and kError/kSever/kTruncate at "write_blob",
// are ignored.
struct TransportFault {
  enum class Action { kNone, kError, kSever, kTruncate, kCorrupt };
  Action action = Action::kNone;
  int error_code = ECONNRESET;
  size_t corrupt_at = 0;  // byte index to flip, taken modulo the blob size

  static TransportFault none() { return TransportFault{}; }
  static TransportFault error(int code) {
    return TransportFault{Action::kError, code};
  }
  static TransportFault sever() {
    return TransportFault{Action::kSever, ECONNRESET};
  }
  static TransportFault truncate() {
    return TransportFault{Action::kTruncate, ECONNRESET};
  }
  static TransportFault corrupt(size_t at) {
    TransportFault f;
    f.action = Action::kCorrupt;
    f.error_code = 0;
    f.corrupt_at = at;
    return f;
  }
};

class LineStream {
 public:
  using FaultHook = std::function<TransportFault(std::string_view point)>;
  // Default per-operation timeout 30s; override per call site as needed.
  explicit LineStream(TcpSocket sock, Nanos timeout = 30 * kSecond);

  LineStream(LineStream&&) = default;
  LineStream& operator=(LineStream&&) = default;

  void set_timeout(Nanos timeout) { timeout_ = timeout; }
  Nanos timeout() const { return timeout_; }

  // Reads one '\n'-terminated line (terminator stripped; a trailing '\r' is
  // also stripped for telnet-friendliness). Fails with EMSGSIZE if the line
  // exceeds max_len, ECONNRESET on EOF mid-line, and returns an empty
  // optional-style EPIPE error on clean EOF at a line boundary.
  Result<std::string> read_line(size_t max_len = 64 * 1024);

  // Reads exactly `size` raw bytes (payload following a header line).
  Result<void> read_blob(void* data, size_t size);

  // Appends a line (terminator added) to the output buffer.
  void write_line(std::string_view line);

  // Appends raw payload bytes to the output buffer.
  void write_blob(const void* data, size_t size);

  // Sends everything buffered.
  Result<void> flush();

  // Sends everything buffered, then `size` payload bytes, then the raw
  // `tail` bytes (e.g. a pre-encoded checksum trailer line), in one scatter-
  // gather write: header, blob, and trailer leave in a single syscall with
  // no copy of the payload into the write buffer. Equivalent to write_blob +
  // append tail + flush (and falls back to exactly that when a fault hook is
  // installed, so the "write_blob"/"flush" injection points keep working).
  Result<void> send_with_blob(const void* data, size_t size,
                              std::string_view tail = {});

  // Convenience: write line, flush, used by simple request/response turns.
  Result<void> send_line(std::string_view line);

  bool valid() const { return sock_.valid(); }
  void close() { sock_.close(); }
  TcpSocket& socket() { return sock_; }

  // Installs (or clears, with nullptr) the fault hook. Consulted at points
  // "read", "flush", "read_blob", and "write_blob"; see TransportFault above.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  Result<void> fill();
  // Applies the hook's verdict for `point`; error means the op must abort.
  Result<void> consult_fault_hook(std::string_view point);

  TcpSocket sock_;
  Nanos timeout_;
  FrameDecoder decoder_;
  std::string wbuf_;
  FaultHook fault_hook_;
};

}  // namespace tss::net
