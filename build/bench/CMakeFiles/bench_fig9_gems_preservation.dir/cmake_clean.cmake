file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_gems_preservation.dir/bench_fig9_gems_preservation.cc.o"
  "CMakeFiles/bench_fig9_gems_preservation.dir/bench_fig9_gems_preservation.cc.o.d"
  "bench_fig9_gems_preservation"
  "bench_fig9_gems_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_gems_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
