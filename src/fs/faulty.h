// FaultyFs: deterministic fault injection over any FileSystem.
//
// The paper's central robustness claim (§6) is that TSS abstractions survive
// the failures of the raw servers beneath them. FaultyFs is how we test that
// claim without real broken hardware: a decorator that consults a seeded
// FaultSchedule before delegating each operation, so any layer of the stack
// (a DistFs data server, a ReplicatedFs member, a DPFS metadata tree) can be
// made to fail the Nth op with a chosen errno, fail once and then recover,
// fail every op on a path pattern ("server death"), or answer slowly.
//
// Schedules are seeded and consulted in operation order, so a chaos run with
// a fixed seed replays the exact same fault sequence — failures become
// regression tests instead of flakes.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fs/filesystem.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/rand.h"

namespace tss::fs {

// One rule in a fault schedule. A rule matches an operation by name and path
// and fires according to its trigger; a firing rule injects `latency` (via
// the schedule's Clock) and, if `error_code` is nonzero, fails the operation
// with that errno instead of delegating.
//
// Operation names are the primitive FileSystem/File verbs: open, stat,
// unlink, rename, mkdir, rmdir, truncate, readdir, pread, pwrite, fsync,
// fstat, close. (read_file/write_file decompose into open/pread/pwrite, so
// rules on the primitives cover them.)
struct FaultRule {
  // Silent data corruption, as a bad disk or controller would produce it:
  // the operation *succeeds*, but the bytes are wrong. kBitFlip flips one
  // deterministically-chosen bit of the payload; kTruncate delivers (pread)
  // or persists (pwrite) only the first half of it while reporting full
  // success. Only pread/pwrite honor corruption; on other ops it is inert.
  enum class Corrupt { kNone, kBitFlip, kTruncate };

  std::string op_pattern = "*";    // wildcard over the operation name
  std::string path_pattern = "*";  // wildcard over the sanitized path
  uint64_t skip = 0;               // let the first `skip` matching ops pass
  int64_t count = -1;              // fire at most this many times (-1 = forever)
  double probability = 1.0;        // chance an eligible op fires (seeded Rng)
  int error_code = EIO;            // injected errno; 0 = latency-only rule
  Nanos latency = 0;               // injected sleep before the verdict
  Corrupt corrupt = Corrupt::kNone;  // payload mutation instead of an errno
};

// A seeded, shareable fault schedule. Thread-safe: several FaultyFs
// decorators may consult one schedule so a single seed drives a whole stack.
class FaultSchedule {
 public:
  // `metrics` mirrors ops_seen/faults_injected into the registry counters
  // fault.ops_seen / fault.injected so chaos tests can assert that N
  // scheduled faults produced exactly N registry triggers. Null = the
  // process-wide registry.
  explicit FaultSchedule(uint64_t seed = 1, Clock* clock = nullptr,
                         obs::Registry* metrics = nullptr);

  void add(FaultRule rule);

  // Convenience builders for the common shapes.
  // Fails the nth (1-based) matching op, once.
  void fail_nth(uint64_t nth, int error_code, std::string op_pattern = "*",
                std::string path_pattern = "*");
  // Fails the next matching op, then recovers.
  void fail_once(int error_code, std::string op_pattern = "*",
                 std::string path_pattern = "*");
  // Fails every matching op until clear() — a dead server or lost path.
  void fail_always(int error_code, std::string op_pattern = "*",
                   std::string path_pattern = "*");
  // Fails each matching op with probability p.
  void fail_with_probability(double p, int error_code,
                             std::string op_pattern = "*",
                             std::string path_pattern = "*");
  // Delays every matching op without failing it.
  void add_latency(Nanos latency, std::string op_pattern = "*",
                   std::string path_pattern = "*");
  // Silently flips one bit of every matching payload (default: reads).
  void corrupt_bit_flip(std::string op_pattern = "pread",
                        std::string path_pattern = "*");
  // Silently delivers/persists only half of every matching payload.
  void corrupt_truncate(std::string op_pattern = "pread",
                        std::string path_pattern = "*");

  // Forgets all rules (the injected failure is repaired); counters survive.
  void clear();

  // Full verdict for a data-carrying op: an errno to inject (0 = proceed)
  // plus any payload corruption to apply. `corrupt_seed` is derived from the
  // schedule's op counter — deterministic for a fixed seed and op order, and
  // it does not consume the shared Rng stream, so adding a corruption rule
  // never perturbs the firing pattern of probabilistic error rules.
  struct IoVerdict {
    int error = 0;
    FaultRule::Corrupt corrupt = FaultRule::Corrupt::kNone;
    uint64_t corrupt_seed = 0;
  };
  IoVerdict decide_io(std::string_view op, const std::string& path);

  // Consulted once per operation by FaultyFs. Applies latency of every
  // firing rule, then returns the first firing error code (0 = proceed).
  int decide(std::string_view op, const std::string& path);

  uint64_t ops_seen() const;
  uint64_t faults_injected() const;

 private:
  struct ActiveRule {
    FaultRule rule;
    uint64_t matched = 0;  // eligible ops seen by this rule
    uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  Clock* clock_;
  Rng rng_;
  obs::Counter* m_ops_ = nullptr;
  obs::Counter* m_injected_ = nullptr;
  std::vector<ActiveRule> rules_;
  uint64_t ops_ = 0;
  uint64_t faults_ = 0;
};

// The decorator. Borrows the target filesystem and the schedule; both must
// outlive it. Stacks compose naturally: FaultyFs over LocalFs is a flaky
// disk, FaultyFs over CfsFs is a flaky network mount.
class FaultyFs final : public FileSystem {
 public:
  FaultyFs(FileSystem* target, FaultSchedule* schedule);

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  FileSystem& target() { return *target_; }
  FaultSchedule& schedule() { return *schedule_; }

 private:
  friend class FaultyFile;
  // Returns the injected error for `op` on `path`, or ok to proceed.
  Result<void> check(std::string_view op, const std::string& path);

  FileSystem* target_;
  FaultSchedule* schedule_;
};

}  // namespace tss::fs
