#include "obs/metrics.h"

#include <bit>

#include "util/strings.h"

namespace tss::obs {

size_t Histogram::bucket_index(uint64_t v) {
  if (v < kSubBuckets) return static_cast<size_t>(v);
  // 2^t <= v < 2^(t+1), t >= kSubBucketBits. The kSubBucketBits bits after
  // the leading one select the linear sub-bucket within the octave.
  int t = std::bit_width(v) - 1;
  uint64_t sub = (v >> (t - kSubBucketBits)) - kSubBuckets;
  return static_cast<size_t>(
      kSubBuckets + static_cast<uint64_t>(t - kSubBucketBits) * kSubBuckets +
      sub);
}

uint64_t Histogram::bucket_low(size_t index) {
  if (index < kSubBuckets) return index;
  size_t rel = index - kSubBuckets;
  int t = static_cast<int>(rel / kSubBuckets) + kSubBucketBits;
  uint64_t sub = rel % kSubBuckets;
  return (1ull << t) + (sub << (t - kSubBucketBits));
}

void Histogram::record(int64_t signed_v) {
  // Clock skew or a razor-thin interval can produce a negative duration;
  // attribute it to the zero bucket rather than wrapping to 2^64.
  uint64_t v = signed_v > 0 ? static_cast<uint64_t>(signed_v) : 0;
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(kNumBuckets);
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; i++) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    total += s.buckets[i];
  }
  // Derive count from the buckets themselves so quantile() walks a
  // self-consistent distribution even when writers race the snapshot.
  s.count = total;
  s.sum = sum_.load(std::memory_order_relaxed);
  uint64_t lo = min_.load(std::memory_order_relaxed);
  s.min = total > 0 && lo != UINT64_MAX ? lo : 0;
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

uint64_t Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-th sample, 1-based; walk buckets until it is covered.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); i++) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      // Interpolate linearly within the bucket.
      uint64_t low = bucket_low(i);
      uint64_t high = i + 1 < kNumBuckets ? bucket_low(i + 1) : low + 1;
      uint64_t into = rank - seen - 1;
      double frac = buckets[i] > 1
                        ? static_cast<double>(into) /
                              static_cast<double>(buckets[i] - 1)
                        : 0.0;
      uint64_t v =
          low + static_cast<uint64_t>(frac * static_cast<double>(high - low));
      if (v > max && max > 0) v = max;
      if (min > 0 && v < min) v = min;
      return v;
    }
    seen += buckets[i];
  }
  return max;
}

std::string Span::encode() const {
  return "span " + std::to_string(seq) + " " + op + " " +
         url_encode(subject.empty() ? "-" : subject) + " " +
         std::to_string(bytes) + " " + std::to_string(err) + " " +
         std::to_string(start) + " " + std::to_string(duration);
}

SpanRing::SpanRing(size_t capacity) : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_);
}

void SpanRing::record(Span span) {
  std::lock_guard<std::mutex> lock(mutex_);
  span.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[span.seq % capacity_] = std::move(span);
  }
}

std::vector<Span> SpanRing::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest retained span first. Before the first wrap the ring is in order;
  // after, the slot holding the oldest is next_seq_ % capacity_.
  size_t start = ring_.size() < capacity_ ? 0 : next_seq_ % capacity_;
  for (size_t i = 0; i < ring_.size(); i++) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

uint64_t SpanRing::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

Registry::Registry(size_t span_capacity) : spans_(span_capacity) {}

Registry& Registry::global() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter* Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  counter_storage_.emplace_back();
  Counter* c = &counter_storage_.back();
  counters_.emplace(std::string(name), c);
  return c;
}

Gauge* Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  gauge_storage_.emplace_back();
  Gauge* g = &gauge_storage_.back();
  gauges_.emplace(std::string(name), g);
  return g;
}

Histogram* Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  histogram_storage_.emplace_back();
  Histogram* h = &histogram_storage_.back();
  histograms_.emplace(std::string(name), h);
  return h;
}

void Registry::record_span(std::string_view op, std::string_view subject,
                           uint64_t bytes, int err, Nanos start,
                           Nanos duration) {
  Span span;
  span.op = std::string(op);
  span.subject = std::string(subject);
  span.bytes = bytes;
  span.err = err;
  span.start = start;
  span.duration = duration;
  spans_.record(std::move(span));
}

uint64_t Registry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

Histogram::Snapshot Registry::histogram_snapshot(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return Histogram::Snapshot{};
  Histogram* h = it->second;
  // snapshot() touches only atomics; taking it under the name-map mutex is
  // fine (registration is rare and never blocks on recording).
  return h->snapshot();
}

std::string Registry::render_text() const {
  std::string out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) {
      out += "counter " + name + " " + std::to_string(c->value()) + "\n";
    }
    for (const auto& [name, g] : gauges_) {
      out += "gauge " + name + " " + std::to_string(g->value()) + "\n";
    }
    for (const auto& [name, h] : histograms_) {
      Histogram::Snapshot s = h->snapshot();
      out += "histogram " + name + " count " + std::to_string(s.count) +
             " sum " + std::to_string(s.sum) + " min " +
             std::to_string(s.min) + " max " + std::to_string(s.max) +
             " p50 " + std::to_string(s.quantile(0.50)) + " p95 " +
             std::to_string(s.quantile(0.95)) + " p99 " +
             std::to_string(s.quantile(0.99)) + "\n";
    }
  }
  for (const Span& span : spans_.spans()) {
    out += span.encode() + "\n";
  }
  return out;
}

}  // namespace tss::obs
