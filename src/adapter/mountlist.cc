#include "adapter/mountlist.h"

#include "util/path.h"
#include "util/strings.h"

namespace tss::adapter {

Result<MountList> MountList::parse(std::string_view text) {
  MountList list;
  for (const std::string& raw : split(text, '\n')) {
    std::string_view line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    auto words = split_words(line);
    if (words.size() != 2) {
      return Error(EINVAL, "bad mountlist line: " + std::string(line));
    }
    list.add(words[0], words[1]);
  }
  return list;
}

void MountList::add(const std::string& logical, const std::string& target) {
  entries_.push_back(
      MountEntry{path::sanitize(logical), path::sanitize(target)});
}

std::string MountList::translate(const std::string& p) const {
  std::string canonical = path::sanitize(p);
  const MountEntry* best = nullptr;
  for (const MountEntry& entry : entries_) {
    if (path::is_within(entry.logical, canonical)) {
      if (!best || entry.logical.size() > best->logical.size()) {
        best = &entry;
      }
    }
  }
  if (!best) return canonical;
  std::string residual = canonical.substr(best->logical.size());
  return path::sanitize(best->target + residual);
}

}  // namespace tss::adapter
