// The §10 extension abstractions composed over *live* Chirp servers:
// striping and replication are only interesting if they hold up across the
// wire, where each member is a real connection with real failure modes.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/cfs.h"
#include "fs/replicated.h"
#include "fs/striped.h"

namespace tss::fs {
namespace {

class NetworkExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/netext_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    for (int i = 0; i < 3; i++) {
      std::string root = base_ + "/s" + std::to_string(i);
      std::filesystem::create_directories(root);
      chirp::ServerOptions options;
      options.owner = "unix:testowner";
      options.root_acl =
          acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
      auto auth = std::make_unique<auth::ServerAuth>();
      auth->add(std::make_unique<auth::HostnameServerMethod>());
      servers_.push_back(std::make_unique<chirp::Server>(
          options, std::make_unique<chirp::PosixBackend>(root),
          std::move(auth)));
      ASSERT_TRUE(servers_.back()->start().ok());
      auto credential = std::make_shared<auth::HostnameClientCredential>();
      CfsFs::Options cfs_options;
      cfs_options.retry.max_attempts = 2;
      cfs_options.retry.base_delay = 5 * kMillisecond;
      mounts_.push_back(std::make_unique<CfsFs>(
          fs::chirp_connector(servers_.back()->endpoint(), {credential}),
          cfs_options));
      raw_.push_back(mounts_.back().get());
    }
  }
  void TearDown() override {
    for (auto& s : servers_) s->stop();
    std::filesystem::remove_all(base_);
  }

  std::string base_;
  std::vector<std::unique_ptr<chirp::Server>> servers_;
  std::vector<std::unique_ptr<CfsFs>> mounts_;
  std::vector<FileSystem*> raw_;
  static inline int counter_ = 0;
};

TEST_F(NetworkExtensionsTest, StripedRoundTripOverWire) {
  StripedFs striped(raw_, /*stripe_size=*/4096);
  std::string data(100000, '\0');
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<char>((i * 37) & 0xFF);
  }
  ASSERT_TRUE(striped.write_file("/wide.bin", data).ok());
  EXPECT_EQ(striped.read_file("/wide.bin").value(), data);

  // Each server's export really holds only its column.
  for (int i = 0; i < 3; i++) {
    auto size = std::filesystem::file_size(base_ + "/s" + std::to_string(i) +
                                           "/wide.bin");
    EXPECT_GT(size, 30000u);
    EXPECT_LT(size, 36000u);
  }
}

TEST_F(NetworkExtensionsTest, StripedLosesAMemberLosesTheFile) {
  StripedFs striped(raw_, 4096);
  ASSERT_TRUE(striped.write_file("/f.bin", std::string(50000, 'f')).ok());
  servers_[1]->stop();
  auto data = striped.read_file("/f.bin");
  EXPECT_FALSE(data.ok());  // striping trades fault tolerance for bandwidth
}

TEST_F(NetworkExtensionsTest, ReplicatedSurvivesAMemberOverWire) {
  ReplicatedFs mirrored(raw_);
  ASSERT_TRUE(mirrored.write_file("/safe.bin", "replicated bytes").ok());
  servers_[0]->stop();
  // Read fails over to a surviving server (after the dead mount's retries).
  EXPECT_EQ(mirrored.read_file("/safe.bin").value(), "replicated bytes");
  // Writes keep going too (the dead replica just diverges until repair).
  EXPECT_TRUE(mirrored.write_file("/safe.bin", "updated").ok());
  EXPECT_EQ(mirrored.read_file("/safe.bin").value(), "updated");
}

TEST_F(NetworkExtensionsTest, StripedOverReplicatedOverWire) {
  // RAID-10 shaped: two striped columns, each a mirrored pair... with three
  // servers, compose stripe(server0, mirror(server1, server2)) instead —
  // arbitrary composition is the point.
  ReplicatedFs mirror({raw_[1], raw_[2]});
  StripedFs hybrid({raw_[0], &mirror}, 4096);
  std::string data(40000, 'h');
  ASSERT_TRUE(hybrid.write_file("/hybrid.bin", data).ok());
  EXPECT_EQ(hybrid.read_file("/hybrid.bin").value(), data);
  // Kill one mirror member: the hybrid still reads.
  servers_[2]->stop();
  EXPECT_EQ(hybrid.read_file("/hybrid.bin").value(), data);
}

}  // namespace
}  // namespace tss::fs
