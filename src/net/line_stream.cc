#include "net/line_stream.h"

#include <sys/uio.h>

#include <cstring>

#include "obs/metrics.h"

namespace tss::net {

namespace {
constexpr size_t kReadChunk = 64 * 1024;

// Transport-level injections are visible in the same registry as the
// fs-level FaultSchedule counters, so a chaos run can account for every
// fault it provoked regardless of which layer injected it.
obs::Counter& net_faults_injected() {
  static obs::Counter* counter =
      obs::Registry::global().counter("net.fault_injected");
  return *counter;
}
}

// --- FrameDecoder -----------------------------------------------------------

void FrameDecoder::maybe_compact() {
  // Compact the consumed prefix occasionally so the buffer doesn't grow.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
    scan_ = 0;
  } else if (pos_ > kReadChunk) {
    buf_.erase(0, pos_);
    // scan_ may lag pos_ (blob reads advance pos_ without scanning); clamp
    // instead of underflowing, or the next try_line scans from beyond the
    // buffer forever.
    scan_ = scan_ > pos_ ? scan_ - pos_ : 0;
    pos_ = 0;
  }
}

void FrameDecoder::feed(const void* data, size_t n) {
  maybe_compact();
  buf_.append(static_cast<const char*>(data), n);
}

char* FrameDecoder::writable_span(size_t n) {
  maybe_compact();
  span_base_ = buf_.size();
  buf_.resize(span_base_ + n);
  return buf_.data() + span_base_;
}

void FrameDecoder::commit(size_t n) {
  // Drop the unwritten tail of the span handed out by writable_span().
  buf_.resize(span_base_ + n);
}

Result<std::optional<std::string>> FrameDecoder::try_line(size_t max_len) {
  if (scan_ < pos_) scan_ = pos_;
  size_t nl = buf_.find('\n', scan_);
  if (nl == std::string::npos) {
    scan_ = buf_.size();
    if (available() > max_len) {
      return Error(EMSGSIZE, "protocol line too long");
    }
    return std::optional<std::string>();
  }
  size_t len = nl - pos_;
  if (len > max_len) return Error(EMSGSIZE, "protocol line too long");
  std::string line = buf_.substr(pos_, len);
  pos_ = nl + 1;
  scan_ = pos_;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return std::optional<std::string>(std::move(line));
}

size_t FrameDecoder::read(void* out, size_t size) {
  size_t take = std::min(size, available());
  std::memcpy(out, buf_.data() + pos_, take);
  pos_ += take;
  maybe_compact();
  return take;
}

size_t FrameDecoder::discard(size_t size) {
  size_t take = std::min(size, available());
  pos_ += take;
  maybe_compact();
  return take;
}

// --- LineStream -------------------------------------------------------------

LineStream::LineStream(TcpSocket sock, Nanos timeout)
    : sock_(std::move(sock)), timeout_(timeout) {}

Result<void> LineStream::consult_fault_hook(std::string_view point) {
  if (!fault_hook_) return Result<void>::success();
  TransportFault fault = fault_hook_(point);
  if (fault.action != TransportFault::Action::kNone) {
    net_faults_injected().add();
  }
  switch (fault.action) {
    case TransportFault::Action::kNone:
    case TransportFault::Action::kCorrupt:  // only meaningful at blob points
      return Result<void>::success();
    case TransportFault::Action::kError:
      return Error(fault.error_code,
                   "injected transport fault at " + std::string(point));
    case TransportFault::Action::kSever:
      wbuf_.clear();
      sock_.close();
      return Error(fault.error_code,
                   "injected disconnect at " + std::string(point));
    case TransportFault::Action::kTruncate: {
      // Send a torn frame: half of whatever is pending, then sever. The
      // peer observes a frame shorter than its header promised.
      if (!wbuf_.empty()) {
        (void)sock_.write_all(wbuf_.data(), wbuf_.size() / 2, timeout_);
        wbuf_.clear();
      }
      sock_.close();
      return Error(fault.error_code,
                   "injected frame truncation at " + std::string(point));
    }
  }
  return Result<void>::success();
}

Result<void> LineStream::fill() {
  TSS_RETURN_IF_ERROR(consult_fault_hook("read"));
  char* span = decoder_.writable_span(kReadChunk);
  auto n = sock_.read_some(span, kReadChunk, timeout_);
  if (!n.ok()) return std::move(n).take_error();
  decoder_.commit(n.value());
  if (n.value() == 0) return Error(EPIPE, "connection closed");
  return Result<void>::success();
}

Result<std::string> LineStream::read_line(size_t max_len) {
  while (true) {
    TSS_ASSIGN_OR_RETURN(std::optional<std::string> line,
                         decoder_.try_line(max_len));
    if (line) return std::move(*line);
    auto rc = fill();
    if (!rc.ok()) {
      // EOF exactly at a line boundary is a clean close.
      if (rc.error().code == EPIPE && decoder_.empty()) {
        return Error(EPIPE, "connection closed");
      }
      if (rc.error().code == EPIPE) {
        return Error(ECONNRESET, "EOF mid-line");
      }
      return std::move(rc).take_error();
    }
  }
}

Result<void> LineStream::read_blob(void* data, size_t size) {
  char* out = static_cast<char*>(data);
  // Drain buffered bytes first, then read the rest straight off the socket.
  size_t copied = decoder_.read(out, size);
  if (copied < size) {
    TSS_RETURN_IF_ERROR(
        sock_.read_exact(out + copied, size - copied, timeout_));
  }
  if (fault_hook_ && size > 0) {
    TransportFault fault = fault_hook_("read_blob");
    if (fault.action == TransportFault::Action::kCorrupt) {
      // Flip one bit of the received payload, as a mangled frame would.
      out[fault.corrupt_at % size] ^= 0x01;
      net_faults_injected().add();
    }
  }
  return Result<void>::success();
}

void LineStream::write_line(std::string_view line) {
  wbuf_.append(line);
  wbuf_.push_back('\n');
}

void LineStream::write_blob(const void* data, size_t size) {
  size_t base = wbuf_.size();
  wbuf_.append(static_cast<const char*>(data), size);
  if (fault_hook_ && size > 0) {
    TransportFault fault = fault_hook_("write_blob");
    if (fault.action == TransportFault::Action::kCorrupt) {
      // Corrupt the buffered copy only; the caller's bytes (and any digest
      // it computed over them) stay intact, so the peer sees a mismatch.
      wbuf_[base + fault.corrupt_at % size] ^= 0x01;
      net_faults_injected().add();
    }
  }
}

Result<void> LineStream::flush() {
  if (wbuf_.empty()) return Result<void>::success();
  TSS_RETURN_IF_ERROR(consult_fault_hook("flush"));
  auto rc = sock_.write_all(wbuf_.data(), wbuf_.size(), timeout_);
  wbuf_.clear();
  return rc;
}

Result<void> LineStream::send_with_blob(const void* data, size_t size,
                                        std::string_view tail) {
  if (fault_hook_) {
    // The corruption/truncation points need the payload in the buffer.
    if (size > 0) write_blob(data, size);
    wbuf_.append(tail);
    return flush();
  }
  if (size == 0 && tail.empty()) return flush();
  iovec iov[3];
  int cnt = 0;
  if (!wbuf_.empty()) {
    iov[cnt].iov_base = wbuf_.data();
    iov[cnt].iov_len = wbuf_.size();
    ++cnt;
  }
  if (size > 0) {
    iov[cnt].iov_base = const_cast<void*>(data);
    iov[cnt].iov_len = size;
    ++cnt;
  }
  if (!tail.empty()) {
    iov[cnt].iov_base = const_cast<char*>(tail.data());
    iov[cnt].iov_len = tail.size();
    ++cnt;
  }
  auto rc = sock_.writev_all(iov, cnt, timeout_);
  wbuf_.clear();
  return rc;
}

Result<void> LineStream::send_line(std::string_view line) {
  write_line(line);
  return flush();
}

}  // namespace tss::net
