// CfsFs: the paper's *central filesystem* (CFS) abstraction.
//
// "The user simply accesses files and directories on a single file server
// without translation. ... CFS is roughly analogous to NFS, except that it
// provides grid security and Unix-like consistency by dispensing with
// buffering and caching." (§5)
//
// No client-side caching of any kind: every operation is one or more Chirp
// RPCs issued in order (the Direct Access principle of §3).
//
// Recovery semantics follow §6 exactly: on a lost connection the filesystem
// reconnects with exponentially increasing delay (bounded by the policy's
// retry limit); open files are transparently re-opened and their inode
// numbers verified with stat — a changed inode means the file was renamed or
// deleted behind our back, and the caller receives a "stale file handle"
// error (ESTALE) as in NFS.
//
// The O_SYNC pass-through switch of §6 is the `sync_writes` option: when
// set, the sync flag is appended to every open.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "chirp/client.h"
#include "fs/filesystem.h"
#include "obs/metrics.h"
#include "util/backoff.h"
#include "util/clock.h"
#include "util/rand.h"

namespace tss::fs {

// The reconnect policy now lives in util/backoff.h so the chirp::ClientPool
// dialer shares it; the fs:: spelling remains for existing callers.
using tss::RetryPolicy;

class CfsFs final : public FileSystem {
 public:
  // Connects *and authenticates*; called initially and on every reconnect.
  using ConnectFn = std::function<Result<chirp::Client>()>;

  struct Options {
    RetryPolicy retry;
    bool sync_writes = false;  // §6: transparently append O_SYNC to opens
    // Seed for the backoff-jitter Rng. 0 derives a per-instance seed (each
    // client jitters differently); tests pass a fixed nonzero seed for
    // reproducible schedules.
    uint64_t jitter_seed = 0;
    // Recovery metrics (reconnect attempts, backoff sleeps, transport
    // errors, stale handles). Null = the process-wide registry; tests inject
    // their own for exact assertions against a deterministic schedule.
    obs::Registry* metrics = nullptr;
  };

  CfsFs(ConnectFn connect, Options options, Clock* clock = nullptr);
  CfsFs(ConnectFn connect) : CfsFs(std::move(connect), Options{}) {}
  ~CfsFs() override;

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  // Streaming overrides: one getfile/putfile RPC instead of a pread loop.
  Result<std::string> read_file(const std::string& path) override;
  Result<void> write_file(const std::string& path, std::string_view data,
                          uint32_t mode) override;
  using FileSystem::write_file;

  // Management passthroughs.
  Result<std::string> getacl(const std::string& path);
  Result<void> setacl(const std::string& path, const std::string& subject,
                      const std::string& rights);
  Result<std::string> whoami();
  Result<std::pair<uint64_t, uint64_t>> statfs();

  // Observability for tests and the experiments.
  uint64_t reconnect_count() const { return reconnects_; }
  bool connected();

 private:
  friend class CfsFile;

  struct OpenState {
    std::string path;
    OpenFlags reopen_flags;  // original flags minus create/truncate/exclusive
    uint32_t mode = 0644;
    int64_t remote_fd = -1;
    uint64_t inode = 0;
    bool stale = false;
  };

  // Runs `op` against a live client, transparently reconnecting (and
  // re-opening files) on transport errors. `op` may be retried; it must be
  // idempotent or the caller must accept at-least-once semantics (standard
  // for stateless-protocol recovery, and why Chirp I/O uses explicit
  // offsets).
  template <typename T>
  Result<T> with_client(const std::function<Result<T>(chirp::Client&)>& op);

  Result<void> ensure_connected_locked();
  // Re-establishes the connection with exponential backoff and re-opens
  // every registered file, marking inode mismatches stale.
  Result<void> reconnect_locked();
  static bool is_transport_error(int code);

  // Applies the policy's jitter to one backoff delay.
  Nanos jittered_locked(Nanos delay);

  ConnectFn connect_;
  Options options_;
  Clock* clock_;
  Rng jitter_rng_;
  // Cached recovery-metric handles (see Options::metrics).
  obs::Counter* m_reconnect_attempts_ = nullptr;
  obs::Counter* m_backoff_sleeps_ = nullptr;
  obs::Counter* m_reconnects_ = nullptr;
  obs::Counter* m_transport_errors_ = nullptr;
  obs::Counter* m_stale_handles_ = nullptr;
  std::mutex mutex_;
  std::optional<chirp::Client> client_;
  std::map<uint64_t, OpenState*> open_files_;
  uint64_t next_file_id_ = 1;
  uint64_t reconnects_ = 0;
};

// Convenience ConnectFn for the common case: connect to `server` and
// authenticate with each credential in order.
CfsFs::ConnectFn chirp_connector(
    net::Endpoint server,
    std::vector<std::shared_ptr<auth::ClientCredential>> credentials,
    Nanos timeout = 30 * kSecond);

// Full-options variant. When `client_options.cooperative` is set and no
// redirect_dialer is supplied, one is synthesized that dials sibling caches
// with the same credentials (cooperative off on the peer leg, so deflections
// cannot chain).
CfsFs::ConnectFn chirp_connector(
    net::Endpoint server,
    std::vector<std::shared_ptr<auth::ClientCredential>> credentials,
    chirp::Client::Options client_options);

}  // namespace tss::fs
