// Figure 8 — "DSFS Scalability: Disk-Bound".
//
// Paper setup: 1280 files of 10 MB (12 800 MB) in a DSFS with 1-8 servers;
// no configuration can cache the dataset. Expected shape: a single server
// sustains ~10 MB/s (raw disk streaming rate); throughput increases roughly
// linearly with the number of servers.
#include "bench/common.h"

int main() {
  using namespace tss::bench;
  print_header(
      "Figure 8: DSFS scalability, disk-bound (1280 x 10 MB, simulated "
      "cluster)",
      "16 clients read random whole files; dataset >> aggregate cache.\n"
      "Paper shape: ~10 MB/s per server, linear scaling with servers.");

  print_row({"servers", "MB/s", "sim seconds", "cache hit %"});
  for (int servers = 1; servers <= 8; servers++) {
    DsfsScalingParams params;
    params.num_servers = servers;
    params.num_files = 1280;
    params.file_bytes = 10 << 20;
    params.reads_per_client = 12;
    DsfsScalingResult r = run_dsfs_scaling(params);
    double hit_pct =
        100.0 * static_cast<double>(r.cache_hits) /
        static_cast<double>(std::max<uint64_t>(1, r.cache_hits + r.cache_misses));
    print_row({std::to_string(servers), fmt_double(r.mb_per_sec),
               fmt_double(r.seconds, 2), fmt_double(hit_pct)});
  }
  return 0;
}
