// End-to-end tests of the deployment tools: tss_chirp_server,
// tss_catalog_server, and the tss command-line client — the paper's rapid
// deployment story ("runs a single command with no configuration") driven
// exactly the way a user would.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "util/clock.h"
#include "util/strings.h"

namespace tss::tools {
namespace {

// Locates a build binary relative to the test executable
// (build/tests/tools_test -> build/src/tools/<name>).
std::string binary_path(const std::string& name) {
  std::string self = std::filesystem::read_symlink("/proc/self/exe").string();
  return std::filesystem::path(self).parent_path().parent_path() /
         "src/tools" / name;
}

// Runs a command, captures stdout, returns exit code.
int run(const std::string& command, std::string* output = nullptr) {
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (!pipe) return -1;
  std::string captured;
  char buf[4096];
  size_t n;
  while ((n = ::fread(buf, 1, sizeof buf, pipe)) > 0) captured.append(buf, n);
  int status = ::pclose(pipe);
  if (output) *output = captured;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// A child daemon process, killed on destruction.
class Daemon {
 public:
  // Starts `argv` and waits until `ready_marker` appears on its stdout;
  // `port_prefix` extracts "...:<port>" from the banner line.
  Daemon(std::vector<std::string> argv, const std::string& ready_marker) {
    int fds[2];
    if (::pipe(fds) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(fds[1], 1);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> args;
      for (auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
      args.push_back(nullptr);
      ::execv(args[0], args.data());
      _exit(127);
    }
    ::close(fds[1]);
    // Read the banner (blocking until the daemon prints it).
    std::string banner;
    char c;
    while (::read(fds[0], &c, 1) == 1) {
      banner.push_back(c);
      if (banner.find(ready_marker) != std::string::npos && c == '\n') break;
    }
    read_fd_ = fds[0];
    banner_ = banner;
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status;
      ::waitpid(pid_, &status, 0);
    }
    if (read_fd_ >= 0) ::close(read_fd_);
  }

  bool running() const { return pid_ > 0; }
  const std::string& banner() const { return banner_; }

  // Extracts "127.0.0.1:<port>" from the banner.
  std::string endpoint() const {
    size_t pos = banner_.find("127.0.0.1:");
    if (pos == std::string::npos) return "";
    size_t end = pos + 10;
    while (end < banner_.size() && isdigit((unsigned char)banner_[end])) end++;
    return banner_.substr(pos, end - pos);
  }

 private:
  pid_t pid_ = -1;
  int read_fd_ = -1;
  std::string banner_;
};

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/tools_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    // Owner-everything + visitor reservations; unix auth makes this test's
    // user the effective owner through the ACL below.
    acl_ = "unix:* rwldav(rwlda)\n";
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::string acl_;
  static inline int counter_ = 0;
};

TEST_F(ToolsTest, SingleCommandDeployAndFullClientWorkflow) {
  Daemon server({binary_path("tss_chirp_server"), "--root", root_, "--acl",
                 acl_},
                "exporting");
  ASSERT_TRUE(server.running());
  std::string endpoint = server.endpoint();
  ASSERT_FALSE(endpoint.empty()) << server.banner();
  std::string tss = binary_path("tss");
  std::string url = "chirp://" + endpoint;

  // whoami: the unix challenge-response picked us up.
  std::string out;
  ASSERT_EQ(run(tss + " whoami " + url + "/", &out), 0) << out;
  EXPECT_NE(out.find("unix:"), std::string::npos);

  // put / ls / cat / stat round trip.
  std::string local = root_ + "-upload.txt";
  {
    std::ofstream f(local);
    f << "deployed with one command\n";
  }
  ASSERT_EQ(run(tss + " mkdir " + url + "/docs", &out), 0) << out;
  ASSERT_EQ(run(tss + " put " + local + " " + url + "/docs/readme.txt", &out),
            0)
      << out;
  ASSERT_EQ(run(tss + " ls " + url + "/docs", &out), 0) << out;
  EXPECT_NE(out.find("readme.txt"), std::string::npos);
  ASSERT_EQ(run(tss + " cat " + url + "/docs/readme.txt", &out), 0) << out;
  EXPECT_EQ(out, "deployed with one command\n");
  ASSERT_EQ(run(tss + " stat " + url + "/docs/readme.txt", &out), 0) << out;
  EXPECT_NE(out.find("26 bytes"), std::string::npos);

  // get downloads identical content.
  std::string downloaded = root_ + "-download.txt";
  ASSERT_EQ(
      run(tss + " get " + url + "/docs/readme.txt " + downloaded, &out), 0)
      << out;
  std::ifstream check(downloaded);
  std::stringstream buffer;
  buffer << check.rdbuf();
  EXPECT_EQ(buffer.str(), "deployed with one command\n");

  // ACL management from the command line.
  ASSERT_EQ(run(tss + " setacl " + url + "/docs hostname:*.nd.edu rl", &out),
            0)
      << out;
  ASSERT_EQ(run(tss + " getacl " + url + "/docs", &out), 0) << out;
  EXPECT_NE(out.find("hostname:*.nd.edu rl"), std::string::npos);

  // mv / rm / rmdir / df.
  ASSERT_EQ(run(tss + " mv " + url + "/docs/readme.txt /docs/r2.txt", &out),
            0)
      << out;
  ASSERT_EQ(run(tss + " rm " + url + "/docs/r2.txt", &out), 0) << out;
  ASSERT_EQ(run(tss + " rmdir " + url + "/docs", &out), 0) << out;
  ASSERT_EQ(run(tss + " df " + url + "/", &out), 0) << out;
  EXPECT_NE(out.find("total"), std::string::npos);

  ::unlink(local.c_str());
  ::unlink(downloaded.c_str());
}

TEST_F(ToolsTest, ServerReportsToCatalogAndClientDiscoversIt) {
  Daemon catalog({binary_path("tss_catalog_server"), "--timeout", "60"},
                 "listening");
  ASSERT_TRUE(catalog.running());
  std::string catalog_endpoint = catalog.endpoint();
  ASSERT_FALSE(catalog_endpoint.empty());

  Daemon server({binary_path("tss_chirp_server"), "--root", root_, "--acl",
                 acl_, "--catalog", catalog_endpoint, "--report-period", "1",
                 "--name", "tools-test-server"},
                "exporting");
  ASSERT_TRUE(server.running());

  // The reporter pushes immediately on start; poll briefly for the record.
  std::string out;
  std::string tss = binary_path("tss");
  bool found = false;
  for (int i = 0; i < 50 && !found; i++) {
    if (run(tss + " catalog " + catalog_endpoint, &out) == 0 &&
        out.find("tools-test-server") != std::string::npos) {
      found = true;
    } else {
      RealClock::instance().sleep_for(100 * kMillisecond);
    }
  }
  EXPECT_TRUE(found) << out;
}

TEST_F(ToolsTest, ParrotRunsUnmodifiedCommandOnTssPaths) {
  Daemon server({binary_path("tss_chirp_server"), "--root", root_, "--acl",
                 acl_},
                "exporting");
  ASSERT_TRUE(server.running());
  std::string endpoint = server.endpoint();
  ASSERT_FALSE(endpoint.empty());

  // Stage a remote file through the CLI, then read it back with an
  // unmodified cat under tss_parrot.
  std::string local = root_ + "-parrot-src.txt";
  {
    std::ofstream f(local);
    f << "seen through the tracer\n";
  }
  std::string tss = binary_path("tss");
  std::string out;
  ASSERT_EQ(
      run(tss + " put " + local + " chirp://" + endpoint + "/p.txt", &out), 0)
      << out;

  std::string parrot = binary_path("tss_parrot");
  int rc = run(parrot + " --map \"/tss /cfs/" + endpoint +
                   "\" -- cat /tss/p.txt",
               &out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("seen through the tracer"), std::string::npos);

  // Missing remote files surface as the usual cat error.
  rc = run(parrot + " --map \"/tss /cfs/" + endpoint +
               "\" -- cat /tss/ghost.txt",
           &out);
  EXPECT_NE(rc, 0);
  ::unlink(local.c_str());
}

TEST_F(ToolsTest, UsageAndErrorPaths) {
  std::string tss = binary_path("tss");
  std::string out;
  EXPECT_EQ(run(tss, &out), 2);
  EXPECT_NE(out.find("usage"), std::string::npos);
  EXPECT_EQ(run(tss + " ls not-a-url", &out), 1);
  EXPECT_NE(out.find("chirp://"), std::string::npos);
  EXPECT_EQ(run(tss + " cat chirp://127.0.0.1:1/x", &out), 1);  // dead port
  EXPECT_EQ(run(binary_path("tss_chirp_server") + " --no-such-flag x",
                &out),
            2);
}

}  // namespace
}  // namespace tss::tools
