#include "util/path.h"

namespace tss::path {

std::string sanitize(std::string_view raw) {
  std::vector<std::string_view> stack;
  size_t i = 0;
  while (i < raw.size()) {
    while (i < raw.size() && raw[i] == '/') i++;
    size_t start = i;
    while (i < raw.size() && raw[i] != '/') i++;
    std::string_view comp = raw.substr(start, i - start);
    if (comp.empty() || comp == ".") continue;
    if (comp == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;  // ".." at root stays at root: this is the chroot clamp.
    }
    stack.push_back(comp);
  }
  std::string out;
  if (stack.empty()) return "/";
  for (std::string_view comp : stack) {
    out += '/';
    out += comp;
  }
  return out;
}

bool is_canonical(std::string_view s) {
  if (s.empty() || s[0] != '/') return false;
  if (s == "/") return true;
  if (s.back() == '/') return false;
  size_t i = 1;
  while (i < s.size()) {
    size_t start = i;
    while (i < s.size() && s[i] != '/') i++;
    std::string_view comp = s.substr(start, i - start);
    if (comp.empty() || comp == "." || comp == "..") return false;
    if (i < s.size()) i++;  // skip '/'
  }
  return true;
}

std::vector<std::string> components(std::string_view canonical) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < canonical.size()) {
    while (i < canonical.size() && canonical[i] == '/') i++;
    size_t start = i;
    while (i < canonical.size() && canonical[i] != '/') i++;
    if (i > start) out.emplace_back(canonical.substr(start, i - start));
  }
  return out;
}

std::string join(std::string_view canonical_dir, std::string_view suffix) {
  std::string combined(canonical_dir);
  combined += '/';
  combined += suffix;
  return sanitize(combined);
}

std::string dirname(std::string_view canonical) {
  size_t pos = canonical.rfind('/');
  if (pos == std::string_view::npos || pos == 0) return "/";
  return std::string(canonical.substr(0, pos));
}

std::string basename(std::string_view canonical) {
  size_t pos = canonical.rfind('/');
  if (pos == std::string_view::npos) return std::string(canonical);
  return std::string(canonical.substr(pos + 1));
}

bool is_within(std::string_view canonical_dir, std::string_view p) {
  if (canonical_dir == "/") return !p.empty() && p[0] == '/';
  if (p == canonical_dir) return true;
  return p.size() > canonical_dir.size() &&
         p.substr(0, canonical_dir.size()) == canonical_dir &&
         p[canonical_dir.size()] == '/';
}

std::string to_host(std::string_view root, std::string_view canonical) {
  std::string out(root);
  while (!out.empty() && out.back() == '/') out.pop_back();
  if (canonical != "/") out += canonical;
  if (out.empty()) out = "/";
  return out;
}

}  // namespace tss::path
