#include "sim/resources.h"

#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace tss::sim {
namespace {

TEST(RateQueue, SingleReservationTakesBytesOverRate) {
  Engine engine;
  RateQueue queue(engine, 100.0 * 1000 * 1000);  // 100 MB/s
  Nanos done = queue.reserve(0, 100 * 1000 * 1000);
  EXPECT_NEAR(static_cast<double>(done), 1e9, 1e6);  // ~1 second
}

TEST(RateQueue, ConcurrentReservationsSerialize) {
  Engine engine;
  RateQueue queue(engine, 1000);  // 1000 B/s
  Nanos first = queue.reserve(0, 1000);
  Nanos second = queue.reserve(0, 1000);
  EXPECT_EQ(first, kSecond);
  EXPECT_EQ(second, 2 * kSecond);  // waits for the first
}

TEST(RateQueue, EarliestBoundRespected) {
  Engine engine;
  RateQueue queue(engine, 1000);
  Nanos done = queue.reserve(10 * kSecond, 1000);
  EXPECT_EQ(done, 11 * kSecond);
}

TEST(Disk, SequentialSkipsSeek) {
  Engine engine;
  Disk::Config config;
  config.stream_bytes_per_sec = 10.0 * 1000 * 1000;
  config.seek_time = 8 * kMillisecond;
  Disk disk(engine, config);
  Nanos sequential = disk.access(0, 10 * 1000 * 1000, /*sequential=*/true);
  EXPECT_NEAR(static_cast<double>(sequential), 1e9, 1e6);
  // A random access pays the seek on top of queueing behind the first.
  Nanos random = disk.access(0, 1000, /*sequential=*/false);
  EXPECT_GT(random, sequential + 7 * kMillisecond);
}

TEST(BufferCache, MissThenHit) {
  BufferCache cache(1 << 20);  // 16 pages
  auto first = cache.access(1, 0, 64 * 1024);
  EXPECT_EQ(first.miss_bytes, 64u * 1024);
  EXPECT_EQ(first.hit_bytes, 0u);
  auto second = cache.access(1, 0, 64 * 1024);
  EXPECT_EQ(second.hit_bytes, 64u * 1024);
  EXPECT_EQ(second.miss_bytes, 0u);
}

TEST(BufferCache, PartialPageAccountsRequestedBytesOnly) {
  BufferCache cache(1 << 20);
  auto r = cache.access(1, 100, 50);
  EXPECT_EQ(r.miss_bytes, 50u);
  auto again = cache.access(1, 120, 10);
  EXPECT_EQ(again.hit_bytes, 10u);
}

TEST(BufferCache, SpanningAccessSplitsByPage) {
  BufferCache cache(1 << 20);
  // Prime the first page only.
  cache.access(1, 0, 64 * 1024);
  // Access straddling pages 0 and 1: page 0 hits, page 1 misses.
  auto r = cache.access(1, 60 * 1024, 8 * 1024);
  EXPECT_EQ(r.hit_bytes, 4u * 1024);
  EXPECT_EQ(r.miss_bytes, 4u * 1024);
}

TEST(BufferCache, LruEvictionUnderPressure) {
  BufferCache cache(4 * 64 * 1024);  // 4 pages
  for (uint64_t i = 0; i < 4; i++) cache.access(1, i * 64 * 1024, 64 * 1024);
  EXPECT_EQ(cache.resident_pages(), 4u);
  // Touch page 0 (making page 1 the LRU), then insert a 5th page.
  cache.access(1, 0, 1);
  cache.access(1, 4 * 64 * 1024, 64 * 1024);
  // Page 0 survived; page 1 was evicted.
  EXPECT_EQ(cache.access(1, 0, 1).hit_bytes, 1u);
  EXPECT_EQ(cache.access(1, 64 * 1024, 1).miss_bytes, 1u);
}

TEST(BufferCache, WorkingSetLargerThanCacheThrashes) {
  // The mechanism behind the disk-bound regime of Figure 8: sweep a file
  // twice the cache size twice; the second sweep still misses everywhere.
  BufferCache cache(8 * 64 * 1024);
  uint64_t file_size = 16 * 64 * 1024;
  for (int sweep = 0; sweep < 2; sweep++) {
    auto r = cache.access(7, 0, file_size);
    (void)r;
  }
  // Final sweep: all misses (LRU sweep pattern is pessimal).
  auto r = cache.access(7, 0, file_size);
  EXPECT_EQ(r.hit_bytes, 0u);
  EXPECT_EQ(r.miss_bytes, file_size);
}

TEST(BufferCache, InvalidateDropsOnlyThatFile) {
  BufferCache cache(1 << 20);
  cache.access(1, 0, 64 * 1024);
  cache.access(2, 0, 64 * 1024);
  cache.invalidate(1);
  EXPECT_EQ(cache.access(1, 0, 1).miss_bytes, 1u);
  EXPECT_EQ(cache.access(2, 0, 1).hit_bytes, 1u);
}

// --- Cluster calibration: the §7 hardware envelope -------------------------

double simulate_aggregate_throughput(int num_servers, int num_clients,
                                     uint64_t bytes_per_flow, int flows_each) {
  Engine engine;
  Cluster cluster(engine, Cluster::Config{});
  std::vector<int> servers, clients;
  for (int i = 0; i < num_servers; i++) servers.push_back(cluster.add_node());
  for (int i = 0; i < num_clients; i++) clients.push_back(cluster.add_node());

  uint64_t total = 0;
  for (int c = 0; c < num_clients; c++) {
    spawn(engine, [](Cluster& cl, int server, int client, uint64_t bytes,
                     int flows) -> Task<void> {
      for (int f = 0; f < flows; f++) {
        co_await cl.transfer(server, client, bytes);
      }
    }(cluster, servers[static_cast<size_t>(c % num_servers)], clients[static_cast<size_t>(c)],
                     bytes_per_flow, flows_each));
    total += bytes_per_flow * static_cast<uint64_t>(flows_each);
  }
  Nanos end = engine.run();
  return static_cast<double>(total) / (static_cast<double>(end) / 1e9) / 1e6;
}

TEST(ClusterCalibration, SingleFlowSaturatesOnePort) {
  // "One server can transmit at 100 MB/s, near the practical limit of TCP
  // on a 1Gb port."
  double mbps = simulate_aggregate_throughput(1, 1, 64 << 20, 1);
  EXPECT_GT(mbps, 95.0);
  EXPECT_LT(mbps, 120.0);
}

TEST(ClusterCalibration, ManyServersHitTheBackplaneCap) {
  // "Three or more servers ... saturate the switch backplane at 300 MB/s."
  double mbps = simulate_aggregate_throughput(8, 8, 32 << 20, 1);
  EXPECT_GT(mbps, 250.0);
  EXPECT_LT(mbps, 320.0);
}

TEST(ClusterCalibration, TwoServersBelowBackplane) {
  double mbps = simulate_aggregate_throughput(2, 2, 32 << 20, 1);
  EXPECT_GT(mbps, 180.0);
  EXPECT_LT(mbps, 240.0);
}

TEST(ClusterCalibration, LatencyChargedOnTinyMessages) {
  Engine engine;
  Cluster cluster(engine, Cluster::Config{});
  int a = cluster.add_node();
  int b = cluster.add_node();
  Nanos done = -1;
  spawn(engine, [](Cluster& cl, Engine& e, int from, int to,
                   Nanos* out) -> Task<void> {
    co_await cl.transfer(from, to, 64);
    *out = e.now();
  }(cluster, engine, a, b, &done));
  engine.run();
  // Dominated by the 75us one-way latency, not serialization.
  EXPECT_GT(done, 70 * kMicrosecond);
  EXPECT_LT(done, 200 * kMicrosecond);
}

TEST(ClusterCalibration, ReserveTransferMatchesCoroutineTransfer) {
  Engine engine;
  Cluster cluster(engine, Cluster::Config{});
  int a = cluster.add_node();
  int b = cluster.add_node();
  Nanos reserved = cluster.reserve_transfer(a, b, 10 << 20);
  Engine engine2;
  Cluster cluster2(engine2, Cluster::Config{});
  int a2 = cluster2.add_node();
  int b2 = cluster2.add_node();
  Nanos done = 0;
  spawn(engine2, [](Cluster& cl, Engine& e, int from, int to,
                    Nanos* out) -> Task<void> {
    co_await cl.transfer(from, to, 10 << 20);
    *out = e.now();
  }(cluster2, engine2, a2, b2, &done));
  engine2.run();
  EXPECT_NEAR(static_cast<double>(reserved), static_cast<double>(done),
              static_cast<double>(kMillisecond));
}

}  // namespace
}  // namespace tss::sim
