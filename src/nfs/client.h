// NFS-baseline client.
//
// Performs per-component LOOKUP for every path operation — the name cache is
// deliberately absent ("we provide a comparison of TSS (with no caching)
// against NFS (with no caching)", §7). Reads and writes are segmented into
// kMaxTransfer-byte RPCs, one outstanding at a time, which is the mechanism
// behind the NFS bandwidth ceiling in Figure 5.
#pragma once

#include <string>
#include <vector>

#include "chirp/protocol.h"
#include "net/line_stream.h"
#include "nfs/wire.h"

namespace tss::nfs {

class Client {
 public:
  struct Options {
    Nanos timeout = 30 * kSecond;
  };

  static Result<Client> connect(const net::Endpoint& server, Options options);
  static Result<Client> connect(const net::Endpoint& server) {
    return connect(server, Options{});
  }

  Client() = default;
  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  bool connected() const { return stream_.valid(); }

  // --- fh-level RPCs (exposed for tests and precise benchmarking) ---------
  Result<FileHandle> mount();
  Result<std::pair<FileHandle, chirp::StatInfo>> lookup(FileHandle dir,
                                                        const std::string& name);
  Result<chirp::StatInfo> getattr(FileHandle fh);
  // Single RPC; size must be <= kMaxTransfer.
  Result<size_t> read_rpc(FileHandle fh, void* data, size_t size,
                          int64_t offset);
  Result<size_t> write_rpc(FileHandle fh, const void* data, size_t size,
                           int64_t offset);
  Result<std::pair<FileHandle, chirp::StatInfo>> create(FileHandle dir,
                                                        const std::string& name,
                                                        uint32_t mode);
  Result<void> remove(FileHandle dir, const std::string& name);
  Result<void> rename(FileHandle from_dir, const std::string& from,
                      FileHandle to_dir, const std::string& to);
  Result<FileHandle> mkdir(FileHandle dir, const std::string& name,
                           uint32_t mode);
  Result<void> rmdir(FileHandle dir, const std::string& name);
  Result<std::vector<std::string>> readdir(FileHandle fh);
  Result<void> truncate(FileHandle fh, uint64_t size);

  // --- path-level convenience (what an application sees) -------------------
  // Walks the path with one LOOKUP per component, every time.
  Result<FileHandle> resolve(const std::string& path);
  // resolve + getattr: the cost profile of stat over NFS.
  Result<chirp::StatInfo> stat(const std::string& path);
  // resolve parent + create/lookup: the cost profile of open.
  Result<FileHandle> open_file(const std::string& path, bool create_if_absent,
                               uint32_t mode = 0644);
  // Segmented whole-range I/O in kMaxTransfer chunks.
  Result<size_t> pread(FileHandle fh, void* data, size_t size, int64_t offset);
  Result<size_t> pwrite(FileHandle fh, const void* data, size_t size,
                        int64_t offset);

 private:
  explicit Client(net::LineStream stream) : stream_(std::move(stream)) {}

  Result<std::vector<std::string>> roundtrip(const std::string& line,
                                             const void* payload = nullptr,
                                             size_t payload_size = 0);

  net::LineStream stream_;
  FileHandle root_ = kInvalidHandle;
};

}  // namespace tss::nfs
