// tss — command-line client for tactical storage.
//
// Remote paths take the form chirp://HOST:PORT/PATH. Subcommands:
//
//   tss ls      chirp://h:p/dir              long listing
//   tss cat     chirp://h:p/file             print file to stdout
//   tss put     LOCAL chirp://h:p/file       upload
//   tss get     chirp://h:p/file LOCAL       download
//   tss mkdir   chirp://h:p/dir
//   tss rm      chirp://h:p/file
//   tss rmdir   chirp://h:p/dir
//   tss mv      chirp://h:p/old /new         rename within one server
//   tss stat    chirp://h:p/path
//   tss getacl  chirp://h:p/dir
//   tss setacl  chirp://h:p/dir SUBJECT RIGHTS
//   tss whoami  chirp://h:p/
//   tss df      chirp://h:p/
//   tss mkalloc chirp://h:p/dir BYTES        carve a space budget (needs a
//                                            server started with --allocations)
//   tss lsalloc chirp://h:p/path             the budget governing path
//   tss catalog HOST:PORT                    query a catalog
//
// Authentication: tries --gsi-credential (if given), then unix, then
// hostname — "a client may attempt any number of authentication methods in
// any order" (§4).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "auth/gsi.h"
#include "auth/hostname.h"
#include "auth/unix.h"
#include "catalog/catalog.h"
#include "chirp/client.h"
#include "tools/flags.h"
#include "util/path.h"

namespace {

using namespace tss;

int usage() {
  std::fprintf(
      stderr,
      "usage: tss <ls|cat|put|get|mkdir|rm|rmdir|mv|stat|getacl|setacl|"
      "whoami|df|mkalloc|lsalloc|catalog> args...\n"
      "       remote paths: chirp://HOST:PORT/PATH\n"
      "       options: --gsi-credential TOKEN\n");
  return 2;
}

struct RemotePath {
  net::Endpoint server;
  std::string path;
};

Result<RemotePath> parse_remote(const std::string& url) {
  const std::string prefix = "chirp://";
  if (url.rfind(prefix, 0) != 0) {
    return Error(EINVAL, "not a chirp:// URL: " + url);
  }
  std::string rest = url.substr(prefix.size());
  size_t slash = rest.find('/');
  std::string hostport = slash == std::string::npos ? rest
                                                    : rest.substr(0, slash);
  std::string p = slash == std::string::npos ? "/" : rest.substr(slash);
  TSS_ASSIGN_OR_RETURN(net::Endpoint endpoint, net::Endpoint::parse(hostport));
  return RemotePath{endpoint, path::sanitize(p)};
}

Result<chirp::Client> connect_and_auth(const net::Endpoint& server,
                                       const std::optional<std::string>& gsi,
                                       bool alloc_ops = false) {
  chirp::Client::Options options;
  options.alloc_ops = alloc_ops;
  TSS_ASSIGN_OR_RETURN(chirp::Client client,
                       chirp::Client::connect(server, options));
  std::vector<std::unique_ptr<auth::ClientCredential>> owned;
  if (gsi) owned.push_back(std::make_unique<auth::GsiClientCredential>(*gsi));
  owned.push_back(std::make_unique<auth::UnixClientCredential>());
  owned.push_back(std::make_unique<auth::HostnameClientCredential>());
  std::vector<auth::ClientCredential*> credentials;
  for (auto& c : owned) credentials.push_back(c.get());
  auto subject = client.authenticate_any(credentials);
  if (!subject.ok()) return std::move(subject).take_error();
  return client;
}

int fail(const Error& e) {
  std::fprintf(stderr, "tss: %s\n", e.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = tools::Flags::parse(argc, argv, {"gsi-credential"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.error().to_string().c_str());
    return usage();
  }
  const tools::Flags& f = flags.value();
  const auto& args = f.positional();
  if (args.empty()) return usage();
  const std::string& command = args[0];
  auto gsi = f.get("gsi-credential");

  if (command == "catalog") {
    if (args.size() < 2) return usage();
    auto endpoint = net::Endpoint::parse(args[1]);
    if (!endpoint.ok()) return fail(endpoint.error());
    auto listing = catalog::query(endpoint.value());
    if (!listing.ok()) return fail(listing.error());
    for (const auto& entry : listing.value()) {
      std::printf("%-24s %-22s owner=%s free=%s\n", entry.name.c_str(),
                  entry.address.to_string().c_str(), entry.owner.c_str(),
                  format_bytes(entry.free_bytes).c_str());
    }
    return 0;
  }

  if (args.size() < 2) return usage();
  if (command == "put" && args.size() < 3) return usage();
  auto remote = parse_remote(command == "put" ? args[2] : args[1]);
  if (!remote.ok()) return fail(remote.error());
  auto client = connect_and_auth(remote.value().server, gsi,
                                 command == "mkalloc" || command == "lsalloc");
  if (!client.ok()) return fail(client.error());
  chirp::Client& c = client.value();
  const std::string& p = remote.value().path;

  if (command == "ls") {
    auto entries = c.getdir(p);
    if (!entries.ok()) return fail(entries.error());
    for (const auto& e : entries.value()) {
      std::printf("%c %10llu  %s\n", e.info.is_dir ? 'd' : '-',
                  static_cast<unsigned long long>(e.info.size),
                  e.name.c_str());
    }
  } else if (command == "cat") {
    auto data = c.getfile(p);
    if (!data.ok()) return fail(data.error());
    std::fwrite(data.value().data(), 1, data.value().size(), stdout);
  } else if (command == "put") {
    // Streamed upload: constant memory regardless of file size.
    std::error_code ec;
    auto size = std::filesystem::file_size(args[1], ec);
    if (ec) return fail(Error(ENOENT, "cannot read " + args[1]));
    std::ifstream in(args[1], std::ios::binary);
    if (!in) return fail(Error(ENOENT, "cannot read " + args[1]));
    auto source = [&in](char* buffer, size_t capacity) -> Result<size_t> {
      in.read(buffer, static_cast<std::streamsize>(capacity));
      return static_cast<size_t>(in.gcount());
    };
    auto rc = c.putfile_from(p, size, source);
    if (!rc.ok()) return fail(rc.error());
  } else if (command == "get") {
    if (args.size() < 3) return usage();
    std::ofstream out(args[2], std::ios::binary | std::ios::trunc);
    if (!out) return fail(Error(EIO, "cannot write " + args[2]));
    auto sink = [&out](std::string_view chunk) -> Result<void> {
      out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
      if (!out) return Error(EIO, "local write failed");
      return Result<void>::success();
    };
    auto rc = c.getfile_to(p, sink);
    if (!rc.ok()) return fail(rc.error());
  } else if (command == "mkdir") {
    auto rc = c.mkdir(p, 0755);
    if (!rc.ok()) return fail(rc.error());
  } else if (command == "rm") {
    auto rc = c.unlink(p);
    if (!rc.ok()) return fail(rc.error());
  } else if (command == "rmdir") {
    auto rc = c.rmdir(p);
    if (!rc.ok()) return fail(rc.error());
  } else if (command == "mv") {
    if (args.size() < 3) return usage();
    auto rc = c.rename(p, path::sanitize(args[2]));
    if (!rc.ok()) return fail(rc.error());
  } else if (command == "stat") {
    auto info = c.stat(p);
    if (!info.ok()) return fail(info.error());
    std::printf("%s: %s, %llu bytes, mode %o, inode %llu, mtime %lld\n",
                p.c_str(), info.value().is_dir ? "directory" : "file",
                static_cast<unsigned long long>(info.value().size),
                info.value().mode,
                static_cast<unsigned long long>(info.value().inode),
                static_cast<long long>(info.value().mtime));
  } else if (command == "getacl") {
    auto acl = c.getacl(p);
    if (!acl.ok()) return fail(acl.error());
    std::fputs(acl.value().c_str(), stdout);
  } else if (command == "setacl") {
    if (args.size() < 4) return usage();
    auto rc = c.setacl(p, args[2], args[3]);
    if (!rc.ok()) return fail(rc.error());
  } else if (command == "whoami") {
    auto who = c.whoami();
    if (!who.ok()) return fail(who.error());
    std::printf("%s\n", who.value().c_str());
  } else if (command == "df") {
    auto space = c.statfs();
    if (!space.ok()) return fail(space.error());
    std::printf("total %s, free %s\n",
                format_bytes(space.value().first).c_str(),
                format_bytes(space.value().second).c_str());
  } else if (command == "mkalloc") {
    if (args.size() < 3) return usage();
    auto limit = parse_u64(args[2]);
    if (!limit || *limit == 0) {
      return fail(Error(EINVAL, "mkalloc limit must be a positive byte count"));
    }
    auto rc = c.mkalloc(p, *limit);
    if (!rc.ok()) return fail(rc.error());
  } else if (command == "lsalloc") {
    auto info = c.lsalloc(p);
    if (!info.ok()) return fail(info.error());
    std::printf("root %s limit %llu inuse %llu\n", info.value().root.c_str(),
                static_cast<unsigned long long>(info.value().limit),
                static_cast<unsigned long long>(info.value().inuse));
  } else {
    return usage();
  }
  return 0;
}
