
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/auth/auth.cc" "src/auth/CMakeFiles/tss_auth.dir/auth.cc.o" "gcc" "src/auth/CMakeFiles/tss_auth.dir/auth.cc.o.d"
  "/root/repo/src/auth/gsi.cc" "src/auth/CMakeFiles/tss_auth.dir/gsi.cc.o" "gcc" "src/auth/CMakeFiles/tss_auth.dir/gsi.cc.o.d"
  "/root/repo/src/auth/hostname.cc" "src/auth/CMakeFiles/tss_auth.dir/hostname.cc.o" "gcc" "src/auth/CMakeFiles/tss_auth.dir/hostname.cc.o.d"
  "/root/repo/src/auth/kerberos.cc" "src/auth/CMakeFiles/tss_auth.dir/kerberos.cc.o" "gcc" "src/auth/CMakeFiles/tss_auth.dir/kerberos.cc.o.d"
  "/root/repo/src/auth/unix.cc" "src/auth/CMakeFiles/tss_auth.dir/unix.cc.o" "gcc" "src/auth/CMakeFiles/tss_auth.dir/unix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
