# Empty compiler generated dependencies file for tss_util.
# This may be replaced when dependencies are built.
