file(REMOVE_RECURSE
  "CMakeFiles/tss_catalog_server.dir/catalog_server_main.cc.o"
  "CMakeFiles/tss_catalog_server.dir/catalog_server_main.cc.o.d"
  "tss_catalog_server"
  "tss_catalog_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_catalog_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
