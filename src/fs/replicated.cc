#include "fs/replicated.h"

#include "util/logging.h"
#include "util/path.h"

namespace tss::fs {

namespace {

// An open replicated file: writes fan out to every replica that opened;
// reads come from the first live one.
class ReplicatedFile final : public File {
 public:
  explicit ReplicatedFile(std::vector<std::unique_ptr<File>> files)
      : files_(std::move(files)) {}

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    Error last(EIO, "no replica answered");
    for (auto& file : files_) {
      if (!file) continue;
      auto n = file->pread(data, size, offset);
      if (n.ok()) return n;
      last = std::move(n).take_error();
    }
    return last;
  }

  Result<size_t> pwrite(const void* data, size_t size,
                        int64_t offset) override {
    std::optional<size_t> wrote;
    Error last(EIO, "no replica accepted the write");
    for (auto& file : files_) {
      if (!file) continue;
      auto n = file->pwrite(data, size, offset);
      if (n.ok()) {
        wrote = n.value();
      } else {
        last = std::move(n).take_error();
        // The replica diverged; drop it from this handle so reads don't
        // see stale data through it.
        TSS_WARN("replicated") << "replica write failed: " << last.to_string();
        file.reset();
      }
    }
    if (!wrote) return last;
    return *wrote;
  }

  Result<void> fsync() override {
    Result<void> result = Result<void>::success();
    bool any = false;
    for (auto& file : files_) {
      if (!file) continue;
      auto rc = file->fsync();
      if (rc.ok()) {
        any = true;
      } else {
        result = std::move(rc);
      }
    }
    if (any) return Result<void>::success();
    return result;
  }

  Result<StatInfo> fstat() override {
    Error last(EIO, "no replica answered");
    for (auto& file : files_) {
      if (!file) continue;
      auto info = file->fstat();
      if (info.ok()) return info;
      last = std::move(info).take_error();
    }
    return last;
  }

  Result<void> close() override {
    Result<void> result = Result<void>::success();
    for (auto& file : files_) {
      if (!file) continue;
      auto rc = file->close();
      if (!rc.ok()) result = std::move(rc);
      file.reset();
    }
    return result;
  }

  ~ReplicatedFile() override { (void)close(); }

 private:
  std::vector<std::unique_ptr<File>> files_;
};

}  // namespace

ReplicatedFs::ReplicatedFs(std::vector<FileSystem*> replicas)
    : replicas_(std::move(replicas)) {}

template <typename Fn>
Result<void> ReplicatedFs::broadcast(Fn&& fn) {
  bool any = false;
  Error last(EIO, "no replica reachable");
  for (FileSystem* replica : replicas_) {
    auto rc = fn(*replica);
    if (rc.ok()) {
      any = true;
    } else {
      last = std::move(rc).take_error();
    }
  }
  if (any) return Result<void>::success();
  return last;
}

Result<std::unique_ptr<File>> ReplicatedFs::open(const std::string& p,
                                                 const OpenFlags& flags,
                                                 uint32_t mode) {
  std::string canonical = path::sanitize(p);
  std::vector<std::unique_ptr<File>> files;
  bool any = false;
  Error last(EIO, "no replica reachable");
  for (FileSystem* replica : replicas_) {
    auto file = replica->open(canonical, flags, mode);
    if (file.ok()) {
      files.push_back(std::move(file).value());
      any = true;
    } else {
      last = std::move(file).take_error();
      files.push_back(nullptr);
      // A hard semantic refusal (EEXIST on O_EXCL) must win over partial
      // success — otherwise exclusive create loses its meaning.
      if (last.code == EEXIST && flags.exclusive) return last;
    }
  }
  if (!any) return last;
  return std::unique_ptr<File>(new ReplicatedFile(std::move(files)));
}

Result<StatInfo> ReplicatedFs::stat(const std::string& p) {
  std::string canonical = path::sanitize(p);
  Error last(EIO, "no replica reachable");
  for (FileSystem* replica : replicas_) {
    auto info = replica->stat(canonical);
    if (info.ok()) return info;
    last = std::move(info).take_error();
  }
  return last;
}

Result<void> ReplicatedFs::unlink(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return broadcast([&](FileSystem& fs) { return fs.unlink(canonical); });
}

Result<void> ReplicatedFs::rename(const std::string& from,
                                  const std::string& to) {
  std::string f = path::sanitize(from), t = path::sanitize(to);
  return broadcast([&](FileSystem& fs) { return fs.rename(f, t); });
}

Result<void> ReplicatedFs::mkdir(const std::string& p, uint32_t mode) {
  std::string canonical = path::sanitize(p);
  return broadcast([&](FileSystem& fs) { return fs.mkdir(canonical, mode); });
}

Result<void> ReplicatedFs::rmdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  return broadcast([&](FileSystem& fs) { return fs.rmdir(canonical); });
}

Result<void> ReplicatedFs::truncate(const std::string& p, uint64_t size) {
  std::string canonical = path::sanitize(p);
  return broadcast(
      [&](FileSystem& fs) { return fs.truncate(canonical, size); });
}

Result<std::vector<DirEntry>> ReplicatedFs::readdir(const std::string& p) {
  std::string canonical = path::sanitize(p);
  Error last(EIO, "no replica reachable");
  for (FileSystem* replica : replicas_) {
    auto entries = replica->readdir(canonical);
    if (entries.ok()) return entries;
    last = std::move(entries).take_error();
  }
  return last;
}

Result<int> ReplicatedFs::repair(const std::string& p) {
  std::string canonical = path::sanitize(p);
  // Source: the first replica holding the file.
  FileSystem* source = nullptr;
  for (FileSystem* replica : replicas_) {
    if (replica->stat(canonical).ok()) {
      source = replica;
      break;
    }
  }
  if (!source) return Error(ENOENT, "no replica holds " + canonical);
  TSS_ASSIGN_OR_RETURN(std::string golden, source->read_file(canonical));

  int repaired = 0;
  for (FileSystem* replica : replicas_) {
    if (replica == source) continue;
    auto current = replica->read_file(canonical);
    if (current.ok() && current.value() == golden) continue;
    auto rc = replica->write_file(canonical, golden);
    if (!rc.ok() && rc.error().code == ENOENT) {
      // A replacement replica may lack the parent directories entirely.
      auto made = mkdir_recursive(*replica, path::dirname(canonical));
      if (made.ok()) rc = replica->write_file(canonical, golden);
    }
    if (rc.ok()) repaired++;
  }
  return repaired;
}

}  // namespace tss::fs
