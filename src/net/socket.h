// RAII TCP sockets.
//
// The Chirp protocol carries control and bulk data over one TCP connection
// (the paper contrasts this with FTP's separate data channels and the slow
// starts they cost), so a plain blocking stream socket with timeouts is the
// only transport primitive the real-network mode needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/clock.h"
#include "util/result.h"

struct iovec;

namespace tss::net {

// "host:port" endpoint. Host may be a dotted quad or a name resolvable by
// the system resolver; loopback is the common case in tests and examples.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  std::string to_string() const;
  static Result<Endpoint> parse(const std::string& s);
  bool operator==(const Endpoint&) const = default;
};

// Owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_ = -1;
};

// A connected TCP stream with deadline-based blocking I/O.
class TcpSocket {
 public:
  TcpSocket() = default;
  explicit TcpSocket(Fd fd) : fd_(std::move(fd)) {}

  static Result<TcpSocket> connect(const Endpoint& ep, Nanos timeout);

  bool valid() const { return fd_.valid(); }
  int raw_fd() const { return fd_.get(); }
  void close() { fd_.reset(); }

  // Reads up to `size` bytes; returns bytes read; 0 means orderly EOF.
  Result<size_t> read_some(void* data, size_t size, Nanos timeout);
  // Reads exactly `size` bytes or fails (EOF mid-read is ECONNRESET).
  Result<void> read_exact(void* data, size_t size, Nanos timeout);
  // Writes all of `size` bytes or fails.
  Result<void> write_all(const void* data, size_t size, Nanos timeout);
  // Writes every byte of `iovcnt` buffers (scatter-gather, one syscall when
  // the socket buffer allows) or fails. The iovec array is not modified.
  Result<void> writev_all(const iovec* iov, int iovcnt, Nanos timeout);

  // Address of the peer, e.g. "127.0.0.1:45123".
  Result<Endpoint> peer() const;
  // Address of the local end.
  Result<Endpoint> local() const;

 private:
  Result<void> wait_io(bool want_read, Nanos timeout);
  Fd fd_;
};

// A listening TCP socket. Port 0 binds an ephemeral port.
//
// `reuse_port` sets SO_REUSEPORT before bind, letting N listeners share one
// port with the kernel load-balancing accepts across them — the sharded
// acceptor topology of net::ServerLoop. Where the platform lacks
// SO_REUSEPORT, a second listener on the same port fails with EADDRINUSE and
// the caller falls back to a single listener.
class TcpListener {
 public:
  static Result<TcpListener> listen(const std::string& host, uint16_t port,
                                    int backlog = 64,
                                    bool reuse_port = false);

  Result<TcpSocket> accept(Nanos timeout);
  uint16_t port() const { return port_; }
  bool valid() const { return fd_.valid(); }
  void close() { fd_.reset(); }
  int raw_fd() const { return fd_.get(); }

 private:
  Fd fd_;
  uint16_t port_ = 0;
};

}  // namespace tss::net
