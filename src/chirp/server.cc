#include "chirp/server.h"

#include "auth/hostname.h"
#include "auth/unix.h"
#include "util/logging.h"

namespace tss::chirp {

Server::Server(ServerOptions options, std::unique_ptr<Backend> backend,
               std::unique_ptr<auth::ServerAuth> auth)
    : options_(std::move(options)),
      backend_(std::move(backend)),
      auth_(std::move(auth)),
      auth_executor_(std::make_unique<AuthExecutor>()) {
  config_.owner = options_.owner;
  config_.root_acl = options_.root_acl;
  config_.auth = auth_.get();
  config_.metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
  if (!options_.cache_peers.empty() && options_.redirect_hot_threshold > 0) {
    RedirectPolicy::Options policy;
    policy.peers = options_.cache_peers;
    policy.hot_threshold = options_.redirect_hot_threshold;
    policy.ttl_ms = options_.redirect_ttl_ms;
    redirect_policy_ = std::make_unique<RedirectPolicy>(std::move(policy));
    config_.redirect = redirect_policy_.get();
  }
}

Server::~Server() { stop(); }

Result<void> Server::start() {
  net::ServerLoop::Limits limits;
  limits.max_connections = options_.max_connections;
  // A refused client gets a parseable Chirp error line, not a bare EOF: its
  // first RPC fails with EBUSY and it can back off and retry.
  limits.reject_notice =
      encode_response_line(
          Response::failure(EBUSY, "server at connection limit")) +
      "\n";
  limits.rejected_counter =
      config_.metrics->counter("chirp.server.rejected_connections");
  limits.mode = options_.mode;
  limits.reactor_workers = options_.reactor_workers;
  limits.acceptors = options_.acceptors;
  limits.force_poll = options_.force_poll;
  limits.metrics = config_.metrics;
  return loop_.start(
      options_.host, options_.port,
      [this]() -> std::shared_ptr<net::ReactorSession> {
        SessionParams params;
        params.config = &config_;
        params.backend = backend_.get();
        params.io_timeout = options_.io_timeout;
        params.idle_timeout = options_.idle_timeout;
        params.auth_executor = auth_executor_.get();
        return std::make_shared<ServerSession>(params);
      },
      limits);
}

void Server::stop() { loop_.stop(); }

Server::Info Server::info() const {
  Info info;
  info.owner = options_.owner;
  info.endpoint = net::Endpoint{options_.host, loop_.port()};
  if (auto space = backend_->statfs(); space.ok()) {
    info.total_bytes = space.value().first;
    info.free_bytes = space.value().second;
  }
  info.root_acl = config_.root_acl.serialize();
  return info;
}

std::unique_ptr<auth::ServerAuth> make_default_auth(
    const std::string& unix_challenge_dir) {
  auto auth = std::make_unique<auth::ServerAuth>();
  auth->add(std::make_unique<auth::HostnameServerMethod>());
  auth->add(std::make_unique<auth::UnixServerMethod>(unix_challenge_dir));
  return auth;
}

}  // namespace tss::chirp
