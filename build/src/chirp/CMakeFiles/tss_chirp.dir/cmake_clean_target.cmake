file(REMOVE_RECURSE
  "libtss_chirp.a"
)
