file(REMOVE_RECURSE
  "libtss_parrot.a"
)
