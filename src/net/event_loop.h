// Event-driven reactor core: epoll (or poll) readiness loops, a timer wheel,
// and resumable per-connection sessions.
//
// The paper's servers are single-binary daemons; the seed reproduction gave
// every accepted connection its own blocking thread, which caps a server at
// a few hundred clients. EventLoop replaces that execution engine without
// changing the wire: a fixed pool of worker loops multiplexes thousands of
// non-blocking connections, each owning a FrameDecoder for input, a buffered
// output queue with write watermarks, and a slot on the worker's timer wheel
// for idle/progress deadlines. The storage abstractions stay independent of
// the engine (the thesis of the paper applied to our own stack): a protocol
// implements ReactorSession once and runs unmodified under the reactor or
// under a per-connection thread (see drive_session_blocking).
//
// See docs/ARCHITECTURE-NET.md for the full design.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "net/buffer_pool.h"
#include "net/line_stream.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace tss::net {

class Conn;
class ConnRef;

// A resumable protocol session. All callbacks run on the connection's owning
// loop thread (or the connection's own thread in blocking mode) and must not
// block on the peer: they consume whatever input is buffered, produce output
// into the connection's write buffer, and return. Returning false from a
// callback closes the connection gracefully (pending output is flushed
// first).
class ReactorSession {
 public:
  virtual ~ReactorSession() = default;

  // Called once, right after the connection is adopted.
  virtual void on_start(Conn&) {}

  // New bytes were appended to conn.input() — or EOF arrived, see
  // conn.input_eof(). Consume as many complete frames as possible; a frame
  // that is still incomplete simply stays buffered until the next call.
  virtual bool on_input(Conn&) = 0;

  // The output buffer drained below its low-water mark after the session
  // called conn.want_output_space(true). Refill (e.g. the next chunk of a
  // streamed file) until conn.output_pending() reaches the high-water mark
  // or the stream is done. A session that keeps the want flag set must
  // produce bytes here, or it will not be called again until more output
  // drains.
  virtual bool on_output_space(Conn&) { return true; }

  // The progress deadline set via conn.set_timeout() expired: no bytes
  // moved in either direction for that long. Default: close.
  virtual bool on_timeout(Conn&) { return false; }

  // The connection is being torn down; conn is still valid but no more I/O
  // will happen. Called exactly once for every adopted session.
  virtual void on_close(Conn&) {}
};

// Transport face handed to a session. Not thread-safe: touch it only from
// session callbacks, or from other threads via ConnRef::post.
class Conn {
 public:
  virtual ~Conn() = default;

  // Buffered input; frames are extracted with FrameDecoder::try_line/read.
  virtual FrameDecoder& input() = 0;
  // True once the peer half-closed; buffered input may still hold frames.
  virtual bool input_eof() const = 0;

  // Appends bytes to the output buffer; the transport flushes them as the
  // socket allows. Small writes coalesce into one segment; the transport
  // sends queued segments with scatter-gather I/O (writev), so a header
  // written separately from its payload costs no concatenation copy.
  virtual void write(std::string_view bytes) = 0;

  // Moves `bytes` into the output queue as its own segment — the zero-copy
  // variant of write() for bulk payloads the caller no longer needs.
  virtual void write_owned(std::string&& bytes) {
    write(std::string_view(bytes));
  }

  // Moves a pooled buffer (first `len` bytes valid) into the output queue;
  // the buffer returns to its pool once flushed. Zero-copy for streamed
  // chunks read into pool buffers.
  virtual void write_buffer(PoolBuffer&& buf, size_t len) {
    write(std::string_view(buf.data(), len));
  }

  // True when the transport can stream a file region directly to the socket
  // (sendfile/splice) without the bytes entering user space.
  virtual bool can_stream_file() const { return false; }

  // Queues `len` bytes of `file` starting at `offset` for transmission,
  // taking ownership of the descriptor (closed when the region completes or
  // the connection dies). Only valid when can_stream_file() is true; the
  // region counts toward output_pending() and drains in order with byte
  // segments. If the file shrinks mid-region, the remainder is zero-padded
  // so the promised byte count still reaches the peer.
  virtual void write_file_region(Fd file, uint64_t offset, uint64_t len) {
    (void)offset;
    (void)len;
    file.reset();
  }

  virtual size_t output_pending() const = 0;
  // Request on_output_space() callbacks when output drains (streaming).
  virtual void want_output_space(bool want) = 0;
  // Output watermarks: stop producing at high, refill below low.
  static constexpr size_t kOutputHighWater = 256 * 1024;
  static constexpr size_t kOutputLowWater = 64 * 1024;

  // No-progress deadline: if no bytes move for `timeout`, the session's
  // on_timeout() fires. 0 disables. Re-arming is cheap (lazy check against
  // the last-activity stamp; the wheel entry is only rescheduled on expiry).
  virtual void set_timeout(Nanos timeout) = 0;

  // Graceful close: stop reading, flush pending output, then tear down.
  virtual void close() = 0;

  virtual Result<Endpoint> peer() const = 0;

  // A weak, thread-safe handle for posting work back to this connection.
  virtual ConnRef ref() = 0;
};

namespace detail {
class ConnCore;
// The cross-thread mailbox a ConnRef posts into: a task queue plus a wake
// fd, owned by whichever driver (worker loop or blocking pump) runs the
// connection. Outlives the driver via shared_ptr so late posts are no-ops.
struct Mailbox {
  std::mutex mutex;
  std::vector<std::function<void()>> tasks;
  int wake_fd = -1;  // eventfd (or pipe write end); -1 once stopped
  bool stopped = false;

  // Enqueues and wakes; drops the task if the driver already stopped.
  void post(std::function<void()> task);
};
}  // namespace detail

// Thread-safe handle to a connection that may already be gone. post() runs
// fn(conn) on the owning driver thread if — and only if — the connection is
// still alive when the task is executed. Used by work that completes off the
// loop (the Chirp auth executor) to deliver results safely.
class ConnRef {
 public:
  ConnRef() = default;
  ConnRef(std::weak_ptr<detail::ConnCore> conn,
          std::shared_ptr<detail::Mailbox> mailbox)
      : conn_(std::move(conn)), mailbox_(std::move(mailbox)) {}

  void post(std::function<void(Conn&)> fn) const;

 private:
  std::weak_ptr<detail::ConnCore> conn_;
  std::shared_ptr<detail::Mailbox> mailbox_;
};

// Hashed timer wheel: O(1) schedule/cancel, fired by the owning loop between
// readiness batches. Single-threaded — owned and advanced by one driver.
class TimerWheel {
 public:
  using Callback = std::function<void()>;

  TimerWheel(size_t slots, Nanos tick, Nanos now);

  // Fires cb once, no earlier than `delay` from the wheel's current time
  // (rounded up to the tick). Returns an id for cancel().
  uint64_t schedule(Nanos delay, Callback cb);
  void cancel(uint64_t id);

  // Advances wheel time to `now`, firing every due entry.
  void advance(Nanos now);

  // Nanoseconds until the next tick boundary (the poll timeout an idle loop
  // should use); capped at `cap`.
  Nanos next_tick_delay(Nanos now, Nanos cap) const;

  size_t pending() const { return pending_; }
  Nanos tick() const { return tick_; }

 private:
  struct Entry {
    uint64_t id;
    uint64_t remaining_rounds;
    Callback cb;
  };

  std::vector<std::vector<Entry>> slots_;
  Nanos tick_;
  Nanos wheel_time_;   // advanced in whole ticks
  size_t cursor_ = 0;  // slot index wheel_time_ corresponds to
  uint64_t next_id_ = 1;
  size_t pending_ = 0;
  // Cancelled ids not yet swept; entries check membership when their slot
  // fires. Bounded by pending_.
  std::vector<uint64_t> cancelled_;
};

// The reactor: a fixed pool of worker loops, each running epoll (or poll,
// for portability / the TSS_REACTOR_POLLER=poll override) over its share of
// the connections. Thread count is workers, independent of connection count.
class EventLoop {
 public:
  struct Options {
    // 0 = default_workers(): min(4, hardware_concurrency).
    int workers = 0;
    // Use the poll() backend even where epoll is available.
    bool force_poll = false;
    // Timer wheel granularity and size (per worker).
    Nanos wheel_tick = 20 * kMillisecond;
    size_t wheel_slots = 512;
    // Registry for loop gauges/counters (net.loop.*); null = global().
    obs::Registry* metrics = nullptr;
  };

  EventLoop() : EventLoop(Options{}) {}
  explicit EventLoop(Options options);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Result<void> start();
  // Closes every connection (sessions observe on_close) and joins the
  // workers.
  void stop();
  bool running() const { return running_.load(); }

  // Thread-safe: hands a connected socket and its session to the
  // least-loaded worker (ties broken by rotation, so equal loads still
  // spread). The socket is switched to non-blocking; the session's callbacks
  // run on that worker from then on.
  Result<void> adopt(TcpSocket sock, std::shared_ptr<ReactorSession> session);

  size_t active_connections() const { return active_.load(); }
  int workers() const { return static_cast<int>(workers_.size()); }
  // Connections currently owned by (or in flight to) worker `i`; the
  // shard-distribution tests assert balance through this.
  size_t worker_connections(int i) const;

  static int default_workers();

 private:
  struct Worker;

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> active_{0};
  std::atomic<size_t> next_worker_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
};

// Thread-per-connection compatibility driver: pumps one session over one
// socket with a private poll() loop (socket + mailbox wake fd) until the
// session closes or `shutdown_fd` (a dup of the socket, shutdown() by the
// owner) forces EOF. Gives the legacy execution mode the exact same session
// semantics as the reactor — including ConnRef::post and timeouts.
void drive_session_blocking(TcpSocket sock,
                            std::shared_ptr<ReactorSession> session,
                            obs::Registry* metrics = nullptr);

}  // namespace tss::net
