file(REMOVE_RECURSE
  "libtss_nfs.a"
)
