// Syscall micro-benchmark worker for Figure 3.
//
// Performs N iterations of one named system call and reports the mean
// nanoseconds per call on stdout. The same binary is run natively and under
// the parrot tracer (bench_fig3_syscall_latency does both); because the
// worker times its own loop, the difference between the two runs is exactly
// the trapping overhead the paper's Figure 3 charges to Parrot.
//
// Usage: tss_syscall_worker <call> <iterations> <scratch-file>
//   call: getpid | stat | open-close | read-1 | read-8k | write-1 | write-8k
#include <fcntl.h>
#include <sys/syscall.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace {

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int fail(const char* msg) {
  std::perror(msg);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: %s <call> <iterations> <scratch-file>\n", argv[0]);
    return 2;
  }
  std::string call = argv[1];
  long iterations = std::atol(argv[2]);
  const char* scratch = argv[3];
  if (iterations <= 0) return 2;

  // Copy mode (Figure 5): write <iterations> bytes total in blocks of
  // <block> bytes (block passed via argv[4]); prints total elapsed ns.
  if (call == "copy") {
    if (argc < 5) return 2;
    long block = std::atol(argv[4]);
    if (block <= 0) return 2;
    std::string buffer(static_cast<size_t>(block), 'c');
    int fd = ::open(scratch, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return fail("open copy target");
    int64_t start = now_ns();
    long remaining = iterations;  // total bytes in this mode
    while (remaining > 0) {
      long n = remaining < block ? remaining : block;
      if (::write(fd, buffer.data(), static_cast<size_t>(n)) != n) {
        return fail("copy write");
      }
      remaining -= n;
    }
    int64_t elapsed = now_ns() - start;
    ::close(fd);
    std::printf("elapsed_ns %lld\n", static_cast<long long>(elapsed));
    return 0;
  }

  // Prepare the scratch file with enough data for the 8 KB reads.
  static char block[8192];
  std::memset(block, 'x', sizeof block);
  {
    int fd = ::open(scratch, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return fail("open scratch");
    if (::write(fd, block, sizeof block) != (ssize_t)sizeof block) {
      return fail("prime scratch");
    }
    ::close(fd);
  }

  int fd = -1;
  if (call == "read-1" || call == "read-8k") {
    fd = ::open(scratch, O_RDONLY);
    if (fd < 0) return fail("open for read");
  } else if (call == "write-1" || call == "write-8k") {
    fd = ::open(scratch, O_WRONLY);
    if (fd < 0) return fail("open for write");
  }

  struct stat st{};
  int64_t start = now_ns();
  for (long i = 0; i < iterations; i++) {
    if (call == "getpid") {
      // glibc caches getpid; use the raw syscall to actually enter the
      // kernel every iteration.
      (void)::syscall(SYS_getpid);
    } else if (call == "stat") {
      if (::stat(scratch, &st) != 0) return fail("stat");
    } else if (call == "open-close") {
      int f = ::open(scratch, O_RDONLY);
      if (f < 0) return fail("open");
      ::close(f);
    } else if (call == "read-1") {
      if (::pread(fd, block, 1, 0) != 1) return fail("read-1");
    } else if (call == "read-8k") {
      if (::pread(fd, block, 8192, 0) != 8192) return fail("read-8k");
    } else if (call == "write-1") {
      if (::pwrite(fd, block, 1, 0) != 1) return fail("write-1");
    } else if (call == "write-8k") {
      if (::pwrite(fd, block, 8192, 0) != 8192) return fail("write-8k");
    } else {
      std::fprintf(stderr, "unknown call: %s\n", call.c_str());
      return 2;
    }
  }
  int64_t elapsed = now_ns() - start;
  if (fd >= 0) ::close(fd);

  std::printf("ns_per_call %lld\n",
              static_cast<long long>(elapsed / iterations));
  return 0;
}
