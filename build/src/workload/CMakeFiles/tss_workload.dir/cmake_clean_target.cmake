file(REMOVE_RECURSE
  "libtss_workload.a"
)
