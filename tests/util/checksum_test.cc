#include "util/checksum.h"

#include <gtest/gtest.h>

#include "util/rand.h"

namespace tss {
namespace {

TEST(Fnv1a64, KnownVector) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  Fnv1a64 inc;
  inc.update(data.substr(0, 10));
  inc.update(data.substr(10, 5));
  inc.update(data.substr(15));
  EXPECT_EQ(inc.digest(), fnv1a64(data));
}

TEST(Fnv1a64, IncrementalMatchesOneShotAcrossArbitrarySplits) {
  // Property: however a byte stream is sliced into update() calls —
  // including empty and single-byte chunks — the digest equals the one-shot
  // hash of the concatenation. This is what lets the streaming getfile/
  // putfile paths digest chunk-by-chunk and still agree with the peer's
  // whole-buffer hash.
  Rng rng(0x5EED5);
  for (int round = 0; round < 200; round++) {
    std::string data;
    size_t len = rng.below(4096);
    data.reserve(len);
    for (size_t i = 0; i < len; i++) {
      data.push_back(static_cast<char>(rng.next()));
    }
    Fnv1a64 inc;
    size_t at = 0;
    while (at < data.size()) {
      // Chunk sizes biased toward the degenerate corners: 0 and 1 bytes.
      size_t chunk;
      switch (rng.below(4)) {
        case 0: chunk = 0; break;
        case 1: chunk = 1; break;
        default: chunk = rng.below(data.size() - at + 1); break;
      }
      inc.update(data.data() + at, chunk);
      at += chunk;
    }
    inc.update(data.data() + at, 0);  // trailing empty update is a no-op
    EXPECT_EQ(inc.digest(), fnv1a64(data)) << "round " << round;
  }
  // The empty stream: zero updates == one empty update == one-shot of "".
  Fnv1a64 empty;
  EXPECT_EQ(empty.digest(), fnv1a64(""));
}

TEST(Fnv1a64, SensitiveToEveryByte) {
  std::string a(100, 'x');
  for (size_t i = 0; i < a.size(); i += 13) {
    std::string b = a;
    b[i] = 'y';
    EXPECT_NE(fnv1a64(a), fnv1a64(b)) << "byte " << i;
  }
}

TEST(WeakMac, DeterministicAndHexShaped) {
  std::string tag = weak_mac("ca-key", "dn|12345|nd-ca");
  EXPECT_EQ(tag.size(), 16u);
  EXPECT_EQ(tag, weak_mac("ca-key", "dn|12345|nd-ca"));
}

TEST(WeakMac, KeySeparation) {
  // The unforgeability property the simulated GSI/Kerberos rely on: a
  // different key yields a different tag for the same message.
  EXPECT_NE(weak_mac("key1", "msg"), weak_mac("key2", "msg"));
  EXPECT_NE(weak_mac("key", "msg1"), weak_mac("key", "msg2"));
}

TEST(WeakMac, NoTrivialConcatenationConfusion) {
  // ("ab","c") and ("a","bc") must not collide: field boundaries matter.
  EXPECT_NE(weak_mac("ab", "c"), weak_mac("a", "bc"));
}

TEST(HashToHex, Formats) {
  EXPECT_EQ(hash_to_hex(0), "0000000000000000");
  EXPECT_EQ(hash_to_hex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(hash_to_hex(UINT64_MAX), "ffffffffffffffff");
}

TEST(HexToHash, RoundTripsAndRejectsGarbage) {
  Rng rng(0xA11CE);
  for (int round = 0; round < 100; round++) {
    uint64_t digest = rng.next();
    auto back = hex_to_hash(hash_to_hex(digest));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, digest);
  }
  // The wire token is exactly 16 lowercase hex digits; anything else is a
  // malformed digest, not a value.
  EXPECT_FALSE(hex_to_hash("").has_value());
  EXPECT_FALSE(hex_to_hash("deadbeef").has_value());           // too short
  EXPECT_FALSE(hex_to_hash("00000000deadbeef0").has_value());  // too long
  EXPECT_FALSE(hex_to_hash("NOTAHEXNOTAHEX!!").has_value());
  EXPECT_FALSE(hex_to_hash("00000000DEADBEEF").has_value());   // upper case
  EXPECT_FALSE(hex_to_hash("0000 000deadbeef").has_value());
}

}  // namespace
}  // namespace tss
