// Catalog-driven pool discovery: the §2 loop of report -> discover -> build
// an abstraction, including the staleness handling §4 requires.
#include "adapter/pool.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/dist.h"
#include "fs/local.h"

namespace tss::adapter {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/pool_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    catalog_ = std::make_unique<catalog::CatalogServer>(
        catalog::CatalogServer::Options{});
    ASSERT_TRUE(catalog_->start().ok());
    options_.credentials = {
        std::make_shared<auth::HostnameClientCredential>()};
    options_.retry.max_attempts = 1;
    options_.retry.base_delay = 5 * kMillisecond;
  }
  void TearDown() override {
    catalog_->stop();
    for (auto& s : servers_) s->stop();
    std::filesystem::remove_all(base_);
  }

  // Starts a server and registers it with the catalog under `name`,
  // advertising `free_bytes` (the advertised number is what the policy
  // filters on; the probe sees the real filesystem).
  void add_server(const std::string& name, uint64_t free_bytes,
                  const std::string& owner = "unix:labmate") {
    std::string root = base_ + "/" + name;
    std::filesystem::create_directories(root);
    chirp::ServerOptions options;
    options.owner = owner;
    options.root_acl =
        acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    servers_.push_back(std::make_unique<chirp::Server>(
        options, std::make_unique<chirp::PosixBackend>(root),
        std::move(auth)));
    ASSERT_TRUE(servers_.back()->start().ok());

    catalog::ServerReport report;
    report.name = name;
    report.owner = owner;
    report.address = servers_.back()->endpoint();
    report.total_bytes = free_bytes * 2;
    report.free_bytes = free_bytes;
    catalog_->accept_report(report);
  }

  std::string base_;
  std::unique_ptr<catalog::CatalogServer> catalog_;
  std::vector<std::unique_ptr<chirp::Server>> servers_;
  PoolOptions options_;
  static inline int counter_ = 0;
};

TEST_F(PoolTest, DiscoversAllMatchingServers) {
  add_server("s1", 10 << 20);
  add_server("s2", 20 << 20);
  add_server("s3", 30 << 20);
  auto pool = discover_pool(catalog_->endpoint(), PoolPolicy{}, options_);
  ASSERT_TRUE(pool.ok()) << pool.error().to_string();
  EXPECT_EQ(pool.value().servers.size(), 3u);
  EXPECT_TRUE(pool.value().skipped.empty());
}

TEST_F(PoolTest, PolicyFiltersBySpaceAndOwner) {
  add_server("small", 1 << 20, "unix:stranger");
  add_server("big-trusted", 100 << 20, "unix:labmate");
  add_server("big-untrusted", 100 << 20, "unix:stranger");

  PoolPolicy policy;
  policy.min_free_bytes = 50 << 20;
  policy.owner_pattern = "unix:labmate";
  auto pool = discover_pool(catalog_->endpoint(), policy, options_);
  ASSERT_TRUE(pool.ok());
  ASSERT_EQ(pool.value().servers.size(), 1u);
  EXPECT_TRUE(pool.value().servers.count("big-trusted"));
}

TEST_F(PoolTest, MaxServersKeepsTheRoomiest) {
  add_server("s10", 10 << 20);
  add_server("s30", 30 << 20);
  add_server("s20", 20 << 20);
  PoolPolicy policy;
  policy.max_servers = 2;
  auto pool = discover_pool(catalog_->endpoint(), policy, options_);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool.value().servers.size(), 2u);
  EXPECT_TRUE(pool.value().servers.count("s30"));
  EXPECT_TRUE(pool.value().servers.count("s20"));
}

TEST_F(PoolTest, StaleCatalogEntriesAreSkippedNotFatal) {
  add_server("alive", 10 << 20);
  add_server("doomed", 10 << 20);
  // "doomed" dies after reporting — the catalog doesn't know yet.
  servers_[1]->stop();
  auto pool = discover_pool(catalog_->endpoint(), PoolPolicy{}, options_);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool.value().servers.size(), 1u);
  ASSERT_EQ(pool.value().skipped.size(), 1u);
  EXPECT_EQ(pool.value().skipped[0].name, "doomed");
  // The skip carries the reason, not just the name.
  EXPECT_NE(pool.value().skipped[0].reason.code, 0);
  EXPECT_FALSE(pool.value().skipped[0].reason.to_string().empty());
}

TEST_F(PoolTest, EmptyResultIsAnError) {
  auto pool = discover_pool(catalog_->endpoint(), PoolPolicy{}, options_);
  ASSERT_FALSE(pool.ok());
  EXPECT_EQ(pool.error().code, ENODEV);
}

TEST_F(PoolTest, DiscoveredPoolDrivesADpfs) {
  // The full §2 flow: servers report in, a user discovers them and builds a
  // distributed private filesystem, all without naming any server.
  add_server("disk-a", 10 << 20);
  add_server("disk-b", 10 << 20);
  auto pool = discover_pool(catalog_->endpoint(), PoolPolicy{}, options_);
  ASSERT_TRUE(pool.ok());

  std::string metadata_dir = base_ + "/tree";
  std::filesystem::create_directories(metadata_dir);
  fs::LocalFs metadata(metadata_dir);
  fs::DistFs::Options dist_options;
  dist_options.volume = "/pool";
  dist_options.name_seed = 3;
  fs::DistFs dpfs(&metadata, pool.value().servers, dist_options);
  ASSERT_TRUE(dpfs.format().ok());
  ASSERT_TRUE(dpfs.write_file("/found-you", "via the catalog").ok());
  EXPECT_EQ(dpfs.read_file("/found-you").value(), "via the catalog");
}

}  // namespace
}  // namespace tss::adapter
