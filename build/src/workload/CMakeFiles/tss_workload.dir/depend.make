# Empty dependencies file for tss_workload.
# This may be replaced when dependencies are built.
