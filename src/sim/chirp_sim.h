// Chirp over the simulated cluster.
//
// SimChirpServer owns a SimBackend plus the *real* server-side machinery
// (auth registry, ACL-enforcing SessionCore); SimChirpClient issues RPCs as
// coroutines: the request line is produced by the real encoder, shipped
// through the cluster's NIC/backplane reservations, parsed by the real
// parser, dispatched through the real SessionCore against the timed
// backend, and the response travels back the same way. What differs from
// the TCP stack is only the transport — which is the point: the simulated
// experiments exercise the same protocol code as the live system.
#pragma once

#include <memory>
#include <string>

#include "auth/auth.h"
#include "chirp/session.h"
#include "obs/metrics.h"
#include "sim/cluster.h"
#include "sim/sim_backend.h"

namespace tss::sim {

class SimChirpServer {
 public:
  struct Options {
    std::string owner = "unix:simowner";
    std::string root_acl_text = "hostname:* rwldav(rwlda)\n";
    SimBackend::Config backend;
    // CPU charged per RPC on top of backend time (request parsing,
    // dispatch, response marshalling in the user-level server).
    Nanos rpc_cpu_cost = 15 * kMicrosecond;
    // Cooperative-cache deflection policy (see chirp/redirect.h). Not
    // owned; null = never redirect. A cooperative sim client that offers
    // the redirect capability gets hot-file getfiles deflected exactly as
    // a TCP client would.
    chirp::RedirectPolicy* redirect = nullptr;
    // Tenancy, enforced by SessionCore exactly as on the TCP server: a
    // space allocation tracker enabling the "alloc" capability, and
    // per-subject request quotas (inject a Sim clock for determinism).
    // Both borrowed, null = off.
    chirp::AllocTracker* alloc = nullptr;
    chirp::QuotaManager* quotas = nullptr;
  };

  SimChirpServer(Cluster& cluster, Options options);

  int node() const { return node_; }
  SimBackend& backend() { return *backend_; }
  const Options& options() const { return options_; }
  chirp::ServerConfig& config() { return config_; }
  auth::ServerAuth& auth() { return *auth_; }

  // Virtual-clock observability. SessionCore's own instrumentation stays
  // off in simulation (config_.metrics is null — dispatch is synchronous,
  // so wall-clock latencies would be meaningless); instead every RPC turn
  // records its *engine-time* latency here under the same metric names the
  // TCP server uses, so real and simulated runs emit identical snapshots.
  obs::Registry& metrics() { return metrics_; }
  void record_rpc(chirp::Op op, Nanos start, Nanos duration,
                  uint64_t bytes_in, uint64_t bytes_out, int err,
                  const std::string& subject);

 private:
  Cluster& cluster_;
  Options options_;
  int node_;
  std::unique_ptr<SimBackend> backend_;
  std::unique_ptr<auth::ServerAuth> auth_;
  chirp::ServerConfig config_;
  obs::Registry metrics_;
  obs::Histogram* op_latency_[chirp::kOpCount] = {};
  obs::Counter* requests_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
};

// One client connection: its own node (or a shared client node) and its own
// authenticated SessionCore on the server, mirroring the per-connection
// state of the TCP server.
class SimChirpClient {
 public:
  // `client_node` is the cluster node the client runs on. `client_host` is
  // the identity the hostname method will see ("node3" etc.).
  // `cooperative` offers the redirect capability at the version handshake,
  // so the server may deflect hot getfiles (see getfile_hint).
  SimChirpClient(Cluster& cluster, int client_node, SimChirpServer& server,
                 std::string client_host, bool cooperative = false);

  // Establishes the session: TCP handshake + version + auth, all charged as
  // message exchanges.
  Task<Result<void>> connect();

  // --- RPCs (each is request transfer + server work + response transfer) ---
  Task<Result<int64_t>> open(std::string path, chirp::OpenFlags flags,
                             uint32_t mode);
  // Reads up to `size` bytes at `offset`; payload bytes are *timed* but
  // discarded (the simulator does not materialize bulk data for the
  // caller). Returns bytes read.
  Task<Result<uint64_t>> pread(int64_t fd, uint64_t size, int64_t offset);
  // Writes `size` synthetic bytes at `offset`.
  Task<Result<uint64_t>> pwrite(int64_t fd, uint64_t size, int64_t offset);
  Task<Result<void>> close_fd(int64_t fd);
  Task<Result<chirp::StatInfo>> stat(std::string path);
  Task<Result<void>> mkdir(std::string path);
  Task<Result<void>> unlink(std::string path);
  // Whole-file fetch returning real content — used for stub files, whose
  // bytes matter to the client.
  Task<Result<std::string>> getfile(std::string path);
  // Cooperative whole-file fetch: either the bytes or the server's
  // deflection hint (never both). Callers follow the hint themselves by
  // fetching from the named sibling — the sim bench's fan-out loop.
  struct Fetch {
    std::string data;
    std::optional<chirp::Redirect> redirect;
  };
  Task<Result<Fetch>> getfile_hint(std::string path);
  // Whole-file store of real content (stubs, configs).
  Task<Result<void>> putfile(std::string path, std::string data);
  // Whole-file synthetic store of `size` bytes (bulk data).
  Task<Result<void>> putfile_synthetic(std::string path, uint64_t size);

  uint64_t rpcs_issued() const { return rpcs_; }

 private:
  struct CallResult {
    chirp::Response response;
    std::string payload;
  };
  // The generic RPC turn. `request_payload_size` models pwrite/putfile
  // bodies (synthetic); response payload bytes are timed from the session's
  // declared payload size.
  Task<Result<CallResult>> call(chirp::Request request,
                                uint64_t request_payload_size,
                                const char* request_payload_data = nullptr);

  Cluster& cluster_;
  int client_node_;
  SimChirpServer& server_;
  std::string client_host_;
  std::unique_ptr<chirp::SessionCore> session_;
  uint64_t rpcs_ = 0;
  bool connected_ = false;
  bool cooperative_ = false;
};

}  // namespace tss::sim
