# Empty compiler generated dependencies file for tss_catalog.
# This may be replaced when dependencies are built.
