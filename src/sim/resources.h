// Simulated hardware resources: rate-limited serializers, disks, and buffer
// caches.
//
// Each resource keeps a `next_free` reservation timeline: concurrent users
// serialize through it, so aggregate throughput converges to the resource's
// configured rate — which is how saturation effects (a 1 Gb/s port, the
// 300 MB/s backplane, a 10 MB/s disk) arise from the model rather than being
// scripted into the benchmarks.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "sim/engine.h"
#include "util/clock.h"

namespace tss::sim {

// Serializes work at a fixed byte rate (a NIC port, a switch backplane).
class RateQueue {
 public:
  RateQueue(Engine& engine, double bytes_per_sec)
      : engine_(engine), bytes_per_sec_(bytes_per_sec) {}

  // Reserves service for `bytes` (plus optional fixed per-request service
  // overhead, e.g. a disk seek), starting no earlier than `earliest`;
  // returns the completion time.
  Nanos reserve(Nanos earliest, uint64_t bytes, Nanos extra_service = 0);

  // Total bytes ever reserved (for utilization reporting).
  uint64_t total_bytes() const { return total_bytes_; }
  double bytes_per_sec() const { return bytes_per_sec_; }

 private:
  Engine& engine_;
  double bytes_per_sec_;
  Nanos next_free_ = 0;
  uint64_t total_bytes_ = 0;
};

// A disk: streaming rate plus a seek penalty for non-sequential access.
// The paper's cluster nodes sustain ~10 MB/s streaming (Figure 8).
class Disk {
 public:
  struct Config {
    double stream_bytes_per_sec = 10.0 * 1000 * 1000;
    Nanos seek_time = 8 * kMillisecond;  // average seek + rotational delay
  };

  Disk(Engine& engine, Config config)
      : queue_(engine, config.stream_bytes_per_sec), config_(config) {}

  // Reserves a read/write of `bytes`; `sequential` skips the seek charge
  // (the next request after this one at the following offset is sequential).
  Nanos access(Nanos earliest, uint64_t bytes, bool sequential);

  uint64_t total_bytes() const { return queue_.total_bytes(); }

 private:
  RateQueue queue_;
  Config config_;
};

// Per-server LRU buffer cache over 64 KB pages. The paper's servers have
// 512 MB RAM; whether a dataset fits here is exactly what separates the
// net-bound, mixed, and disk-bound regimes of Figures 6-8.
class BufferCache {
 public:
  static constexpr uint64_t kPageSize = 64 * 1024;

  explicit BufferCache(uint64_t capacity_bytes)
      : capacity_pages_(capacity_bytes / kPageSize) {}

  struct AccessResult {
    uint64_t hit_bytes = 0;
    uint64_t miss_bytes = 0;
  };

  // Touches the pages covering [offset, offset+length) of file `file_id`.
  // Missing pages are inserted (evicting LRU pages). Returns the hit/miss
  // byte split for timing.
  AccessResult access(uint64_t file_id, uint64_t offset, uint64_t length);

  // Drops every page of `file_id` (file deletion).
  void invalidate(uint64_t file_id);

  uint64_t resident_pages() const { return pages_.size(); }
  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  using PageKey = uint64_t;  // (file_id << 24) | page_index — see access()
  static PageKey key(uint64_t file_id, uint64_t page) {
    return (file_id << 24) | (page & 0xFFFFFF);
  }

  uint64_t capacity_pages_;
  std::list<PageKey> lru_;  // front = most recent
  std::unordered_map<PageKey, std::list<PageKey>::iterator> pages_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace tss::sim
