// tss_catalog_server — run a storage catalog.
//
//   tss_catalog_server [--port N] [--host ADDR] [--timeout SECS]
//
// Accepts "report ..." lines from file servers and serves "list text|json"
// listings; records older than --timeout (default 300 s) are evicted. Runs
// until SIGINT/SIGTERM.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "catalog/catalog.h"
#include "tools/flags.h"

namespace {
std::atomic<bool> g_stop{false};
void handle_signal(int) { g_stop.store(true); }
}  // namespace

int main(int argc, char** argv) {
  using namespace tss;
  auto flags =
      tools::Flags::parse(argc, argv, {"port", "host", "timeout"});
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\nusage: tss_catalog_server [--port N] "
                         "[--host ADDR] [--timeout SECS]\n",
                 flags.error().to_string().c_str());
    return 2;
  }
  const tools::Flags& f = flags.value();

  catalog::CatalogServer::Options options;
  options.host = f.get_or("host", "127.0.0.1");
  auto port = f.get_int("port", 0);
  auto timeout = f.get_int("timeout", 300);
  if (!port.ok() || !timeout.ok()) {
    std::fprintf(stderr, "bad numeric flag\n");
    return 2;
  }
  options.port = static_cast<uint16_t>(port.value());
  options.timeout = timeout.value() * kSecond;

  catalog::CatalogServer server(options);
  auto started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start: %s\n",
                 started.error().to_string().c_str());
    return 1;
  }
  std::printf("tss_catalog_server: listening on %s (timeout %llds)\n",
              server.endpoint().to_string().c_str(),
              static_cast<long long>(timeout.value()));
  std::fflush(stdout);

  ::signal(SIGINT, handle_signal);
  ::signal(SIGTERM, handle_signal);
  while (!g_stop.load()) {
    ::usleep(100 * 1000);
  }
  server.stop();
  return 0;
}
