file(REMOVE_RECURSE
  "libtss_sim.a"
)
