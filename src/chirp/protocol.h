// The Chirp wire protocol.
//
// "Each file server exports a Unix-like protocol over TCP" (§4). Requests are
// single ASCII lines — an RPC name followed by space-separated arguments,
// with file names percent-encoded — optionally followed by a binary payload
// whose length was named on the line. Responses are an "ok ..." line (plus
// payload) or an "error <errno> <message>".
//
// All file data travels on the same connection as control, which lets one
// TCP window serve many files back-to-back (the paper contrasts this with
// FTP's per-file data connections and their repeated slow starts).
//
// This header is deliberately sans-IO: encoding/parsing only. The same code
// drives the real TCP server/client and the discrete-event simulator, which
// is what makes the simulated experiments measure the actual protocol.
//
// RPC set (a superset of the fragment printed in the paper):
//   version <n> [cap...]                  -> ok <n> [cap...]
//   auth <method> <arg>                      (challenge rounds may follow)
//   open <path> <flags> <mode>            -> ok <fd>
//   pread <fd> <length> <offset>          -> ok <n> [sum]  + n payload bytes
//   pwrite <fd> <length> <offset> [sum]   -> (length payload bytes)  ok <n>
//   fsync <fd>                            -> ok
//   close <fd>                            -> ok
//   stat <path>                           -> ok <size> <mode> <mtime> <inode> <f|d>
//   fstat <fd>                            -> ok <size> <mode> <mtime> <inode> <f|d>
//   unlink <path>                         -> ok
//   rename <old> <new>                    -> ok
//   mkdir <path> <mode>                   -> ok
//   rmdir <path>                          -> ok
//   getdir <path>                         -> ok <count>  + count listing lines
//   getfile <path>                        -> ok <size>  + size payload bytes
//                                            [+ "sum <16hex>" trailer line]
//                                            | redirect <host> <port> <ttl_ms>
//   putfile <path> <mode> <size>          -> (size payload bytes
//                                            [+ "sum <16hex>" trailer])  ok
//   getacl <path>                         -> ok <bytes>  + ACL text payload
//   setacl <path> <subject> <rights>      -> ok
//   whoami                                -> ok <subject>
//   statfs                                -> ok <total_bytes> <free_bytes>
//   truncate <path> <size>                -> ok
//   stats                                 -> ok <bytes>  + metrics snapshot
//                                            (text; see docs/OBSERVABILITY.md)
//   mkalloc <path> <limit>                -> ok
//   lsalloc <path>                        -> ok <urlenc root> <limit> <inuse>
//
// Capabilities: `version` may carry capability tokens after the number; the
// server echoes back the subset it supports and both sides enable them for
// the rest of the session. Old peers ignore (or never send) the extra tokens,
// so mixed-version deployments interoperate. Two capabilities exist today:
//
//  * "checksum": pread replies and pwrite requests gain an FNV-1a64 digest of
//    the payload as a trailing 16-hex token, and getfile/putfile payloads are
//    followed by a one-line "sum <16hex>" trailer (the digest of a streamed
//    transfer is only known once the last byte has been sent). See
//    docs/RECOVERY.md for what the client does with a mismatch.
//
//  * "redirect": the server may answer a getfile for an over-threshold hot
//    file with `redirect <host> <port> <ttl_ms>` instead of data, deflecting
//    the client to a sibling cache that also holds the file (cf. cctools'
//    chirp_multi/chirp_global host indirection). The line is control only —
//    no payload follows — and is legal *only* as a getfile reply to a peer
//    that offered the capability; anywhere else it is EPROTO. Clients that
//    never offer the capability are always served directly. See
//    docs/ARCHITECTURE-CLIENT.md for the cooperative-cache lifecycle.
//
//  * "alloc": the server tracks hierarchical space allocations (see
//    docs/MULTITENANCY.md) and accepts the mkalloc/lsalloc RPCs; a writer
//    exceeding its allocation is refused with a typed ENOSPC. The server
//    echoes the token only when an allocation tracker is actually enabled;
//    peers that never offer it see an unchanged protocol (mkalloc/lsalloc
//    without the negotiated capability are ENOSYS, exactly like an unknown
//    RPC on an old server).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace tss::chirp {

constexpr int kProtocolVersion = 1;

// Capability token: per-extent FNV-1a64 checksums on data-carrying RPCs.
inline constexpr const char* kCapChecksum = "checksum";

// Capability token: the server may deflect hot getfiles to a sibling cache.
inline constexpr const char* kCapRedirect = "redirect";

// Capability token: space allocations are tracked; mkalloc/lsalloc enabled.
inline constexpr const char* kCapAlloc = "alloc";

// A getfile deflection: fetch this path from `host:port` instead, and trust
// the hint for `ttl_ms` before asking the origin again.
struct Redirect {
  std::string host;
  uint16_t port = 0;
  uint64_t ttl_ms = 0;
};

// Maximum size of a single pread/pwrite payload. Larger application reads
// are segmented by the client; getfile/putfile stream without this limit.
constexpr uint64_t kMaxRpcPayload = 16 * 1024 * 1024;

enum class Op {
  kVersion,
  kAuth,
  kOpen,
  kPread,
  kPwrite,
  kFsync,
  kClose,
  kStat,
  kFstat,
  kUnlink,
  kRename,
  kMkdir,
  kRmdir,
  kGetdir,
  kGetfile,
  kPutfile,
  kGetacl,
  kSetacl,
  kWhoami,
  kStatfs,
  kTruncate,
  kStats,
  kMkalloc,
  kLsalloc,
};

// Number of RPC ops (kLsalloc is last); sized for per-op metric tables.
constexpr int kOpCount = static_cast<int>(Op::kLsalloc) + 1;

const char* op_name(Op op);

// Symbolic open flags: 'r' read, 'w' write, 'c' create, 't' truncate,
// 'x' exclusive, 'a' append, 's' sync. E.g. "wctx" = create-exclusive write.
struct OpenFlags {
  bool read = false;
  bool write = false;
  bool create = false;
  bool truncate = false;
  bool exclusive = false;
  bool append = false;
  bool sync = false;

  std::string encode() const;
  static Result<OpenFlags> parse(std::string_view s);
  int to_posix() const;
  static OpenFlags from_posix(int flags);
};

// File metadata carried by stat/fstat and long directory listings.
struct StatInfo {
  uint64_t size = 0;
  uint32_t mode = 0;     // permission bits only
  int64_t mtime = 0;     // unix seconds
  uint64_t inode = 0;    // identity for the adapter's stale-handle check
  bool is_dir = false;

  std::string encode() const;
  static Result<StatInfo> parse(const std::vector<std::string>& args,
                                size_t first);
};

// One entry of a getdir listing line: "<urlenc name> <stat fields>".
struct DirEntry {
  std::string name;
  StatInfo info;
};
std::string encode_dirent(const DirEntry& e);
Result<DirEntry> parse_dirent(const std::string& line);

// A parsed request. `payload_len` is how many payload bytes follow the line
// (pwrite/putfile); the transport layer delivers them separately.
struct Request {
  Op op = Op::kVersion;
  std::string path;
  std::string path2;      // rename target
  int64_t fd = -1;
  uint64_t length = 0;    // pread/pwrite/putfile byte count
  int64_t offset = 0;
  uint32_t mode = 0644;
  OpenFlags flags;
  int version = kProtocolVersion;
  std::vector<std::string> caps;  // version: capability tokens offered
  bool has_checksum = false;      // pwrite: digest token present on the line
  uint64_t checksum = 0;          // pwrite: FNV-1a64 of the payload
  std::string auth_method;
  std::string auth_arg;
  std::string acl_subject;
  std::string acl_rights;

  // Payload byte count that follows the request line on the wire.
  uint64_t payload_len() const;
};

// Client-side: encodes a request to its wire line (no trailing newline).
std::string encode_request(const Request& r);

// Server-side: parses one wire line into a Request.
Result<Request> parse_request_line(const std::string& line);

// A response. On success `args` carries the ok-line tokens after "ok";
// `payload_size` names the bytes that follow (pread/getfile/getacl/getdir
// carry payloads or extra lines).
struct Response {
  int err = 0;            // errno-style; 0 == ok
  std::string message;    // error text (urlencoded on the wire)
  std::vector<std::string> args;
  uint64_t payload_size = 0;
  // Set on a "redirect <host> <port> <ttl_ms>" reply (getfile only, redirect
  // capability negotiated). A redirect carries no args and no payload.
  std::optional<Redirect> redirect;

  bool ok() const { return err == 0; }
  static Response failure(const Error& e) {
    return Response{e.code, e.message, {}, 0, {}};
  }
  static Response failure(int err, std::string msg) {
    return Response{err, std::move(msg), {}, 0, {}};
  }
};

// Encodes the response status line (no trailing newline).
std::string encode_response_line(const Response& r);

// Client-side: parses a response status line.
Result<Response> parse_response_line(const std::string& line);

// The "sum <16hex>" trailer line that follows a streamed getfile/putfile
// payload when the checksum capability is negotiated (no trailing newline).
std::string encode_sum_line(uint64_t digest);

// Parses a trailer line. A peer that negotiated checksums and then sends a
// malformed or missing trailer is violating the protocol: EPROTO.
Result<uint64_t> parse_sum_line(const std::string& line);

}  // namespace tss::chirp
