#include "net/event_loop.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/sendfile.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <unordered_map>

namespace tss::net {

namespace detail {

// --- Mailbox ----------------------------------------------------------------

void Mailbox::post(std::function<void()> task) {
  std::lock_guard<std::mutex> lk(mutex);
  if (stopped) return;  // driver gone; the task's captures clean up via RAII
  tasks.push_back(std::move(task));
  if (wake_fd >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof one);
  }
}

// --- ConnCore ---------------------------------------------------------------

// One entry of a connection's output queue: a byte segment (owned string or
// pooled buffer) or a file region streamed via sendfile. Segments drain
// strictly in order; a region whose file shrinks mid-stream switches to
// zero-padding so the promised byte count still reaches the peer.
struct OutSeg {
  std::string data;       // byte segment (when buf/file are empty)
  PoolBuffer buf;         // pooled byte segment; `len` bytes valid
  size_t len = 0;
  Fd file;                // owned descriptor for a file region
  uint64_t file_off = 0;
  uint64_t file_len = 0;  // remaining region bytes
  bool pad_zeros = false;    // file hit EOF early: stream zeros instead
  bool no_sendfile = false;  // sendfile refused this fd: pread+send fallback

  bool is_file() const { return file.valid(); }
  const char* bytes() const { return buf.valid() ? buf.data() : data.data(); }
  size_t size() const { return buf.valid() ? len : data.size(); }
};

// The concrete connection: transport state shared by both drivers (reactor
// worker and blocking pump). Single-threaded — only the owning driver touches
// it; other threads go through ConnRef::post.
class ConnCore final : public Conn,
                       public std::enable_shared_from_this<ConnCore> {
 public:
  // Writes below this keep appending to the tail segment (one iovec, one
  // allocation for a burst of small lines); larger segments are left intact
  // so appends never reallocate a bulk payload.
  static constexpr size_t kCoalesceLimit = 16 * 1024;

  FrameDecoder& input() override { return in_; }
  bool input_eof() const override { return eof_; }

  void write(std::string_view bytes) override {
    if (dead_ || bytes.empty()) return;
    out_bytes_ += bytes.size();
    if (!out_.empty() && !out_.back().is_file() && !out_.back().buf.valid() &&
        out_.back().data.size() + bytes.size() <= kCoalesceLimit) {
      out_.back().data.append(bytes);
      return;
    }
    OutSeg seg;
    seg.data.assign(bytes);
    out_.push_back(std::move(seg));
  }

  void write_owned(std::string&& bytes) override {
    if (dead_ || bytes.empty()) return;
    if (bytes.size() <= kCoalesceLimit) {
      write(std::string_view(bytes));
      return;
    }
    out_bytes_ += bytes.size();
    OutSeg seg;
    seg.data = std::move(bytes);
    out_.push_back(std::move(seg));
  }

  void write_buffer(PoolBuffer&& buf, size_t len) override {
    if (dead_ || len == 0 || !buf.valid()) return;
    out_bytes_ += len;
    OutSeg seg;
    seg.buf = std::move(buf);
    seg.len = len;
    out_.push_back(std::move(seg));
  }

  bool can_stream_file() const override { return true; }

  void write_file_region(Fd file, uint64_t offset, uint64_t len) override {
    if (dead_ || len == 0 || !file.valid()) return;
    out_bytes_ += len;
    OutSeg seg;
    seg.file = std::move(file);
    seg.file_off = offset;
    seg.file_len = len;
    out_.push_back(std::move(seg));
  }

  size_t output_pending() const override { return out_bytes_; }
  void want_output_space(bool want) override { want_space_ = want; }

  // Drops `n` flushed bytes off the head of the queue (byte segments only;
  // file regions account their own progress).
  void consume_output(size_t n) {
    out_bytes_ -= n;
    while (n > 0) {
      OutSeg& head = out_.front();
      size_t remaining = head.size() - head_pos_;
      size_t take = std::min(n, remaining);
      head_pos_ += take;
      n -= take;
      if (head_pos_ == head.size()) {
        out_.pop_front();
        head_pos_ = 0;
      }
    }
  }

  void set_timeout(Nanos timeout) override { timeout_ = timeout; }
  void close() override { closing_ = true; }

  Result<Endpoint> peer() const override { return sock_.peer(); }
  ConnRef ref() override { return ConnRef(weak_from_this(), mailbox_); }

  // State below is driver-owned; public because ConnCore is private to this
  // translation unit.
  TcpSocket sock_;
  std::shared_ptr<ReactorSession> session_;
  std::shared_ptr<Mailbox> mailbox_;
  std::function<void(const std::shared_ptr<ConnCore>&)> pump_fn_;

  FrameDecoder in_;
  std::deque<OutSeg> out_;
  size_t head_pos_ = 0;   // sent prefix of out_.front() (byte segments)
  size_t out_bytes_ = 0;  // total pending across all segments

  bool eof_ = false;       // peer half-closed
  bool closing_ = false;   // graceful close requested: flush, then die
  bool dead_ = false;      // torn down; session gone
  bool want_space_ = false;
  bool want_write_ = false;  // last flush hit EAGAIN; poll for writability

  Nanos timeout_ = 0;
  Nanos last_activity_ = 0;
  // Reactor-only timer bookkeeping (lazy deadline, see Worker::arm_timer).
  bool timer_armed_ = false;
  Nanos timer_deadline_ = 0;

  // Registered poller interest (reactor only), to skip no-op updates.
  bool reg_read_ = false;
  bool reg_write_ = false;
};

// --- ConnDriver -------------------------------------------------------------

// Shared pump logic for both execution engines. A driver implements teardown
// and (for the reactor) interest/timer updates; everything else — flushing
// with watermarks, read-and-dispatch, timeout semantics — is identical, which
// is what keeps the two modes observably equivalent.
class ConnDriver {
 public:
  virtual ~ConnDriver() = default;

  virtual void teardown(const std::shared_ptr<ConnCore>& c) = 0;
  virtual void update_interest(ConnCore&) {}
  virtual void arm_timer(const std::shared_ptr<ConnCore>&, Nanos) {}

  obs::Counter* stalls_ = nullptr;

  // Gather at most this many byte segments per sendmsg. UIO_MAXIOV is 1024;
  // 64 already amortizes the syscall and keeps the stack iovec small.
  static constexpr int kMaxIov = 64;

  void note_stall(ConnCore& c) {
    if (!c.want_write_) {
      c.want_write_ = true;
      if (stalls_) stalls_->add();
    }
  }

  // Streams the file region at the head of the queue: sendfile where the
  // kernel allows it, pread+send otherwise, zeros once the file runs short of
  // its promised length. Returns +1 when the region completed (caller
  // continues with the next segment), 0 on EAGAIN (socket full), -1 on a
  // fatal transport or file error.
  int flush_file(ConnCore& c, Nanos now) {
    OutSeg& seg = c.out_.front();
    int sfd = c.sock_.raw_fd();
    while (seg.file_len > 0) {
      ssize_t n;
      if (seg.pad_zeros) {
        // The file shrank after the length was promised; the stream contract
        // (exactly `len` bytes) wins, matching the read-path behavior.
        static const char kZeros[16 * 1024] = {};
        n = ::send(sfd, kZeros,
                   std::min<uint64_t>(seg.file_len, sizeof kZeros),
                   MSG_NOSIGNAL);
      } else if (!seg.no_sendfile) {
#ifdef __linux__
        off_t off = static_cast<off_t>(seg.file_off);
        size_t len = std::min<uint64_t>(seg.file_len, 1 << 20);
        n = ::sendfile(sfd, seg.file.get(), &off, len);
        if (n < 0 && (errno == EINVAL || errno == ENOSYS ||
                      errno == EOPNOTSUPP || errno == ENOTSUP)) {
          seg.no_sendfile = true;  // fd type sendfile can't serve
          continue;
        }
        if (n == 0) {
          seg.pad_zeros = true;  // EOF before the region end: file shrank
          continue;
        }
        if (n > 0) seg.file_off = static_cast<uint64_t>(off);
#else
        seg.no_sendfile = true;
        continue;
#endif
      } else {
        char buf[64 * 1024];
        size_t len = std::min<uint64_t>(seg.file_len, sizeof buf);
        ssize_t r = ::pread(seg.file.get(), buf, len,
                            static_cast<off_t>(seg.file_off));
        if (r < 0) {
          if (errno == EINTR) continue;
          return -1;  // media error mid-stream: don't mask it with zeros
        }
        if (r == 0) {
          seg.pad_zeros = true;
          continue;
        }
        n = ::send(sfd, buf, static_cast<size_t>(r), MSG_NOSIGNAL);
        if (n > 0) seg.file_off += static_cast<uint64_t>(n);
      }
      if (n > 0) {
        seg.file_len -= static_cast<uint64_t>(n);
        c.out_bytes_ -= static_cast<size_t>(n);
        c.last_activity_ = now;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        note_stall(c);
        return 0;
      }
      return -1;
    }
    c.out_.pop_front();  // region done; the Fd closes with the segment
    return 1;
  }

  // Sends as much pending output as the socket accepts: byte segments are
  // gathered into one sendmsg (header + payload leave in a single syscall,
  // no concatenation copy), file regions via flush_file. Returns false on a
  // fatal transport error (caller must tear down).
  bool flush(ConnCore& c, Nanos now) {
    while (c.out_bytes_ > 0) {
      if (c.out_.front().is_file()) {
        int rc = flush_file(c, now);
        if (rc < 0) return false;
        if (rc == 0) return true;  // EAGAIN; writability resumes the region
        continue;
      }
      iovec iov[kMaxIov];
      int cnt = 0;
      size_t skip = c.head_pos_;
      for (const OutSeg& s : c.out_) {
        if (s.is_file() || cnt == kMaxIov) break;
        iov[cnt].iov_base = const_cast<char*>(s.bytes() + skip);
        iov[cnt].iov_len = s.size() - skip;
        skip = 0;
        ++cnt;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<decltype(msg.msg_iovlen)>(cnt);
      ssize_t n = ::sendmsg(c.sock_.raw_fd(), &msg, MSG_NOSIGNAL);
      if (n > 0) {
        c.consume_output(static_cast<size_t>(n));
        c.last_activity_ = now;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        note_stall(c);
        return true;
      }
      return false;  // peer reset, broken pipe, ...
    }
    c.want_write_ = false;
    return true;
  }

  // The post-callback engine turn: flush, honor close/EOF, refill streamed
  // output below the low-water mark, then update readiness interest and the
  // progress timer.
  void pump(const std::shared_ptr<ConnCore>& c, Nanos now) {
    if (c->dead_) return;
    for (;;) {
      if (!flush(*c, now)) {
        teardown(c);
        return;
      }
      if (c->eof_ && !c->closing_) c->closing_ = true;
      if (c->closing_) {
        if (c->output_pending() == 0) {
          teardown(c);
          return;
        }
        break;  // writability events keep flushing the tail
      }
      if (c->want_space_ && c->output_pending() <= Conn::kOutputLowWater) {
        size_t before = c->output_pending();
        if (!c->session_->on_output_space(*c)) {
          c->closing_ = true;
          continue;
        }
        if (c->output_pending() > before || c->closing_) continue;
      }
      break;
    }
    update_interest(*c);
    arm_timer(c, now);
  }

  // Drains readable bytes into the decoder (bounded per event so one fast
  // peer can't starve the loop), delivers them to the session, then pumps.
  void read_and_dispatch(const std::shared_ptr<ConnCore>& c, Nanos now) {
    if (c->dead_) return;
    constexpr size_t kChunk = 64 * 1024;
    constexpr size_t kBudget = 256 * 1024;
    size_t got = 0;
    bool fresh_eof = false;
    while (!c->closing_ && !c->eof_ && got < kBudget) {
      char* span = c->in_.writable_span(kChunk);
      ssize_t n = ::recv(c->sock_.raw_fd(), span, kChunk, 0);
      if (n > 0) {
        c->in_.commit(static_cast<size_t>(n));
        got += static_cast<size_t>(n);
        c->last_activity_ = now;
        continue;
      }
      c->in_.commit(0);
      if (n == 0) {
        c->eof_ = true;
        fresh_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      teardown(c);
      return;
    }
    if (got > 0 || fresh_eof) {
      if (!c->session_->on_input(*c)) c->closing_ = true;
    }
    pump(c, now);
  }

  // The no-progress deadline fired (or may have; the wheel entry can be
  // early under lazy re-arming — re-check against the activity stamp).
  void fire_timeout(const std::shared_ptr<ConnCore>& c, Nanos now) {
    if (c->dead_ || c->timeout_ <= 0) return;
    if (now - c->last_activity_ < c->timeout_) {
      arm_timer(c, now);
      return;
    }
    if (c->closing_ || !c->session_->on_timeout(*c)) {
      // A closing connection that can't drain within the deadline is cut
      // off; nothing else will ever tear it down.
      teardown(c);
      return;
    }
    c->last_activity_ = now;  // session chose to keep the connection
    pump(c, now);
  }
};

// --- Pollers ----------------------------------------------------------------

struct ReadyEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
};

// Readiness backend: epoll where available, poll() everywhere. Both are
// level-triggered, which the budgeted read path and partial flushes rely on.
class Poller {
 public:
  virtual ~Poller() = default;
  virtual Result<void> add(int fd, bool want_read, bool want_write) = 0;
  virtual void update(int fd, bool want_read, bool want_write) = 0;
  virtual void remove(int fd) = 0;
  // Fills `out`; returns poll()/epoll_wait() count (0 = timeout).
  virtual int wait(std::vector<ReadyEvent>& out, int timeout_ms) = 0;
  virtual const char* name() const = 0;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  static std::unique_ptr<EpollPoller> create() {
    Fd ep(::epoll_create1(EPOLL_CLOEXEC));
    if (!ep.valid()) return nullptr;
    auto p = std::make_unique<EpollPoller>();
    p->ep_ = std::move(ep);
    return p;
  }

  Result<void> add(int fd, bool want_read, bool want_write) override {
    epoll_event ev = make_event(fd, want_read, want_write);
    if (::epoll_ctl(ep_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Error::from_errno("epoll_ctl add");
    }
    return Result<void>::success();
  }

  void update(int fd, bool want_read, bool want_write) override {
    epoll_event ev = make_event(fd, want_read, want_write);
    ::epoll_ctl(ep_.get(), EPOLL_CTL_MOD, fd, &ev);
  }

  void remove(int fd) override {
    ::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, nullptr);
  }

  int wait(std::vector<ReadyEvent>& out, int timeout_ms) override {
    epoll_event evs[128];
    int n;
    do {
      n = ::epoll_wait(ep_.get(), evs, 128, timeout_ms);
    } while (n < 0 && errno == EINTR);
    out.clear();
    for (int i = 0; i < n; ++i) {
      uint32_t e = evs[i].events;
      out.push_back(ReadyEvent{
          evs[i].data.fd,
          (e & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0,
          (e & (EPOLLOUT | EPOLLERR)) != 0,
      });
    }
    return n;
  }

  const char* name() const override { return "epoll"; }

 private:
  static epoll_event make_event(int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ev;
  }

  Fd ep_;
};
#endif  // __linux__

class PollPoller final : public Poller {
 public:
  Result<void> add(int fd, bool want_read, bool want_write) override {
    interest_[fd] = Interest{want_read, want_write};
    return Result<void>::success();
  }
  void update(int fd, bool want_read, bool want_write) override {
    interest_[fd] = Interest{want_read, want_write};
  }
  void remove(int fd) override { interest_.erase(fd); }

  int wait(std::vector<ReadyEvent>& out, int timeout_ms) override {
    pfds_.clear();
    for (const auto& [fd, in] : interest_) {
      short events = static_cast<short>((in.read ? POLLIN : 0) |
                                        (in.write ? POLLOUT : 0));
      pfds_.push_back(pollfd{fd, events, 0});
    }
    int n;
    do {
      n = ::poll(pfds_.data(), pfds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    out.clear();
    if (n <= 0) return n;
    for (const auto& p : pfds_) {
      if (p.revents == 0) continue;
      out.push_back(ReadyEvent{
          p.fd,
          (p.revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) != 0,
          (p.revents & (POLLOUT | POLLERR)) != 0,
      });
    }
    return n;
  }

  const char* name() const override { return "poll"; }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };
  std::map<int, Interest> interest_;
  std::vector<pollfd> pfds_;
};

namespace {

std::unique_ptr<Poller> make_poller(bool force_poll) {
  if (const char* env = std::getenv("TSS_REACTOR_POLLER")) {
    if (std::string_view(env) == "poll") force_poll = true;
  }
#ifdef __linux__
  if (!force_poll) {
    if (auto p = EpollPoller::create()) return p;
  }
#endif
  (void)force_poll;
  return std::make_unique<PollPoller>();
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Wake channel for a driver's mailbox: eventfd on Linux, a pipe elsewhere.
struct WakeChannel {
  Fd read_end;
  Fd write_end;  // invalid when eventfd (read_end doubles as both)

  int wake_fd() const {
    return write_end.valid() ? write_end.get() : read_end.get();
  }

  static WakeChannel open() {
    WakeChannel w;
#ifdef __linux__
    int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (efd >= 0) {
      w.read_end = Fd(efd);
      return w;
    }
#endif
    int fds[2];
    if (::pipe(fds) == 0) {
      set_nonblocking(fds[0]);
      set_nonblocking(fds[1]);
      w.read_end = Fd(fds[0]);
      w.write_end = Fd(fds[1]);
    }
    return w;
  }

  void drain() const {
    char buf[64];
    while (::read(read_end.get(), buf, sizeof buf) > 0) {
    }
  }
};

}  // namespace
}  // namespace detail

// --- ConnRef ----------------------------------------------------------------

void ConnRef::post(std::function<void(Conn&)> fn) const {
  if (!mailbox_) return;
  mailbox_->post([weak = conn_, fn = std::move(fn)]() {
    auto c = weak.lock();
    if (!c || c->dead_) return;
    fn(*c);
    // The task may have produced output or closed the connection; give the
    // driver a turn so the effects hit the socket.
    if (c->pump_fn_) c->pump_fn_(c);
  });
}

// --- TimerWheel -------------------------------------------------------------

TimerWheel::TimerWheel(size_t slots, Nanos tick, Nanos now)
    : slots_(slots == 0 ? 1 : slots), tick_(tick <= 0 ? 1 : tick),
      wheel_time_(now) {}

uint64_t TimerWheel::schedule(Nanos delay, Callback cb) {
  if (delay < 0) delay = 0;
  uint64_t ticks = static_cast<uint64_t>((delay + tick_ - 1) / tick_);
  if (ticks == 0) ticks = 1;  // never into the slot advance() sits on
  size_t slot = (cursor_ + ticks) % slots_.size();
  uint64_t id = next_id_++;
  // Rounds to skip = full revolutions before the cursor first reaches the
  // slot. (ticks - 1) / slots, not ticks / slots: an exact multiple of the
  // slot count lands on the cursor's own slot, which is first reached one
  // whole revolution later, not zero.
  slots_[slot].push_back(Entry{id, (ticks - 1) / slots_.size(), std::move(cb)});
  ++pending_;
  return id;
}

void TimerWheel::cancel(uint64_t id) { cancelled_.push_back(id); }

void TimerWheel::advance(Nanos now) {
  while (wheel_time_ + tick_ <= now) {
    wheel_time_ += tick_;
    cursor_ = (cursor_ + 1) % slots_.size();
    auto& slot = slots_[cursor_];
    std::vector<Callback> due;
    size_t keep = 0;
    for (auto& e : slot) {
      auto it = std::find(cancelled_.begin(), cancelled_.end(), e.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        --pending_;
        continue;
      }
      if (e.remaining_rounds > 0) {
        --e.remaining_rounds;
        slot[keep++] = std::move(e);
        continue;
      }
      due.push_back(std::move(e.cb));
      --pending_;
    }
    slot.resize(keep);
    // Fire outside the slot walk: callbacks may schedule() or cancel().
    for (auto& cb : due) cb();
  }
}

Nanos TimerWheel::next_tick_delay(Nanos now, Nanos cap) const {
  Nanos d = wheel_time_ + tick_ - now;
  if (d < 0) d = 0;
  return std::min(d, cap);
}

// --- EventLoop::Worker ------------------------------------------------------

struct EventLoop::Worker final : public detail::ConnDriver {
  EventLoop* loop = nullptr;
  int index = 0;
  std::unique_ptr<detail::Poller> poller;
  std::shared_ptr<detail::Mailbox> mailbox;
  detail::WakeChannel wake;
  TimerWheel wheel;
  std::unordered_map<int, std::shared_ptr<detail::ConnCore>> conns;
  std::atomic<bool> stop_requested{false};
  std::thread thread;
  // Connections owned by or in flight to this worker. Written by adopt()
  // (any thread) and by the worker; read by adopt() for least-loaded
  // placement.
  std::atomic<size_t> load{0};

  obs::Counter* wakeups = nullptr;
  obs::Gauge* depth = nullptr;
  obs::Gauge* conn_gauge = nullptr;
  obs::Gauge* shard_gauge = nullptr;
  obs::Counter* shard_adopted = nullptr;

  Worker(EventLoop* owner, int idx, bool force_poll, Nanos tick, size_t slots,
         obs::Registry& reg)
      : loop(owner),
        index(idx),
        poller(detail::make_poller(force_poll)),
        mailbox(std::make_shared<detail::Mailbox>()),
        wake(detail::WakeChannel::open()),
        wheel(slots, tick, RealClock::instance().now()) {
    mailbox->wake_fd = wake.wake_fd();
    wakeups = reg.counter("net.loop.wakeups");
    depth = reg.gauge("net.loop.depth");
    conn_gauge = reg.gauge("net.loop.connections");
    std::string shard = "net.loop.shard." + std::to_string(idx);
    shard_gauge = reg.gauge(shard + ".connections");
    shard_adopted = reg.counter(shard + ".adopted");
    stalls_ = reg.counter("net.loop.writable_stalls");
    (void)poller->add(wake.read_end.get(), /*want_read=*/true,
                      /*want_write=*/false);
  }

  static Nanos clock_now() { return RealClock::instance().now(); }

  void run() {
    std::vector<detail::ReadyEvent> events;
    std::vector<std::function<void()>> tasks;
    while (!stop_requested.load(std::memory_order_acquire)) {
      Nanos now = clock_now();
      wheel.advance(now);
      Nanos delay = wheel.pending() > 0
                        ? wheel.next_tick_delay(now, 200 * kMillisecond)
                        : 200 * kMillisecond;
      int timeout_ms =
          static_cast<int>((delay + kMillisecond - 1) / kMillisecond);
      int n = poller->wait(events, timeout_ms);
      wakeups->add();
      depth->set(n > 0 ? n : 0);
      {
        std::lock_guard<std::mutex> lk(mailbox->mutex);
        tasks.swap(mailbox->tasks);
      }
      for (auto& t : tasks) t();
      tasks.clear();
      now = clock_now();
      for (const auto& ev : events) {
        if (ev.fd == wake.read_end.get()) {
          wake.drain();
          continue;
        }
        handle_event(ev, now);
      }
    }
    shutdown_drain();
  }

  void handle_event(const detail::ReadyEvent& ev, Nanos now) {
    auto it = conns.find(ev.fd);
    if (it == conns.end()) return;  // torn down earlier in this batch
    std::shared_ptr<detail::ConnCore> c = it->second;  // keep alive
    if (ev.readable && !c->closing_) {
      read_and_dispatch(c, now);
    } else if (ev.readable || ev.writable) {
      pump(c, now);
    }
  }

  // Runs on this worker (posted by adopt(), which already bumped `load`).
  void add_conn(TcpSocket sock, std::shared_ptr<ReactorSession> session) {
    if (stop_requested.load(std::memory_order_acquire)) {
      load.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    auto c = std::make_shared<detail::ConnCore>();
    c->sock_ = std::move(sock);
    c->session_ = std::move(session);
    c->mailbox_ = mailbox;
    c->last_activity_ = clock_now();
    c->pump_fn_ = [this](const std::shared_ptr<detail::ConnCore>& cc) {
      pump(cc, clock_now());
    };
    int fd = c->sock_.raw_fd();
    if (!poller->add(fd, /*want_read=*/true, /*want_write=*/false).ok()) {
      load.fetch_sub(1, std::memory_order_relaxed);
      c->dead_ = true;
      return;
    }
    c->reg_read_ = true;
    c->reg_write_ = false;
    conns[fd] = c;
    loop->active_.fetch_add(1, std::memory_order_relaxed);
    conn_gauge->add();
    shard_gauge->add();
    c->session_->on_start(*c);
    // Any bytes already queued by the peer surface via level-triggered
    // readiness on the next wait().
    pump(c, clock_now());
  }

  void teardown(const std::shared_ptr<detail::ConnCore>& c) override {
    if (c->dead_) return;
    c->dead_ = true;
    poller->remove(c->sock_.raw_fd());
    conns.erase(c->sock_.raw_fd());
    c->session_->on_close(*c);
    c->session_.reset();
    c->pump_fn_ = nullptr;
    c->sock_.close();
    loop->active_.fetch_sub(1, std::memory_order_relaxed);
    load.fetch_sub(1, std::memory_order_relaxed);
    conn_gauge->sub();
    shard_gauge->sub();
    // Any armed wheel entry fires as a no-op (weak_ptr or dead_ check).
  }

  void update_interest(detail::ConnCore& c) override {
    if (c.dead_) return;
    bool want_read = !c.closing_;
    bool want_write = c.want_write_;
    if (want_read == c.reg_read_ && want_write == c.reg_write_) return;
    c.reg_read_ = want_read;
    c.reg_write_ = want_write;
    poller->update(c.sock_.raw_fd(), want_read, want_write);
  }

  // Lazy deadline: the wheel entry tracks the *earliest* plausible expiry;
  // activity since arming is discovered at fire time and the entry re-armed
  // with the remainder, so per-chunk progress never touches the wheel.
  void arm_timer(const std::shared_ptr<detail::ConnCore>& c,
                 Nanos now) override {
    if (c->dead_ || c->timeout_ <= 0) return;
    Nanos deadline = c->last_activity_ + c->timeout_;
    if (c->timer_armed_ && c->timer_deadline_ <= deadline) return;
    c->timer_armed_ = true;
    c->timer_deadline_ = deadline;
    wheel.schedule(deadline - now,
                   [this, w = std::weak_ptr<detail::ConnCore>(c)] {
                     auto cc = w.lock();
                     if (!cc || cc->dead_) return;
                     cc->timer_armed_ = false;
                     fire_timeout(cc, clock_now());
                   });
  }

  void shutdown_drain() {
    // Tear down every live connection so sessions observe on_close.
    std::vector<std::shared_ptr<detail::ConnCore>> live;
    live.reserve(conns.size());
    for (auto& [fd, c] : conns) live.push_back(c);
    for (auto& c : live) teardown(c);
    // Run tasks still queued (late adoptions see stop_requested and bail;
    // ConnRef posts find their connections dead), then close the mailbox.
    for (int round = 0; round < 4; ++round) {
      std::vector<std::function<void()>> tasks;
      {
        std::lock_guard<std::mutex> lk(mailbox->mutex);
        tasks.swap(mailbox->tasks);
      }
      if (tasks.empty()) break;
      for (auto& t : tasks) t();
    }
    std::lock_guard<std::mutex> lk(mailbox->mutex);
    mailbox->stopped = true;
    mailbox->wake_fd = -1;
  }
};

// --- EventLoop --------------------------------------------------------------

EventLoop::EventLoop(Options options) : options_(options) {}

EventLoop::~EventLoop() { stop(); }

int EventLoop::default_workers() {
  unsigned hc = std::thread::hardware_concurrency();
  if (hc == 0) hc = 2;
  return static_cast<int>(std::min(4u, hc));
}

Result<void> EventLoop::start() {
  if (running_.load()) return Result<void>::success();
  int n = options_.workers > 0 ? options_.workers : default_workers();
  obs::Registry& reg =
      options_.metrics ? *options_.metrics : obs::Registry::global();
  workers_.clear();
  for (int i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>(this, i, options_.force_poll,
                                      options_.wheel_tick,
                                      options_.wheel_slots, reg);
    if (!w->wake.read_end.valid()) {
      workers_.clear();
      return Error(EMFILE, "event loop wake channel");
    }
    workers_.push_back(std::move(w));
  }
  running_.store(true);
  for (auto& w : workers_) {
    w->thread = std::thread([worker = w.get()] { worker->run(); });
  }
  return Result<void>::success();
}

void EventLoop::stop() {
  if (workers_.empty()) return;
  running_.store(false);
  for (auto& w : workers_) {
    w->stop_requested.store(true, std::memory_order_release);
    // Wake directly: post() would be dropped once the mailbox stops.
    uint64_t one = 1;
    [[maybe_unused]] ssize_t rc =
        ::write(w->wake.wake_fd(), &one, sizeof one);
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  workers_.clear();
}

size_t EventLoop::worker_connections(int i) const {
  if (i < 0 || static_cast<size_t>(i) >= workers_.size()) return 0;
  return workers_[i]->load.load(std::memory_order_relaxed);
}

Result<void> EventLoop::adopt(TcpSocket sock,
                              std::shared_ptr<ReactorSession> session) {
  if (!running_.load()) return Error(EINVAL, "event loop not running");
  if (!sock.valid()) return Error(EBADF, "invalid socket");
  if (!session) return Error(EINVAL, "null session");
  detail::set_nonblocking(sock.raw_fd());
  // Least-loaded placement: blind round-robin leaves one worker carrying
  // every long-lived connection of a burst while its siblings drain, so scan
  // the (small, fixed) pool. The rotating start index breaks ties, keeping
  // equal loads spread; the load counts in-flight adoptions too, so a storm
  // of adopts before any add_conn runs still distributes.
  size_t start = next_worker_.fetch_add(1, std::memory_order_relaxed) %
                 workers_.size();
  Worker* w = workers_[start].get();
  size_t best = w->load.load(std::memory_order_relaxed);
  for (size_t k = 1; k < workers_.size() && best > 0; ++k) {
    Worker* cand = workers_[(start + k) % workers_.size()].get();
    size_t l = cand->load.load(std::memory_order_relaxed);
    if (l < best) {
      best = l;
      w = cand;
    }
  }
  w->load.fetch_add(1, std::memory_order_relaxed);
  w->shard_adopted->add();
  // std::function requires copyable captures; park the socket in shared_ptr.
  auto parked = std::make_shared<TcpSocket>(std::move(sock));
  w->mailbox->post([w, parked, session = std::move(session)]() mutable {
    w->add_conn(std::move(*parked), std::move(session));
  });
  return Result<void>::success();
}

// --- drive_session_blocking -------------------------------------------------

namespace detail {
namespace {

class BlockingDriver final : public ConnDriver {
 public:
  void teardown(const std::shared_ptr<ConnCore>& c) override {
    if (c->dead_) return;
    c->dead_ = true;
    c->session_->on_close(*c);
    c->session_.reset();
    c->pump_fn_ = nullptr;
    c->sock_.close();
  }
  // update_interest / arm_timer: the poll set and deadline are rebuilt from
  // connection state on every loop iteration, nothing to do eagerly.
};

}  // namespace
}  // namespace detail

void drive_session_blocking(TcpSocket sock,
                            std::shared_ptr<ReactorSession> session,
                            obs::Registry* metrics) {
  if (!sock.valid() || !session) return;
  obs::Registry& reg = metrics ? *metrics : obs::Registry::global();
  detail::BlockingDriver driver;
  driver.stalls_ = reg.counter("net.loop.writable_stalls");

  detail::WakeChannel wake = detail::WakeChannel::open();
  auto mailbox = std::make_shared<detail::Mailbox>();
  mailbox->wake_fd = wake.wake_fd();

  detail::set_nonblocking(sock.raw_fd());
  auto c = std::make_shared<detail::ConnCore>();
  c->sock_ = std::move(sock);
  c->session_ = std::move(session);
  c->mailbox_ = mailbox;
  c->last_activity_ = RealClock::instance().now();
  c->pump_fn_ = [&driver](const std::shared_ptr<detail::ConnCore>& cc) {
    driver.pump(cc, RealClock::instance().now());
  };

  c->session_->on_start(*c);
  driver.pump(c, RealClock::instance().now());

  while (!c->dead_) {
    short events = static_cast<short>((c->closing_ ? 0 : POLLIN) |
                                      (c->want_write_ ? POLLOUT : 0));
    pollfd pfds[2] = {
        {c->sock_.raw_fd(), events, 0},
        {wake.read_end.get(), POLLIN, 0},
    };
    Nanos now = RealClock::instance().now();
    int timeout_ms = -1;
    if (c->timeout_ > 0) {
      Nanos d = c->last_activity_ + c->timeout_ - now;
      timeout_ms = d <= 0 ? 0
                          : static_cast<int>((d + kMillisecond - 1) /
                                             kMillisecond);
    }
    int n = ::poll(pfds, 2, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      driver.teardown(c);
      break;
    }
    now = RealClock::instance().now();
    if (n == 0) {
      driver.fire_timeout(c, now);
      continue;
    }
    if (pfds[1].revents & POLLIN) {
      wake.drain();
      std::vector<std::function<void()>> tasks;
      {
        std::lock_guard<std::mutex> lk(mailbox->mutex);
        tasks.swap(mailbox->tasks);
      }
      for (auto& t : tasks) t();
    }
    if (c->dead_) break;
    if (pfds[0].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) {
      if (c->closing_) {
        driver.pump(c, now);
      } else {
        driver.read_and_dispatch(c, now);
      }
    } else if (pfds[0].revents & POLLOUT) {
      driver.pump(c, now);
    }
    if (!c->dead_ && c->timeout_ > 0 &&
        now - c->last_activity_ >= c->timeout_) {
      driver.fire_timeout(c, now);
    }
  }

  {
    std::lock_guard<std::mutex> lk(mailbox->mutex);
    mailbox->stopped = true;
    mailbox->wake_fd = -1;
  }
}

}  // namespace tss::net
