// SimBackend: a chirp::Backend whose namespace lives in memory and whose
// timing comes from the disk + buffer-cache model.
//
// Small files (ACLs, stub files, configs) keep their real bytes so that the
// session layer's semantics — ACL enforcement, stub parsing — work
// unchanged. Bulk data written without a real payload (the simulator's
// synthetic writes) is stored as a size only; reads of synthetic content
// return zeros. Either way every data access is charged against the node's
// disk and buffer cache, which is where the net-bound / mixed / disk-bound
// regimes of Figures 6-8 come from.
//
// Time accounting: backend calls happen synchronously while the simulated
// server processes one RPC, so each call advances an internal completion
// cursor starting at engine.now(); the RPC driver awaits take_completion()
// before sending the response.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "chirp/backend.h"
#include "sim/resources.h"

namespace tss::sim {

class SimBackend final : public chirp::Backend {
 public:
  struct Config {
    Disk::Config disk;
    uint64_t cache_bytes = 512ull << 20;  // the paper's 512 MB per node
    uint64_t total_bytes = 250ull << 30;  // 250 GB SATA disk
    // CPU+filesystem cost of one metadata operation (open, stat, ...).
    Nanos metadata_op_cost = 30 * kMicrosecond;
    // Rate at which cache-resident data is served / async writes absorbed.
    double memory_bytes_per_sec = 2.0e9;
  };

  SimBackend(Engine& engine, Config config);

  // --- chirp::Backend -------------------------------------------------------
  Result<int> open(const std::string& path, const chirp::OpenFlags& flags,
                   uint32_t mode) override;
  Result<size_t> pread(int handle, void* data, size_t size,
                       int64_t offset) override;
  Result<size_t> pwrite(int handle, const void* data, size_t size,
                        int64_t offset) override;
  Result<void> fsync(int handle) override;
  Result<void> close(int handle) override;
  Result<chirp::StatInfo> fstat(int handle) override;
  Result<chirp::StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<chirp::DirEntry>> readdir(const std::string& path) override;
  Result<std::string> read_file(const std::string& path) override;
  Result<void> write_file(const std::string& path, std::string_view data,
                          uint32_t mode) override;
  Result<std::pair<uint64_t, uint64_t>> statfs() override;

  // --- Simulation controls ---------------------------------------------------
  // Completion time of all work charged since the last call; resets the
  // cursor. Returns at least engine.now().
  Nanos take_completion();

  // Workload setup without timing: creates a file of `size` bytes
  // (synthetic) including parent directories.
  Result<void> preload_file(const std::string& path, uint64_t size);
  // Failure injection: silently destroys a file (no timing, no errors).
  void damage(const std::string& path);
  // Workload setup: touches every page of `path` into the buffer cache
  // without materializing data or charging time (steady-state warmup).
  Result<void> warm_file(const std::string& path);

  uint64_t used_bytes() const { return used_bytes_; }
  BufferCache& cache() { return cache_; }
  Disk& disk() { return disk_; }

 private:
  struct Entry {
    bool is_dir = false;
    bool synthetic = false;
    std::string content;      // real bytes when !synthetic
    uint64_t size = 0;        // logical size (== content.size() if real)
    uint64_t inode = 0;
    int64_t mtime = 0;
  };

  struct OpenHandle {
    std::string path;
    // Offset a read must start at to count as sequential; UINT64_MAX on a
    // fresh handle so the first access pays a seek.
    uint64_t next_sequential_offset = 0;
  };

  Entry* find(const std::string& path);
  Result<Entry*> require(const std::string& path);
  bool parent_exists(const std::string& path);
  chirp::StatInfo info_of(const Entry& e) const;

  // Charges `bytes` of data access through cache+disk (reads) or memory
  // (writes); advances the completion cursor.
  void charge_metadata();
  void charge_read(Entry& e, uint64_t offset, uint64_t length,
                   bool sequential);
  void charge_write(Entry& e, uint64_t offset, uint64_t length);

  Engine& engine_;
  Config config_;
  Disk disk_;
  BufferCache cache_;
  std::map<std::string, Entry> tree_;  // canonical path -> entry
  std::map<int, OpenHandle> handles_;
  int next_handle_ = 1;
  uint64_t next_inode_ = 1;
  uint64_t used_bytes_ = 0;
  Nanos completion_ = 0;
};

}  // namespace tss::sim
