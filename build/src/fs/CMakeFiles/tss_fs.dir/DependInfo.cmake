
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/cfs.cc" "src/fs/CMakeFiles/tss_fs.dir/cfs.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/cfs.cc.o.d"
  "/root/repo/src/fs/dist.cc" "src/fs/CMakeFiles/tss_fs.dir/dist.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/dist.cc.o.d"
  "/root/repo/src/fs/faulty.cc" "src/fs/CMakeFiles/tss_fs.dir/faulty.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/faulty.cc.o.d"
  "/root/repo/src/fs/filesystem.cc" "src/fs/CMakeFiles/tss_fs.dir/filesystem.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/filesystem.cc.o.d"
  "/root/repo/src/fs/local.cc" "src/fs/CMakeFiles/tss_fs.dir/local.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/local.cc.o.d"
  "/root/repo/src/fs/replicated.cc" "src/fs/CMakeFiles/tss_fs.dir/replicated.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/replicated.cc.o.d"
  "/root/repo/src/fs/striped.cc" "src/fs/CMakeFiles/tss_fs.dir/striped.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/striped.cc.o.d"
  "/root/repo/src/fs/stub.cc" "src/fs/CMakeFiles/tss_fs.dir/stub.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/stub.cc.o.d"
  "/root/repo/src/fs/versioned.cc" "src/fs/CMakeFiles/tss_fs.dir/versioned.cc.o" "gcc" "src/fs/CMakeFiles/tss_fs.dir/versioned.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tss_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tss_net.dir/DependInfo.cmake"
  "/root/repo/build/src/chirp/CMakeFiles/tss_chirp.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/tss_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/acl/CMakeFiles/tss_acl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
