# Empty compiler generated dependencies file for tss_parrot.
# This may be replaced when dependencies are built.
