#include "acl/acl.h"

#include <gtest/gtest.h>

namespace tss::acl {
namespace {

TEST(ParseRights, Letters) {
  auto r = parse_rights("rwl");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rights, kRead | kWrite | kList);
  EXPECT_EQ(r.value().reserve, kNoRights);
}

TEST(ParseRights, AllLetters) {
  auto r = parse_rights("rwlda");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rights, kRead | kWrite | kList | kDelete | kAdmin);
}

TEST(ParseRights, ReserveGroup) {
  auto r = parse_rights("v(rwl)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rights, kReserve);
  EXPECT_EQ(r.value().reserve, kRead | kWrite | kList);
}

TEST(ParseRights, MixedLettersAndReserve) {
  auto r = parse_rights("rlv(rwla)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rights, kRead | kList | kReserve);
  EXPECT_EQ(r.value().reserve, kRead | kWrite | kList | kAdmin);
}

TEST(ParseRights, DashMeansNone) {
  auto r = parse_rights("-");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rights, kNoRights);
}

TEST(ParseRights, RejectsBadInput) {
  EXPECT_FALSE(parse_rights("rz").ok());
  EXPECT_FALSE(parse_rights("v(").ok());
  EXPECT_FALSE(parse_rights("v(q)").ok());
  EXPECT_FALSE(parse_rights("v()v()").ok());
}

TEST(FormatRights, RoundTrips) {
  for (const char* token : {"r", "rwl", "rwlda", "v(rwl)", "rlv(rwla)",
                            "v()", "-"}) {
    auto parsed = parse_rights(token);
    ASSERT_TRUE(parsed.ok()) << token;
    std::string formatted =
        format_rights(parsed.value().rights, parsed.value().reserve);
    auto reparsed = parse_rights(formatted);
    ASSERT_TRUE(reparsed.ok()) << formatted;
    EXPECT_EQ(reparsed.value().rights, parsed.value().rights) << token;
    EXPECT_EQ(reparsed.value().reserve, parsed.value().reserve) << token;
  }
}

// The first ACL example from §4 of the paper.
constexpr const char* kPaperAcl =
    "hostname:*.cse.nd.edu rwl\n"
    "globus:/O=Notre_Dame/* rwl\n";

TEST(Acl, ParsePaperExample) {
  auto acl = Acl::parse(kPaperAcl);
  ASSERT_TRUE(acl.ok());
  EXPECT_EQ(acl.value().entries().size(), 2u);
  EXPECT_TRUE(acl.value().check("hostname:laptop.cse.nd.edu",
                                kRead | kWrite | kList));
  EXPECT_FALSE(acl.value().check("hostname:laptop.cse.nd.edu", kAdmin));
  EXPECT_TRUE(
      acl.value().check("globus:/O=Notre_Dame/CN=Douglas_Thain", kRead));
  EXPECT_FALSE(acl.value().check("globus:/O=Wisconsin/CN=X", kRead));
}

TEST(Acl, IgnoresCommentsAndBlanks) {
  auto acl = Acl::parse("# a comment\n\nunix:alice rw\n  \n");
  ASSERT_TRUE(acl.ok());
  EXPECT_EQ(acl.value().entries().size(), 1u);
}

TEST(Acl, RejectsMalformedLines) {
  EXPECT_FALSE(Acl::parse("too many words here\n").ok());
  EXPECT_FALSE(Acl::parse("subject-without-rights\n").ok());
}

TEST(Acl, RightsAccumulateAcrossEntries) {
  auto acl = Acl::parse("unix:alice r\nunix:* l\n").value();
  EXPECT_EQ(acl.rights_for("unix:alice"), kRead | kList);
  EXPECT_EQ(acl.rights_for("unix:bob"), kList);
}

TEST(Acl, SerializeParseRoundTrip) {
  auto acl = Acl::parse(
                 "hostname:*.cse.nd.edu v(rwl)\n"
                 "globus:/O=Notre_Dame/* v(rwla)\n"
                 "unix:owner rwlda\n")
                 .value();
  auto reparsed = Acl::parse(acl.serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().serialize(), acl.serialize());
}

// §4's reserve-right walkthrough: the second paper ACL, a mkdir by
// hostname:laptop.cse.nd.edu, and the expected fresh ACL.
TEST(Acl, PaperReserveExample) {
  auto acl = Acl::parse(
                 "hostname:*.cse.nd.edu v(rwl)\n"
                 "globus:/O=Notre_Dame/* v(rwla)\n")
                 .value();

  std::string laptop = "hostname:laptop.cse.nd.edu";
  // V alone does not confer W.
  EXPECT_FALSE(acl.check(laptop, kWrite));
  auto reserve = acl.reserve_rights_for(laptop);
  ASSERT_TRUE(reserve.has_value());
  EXPECT_EQ(*reserve, kRead | kWrite | kList);

  Acl fresh = Acl::fresh_for(laptop, *reserve);
  // "hostname:laptop.cse.nd.edu rwl" — and critically, no A right.
  EXPECT_TRUE(fresh.check(laptop, kRead | kWrite | kList));
  EXPECT_FALSE(fresh.check(laptop, kAdmin));
  EXPECT_FALSE(fresh.check("hostname:other.cse.nd.edu", kRead));

  // A globus user gets A via its v(rwla) entry.
  std::string grid_user = "globus:/O=Notre_Dame/CN=Someone";
  auto grid_reserve = acl.reserve_rights_for(grid_user);
  ASSERT_TRUE(grid_reserve.has_value());
  EXPECT_TRUE(*grid_reserve & kAdmin);
}

TEST(Acl, ReserveRightsUnionAcrossEntries) {
  auto acl = Acl::parse(
                 "unix:alice v(r)\n"
                 "unix:* v(l)\n")
                 .value();
  auto rights = acl.reserve_rights_for("unix:alice");
  ASSERT_TRUE(rights.has_value());
  EXPECT_EQ(*rights, kRead | kList);
  auto bob = acl.reserve_rights_for("unix:bob");
  ASSERT_TRUE(bob.has_value());
  EXPECT_EQ(*bob, kList);
  EXPECT_FALSE(
      acl.reserve_rights_for("hostname:nobody.example.com").has_value());
}

TEST(Acl, SetReplacesAndRemoves) {
  Acl acl;
  acl.set("unix:alice", kRead | kWrite, kNoRights);
  EXPECT_TRUE(acl.check("unix:alice", kRead));
  acl.set("unix:alice", kRead, kNoRights);
  EXPECT_FALSE(acl.check("unix:alice", kWrite));
  acl.set("unix:alice", kNoRights, kNoRights);
  EXPECT_TRUE(acl.empty());
}

TEST(Acl, CheckEmptyWantedAlwaysTrue) {
  Acl acl;
  EXPECT_TRUE(acl.check("unix:anyone", kNoRights));
  EXPECT_FALSE(acl.check("unix:anyone", kRead));
}

// Parameterized sweep: each (pattern, subject, expected) triple documents
// wildcard-subject matching behaviour.
struct MatchCase {
  const char* pattern;
  const char* subject;
  bool match;
};

class AclMatch : public ::testing::TestWithParam<MatchCase> {};

TEST_P(AclMatch, PatternMatchesSubject) {
  Acl acl;
  acl.set(GetParam().pattern, kRead, kNoRights);
  EXPECT_EQ(acl.check(GetParam().subject, kRead), GetParam().match);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, AclMatch,
    ::testing::Values(
        MatchCase{"unix:*", "unix:anyone", true},
        MatchCase{"unix:*", "globus:/O=X/CN=Y", false},
        MatchCase{"*", "kerberos:alice@ND.EDU", true},
        MatchCase{"hostname:*.nd.edu", "hostname:a.b.nd.edu", true},
        MatchCase{"hostname:*.nd.edu", "hostname:nd.edu", false},
        MatchCase{"kerberos:*@ND.EDU", "kerberos:alice@ND.EDU", true},
        MatchCase{"kerberos:*@ND.EDU", "kerberos:alice@WISC.EDU", false},
        MatchCase{"globus:/O=Notre_Dame/*", "globus:/O=Notre_Dame/", true},
        MatchCase{"unix:alic?", "unix:alice", true},
        MatchCase{"unix:alic?", "unix:alicia", false}));

}  // namespace
}  // namespace tss::acl
