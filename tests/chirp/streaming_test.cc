// Streaming getfile/putfile: whole-file transfers that never hold the file
// in memory on either side — what lets a 6 TB prototype move real datasets.
#include <gtest/gtest.h>

#include <filesystem>

#include "chirp/test_util.h"
#include "util/checksum.h"
#include "util/rand.h"

namespace tss::chirp {
namespace {

using testing::ChirpServerFixture;

class StreamingTest : public ChirpServerFixture {};

TEST_F(StreamingTest, PutfileFromSourceThenGetfileToSink) {
  start_server();
  Client client = connect_client();

  // A 20 MB pseudo-random payload produced 64 KB at a time; neither side
  // ever materializes it whole.
  constexpr uint64_t kSize = 20 << 20;
  Rng source_rng(42);
  uint64_t produced = 0;
  Fnv1a64 sent_hash;
  auto source = [&](char* buffer, size_t capacity) -> Result<size_t> {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(capacity, kSize - produced));
    for (size_t i = 0; i < n; i++) {
      buffer[i] = static_cast<char>(source_rng.next());
    }
    sent_hash.update(buffer, n);
    produced += n;
    return n;
  };
  ASSERT_TRUE(client.putfile_from("/big.dat", kSize, source).ok());
  EXPECT_EQ(produced, kSize);

  auto info = client.stat("/big.dat");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, kSize);

  Fnv1a64 received_hash;
  uint64_t received = 0;
  auto sink = [&](std::string_view chunk) -> Result<void> {
    received_hash.update(chunk);
    received += chunk.size();
    return Result<void>::success();
  };
  auto total = client.getfile_to("/big.dat", sink);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), kSize);
  EXPECT_EQ(received, kSize);
  EXPECT_EQ(received_hash.digest(), sent_hash.digest());
}

TEST_F(StreamingTest, StreamingPutfileRespectsAcls) {
  set_root_acl("hostname:localhost rl\n");  // no write
  start_server();
  Client client = connect_client();
  auto source = [](char* buffer, size_t capacity) -> Result<size_t> {
    std::memset(buffer, 'x', capacity);
    return capacity;
  };
  auto rc = client.putfile_from("/denied.dat", 1 << 20, source);
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, EACCES);
  // The connection survived the drained body and still serves reads.
  EXPECT_TRUE(client.stat("/").ok());
}

TEST_F(StreamingTest, ShortSourcePoisonsOnlyThisConnection) {
  start_server();
  Client client = connect_client();
  int calls = 0;
  auto source = [&](char* buffer, size_t capacity) -> Result<size_t> {
    if (++calls > 2) return size_t{0};  // lie about having 10 MB
    std::memset(buffer, 'y', capacity);
    return capacity;
  };
  auto rc = client.putfile_from("/liar.dat", 10 << 20, source);
  ASSERT_FALSE(rc.ok());
  // A fresh connection works fine; the server dropped the bad one.
  Client fresh = connect_client();
  EXPECT_TRUE(fresh.putfile("/ok.dat", "fine").ok());
}

TEST_F(StreamingTest, SinkErrorAbortsDownload) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.putfile("/data.bin", std::string(2 << 20, 'z')).ok());
  int chunks = 0;
  auto sink = [&](std::string_view) -> Result<void> {
    if (++chunks > 1) return Error(ENOSPC, "local disk full");
    return Result<void>::success();
  };
  auto rc = client.getfile_to("/data.bin", sink);
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, ENOSPC);
}

TEST_F(StreamingTest, EmptyFileStreams) {
  start_server();
  Client client = connect_client();
  auto source = [](char*, size_t) -> Result<size_t> { return size_t{0}; };
  ASSERT_TRUE(client.putfile_from("/empty", 0, source).ok());
  int chunks = 0;
  auto sink = [&](std::string_view) -> Result<void> {
    chunks++;
    return Result<void>::success();
  };
  auto total = client.getfile_to("/empty", sink);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value(), 0u);
  EXPECT_EQ(chunks, 0);
}

TEST_F(StreamingTest, GetfileOfDirectoryRefused) {
  start_server();
  Client client = connect_client();
  ASSERT_TRUE(client.mkdir("/dir").ok());
  auto sink = [](std::string_view) -> Result<void> {
    return Result<void>::success();
  };
  auto rc = client.getfile_to("/dir", sink);
  ASSERT_FALSE(rc.ok());
  EXPECT_EQ(rc.error().code, EISDIR);
}

}  // namespace
}  // namespace tss::chirp
