// Authentication framework: the "fully virtual user space" of §3/§4.
//
// Identities are free-form strings of the form "method:name" — never local
// uids — produced by pluggable authenticators. The paper's four methods are
// implemented:
//
//   hostname  — the client is identified as the (reverse-resolved) domain
//               name of the connecting host.
//   unix      — filesystem challenge/response: the server asks the client to
//               touch a file in a shared directory and infers the identity
//               from the created file's owner. Only works client/server on
//               the same host, which is exactly its use in the paper.
//   globus    — Grid Security Infrastructure. Simulated here: a CA-keyed MAC
//               stands in for the X.509 signature; the observable behaviour
//               (DN-shaped subjects like "globus:/O=Notre_Dame/...", expiry,
//               unforgeability without the CA key) is preserved. See
//               DESIGN.md §3.
//   kerberos  — ticket from a toy KDC, MAC'd with the service's key (which
//               is why the real server "requires it to run as root to access
//               the host key"; here the key is just a file).
//
// The wire handshake (carried inside the Chirp connection) is:
//   client:  auth <method> <arg>
//   server:  challenge <data>        (zero or more rounds)
//   client:  <response line>
//   server:  ok <subject>   |   error <message>
// A client may attempt any number of methods in order; the first success
// binds the session to that single subject (one set of credentials per
// session, as the paper specifies).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace tss::auth {

// An authenticated identity in the virtual user space.
struct Subject {
  std::string method;
  std::string name;

  std::string to_string() const { return method + ":" + name; }
  static Result<Subject> parse(std::string_view s);
  bool operator==(const Subject&) const = default;
};

// What the server knows about the peer before authentication.
struct PeerInfo {
  std::string ip;        // e.g. "127.0.0.1"
  std::string hostname;  // reverse-resolved name, may be empty
};

// Transport hook for challenge rounds; implemented over the Chirp stream.
class ChallengeIo {
 public:
  virtual ~ChallengeIo() = default;
  virtual Result<void> send_challenge(const std::string& data) = 0;
  virtual Result<std::string> read_response() = 0;
};

// Unix-seconds source, injectable for expiry tests.
using TimeFn = std::function<int64_t()>;
TimeFn real_time_fn();

// ---------------------------------------------------------------------------
// Server side.

class ServerMethod {
 public:
  virtual ~ServerMethod() = default;
  virtual std::string method() const = 0;
  // True when authenticate() may drive ChallengeIo rounds on the control
  // stream. Non-interactive methods decide from the peer info and hello
  // argument alone, so an event-driven server can run them inline on its
  // loop thread; interactive ones (unix) are bridged to a helper thread
  // that may block on the client's challenge responses.
  virtual bool interactive() const { return true; }
  // Runs one authentication attempt. `arg` is the client's hello argument.
  virtual Result<Subject> authenticate(const PeerInfo& peer,
                                       const std::string& arg,
                                       ChallengeIo& io) = 0;
};

// Registry of enabled methods; a Chirp server owns one.
class ServerAuth {
 public:
  void add(std::unique_ptr<ServerMethod> method);
  bool has(const std::string& method) const;
  std::vector<std::string> methods() const;
  // True when `method` is enabled and may use challenge rounds; an unknown
  // method is non-interactive (attempt() fails it without touching the io).
  bool interactive(const std::string& method) const;

  Result<Subject> attempt(const std::string& method, const PeerInfo& peer,
                          const std::string& arg, ChallengeIo& io);

 private:
  std::map<std::string, std::unique_ptr<ServerMethod>> methods_;
};

// ---------------------------------------------------------------------------
// Client side.

class ClientCredential {
 public:
  virtual ~ClientCredential() = default;
  virtual std::string method() const = 0;
  // Argument for the "auth <method> <arg>" hello. "-" when not applicable.
  virtual Result<std::string> hello_arg() = 0;
  // Answer a server challenge.
  virtual Result<std::string> answer(const std::string& challenge) = 0;
};

}  // namespace tss::auth
