// Minimal leveled, thread-safe logger.
//
// Every long-running component (file server, catalog, replicator) logs through
// this. Output goes to stderr by default; tests can capture it with a sink.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace tss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

const char* log_level_name(LogLevel level);

// Global logging configuration. Cheap atomic check on the hot path.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  // Replace the output sink (default writes to stderr). Passing nullptr
  // restores the default sink.
  void set_sink(std::function<void(LogLevel, const std::string&)> sink);

  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  std::mutex mutex_;
  std::function<void(LogLevel, const std::string&)> sink_;
};

// Stream-style log statement builder.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  ~LogMessage() { Logger::instance().write(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};

}  // namespace tss

#define TSS_LOG(level, component)                         \
  if (!::tss::Logger::instance().enabled(level)) {        \
  } else                                                  \
    ::tss::LogMessage(level, component)

#define TSS_DEBUG(component) TSS_LOG(::tss::LogLevel::kDebug, component)
#define TSS_INFO(component) TSS_LOG(::tss::LogLevel::kInfo, component)
#define TSS_WARN(component) TSS_LOG(::tss::LogLevel::kWarn, component)
#define TSS_ERROR(component) TSS_LOG(::tss::LogLevel::kError, component)
