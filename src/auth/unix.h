// The `unix` method: "the server challenges the client to touch a file in
// /tmp and then infers the client's identity from the response" (§4).
//
// The server creates a random path name under a challenge directory shared
// with the client (only possible when both run on the same host — its actual
// deployment in the paper), the client creates the file, and the server
// stats it and maps the owning uid to a username via the local password
// database. No secret ever crosses the wire; possession of the local uid IS
// the credential.
#pragma once

#include <string>

#include "auth/auth.h"
#include "util/rand.h"

namespace tss::auth {

class UnixServerMethod final : public ServerMethod {
 public:
  // challenge_dir must be writable by legitimate clients ("/tmp" in the
  // paper; tests use a private temp dir).
  explicit UnixServerMethod(std::string challenge_dir, uint64_t seed = 0);
  std::string method() const override { return "unix"; }
  Result<Subject> authenticate(const PeerInfo& peer, const std::string& arg,
                               ChallengeIo& io) override;

 private:
  std::string challenge_dir_;
  Rng rng_;
};

class UnixClientCredential final : public ClientCredential {
 public:
  std::string method() const override { return "unix"; }
  Result<std::string> hello_arg() override { return std::string("-"); }
  // The challenge is the path to touch; answers "done" after creating it.
  Result<std::string> answer(const std::string& challenge) override;
};

// Maps a uid to a username ("uid<N>" if not in the password db). Exposed for
// tests.
std::string username_for_uid(unsigned uid);

}  // namespace tss::auth
