#include "nfs/server.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "net/line_stream.h"
#include "nfs/wire.h"
#include "util/path.h"
#include "util/strings.h"

namespace tss::nfs {

namespace {

chirp::StatInfo stat_from_host(const struct stat& st) {
  chirp::StatInfo info;
  info.size = static_cast<uint64_t>(st.st_size);
  info.mode = st.st_mode & 07777;
  info.mtime = st.st_mtime;
  info.inode = st.st_ino;
  info.is_dir = S_ISDIR(st.st_mode);
  return info;
}

void reply_error(net::LineStream& stream, int code, const std::string& msg) {
  stream.write_line("error " + std::to_string(code) + " " + url_encode(msg));
}

}  // namespace

Server::Server(Options options) : options_(std::move(options)) {
  handle_to_path_[1] = "/";
  path_to_handle_["/"] = 1;
}

Server::~Server() { stop(); }

Result<void> Server::start() {
  return loop_.start(options_.host, options_.port, [this](net::TcpSocket s) {
    serve_connection(std::move(s));
  });
}

void Server::stop() { loop_.stop(); }

std::string Server::host_path(const std::string& canonical) const {
  return path::to_host(options_.export_root, canonical);
}

uint64_t Server::handle_for(const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = path_to_handle_.find(canonical);
  if (it != path_to_handle_.end()) return it->second;
  uint64_t fh = next_handle_++;
  path_to_handle_[canonical] = fh;
  handle_to_path_[fh] = canonical;
  return fh;
}

Result<std::string> Server::path_for(uint64_t fh) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handle_to_path_.find(fh);
  if (it == handle_to_path_.end()) {
    return Error(ESTALE, "stale file handle");
  }
  return it->second;
}

void Server::serve_connection(net::TcpSocket sock) {
  net::LineStream stream(std::move(sock), options_.io_timeout);
  std::string payload;

  auto arg_fh = [](const std::vector<std::string>& w,
                   size_t i) -> Result<uint64_t> {
    if (i >= w.size()) return Error(EPROTO, "missing filehandle");
    auto n = parse_u64(w[i]);
    if (!n) return Error(EPROTO, "bad filehandle");
    return *n;
  };

  while (true) {
    auto line = stream.read_line();
    if (!line.ok()) return;
    auto w = split_words(line.value());
    if (w.empty()) continue;
    const std::string& cmd = w[0];

    auto fail = [&](const Error& e) { reply_error(stream, e.code, e.message); };

    if (cmd == "mount") {
      stream.write_line("ok 1");
    } else if (cmd == "lookup" && w.size() >= 3) {
      auto fh = arg_fh(w, 1);
      if (!fh.ok()) {
        fail(fh.error());
      } else {
        auto dir = path_for(fh.value());
        if (!dir.ok()) {
          fail(dir.error());
        } else {
          std::string name = url_decode(w[2]);
          std::string child = path::join(dir.value(), name);
          struct stat st{};
          if (::lstat(host_path(child).c_str(), &st) != 0) {
            fail(Error::from_errno("lookup"));
          } else {
            uint64_t child_fh = handle_for(child);
            stream.write_line("ok " + std::to_string(child_fh) + " " +
                              stat_from_host(st).encode());
          }
        }
      }
    } else if (cmd == "getattr" && w.size() >= 2) {
      auto fh = arg_fh(w, 1);
      if (!fh.ok()) {
        fail(fh.error());
      } else if (auto p = path_for(fh.value()); !p.ok()) {
        fail(p.error());
      } else {
        struct stat st{};
        if (::lstat(host_path(p.value()).c_str(), &st) != 0) {
          fail(Error(ESTALE, "stale file handle"));
        } else {
          stream.write_line("ok " + stat_from_host(st).encode());
        }
      }
    } else if ((cmd == "read" || cmd == "write") && w.size() >= 4) {
      auto fh = arg_fh(w, 1);
      auto offset = parse_i64(w[2]);
      auto count = parse_u64(w[3]);
      if (!fh.ok() || !offset || !count) {
        fail(Error(EPROTO, "bad read/write args"));
      } else if (*count > kMaxTransfer) {
        fail(Error(EMSGSIZE, "transfer exceeds NFS maximum"));
      } else if (auto p = path_for(fh.value()); !p.ok()) {
        fail(p.error());
      } else if (cmd == "read") {
        int fd = ::open(host_path(p.value()).c_str(), O_RDONLY);
        if (fd < 0) {
          fail(Error(ESTALE, "stale file handle"));
        } else {
          payload.resize(*count);
          ssize_t n = ::pread(fd, payload.data(), *count, *offset);
          ::close(fd);
          if (n < 0) {
            fail(Error::from_errno("read"));
          } else {
            stream.write_line("ok " + std::to_string(n));
            stream.write_blob(payload.data(), static_cast<size_t>(n));
          }
        }
      } else {  // write
        payload.resize(*count);
        if (!stream.read_blob(payload.data(), payload.size()).ok()) return;
        int fd = ::open(host_path(p.value()).c_str(), O_WRONLY);
        if (fd < 0) {
          fail(Error(ESTALE, "stale file handle"));
        } else {
          ssize_t n = ::pwrite(fd, payload.data(), payload.size(), *offset);
          ::close(fd);
          if (n < 0) {
            fail(Error::from_errno("write"));
          } else {
            stream.write_line("ok " + std::to_string(n));
          }
        }
      }
    } else if (cmd == "create" && w.size() >= 4) {
      auto fh = arg_fh(w, 1);
      auto mode = parse_u64(w[3]);
      if (!fh.ok() || !mode) {
        fail(Error(EPROTO, "bad create args"));
      } else if (auto dir = path_for(fh.value()); !dir.ok()) {
        fail(dir.error());
      } else {
        std::string child = path::join(dir.value(), url_decode(w[2]));
        int fd = ::open(host_path(child).c_str(), O_WRONLY | O_CREAT,
                        static_cast<mode_t>(*mode));
        if (fd < 0) {
          fail(Error::from_errno("create"));
        } else {
          struct stat st{};
          ::fstat(fd, &st);
          ::close(fd);
          stream.write_line("ok " + std::to_string(handle_for(child)) + " " +
                            stat_from_host(st).encode());
        }
      }
    } else if ((cmd == "remove" || cmd == "rmdir") && w.size() >= 3) {
      auto fh = arg_fh(w, 1);
      if (!fh.ok()) {
        fail(fh.error());
      } else if (auto dir = path_for(fh.value()); !dir.ok()) {
        fail(dir.error());
      } else {
        std::string child = path::join(dir.value(), url_decode(w[2]));
        int rc = cmd == "remove" ? ::unlink(host_path(child).c_str())
                                 : ::rmdir(host_path(child).c_str());
        if (rc != 0) {
          fail(Error::from_errno(cmd));
        } else {
          stream.write_line("ok");
        }
      }
    } else if (cmd == "rename" && w.size() >= 5) {
      auto fh1 = arg_fh(w, 1);
      auto fh2 = arg_fh(w, 3);
      if (!fh1.ok() || !fh2.ok()) {
        fail(Error(EPROTO, "bad rename args"));
      } else {
        auto d1 = path_for(fh1.value());
        auto d2 = path_for(fh2.value());
        if (!d1.ok() || !d2.ok()) {
          fail(Error(ESTALE, "stale file handle"));
        } else {
          std::string from = path::join(d1.value(), url_decode(w[2]));
          std::string to = path::join(d2.value(), url_decode(w[4]));
          if (::rename(host_path(from).c_str(), host_path(to).c_str()) != 0) {
            fail(Error::from_errno("rename"));
          } else {
            stream.write_line("ok");
          }
        }
      }
    } else if (cmd == "mkdir" && w.size() >= 4) {
      auto fh = arg_fh(w, 1);
      auto mode = parse_u64(w[3]);
      if (!fh.ok() || !mode) {
        fail(Error(EPROTO, "bad mkdir args"));
      } else if (auto dir = path_for(fh.value()); !dir.ok()) {
        fail(dir.error());
      } else {
        std::string child = path::join(dir.value(), url_decode(w[2]));
        if (::mkdir(host_path(child).c_str(), static_cast<mode_t>(*mode)) !=
            0) {
          fail(Error::from_errno("mkdir"));
        } else {
          stream.write_line("ok " + std::to_string(handle_for(child)));
        }
      }
    } else if (cmd == "readdir" && w.size() >= 2) {
      auto fh = arg_fh(w, 1);
      if (!fh.ok()) {
        fail(fh.error());
      } else if (auto p = path_for(fh.value()); !p.ok()) {
        fail(p.error());
      } else {
        DIR* dir = ::opendir(host_path(p.value()).c_str());
        if (!dir) {
          fail(Error::from_errno("readdir"));
        } else {
          std::vector<std::string> names;
          while (dirent* de = ::readdir(dir)) {
            std::string name = de->d_name;
            if (name == "." || name == "..") continue;
            names.push_back(url_encode(name));
          }
          ::closedir(dir);
          stream.write_line("ok " + std::to_string(names.size()));
          for (const std::string& name : names) stream.write_line(name);
        }
      }
    } else if (cmd == "truncate" && w.size() >= 3) {
      auto fh = arg_fh(w, 1);
      auto size = parse_u64(w[2]);
      if (!fh.ok() || !size) {
        fail(Error(EPROTO, "bad truncate args"));
      } else if (auto p = path_for(fh.value()); !p.ok()) {
        fail(p.error());
      } else if (::truncate(host_path(p.value()).c_str(),
                            static_cast<off_t>(*size)) != 0) {
        fail(Error::from_errno("truncate"));
      } else {
        stream.write_line("ok");
      }
    } else {
      fail(Error(ENOSYS, "unknown rpc: " + cmd));
    }

    if (!stream.flush().ok()) return;
  }
}

}  // namespace tss::nfs
