// Stripe geometry properties: random (stripe size, width, offset, length)
// I/O sequences through StripedFs must be byte-identical to a plain LocalFs
// oracle — serially and under the parallel fan-out — including extents
// straddling three or more columns and short reads at EOF. Plus the
// read-only source buffer regression: pwrite must never scribble on its
// input.
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "fs/local.h"
#include "fs/striped.h"
#include "par/executor.h"
#include "util/rand.h"

namespace tss::fs {
namespace {

class StripePropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/stripeprop_" +
            std::to_string(::getpid()) + "_" + std::to_string(counter_++);
    std::filesystem::create_directories(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string make_root(const std::string& name) {
    std::string root = base_ + "/" + name;
    std::filesystem::create_directories(root);
    return root;
  }

  std::string base_;
  static inline int counter_ = 0;
};

// One randomized round: a dense sequence of writes and reads applied to a
// striped file and to a contiguous oracle file, compared op by op.
void run_round(const std::string& base, uint64_t stripe, size_t width,
               uint64_t seed, IoScheduler* scheduler) {
  SCOPED_TRACE("stripe=" + std::to_string(stripe) +
               " width=" + std::to_string(width) +
               " seed=" + std::to_string(seed) +
               (scheduler ? " parallel" : " serial"));
  std::filesystem::create_directories(base + "/oracle");
  LocalFs oracle_fs(base + "/oracle");
  std::vector<std::unique_ptr<LocalFs>> columns;
  std::vector<FileSystem*> members;
  for (size_t m = 0; m < width; m++) {
    std::string root = base + "/m" + std::to_string(m);
    std::filesystem::create_directories(root);
    columns.push_back(std::make_unique<LocalFs>(root));
    members.push_back(columns.back().get());
  }
  StripedFs striped(members, stripe, scheduler);

  auto striped_file = striped.open("/f", OpenFlags::parse("rwc").value());
  auto oracle_file = oracle_fs.open("/f", OpenFlags::parse("rwc").value());
  ASSERT_TRUE(striped_file.ok()) << striped_file.error().to_string();
  ASSERT_TRUE(oracle_file.ok());

  Rng rng(seed);
  uint64_t logical_size = 0;  // writes stay dense: no sparse logical files
  const uint64_t max_len = 3 * stripe * width + 7;  // straddles 3+ columns
  for (int op = 0; op < 60; op++) {
    if (rng.below(2) == 0) {
      // Dense write: offset within [0, logical_size].
      uint64_t offset = rng.below(logical_size + 1);
      size_t len = 1 + static_cast<size_t>(rng.below(max_len));
      std::string payload;
      payload.reserve(len);
      for (size_t i = 0; i < len; i++) {
        payload.push_back(static_cast<char>('a' + rng.below(26)));
      }
      auto sn = striped_file.value()->pwrite(payload.data(), len,
                                             static_cast<int64_t>(offset));
      auto on = oracle_file.value()->pwrite(payload.data(), len,
                                            static_cast<int64_t>(offset));
      ASSERT_TRUE(sn.ok()) << sn.error().to_string();
      ASSERT_TRUE(on.ok());
      ASSERT_EQ(sn.value(), on.value());
      logical_size = std::max(logical_size, offset + len);
    } else {
      // Read, sometimes deliberately past EOF for the short-read path.
      uint64_t offset = rng.below(logical_size + stripe);
      size_t len = 1 + static_cast<size_t>(rng.below(max_len));
      std::vector<char> got(len, '\0'), want(len, '\0');
      auto sn = striped_file.value()->pread(got.data(), len,
                                            static_cast<int64_t>(offset));
      auto on = oracle_file.value()->pread(want.data(), len,
                                           static_cast<int64_t>(offset));
      ASSERT_TRUE(sn.ok()) << sn.error().to_string();
      ASSERT_TRUE(on.ok());
      ASSERT_EQ(sn.value(), on.value())
          << "offset=" << offset << " len=" << len
          << " logical_size=" << logical_size;
      ASSERT_EQ(0, std::memcmp(got.data(), want.data(), sn.value()));
    }
  }

  // The aggregate logical size matches the oracle exactly.
  auto sinfo = striped_file.value()->fstat();
  auto oinfo = oracle_file.value()->fstat();
  ASSERT_TRUE(sinfo.ok());
  ASSERT_TRUE(oinfo.ok());
  EXPECT_EQ(sinfo.value().size, oinfo.value().size);
  EXPECT_EQ(striped.read_file("/f").value(), oracle_fs.read_file("/f").value());
}

TEST_F(StripePropertyTest, RandomGeometryMatchesLocalOracleSerially) {
  const uint64_t stripes[] = {1, 3, 7, 64, 100};
  Rng rng(20260806);
  for (int round = 0; round < 6; round++) {
    uint64_t stripe = stripes[rng.below(5)];
    size_t width = 1 + static_cast<size_t>(rng.below(8));
    run_round(base_ + "/s" + std::to_string(round), stripe, width,
              /*seed=*/1000 + round, /*scheduler=*/nullptr);
  }
}

TEST_F(StripePropertyTest, RandomGeometryMatchesLocalOracleInParallel) {
  IoScheduler::Options options;
  options.workers = 4;
  IoScheduler scheduler(options);
  const uint64_t stripes[] = {1, 3, 7, 64, 100};
  Rng rng(20260807);
  for (int round = 0; round < 6; round++) {
    uint64_t stripe = stripes[rng.below(5)];
    size_t width = 1 + static_cast<size_t>(rng.below(8));
    run_round(base_ + "/p" + std::to_string(round), stripe, width,
              /*seed=*/2000 + round, &scheduler);
  }
}

TEST_F(StripePropertyTest, ExtentStraddlingManyColumnsRoundTrips) {
  // stripe=4, width=4: a 20-byte write at offset 2 covers 6 extents over
  // all four columns, wrapping back onto column 0.
  std::vector<std::unique_ptr<LocalFs>> columns;
  std::vector<FileSystem*> members;
  for (size_t m = 0; m < 4; m++) {
    std::string root = make_root("w" + std::to_string(m));
    columns.push_back(std::make_unique<LocalFs>(root));
    members.push_back(columns.back().get());
  }
  IoScheduler scheduler;
  StripedFs striped(members, 4, &scheduler);
  ASSERT_TRUE(striped.write_file("/f", "..abcdefghijklmnopqrst").ok());
  auto file = striped.open("/f", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());
  char buffer[20];
  auto n = file.value()->pread(buffer, 20, 2);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(n.value(), 20u);
  EXPECT_EQ(std::string(buffer, 20), "abcdefghijklmnopqrst");
}

TEST_F(StripePropertyTest, ReadAtEofIsShortNotAnError) {
  std::vector<std::unique_ptr<LocalFs>> columns;
  std::vector<FileSystem*> members;
  for (size_t m = 0; m < 3; m++) {
    std::string root = make_root("e" + std::to_string(m));
    columns.push_back(std::make_unique<LocalFs>(root));
    members.push_back(columns.back().get());
  }
  IoScheduler scheduler;
  StripedFs striped(members, 4, &scheduler);
  ASSERT_TRUE(striped.write_file("/f", "0123456789").ok());  // 10 bytes
  auto file = striped.open("/f", OpenFlags::parse("r").value());
  ASSERT_TRUE(file.ok());

  char buffer[64];
  // Read spanning EOF: bytes up to EOF, no error.
  auto n = file.value()->pread(buffer, 64, 4);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 6u);
  EXPECT_EQ(std::string(buffer, 6), "456789");
  // Read entirely past EOF: zero bytes.
  n = file.value()->pread(buffer, 8, 32);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
  // Negative offsets are a typed EINVAL.
  auto bad = file.value()->pread(buffer, 8, -1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, EINVAL);
}

// Regression: pwrite takes const data and must never write through it.
// Writing from a read-only-mapped source buffer segfaults if any layer
// scribbles on the input (the old code const_cast the buffer away).
TEST_F(StripePropertyTest, PwriteFromReadOnlyMappedBufferSucceeds) {
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  void* map = ::mmap(nullptr, page, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(map, MAP_FAILED);
  std::memset(map, 'x', page);
  ASSERT_EQ(::mprotect(map, page, PROT_READ), 0);

  std::vector<std::unique_ptr<LocalFs>> columns;
  std::vector<FileSystem*> members;
  for (size_t m = 0; m < 3; m++) {
    std::string root = make_root("ro" + std::to_string(m));
    columns.push_back(std::make_unique<LocalFs>(root));
    members.push_back(columns.back().get());
  }
  IoScheduler scheduler;
  StripedFs striped(members, 64, &scheduler);
  auto file = striped.open("/f", OpenFlags::parse("rwc").value());
  ASSERT_TRUE(file.ok());
  auto n = file.value()->pwrite(map, page, 0);
  ASSERT_TRUE(n.ok()) << n.error().to_string();
  EXPECT_EQ(n.value(), page);

  std::string back = striped.read_file("/f").value();
  EXPECT_EQ(back, std::string(page, 'x'));
  ::munmap(map, page);
}

}  // namespace
}  // namespace tss::fs
