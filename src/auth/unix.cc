#include "auth/unix.h"

#include <fcntl.h>
#include <pwd.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/strings.h"

namespace tss::auth {

std::string username_for_uid(unsigned uid) {
  passwd pwd{};
  passwd* result = nullptr;
  char buf[4096];
  if (getpwuid_r(uid, &pwd, buf, sizeof buf, &result) == 0 &&
      result != nullptr) {
    return result->pw_name;
  }
  return "uid" + std::to_string(uid);
}

UnixServerMethod::UnixServerMethod(std::string challenge_dir, uint64_t seed)
    : challenge_dir_(std::move(challenge_dir)),
      rng_(seed ? seed : static_cast<uint64_t>(::getpid()) * 2654435761ULL ^
                       static_cast<uint64_t>(::time(nullptr))) {}

Result<Subject> UnixServerMethod::authenticate(const PeerInfo& peer,
                                               const std::string& arg,
                                               ChallengeIo& io) {
  (void)peer;
  (void)arg;
  std::string challenge_path =
      challenge_dir_ + "/tss-unix-" + rng_.hex(24);
  TSS_RETURN_IF_ERROR(io.send_challenge(challenge_path));
  TSS_ASSIGN_OR_RETURN(std::string response, io.read_response());
  if (response != "done") {
    return Error(EACCES, "unix: client declined challenge");
  }
  struct stat st{};
  int rc = ::lstat(challenge_path.c_str(), &st);
  // Remove the challenge file regardless of outcome.
  ::unlink(challenge_path.c_str());
  if (rc != 0) {
    return Error(EACCES, "unix: challenge file not created");
  }
  if (!S_ISREG(st.st_mode)) {
    return Error(EACCES, "unix: challenge path is not a regular file");
  }
  return Subject{"unix", username_for_uid(st.st_uid)};
}

Result<std::string> UnixClientCredential::answer(
    const std::string& challenge) {
  // Refuse challenge paths that contain traversal tricks; a malicious server
  // must not be able to make us create files at arbitrary names.
  if (challenge.find("..") != std::string::npos || challenge.empty() ||
      challenge[0] != '/') {
    return Error(EACCES, "unix: suspicious challenge path");
  }
  int fd = ::open(challenge.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0600);
  if (fd < 0) return Error::from_errno("unix: create challenge file");
  ::close(fd);
  return std::string("done");
}

}  // namespace tss::auth
