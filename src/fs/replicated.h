// ReplicatedFs: transparent N-way replication — one of the §10 future-work
// abstractions ("one may imagine filesystems that transparently stripe,
// replicate, and version data"), built the way the paper prescribes: as
// just another recursive abstraction over the FileSystem interface.
//
// Semantics: every mutation is broadcast to all replicas; reads are served
// by the first replica that answers (failover order = construction order).
// A mutation that fails on some replicas but succeeds on at least one
// reports success and leaves the failed replicas *diverged*; repair() makes
// replicas converge again by copying from the first reachable one — the
// same repair shape as the GEMS replicator, at filesystem granularity.
//
// This is deliberately the "simplest available solution" (§1): no quorums,
// no versions vectors. Trust and placement decisions stay with the user.
#pragma once

#include <string>
#include <vector>

#include "fs/filesystem.h"

namespace tss::fs {

class ReplicatedFs final : public FileSystem {
 public:
  // Replicas are borrowed and must outlive the ReplicatedFs. At least one.
  explicit ReplicatedFs(std::vector<FileSystem*> replicas);

  Result<std::unique_ptr<File>> open(const std::string& path,
                                     const OpenFlags& flags,
                                     uint32_t mode) override;
  using FileSystem::open;
  Result<StatInfo> stat(const std::string& path) override;
  Result<void> unlink(const std::string& path) override;
  Result<void> rename(const std::string& from, const std::string& to) override;
  Result<void> mkdir(const std::string& path, uint32_t mode) override;
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override;
  Result<void> truncate(const std::string& path, uint64_t size) override;
  Result<std::vector<DirEntry>> readdir(const std::string& path) override;

  // Re-synchronizes `path` (a file) on all replicas from the first replica
  // that holds it. Returns the number of replicas repaired.
  Result<int> repair(const std::string& path);

  size_t replica_count() const { return replicas_.size(); }

 private:
  template <typename Fn>
  Result<void> broadcast(Fn&& fn);

  std::vector<FileSystem*> replicas_;
};

}  // namespace tss::fs
