// Weighted fair-share admission: deficit round-robin across keys.
//
// The server loop's global connection limit answers "how much work total";
// this answers "whose work next". Callers present each unit of work with a
// key (the authenticated subject), a cost (request weight), and a resume
// closure. While concurrency slots are free the work runs immediately; once
// they fill, work queues per key and slots freed by finish() are handed out
// by deficit round-robin — each key's deficit grows by quantum x weight per
// scheduling round and pays for the queued costs it releases — so a key
// flooding the queue only lengthens its own backlog. A key whose backlog is
// full is refused outright (the caller maps that to a typed EBUSY).
//
// Resume closures run outside the queue lock, on whatever thread called
// finish(). The destructor drops all queued closures without running them;
// finish() after shutdown is a no-op, so RAII slot guards held by dying
// callers remain safe.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tss::net {

class FairQueue {
 public:
  enum class Verdict {
    kRun,       // a slot was granted; call finish() when the work completes
    kQueued,    // the resume closure will be invoked when a slot frees
    kRejected,  // the key's backlog is full; no slot, no callback
  };

  struct Options {
    // Concurrency slots. 0 disables the queue entirely: admit() always
    // returns kRun and finish() is a no-op.
    int max_active = 0;
    // Backlog bound per key; admissions beyond it are kRejected.
    int max_queued_per_key = 64;
    // Deficit added to a key per scheduling round, scaled by its weight.
    uint64_t quantum = 4;
    uint64_t default_weight = 1;
    std::map<std::string, uint64_t> weights;
    // Registry for <metric_prefix>.{granted,queued,rejected} counters and
    // .{active,waiting} gauges. Null = no metrics.
    obs::Registry* metrics = nullptr;
    std::string metric_prefix = "fair";
  };

  explicit FairQueue(Options options);
  ~FairQueue();
  FairQueue(const FairQueue&) = delete;
  FairQueue& operator=(const FairQueue&) = delete;

  // Requests a slot for one unit of work. kRun grants immediately; kQueued
  // parks `resume` to be invoked (from a later finish() call) when the key
  // wins a slot — the grant is already counted when `resume` runs, so the
  // work must still be balanced by finish().
  Verdict admit(const std::string& key, uint64_t cost,
                std::function<void()> resume);

  // Releases one slot and dispatches queued work by deficit round-robin.
  void finish();

  int active() const;
  size_t queued() const;

 private:
  struct Waiter {
    uint64_t cost = 0;
    std::function<void()> resume;
  };
  struct Key {
    std::deque<Waiter> waiters;
    uint64_t deficit = 0;
    uint64_t weight = 1;
  };

  uint64_t weight_of(const std::string& key) const;
  void dispatch();

  Options options_;
  mutable std::mutex mutex_;
  bool stopped_ = false;
  bool dispatching_ = false;
  int active_ = 0;
  size_t waiting_ = 0;
  std::map<std::string, Key> keys_;
  // Round-robin ring of keys with non-empty backlogs.
  std::vector<std::string> ring_;
  size_t cursor_ = 0;

  obs::Counter* granted_ = nullptr;
  obs::Counter* queued_ctr_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Gauge* waiting_gauge_ = nullptr;
};

}  // namespace tss::net
