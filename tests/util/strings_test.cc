#include "util/strings.h"

#include <gtest/gtest.h>

namespace tss {
namespace {

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldWhenSeparatorAbsent) {
  auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWords, DropsRunsOfWhitespace) {
  auto words = split_words("  open   /a/b\t42  ");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "open");
  EXPECT_EQ(words[1], "/a/b");
  EXPECT_EQ(words[2], "42");
}

TEST(SplitWords, EmptyInput) {
  EXPECT_TRUE(split_words("").empty());
  EXPECT_TRUE(split_words("   \t ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(ParseI64, AcceptsSignedValues) {
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_EQ(parse_i64("-1"), -1);
  EXPECT_EQ(parse_i64("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parse_i64("-9223372036854775808"), INT64_MIN);
}

TEST(ParseI64, RejectsGarbage) {
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_FALSE(parse_i64("12x").has_value());
  EXPECT_FALSE(parse_i64("-").has_value());
  EXPECT_FALSE(parse_i64("9223372036854775808").has_value());  // overflow
  EXPECT_FALSE(parse_i64("1.5").has_value());
}

TEST(ParseU64, BoundaryValues) {
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
}

TEST(WildcardMatch, ExactAndStar) {
  EXPECT_TRUE(wildcard_match("abc", "abc"));
  EXPECT_FALSE(wildcard_match("abc", "abd"));
  EXPECT_TRUE(wildcard_match("*", ""));
  EXPECT_TRUE(wildcard_match("*", "anything"));
  EXPECT_TRUE(wildcard_match("a*c", "abc"));
  EXPECT_TRUE(wildcard_match("a*c", "ac"));
  EXPECT_TRUE(wildcard_match("a*c", "axxxc"));
  EXPECT_FALSE(wildcard_match("a*c", "abd"));
}

TEST(WildcardMatch, PaperAclPatterns) {
  // The exact subject patterns used in the paper's ACL examples.
  EXPECT_TRUE(
      wildcard_match("hostname:*.cse.nd.edu", "hostname:laptop.cse.nd.edu"));
  EXPECT_FALSE(
      wildcard_match("hostname:*.cse.nd.edu", "hostname:laptop.cs.wisc.edu"));
  EXPECT_TRUE(wildcard_match("globus:/O=Notre_Dame/*",
                             "globus:/O=Notre_Dame/CN=Douglas_Thain"));
  EXPECT_FALSE(wildcard_match("globus:/O=Notre_Dame/*",
                              "globus:/O=Wisconsin/CN=Someone"));
}

TEST(WildcardMatch, QuestionMarkAndBacktracking) {
  EXPECT_TRUE(wildcard_match("a?c", "abc"));
  EXPECT_FALSE(wildcard_match("a?c", "ac"));
  EXPECT_TRUE(wildcard_match("*a*b", "xaxbxab"));
  EXPECT_TRUE(wildcard_match("**x**", "x"));
}

TEST(UrlEncode, RoundTripsArbitraryBytes) {
  std::string nasty = "a b\nc%d\x01/ok~._-";
  std::string enc = url_encode(nasty);
  EXPECT_EQ(enc.find(' '), std::string::npos);
  EXPECT_EQ(enc.find('\n'), std::string::npos);
  EXPECT_EQ(url_decode(enc), nasty);
}

TEST(UrlEncode, LeavesSafeCharsAlone) {
  EXPECT_EQ(url_encode("/a/b.c_d-e~f"), "/a/b.c_d-e~f");
}

TEST(UrlDecode, ToleratesMalformedPercent) {
  EXPECT_EQ(url_decode("%"), "%");
  EXPECT_EQ(url_decode("%zz"), "%zz");
  EXPECT_EQ(url_decode("100%"), "100%");
}

TEST(FormatBytes, HumanUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KB");
  EXPECT_EQ(format_bytes(6ULL << 40), "6.0 TB");  // the prototype's capacity
}

TEST(JoinWords, Inverse) {
  std::vector<std::string> words{"a", "b", "c"};
  EXPECT_EQ(join_words(words), "a b c");
  EXPECT_EQ(join_words({}), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("challenge xyz", "challenge "));
  EXPECT_FALSE(starts_with("chal", "challenge "));
  EXPECT_TRUE(ends_with("file.txt", ".txt"));
  EXPECT_FALSE(ends_with("txt", ".txt"));
}

}  // namespace
}  // namespace tss
