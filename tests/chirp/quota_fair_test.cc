// Per-subject quota buckets (debt model, virtual-clock refill) and the
// weighted deficit-round-robin fair queue (slot accounting, per-key backlog
// bounds, weighted dispatch order, shutdown safety).
#include <errno.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chirp/quota.h"
#include "net/fair_queue.h"
#include "util/clock.h"

namespace tss {
namespace {

// --- QuotaManager ------------------------------------------------------------

chirp::QuotaManager::Limits limits(uint64_t ops, uint64_t bytes) {
  chirp::QuotaManager::Limits l;
  l.ops_per_sec = ops;
  l.bytes_per_sec = bytes;
  return l;
}

TEST(QuotaManager, UnlimitedByDefault) {
  chirp::QuotaManager q({});
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(q.admit("anyone").ok());
    q.charge("anyone", 1, 1 << 20);
  }
}

TEST(QuotaManager, OpsBucketRefusesWhenDrained) {
  VirtualClock clock;
  chirp::QuotaManager::Options options;
  options.default_limits = limits(10, 0);
  options.clock = &clock;
  chirp::QuotaManager q(std::move(options));
  // The bucket starts full (burst = one second's rate = 10 ops).
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(q.admit("alice").ok()) << i;
    q.charge("alice", 1, 0);
  }
  auto refused = q.admit("alice");
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, EDQUOT);
  // Refill pays the debt back at the configured rate.
  clock.advance(kSecond / 2);
  EXPECT_TRUE(q.admit("alice").ok());
  // A different subject has its own untouched bucket.
  EXPECT_TRUE(q.admit("bob").ok());
}

TEST(QuotaManager, DebtModelChargesTrueCostAfterAdmission) {
  VirtualClock clock;
  chirp::QuotaManager::Options options;
  options.default_limits = limits(0, 1000);
  options.clock = &clock;
  chirp::QuotaManager q(std::move(options));
  // One admitted request may overdraw (its size is only known when served).
  ASSERT_TRUE(q.admit("alice").ok());
  q.charge("alice", 1, 5000);  // 5x the per-second rate
  EXPECT_EQ(q.admit("alice").error().code, EDQUOT);
  // The debt takes proportionally long to pay off: after 4s still negative.
  clock.advance(4 * kSecond);
  EXPECT_EQ(q.admit("alice").error().code, EDQUOT);
  clock.advance(2 * kSecond);
  EXPECT_TRUE(q.admit("alice").ok());
}

TEST(QuotaManager, BurstCeilingCapsIdleAccumulation) {
  VirtualClock clock;
  chirp::QuotaManager::Options options;
  options.default_limits = limits(10, 0);
  options.default_limits.ops_burst = 20;
  options.clock = &clock;
  chirp::QuotaManager q(std::move(options));
  clock.advance(3600 * kSecond);  // an hour idle buys at most the burst
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(q.admit("alice").ok()) << i;
    q.charge("alice", 1, 0);
  }
  EXPECT_EQ(q.admit("alice").error().code, EDQUOT);
}

TEST(QuotaManager, PerSubjectOverridesBeatTheDefault) {
  VirtualClock clock;
  chirp::QuotaManager::Options options;
  options.default_limits = limits(1, 0);
  options.per_subject["hostname:vip"] = limits(0, 0);  // unlimited
  options.clock = &clock;
  chirp::QuotaManager q(std::move(options));
  ASSERT_TRUE(q.admit("hostname:pleb").ok());
  q.charge("hostname:pleb", 1, 0);
  EXPECT_EQ(q.admit("hostname:pleb").error().code, EDQUOT);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(q.admit("hostname:vip").ok());
    q.charge("hostname:vip", 1, 0);
  }
}

TEST(QuotaManager, MetricsCountAdmissionsAndRejections) {
  VirtualClock clock;
  obs::Registry registry;
  chirp::QuotaManager::Options options;
  options.default_limits = limits(2, 0);
  options.clock = &clock;
  options.metrics = &registry;
  chirp::QuotaManager q(std::move(options));
  ASSERT_TRUE(q.admit("a").ok());
  q.charge("a", 1, 0);
  ASSERT_TRUE(q.admit("a").ok());
  q.charge("a", 1, 0);
  ASSERT_FALSE(q.admit("a").ok());
  EXPECT_EQ(registry.counter("tenant.quota.admitted")->value(), 2u);
  EXPECT_EQ(registry.counter("tenant.quota.rejected")->value(), 1u);
}

// --- FairQueue ---------------------------------------------------------------

TEST(FairQueue, DisabledQueueAlwaysRuns) {
  net::FairQueue q({});
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(q.admit("k", 1, nullptr), net::FairQueue::Verdict::kRun);
    q.finish();
  }
}

TEST(FairQueue, GrantsUpToMaxActiveThenQueues) {
  net::FairQueue::Options options;
  options.max_active = 2;
  net::FairQueue q(options);
  int resumed = 0;
  EXPECT_EQ(q.admit("a", 1, nullptr), net::FairQueue::Verdict::kRun);
  EXPECT_EQ(q.admit("a", 1, nullptr), net::FairQueue::Verdict::kRun);
  EXPECT_EQ(q.admit("a", 1, [&] { resumed++; }),
            net::FairQueue::Verdict::kQueued);
  EXPECT_EQ(q.active(), 2);
  EXPECT_EQ(q.queued(), 1u);
  EXPECT_EQ(resumed, 0);
  q.finish();  // frees a slot; the waiter is dispatched inline
  EXPECT_EQ(resumed, 1);
  EXPECT_EQ(q.active(), 2);  // the grant transferred to the waiter
  q.finish();
  q.finish();
  EXPECT_EQ(q.active(), 0);
}

TEST(FairQueue, PerKeyBacklogBoundRejects) {
  net::FairQueue::Options options;
  options.max_active = 1;
  options.max_queued_per_key = 2;
  net::FairQueue q(options);
  EXPECT_EQ(q.admit("hog", 1, nullptr), net::FairQueue::Verdict::kRun);
  EXPECT_EQ(q.admit("hog", 1, [] {}), net::FairQueue::Verdict::kQueued);
  EXPECT_EQ(q.admit("hog", 1, [] {}), net::FairQueue::Verdict::kQueued);
  // The hog's backlog is full: refuse it...
  EXPECT_EQ(q.admit("hog", 1, [] {}), net::FairQueue::Verdict::kRejected);
  // ...while an innocent key still queues fine.
  EXPECT_EQ(q.admit("meek", 1, [] {}), net::FairQueue::Verdict::kQueued);
}

TEST(FairQueue, RoundRobinInterleavesKeysDespiteBacklogImbalance) {
  net::FairQueue::Options options;
  options.max_active = 1;
  options.max_queued_per_key = 64;
  options.quantum = 1;
  net::FairQueue q(options);
  std::vector<std::string> order;
  EXPECT_EQ(q.admit("hog", 1, nullptr), net::FairQueue::Verdict::kRun);
  for (int i = 0; i < 6; i++) {
    EXPECT_EQ(q.admit("hog", 1, [&] { order.push_back("hog"); }),
              net::FairQueue::Verdict::kQueued);
  }
  for (int i = 0; i < 3; i++) {
    EXPECT_EQ(q.admit("meek", 1, [&] { order.push_back("meek"); }),
              net::FairQueue::Verdict::kQueued);
  }
  for (int i = 0; i < 9; i++) q.finish();
  ASSERT_EQ(order.size(), 9u);
  // Despite the hog queueing first and deeper, the meek key must win slots
  // throughout the window, not after the hog drains: check its last grant
  // is not at the tail and its first grant is early.
  size_t first_meek = order.size(), last_meek = 0;
  for (size_t i = 0; i < order.size(); i++) {
    if (order[i] == "meek") {
      first_meek = std::min(first_meek, i);
      last_meek = i;
    }
  }
  EXPECT_LT(first_meek, 2u);
  EXPECT_GE(last_meek, 4u);
}

TEST(FairQueue, WeightsSkewDispatchProportionally) {
  net::FairQueue::Options options;
  options.max_active = 1;
  options.max_queued_per_key = 64;
  options.quantum = 1;
  options.weights["gold"] = 3;
  net::FairQueue q(options);
  std::vector<std::string> order;
  EXPECT_EQ(q.admit("seed", 1, nullptr), net::FairQueue::Verdict::kRun);
  // Every unit costs 3: gold (weight 3) earns a grant per scheduling round,
  // lead (weight 1) needs three rounds of credit per grant.
  for (int i = 0; i < 12; i++) {
    q.admit("gold", 3, [&] { order.push_back("gold"); });
    q.admit("lead", 3, [&] { order.push_back("lead"); });
  }
  for (int i = 0; i < 8; i++) q.finish();
  ASSERT_EQ(order.size(), 8u);
  int gold = 0;
  for (const auto& k : order) gold += (k == "gold") ? 1 : 0;
  // Weight 3 vs 1: gold should take roughly 3/4 of the first 8 grants.
  EXPECT_GE(gold, 5);
}

TEST(FairQueue, CostWeightedAdmissionDrainsExpensiveWorkSlower) {
  net::FairQueue::Options options;
  options.max_active = 1;
  options.max_queued_per_key = 64;
  options.quantum = 2;
  net::FairQueue q(options);
  std::vector<std::string> order;
  EXPECT_EQ(q.admit("seed", 1, nullptr), net::FairQueue::Verdict::kRun);
  // "bulk" queues 4-cost units, "small" queues 1-cost units.
  for (int i = 0; i < 4; i++) {
    q.admit("bulk", 4, [&] { order.push_back("bulk"); });
    q.admit("small", 1, [&] { order.push_back("small"); });
  }
  for (int i = 0; i < 8; i++) q.finish();
  ASSERT_EQ(order.size(), 8u);
  // In any deficit-round-robin schedule the small key's units clear at
  // least as fast as the bulk key's: count smalls in the first half.
  int small_early = 0;
  for (size_t i = 0; i < 4; i++) small_early += (order[i] == "small") ? 1 : 0;
  EXPECT_GE(small_early, 2);
}

TEST(FairQueue, DestructorDropsQueuedWorkSafely) {
  int resumed = 0;
  {
    net::FairQueue::Options options;
    options.max_active = 1;
    net::FairQueue q(options);
    EXPECT_EQ(q.admit("a", 1, nullptr), net::FairQueue::Verdict::kRun);
    EXPECT_EQ(q.admit("a", 1, [&] { resumed++; }),
              net::FairQueue::Verdict::kQueued);
  }  // destroyed with a slot held and a waiter parked
  EXPECT_EQ(resumed, 0);
}

TEST(FairQueue, MetricsTrackVerdictsAndOccupancy) {
  obs::Registry registry;
  net::FairQueue::Options options;
  options.max_active = 1;
  options.max_queued_per_key = 1;
  options.metrics = &registry;
  options.metric_prefix = "tenant.admit";
  net::FairQueue q(options);
  EXPECT_EQ(q.admit("a", 1, nullptr), net::FairQueue::Verdict::kRun);
  EXPECT_EQ(q.admit("a", 1, [] {}), net::FairQueue::Verdict::kQueued);
  EXPECT_EQ(q.admit("a", 1, [] {}), net::FairQueue::Verdict::kRejected);
  EXPECT_EQ(registry.counter("tenant.admit.granted")->value(), 1u);
  EXPECT_EQ(registry.counter("tenant.admit.queued")->value(), 1u);
  EXPECT_EQ(registry.counter("tenant.admit.rejected")->value(), 1u);
  EXPECT_EQ(registry.gauge("tenant.admit.active")->value(), 1);
  EXPECT_EQ(registry.gauge("tenant.admit.waiting")->value(), 1);
  q.finish();  // waiter takes the slot
  EXPECT_EQ(registry.counter("tenant.admit.granted")->value(), 2u);
  EXPECT_EQ(registry.gauge("tenant.admit.waiting")->value(), 0);
  q.finish();
  EXPECT_EQ(registry.gauge("tenant.admit.active")->value(), 0);
}

// --- Concurrency (re-run under ThreadSanitizer by tenant_tsan_test) ----------

#ifdef TSS_TSAN_BUILD
constexpr int kStressThreads = 4;
constexpr int kStressOpsPerThread = 50;
#else
constexpr int kStressThreads = 8;
constexpr int kStressOpsPerThread = 400;
#endif

TEST(QuotaManagerConcurrency, ParallelAdmitAndChargeAreRaceFree) {
  // Many sessions hammering shared buckets: every admission must land in
  // exactly one of the two counters, with no lost updates.
  obs::Registry registry;
  chirp::QuotaManager::Options options;
  options.default_limits = limits(50, 1000);  // small enough to see refusals
  options.metrics = &registry;
  chirp::QuotaManager q(std::move(options));
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kStressThreads; t++) {
    threads.emplace_back([&, t] {
      std::string subject = "globus:/CN=tenant" + std::to_string(t % 3);
      for (int i = 0; i < kStressOpsPerThread; i++) {
        if (q.admit(subject).ok()) {
          admitted.fetch_add(1, std::memory_order_relaxed);
          q.charge(subject, 1, 40);
        } else {
          rejected.fetch_add(1, std::memory_order_relaxed);
        }
        (void)q.balance(subject);
      }
    });
  }
  for (auto& th : threads) th.join();
  const uint64_t total =
      static_cast<uint64_t>(kStressThreads) * kStressOpsPerThread;
  EXPECT_EQ(admitted + rejected, total);
  EXPECT_GT(rejected.load(), 0u);
  EXPECT_EQ(registry.counter("tenant.quota.admitted")->value(), admitted);
  EXPECT_EQ(registry.counter("tenant.quota.rejected")->value(), rejected);
}

TEST(FairQueueConcurrency, ParallelAdmitAndFinishAreRaceFree) {
  // Several subjects racing admit() while resume closures chain through
  // finish() on whatever thread freed the slot. With an unbounded backlog
  // nothing is rejected, so every admitted unit must run exactly once.
  net::FairQueue::Options options;
  options.max_active = 3;
  options.max_queued_per_key = 1 << 20;  // never reject: accounting is exact
  options.quantum = 2;
  options.weights["tenant-0"] = 3;
  net::FairQueue q(options);
  std::atomic<uint64_t> ran{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kStressThreads; t++) {
    threads.emplace_back([&, t] {
      std::string key = "tenant-" + std::to_string(t % 3);
      for (int i = 0; i < kStressOpsPerThread; i++) {
        auto verdict = q.admit(key, 1 + (i % 3), [&] {
          ran.fetch_add(1, std::memory_order_relaxed);
          q.finish();
        });
        ASSERT_NE(verdict, net::FairQueue::Verdict::kRejected);
        if (verdict == net::FairQueue::Verdict::kRun) {
          ran.fetch_add(1, std::memory_order_relaxed);
          q.finish();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Joining the admitters also joins the resume chains: closures only ever
  // run on these threads' finish() calls, so the queue must now be idle.
  EXPECT_EQ(ran.load(),
            static_cast<uint64_t>(kStressThreads) * kStressOpsPerThread);
  EXPECT_EQ(q.active(), 0);
  EXPECT_EQ(q.queued(), 0u);
}

}  // namespace
}  // namespace tss
