file(REMOVE_RECURSE
  "CMakeFiles/tss_syscall_worker.dir/syscall_worker.cc.o"
  "CMakeFiles/tss_syscall_worker.dir/syscall_worker.cc.o.d"
  "tss_syscall_worker"
  "tss_syscall_worker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_syscall_worker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
