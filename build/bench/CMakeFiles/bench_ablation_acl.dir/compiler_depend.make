# Empty compiler generated dependencies file for bench_ablation_acl.
# This may be replaced when dependencies are built.
