# Empty compiler generated dependencies file for tss_bench_common.
# This may be replaced when dependencies are built.
