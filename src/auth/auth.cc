#include "auth/auth.h"

namespace tss::auth {

Result<Subject> Subject::parse(std::string_view s) {
  size_t colon = s.find(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= s.size()) {
    return Error(EINVAL, "bad subject: " + std::string(s));
  }
  return Subject{std::string(s.substr(0, colon)),
                 std::string(s.substr(colon + 1))};
}

void ServerAuth::add(std::unique_ptr<ServerMethod> method) {
  std::string name = method->method();
  methods_[name] = std::move(method);
}

bool ServerAuth::has(const std::string& method) const {
  return methods_.count(method) > 0;
}

std::vector<std::string> ServerAuth::methods() const {
  std::vector<std::string> out;
  out.reserve(methods_.size());
  for (const auto& [name, _] : methods_) out.push_back(name);
  return out;
}

bool ServerAuth::interactive(const std::string& method) const {
  auto it = methods_.find(method);
  return it != methods_.end() && it->second->interactive();
}

Result<Subject> ServerAuth::attempt(const std::string& method,
                                    const PeerInfo& peer,
                                    const std::string& arg, ChallengeIo& io) {
  auto it = methods_.find(method);
  if (it == methods_.end()) {
    return Error(ENOSYS, "auth method not enabled: " + method);
  }
  return it->second->authenticate(peer, arg, io);
}

}  // namespace tss::auth
