file(REMOVE_RECURSE
  "libtss_net.a"
)
