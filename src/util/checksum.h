// Checksums and a keyed MAC.
//
// FNV-1a is used for file integrity checks in the GEMS auditor and for
// content fingerprints in tests. The keyed MAC backs the *simulated* GSI and
// Kerberos credential systems: it plays the role RSA signatures / DES session
// keys play in the real Globus and Kerberos, giving the same unforgeability
// property within the test universe (nobody without the CA/KDC key can mint
// a credential) without shipping a crypto library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tss {

// 64-bit FNV-1a over a byte range.
uint64_t fnv1a64(const void* data, size_t size);
uint64_t fnv1a64(std::string_view s);

// Incremental FNV-1a, for streaming file audits.
class Fnv1a64 {
 public:
  void update(const void* data, size_t size);
  void update(std::string_view s) { update(s.data(), s.size()); }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ULL;
};

// Keyed MAC built from iterated FNV mixing (NOT cryptographically strong;
// a stand-in with the right interface for the simulated credential systems).
// Returns a 16-hex-character tag.
std::string weak_mac(std::string_view key, std::string_view message);

// Formats a 64-bit hash as 16 lowercase hex characters.
std::string hash_to_hex(uint64_t h);

// Strict inverse of hash_to_hex: exactly 16 lowercase hex characters, or
// nullopt. Used to validate checksum tokens from untrusted peers, so it
// rejects everything else (uppercase, short, long, "0x" prefixes).
std::optional<uint64_t> hex_to_hash(std::string_view s);

}  // namespace tss
