// Background integrity scrubber for ReplicatedFs.
//
// Wire checksums (chirp) catch corruption in flight; the scrubber catches
// corruption at rest. It walks the replicated namespace at a configurable
// pace, computes a per-replica FNV-1a64 digest of every file, and compares
// them. Replicas in the strict-majority agreement are trusted; the minority
// is quarantined (ReplicatedFs::quarantine) and repaired from the majority
// via the same ReplicatedFs::repair() path that heals write divergence —
// detection and repair share one mechanism. A file with no strict majority
// (1-vs-1, or three distinct digests) is *unresolved*: no copy can be
// trusted as golden, so the scrubber only counts it and leaves the operator
// runbook in docs/RECOVERY.md to decide.
//
// Pacing is a token bucket over bytes read (max_bytes_per_sec), evaluated
// against an injectable Clock so tests drive it with a VirtualClock.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fs/replicated.h"
#include "obs/metrics.h"
#include "par/executor.h"
#include "util/clock.h"

namespace tss::fs {

class Scrubber {
 public:
  struct Options {
    // Fans per-replica digest reads out concurrently. Borrowed, may be
    // null = serial.
    IoScheduler* scheduler = nullptr;
    // Read granularity; also the pacing quantum.
    size_t chunk_size = 256 * 1024;
    // Token-bucket ceiling on scrub read bandwidth. 0 = unpaced.
    uint64_t max_bytes_per_sec = 0;
    // Pause between background passes (start()/stop() mode).
    Nanos interval = 60 * kSecond;
    // fs.integrity.* / fs.scrub.* registry. Null = the process-wide one.
    obs::Registry* metrics = nullptr;
    // Pacing clock. Null = RealClock.
    Clock* clock = nullptr;
  };

  // Verdict for one scrubbed file.
  struct FileReport {
    bool mismatch = false;    // replicas disagreed (or a copy was missing)
    bool repaired = false;    // repair() ran and healed at least one replica
    bool unresolved = false;  // no strict majority; operator action needed
    // Per-replica digest; meaningful only where `readable[i]` is true.
    std::vector<uint64_t> digests;
    std::vector<char> readable;
  };

  // Borrows `fs` (and everything inside Options); all must outlive the
  // scrubber.
  Scrubber(ReplicatedFs* fs, Options options);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  // Digests every replica's copy of `path`, quarantines the strict-majority
  // losers, and drives ReplicatedFs::repair(). The error return is for the
  // file being unreadable everywhere; a mere mismatch is a FileReport.
  Result<FileReport> scrub_file(const std::string& path);

  // Walks the tree rooted at `root` and scrubs every regular file. Returns
  // the number of files scrubbed.
  Result<int> scrub_tree(const std::string& root = "/");

  // Background mode: one scrub_tree() pass over `root` every interval.
  // start() is idempotent; stop() joins the thread (destructor calls it).
  void start(const std::string& root = "/");
  void stop();

  // Completed background passes.
  uint64_t passes() const { return m_passes_->value(); }

 private:
  Result<uint64_t> digest_replica(FileSystem* replica,
                                  const std::string& path);
  // Charges `n` bytes against the token bucket, sleeping on the clock if
  // the budget is spent.
  void throttle(size_t n);
  void run_loop(std::string root);

  ReplicatedFs* fs_;
  Options options_;
  Clock* clock_;

  obs::Counter* m_scrub_bytes_ = nullptr;  // fs.integrity.scrub_bytes
  obs::Counter* m_mismatch_ = nullptr;     // fs.integrity.mismatch (shared)
  obs::Counter* m_files_ = nullptr;        // fs.scrub.files
  obs::Counter* m_unresolved_ = nullptr;   // fs.scrub.unresolved
  obs::Counter* m_passes_ = nullptr;       // fs.scrub.passes

  std::mutex pace_mutex_;
  Nanos next_allowed_ = 0;

  std::mutex run_mutex_;
  std::condition_variable run_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace tss::fs
