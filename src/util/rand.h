// Deterministic random number generation.
//
// The DSFS data-file naming scheme, the workload generators, and the
// simulator all need reproducible randomness; benchmarks fix the seed so that
// reported series are stable run to run.
#pragma once

#include <cstdint>
#include <string>

namespace tss {

// xoshiro256** — small, fast, good statistical quality.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  uint64_t next();

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t below(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double uniform();

  // Random lowercase hex string of `chars` characters.
  std::string hex(size_t chars);

 private:
  uint64_t s_[4];
};

}  // namespace tss
