// Clock abstraction.
//
// Everything time-dependent (catalog staleness, reconnect backoff, replica
// auditing intervals) takes a Clock so the same code runs against wall time
// in production and against VirtualClock in tests and in the discrete-event
// simulator. Times are nanoseconds since an arbitrary epoch.
#pragma once

#include <cstdint>
#include <atomic>

namespace tss {

using Nanos = int64_t;

constexpr Nanos kMicrosecond = 1000;
constexpr Nanos kMillisecond = 1000 * kMicrosecond;
constexpr Nanos kSecond = 1000 * kMillisecond;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Nanos now() const = 0;
  // Sleeps `d` nanoseconds of this clock's time. VirtualClock advances
  // immediately; RealClock actually blocks.
  virtual void sleep_for(Nanos d) = 0;
};

// Monotonic wall-clock time.
class RealClock final : public Clock {
 public:
  static RealClock& instance();
  Nanos now() const override;
  void sleep_for(Nanos d) override;
};

// Manually advanced clock for tests and the simulator.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Nanos start = 0) : now_(start) {}
  Nanos now() const override { return now_.load(std::memory_order_relaxed); }
  void sleep_for(Nanos d) override { advance(d); }
  void advance(Nanos d) { now_.fetch_add(d, std::memory_order_relaxed); }
  void set(Nanos t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Nanos> now_;
};

}  // namespace tss
