// Server-side cooperative-cache deflection policy.
//
// A server that is the only holder of a hot file melts under fan-in: every
// one of N clients round-trips to it for every read. The fix (cf. cctools'
// chirp_multi.c / chirp_global.c host indirection) is to answer getfiles for
// an over-threshold path with a `redirect <host> <port> <ttl_ms>` hint to a
// sibling cache that also holds the data, instead of the bytes themselves.
//
// The policy enlists peers *lazily*: the first `hot_threshold` reads of a
// path are served directly; past that, one peer is enlisted per additional
// threshold's worth of demand, round-robined across the enlisted set. The
// origin's data-serving load per path is therefore bounded by the threshold,
// and each enlisted peer absorbs about a threshold's worth of redirected
// clients before the next peer is pulled in — per-server data-RPC load stays
// roughly flat (sublinear in client count) until the peer set is exhausted.
//
// Thread-safe: consider() is called from every session of a live server.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "chirp/protocol.h"

namespace tss::chirp {

class RedirectPolicy {
 public:
  struct Options {
    // Sibling caches that hold (or can fetch) the same data.
    std::vector<Redirect> peers;
    // Reads of one path the origin serves itself before deflecting; also the
    // per-peer demand quantum that enlists the next peer. 0 = never deflect.
    uint64_t hot_threshold = 64;
    // How long a client may trust a hint before asking the origin again.
    uint64_t ttl_ms = 2000;
  };

  explicit RedirectPolicy(Options options) : options_(std::move(options)) {}

  // Called once per getfile from a capability-negotiated session. Returns
  // the peer to deflect to, or nullopt when the origin should serve.
  std::optional<Redirect> consider(const std::string& path);

  // Deflections issued so far (tests and the stats snapshot's producer).
  uint64_t issued() const;

 private:
  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, uint64_t> reads_;
  uint64_t issued_ = 0;
};

}  // namespace tss::chirp
