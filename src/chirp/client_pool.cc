#include "chirp/client_pool.h"

#include <unistd.h>

namespace tss::chirp {

namespace {
uint64_t derive_seed(const void* self) {
  // Distinct per pool instance so a fleet of pools does not jitter in
  // lockstep; reproducible pools pass Options::jitter_seed.
  return reinterpret_cast<uintptr_t>(self) ^
         (static_cast<uint64_t>(::getpid()) << 32) ^ 0x9e3779b97f4a7c15ULL;
}
}  // namespace

ClientPool::ClientPool(DialFn dial, Options options)
    : dial_(std::move(dial)),
      options_(options),
      clock_(options.clock ? options.clock : &RealClock::instance()),
      jitter_rng_(options.jitter_seed ? options.jitter_seed
                                      : derive_seed(this)) {
  if (options_.max_connections == 0) options_.max_connections = 1;
  obs::Registry* metrics =
      options_.metrics ? options_.metrics : &obs::Registry::global();
  m_dials_ = metrics->counter("net.pool.dials");
  m_dial_failures_ = metrics->counter("net.pool.dial_failures");
  m_backoff_sleeps_ = metrics->counter("net.pool.backoff_sleeps");
  m_checkouts_ = metrics->counter("net.pool.checkouts");
  m_reused_ = metrics->counter("net.pool.reused");
  m_exhausted_ = metrics->counter("net.pool.exhausted");
  m_health_evictions_ = metrics->counter("net.pool.health_evictions");
  m_idle_evictions_ = metrics->counter("net.pool.idle_evictions");
  m_discarded_ = metrics->counter("net.pool.discarded");
  m_idle_gauge_ = metrics->gauge("net.pool.idle");
  m_in_use_gauge_ = metrics->gauge("net.pool.in_use");
}

ClientPool::~ClientPool() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (IdleEntry& entry : idle_) entry.client->close();
  idle_.clear();
  m_idle_gauge_->set(0);
}

size_t ClientPool::idle_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return idle_.size();
}

size_t ClientPool::in_use_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

size_t ClientPool::evict_idle() {
  std::deque<IdleEntry> evicted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Nanos now = clock_->now();
    while (!idle_.empty() &&
           now - idle_.front().since > options_.idle_timeout) {
      evicted.push_back(std::move(idle_.front()));
      idle_.pop_front();
    }
    m_idle_gauge_->set(static_cast<int64_t>(idle_.size()));
  }
  for (IdleEntry& entry : evicted) {
    entry.client->close();
    m_idle_evictions_->add();
  }
  return evicted.size();
}

void ClientPool::release_slot_locked() {
  in_use_--;
  m_in_use_gauge_->set(static_cast<int64_t>(in_use_));
}

Result<ClientPool::Lease> ClientPool::checkout() {
  m_checkouts_->add();
  for (;;) {
    std::unique_ptr<Client> candidate;
    Nanos age = 0;
    bool dial = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      Nanos now = clock_->now();
      while (!idle_.empty()) {
        IdleEntry entry = std::move(idle_.back());
        idle_.pop_back();
        age = now - entry.since;
        if (age > options_.idle_timeout) {
          entry.client->close();
          m_idle_evictions_->add();
          continue;
        }
        candidate = std::move(entry.client);
        break;
      }
      m_idle_gauge_->set(static_cast<int64_t>(idle_.size()));
      if (!candidate) {
        if (in_use_ >= options_.max_connections) {
          m_exhausted_->add();
          return Error(EBUSY,
                       "client pool exhausted: " +
                           std::to_string(options_.max_connections) +
                           " connections checked out");
        }
        dial = true;
      }
      in_use_++;  // reserve the slot; dialing happens outside the lock
      m_in_use_gauge_->set(static_cast<int64_t>(in_use_));
    }

    if (dial) {
      auto dialed = dial_with_backoff();
      if (!dialed.ok()) {
        std::lock_guard<std::mutex> lock(mutex_);
        release_slot_locked();
        return std::move(dialed).take_error();
      }
      return Lease(this, std::move(dialed).value());
    }

    // Health check on checkout, outside the lock: connected() always, plus
    // a whoami() probe when the connection has been idle long enough to be
    // suspect. A failed check discards the connection and retries the loop
    // (another idle entry, a fresh dial, or EBUSY).
    bool healthy = candidate->connected();
    if (healthy && options_.probe_idle_age >= 0 &&
        age >= options_.probe_idle_age) {
      healthy = candidate->whoami().ok();
    }
    if (!healthy) {
      candidate->close();
      m_health_evictions_->add();
      std::lock_guard<std::mutex> lock(mutex_);
      release_slot_locked();
      continue;
    }
    m_reused_->add();
    return Lease(this, std::move(candidate));
  }
}

Result<std::unique_ptr<Client>> ClientPool::dial_with_backoff() {
  int attempts = options_.dial_retry.max_attempts > 0
                     ? options_.dial_retry.max_attempts
                     : 1;
  Error last(ECONNREFUSED, "pool dial failed");
  for (int attempt = 0; attempt < attempts; attempt++) {
    if (attempt > 0) {
      Nanos delay;
      {
        // The Rng is not thread-safe; draw the jitter under the pool lock.
        std::lock_guard<std::mutex> lock(mutex_);
        delay = Backoff(options_.dial_retry, &jitter_rng_)
                    .delay_before(attempt);
      }
      m_backoff_sleeps_->add();
      clock_->sleep_for(delay);
    }
    m_dials_->add();
    auto client = dial_();
    if (client.ok()) {
      return std::make_unique<Client>(std::move(client).value());
    }
    m_dial_failures_->add();
    last = std::move(client).take_error();
  }
  return Error(last.code, "pool dial failed after " +
                              std::to_string(attempts) +
                              " attempts: " + last.to_string());
}

void ClientPool::checkin(std::unique_ptr<Client> client, bool poisoned) {
  bool keep = !poisoned && client->connected();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    release_slot_locked();
    if (keep && idle_.size() < options_.max_idle) {
      idle_.push_back(IdleEntry{std::move(client), clock_->now()});
      m_idle_gauge_->set(static_cast<int64_t>(idle_.size()));
      return;
    }
  }
  client->close();
  m_discarded_->add();
}

}  // namespace tss::chirp
