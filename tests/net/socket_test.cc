#include "net/socket.h"

#include <gtest/gtest.h>

#include <thread>

namespace tss::net {
namespace {

TEST(Endpoint, ParseAndFormat) {
  auto ep = Endpoint::parse("127.0.0.1:9094");
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep.value().host, "127.0.0.1");
  EXPECT_EQ(ep.value().port, 9094);
  EXPECT_EQ(ep.value().to_string(), "127.0.0.1:9094");
}

TEST(Endpoint, RejectsMalformed) {
  EXPECT_FALSE(Endpoint::parse("nohost").ok());
  EXPECT_FALSE(Endpoint::parse(":99").ok());
  EXPECT_FALSE(Endpoint::parse("host:").ok());
  EXPECT_FALSE(Endpoint::parse("host:99999").ok());
  EXPECT_FALSE(Endpoint::parse("host:abc").ok());
}

TEST(TcpListener, EphemeralPortAssigned) {
  auto listener = TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener.value().port(), 0);
}

TEST(TcpSocket, ConnectRefusedGivesError) {
  // Bind a listener, close it, then connect to the now-dead port.
  auto listener = TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  uint16_t port = listener.value().port();
  listener.value().close();
  auto sock = TcpSocket::connect(Endpoint{"127.0.0.1", port}, kSecond);
  EXPECT_FALSE(sock.ok());
}

TEST(TcpSocket, RoundTripBytes) {
  auto listener = TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Endpoint ep{"127.0.0.1", listener.value().port()};

  std::thread server([&] {
    auto conn = listener.value().accept(5 * kSecond);
    ASSERT_TRUE(conn.ok());
    char buf[5];
    ASSERT_TRUE(conn.value().read_exact(buf, 5, 5 * kSecond).ok());
    ASSERT_TRUE(conn.value().write_all(buf, 5, 5 * kSecond).ok());
  });

  auto sock = TcpSocket::connect(ep, 5 * kSecond);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock.value().write_all("hello", 5, 5 * kSecond).ok());
  char echo[5];
  ASSERT_TRUE(sock.value().read_exact(echo, 5, 5 * kSecond).ok());
  EXPECT_EQ(std::string(echo, 5), "hello");
  server.join();
}

TEST(TcpSocket, ReadSomeSeesEofAsZero) {
  auto listener = TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Endpoint ep{"127.0.0.1", listener.value().port()};

  std::thread server([&] {
    auto conn = listener.value().accept(5 * kSecond);
    ASSERT_TRUE(conn.ok());
    // Close immediately.
  });

  auto sock = TcpSocket::connect(ep, 5 * kSecond);
  ASSERT_TRUE(sock.ok());
  server.join();
  char buf[8];
  auto n = sock.value().read_some(buf, sizeof buf, 5 * kSecond);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(TcpSocket, PeerAndLocalAddresses) {
  auto listener = TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  Endpoint ep{"127.0.0.1", listener.value().port()};

  std::thread server([&] {
    auto conn = listener.value().accept(5 * kSecond);
    ASSERT_TRUE(conn.ok());
    auto peer = conn.value().peer();
    ASSERT_TRUE(peer.ok());
    EXPECT_EQ(peer.value().host, "127.0.0.1");
  });

  auto sock = TcpSocket::connect(ep, 5 * kSecond);
  ASSERT_TRUE(sock.ok());
  auto peer = sock.value().peer();
  ASSERT_TRUE(peer.ok());
  EXPECT_EQ(peer.value().port, ep.port);
  server.join();
}

TEST(TcpListener, AcceptTimesOut) {
  auto listener = TcpListener::listen("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok());
  auto conn = listener.value().accept(50 * kMillisecond);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.error().code, ETIMEDOUT);
}

}  // namespace
}  // namespace tss::net
