# Empty dependencies file for bench_fig4_io_latency.
# This may be replaced when dependencies are built.
