file(REMOVE_RECURSE
  "CMakeFiles/fs_chaos_test.dir/fs/chaos_test.cc.o"
  "CMakeFiles/fs_chaos_test.dir/fs/chaos_test.cc.o.d"
  "fs_chaos_test"
  "fs_chaos_test.pdb"
  "fs_chaos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
