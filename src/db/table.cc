#include "db/table.h"

#include "util/strings.h"

namespace tss::db {

std::string encode_record(const Record& record) {
  std::string out;
  for (const auto& [key, value] : record) {
    if (!out.empty()) out += '&';
    out += url_encode(key);
    out += '=';
    out += url_encode(value);
  }
  return out;
}

Result<Record> decode_record(const std::string& token) {
  Record record;
  if (token.empty()) return record;
  for (const std::string& pair : split(token, '&')) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Error(EINVAL, "db: malformed record field: " + pair);
    }
    record[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
  }
  return record;
}

Table::Table(std::vector<std::string> indexed_fields)
    : indexed_(std::move(indexed_fields)) {}

void Table::index_insert(const Record& record) {
  auto id_it = record.find(kIdField);
  for (const std::string& field : indexed_) {
    auto it = record.find(field);
    if (it != record.end()) {
      index_[field][it->second].insert(id_it->second);
    }
  }
}

void Table::index_remove(const Record& record) {
  auto id_it = record.find(kIdField);
  for (const std::string& field : indexed_) {
    auto it = record.find(field);
    if (it != record.end()) {
      auto& bucket = index_[field][it->second];
      bucket.erase(id_it->second);
      if (bucket.empty()) index_[field].erase(it->second);
    }
  }
}

Result<void> Table::put(const Record& record) {
  auto id_it = record.find(kIdField);
  if (id_it == record.end() || id_it->second.empty()) {
    return Error(EINVAL, "db: record missing id");
  }
  auto existing = records_.find(id_it->second);
  if (existing != records_.end()) {
    index_remove(existing->second);
  }
  records_[id_it->second] = record;
  index_insert(record);
  return Result<void>::success();
}

Result<Record> Table::get(const std::string& id) const {
  auto it = records_.find(id);
  if (it == records_.end()) return Error(ENOENT, "db: no record: " + id);
  return it->second;
}

void Table::remove(const std::string& id) {
  auto it = records_.find(id);
  if (it == records_.end()) return;
  index_remove(it->second);
  records_.erase(it);
}

std::vector<Record> Table::query(const std::string& field,
                                 const std::string& value) const {
  std::vector<Record> out;
  auto field_index = index_.find(field);
  bool indexed =
      std::find(indexed_.begin(), indexed_.end(), field) != indexed_.end();
  if (indexed) {
    if (field_index != index_.end()) {
      auto bucket = field_index->second.find(value);
      if (bucket != field_index->second.end()) {
        for (const std::string& id : bucket->second) {
          out.push_back(records_.at(id));
        }
      }
    }
    return out;
  }
  for (const auto& [id, record] : records_) {
    auto it = record.find(field);
    if (it != record.end() && it->second == value) out.push_back(record);
  }
  return out;
}

void Table::scan(const std::function<void(const Record&)>& visit) const {
  for (const auto& [id, record] : records_) visit(record);
}

std::vector<std::string> Table::ids() const {
  std::vector<std::string> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(id);
  return out;
}

std::string Table::serialize() const {
  std::string out;
  for (const auto& [id, record] : records_) {
    out += encode_record(record);
    out += '\n';
  }
  return out;
}

Result<void> Table::load(const std::string& snapshot) {
  std::map<std::string, Record> loaded;
  for (const std::string& line : split(snapshot, '\n')) {
    if (trim(line).empty()) continue;
    TSS_ASSIGN_OR_RETURN(Record record, decode_record(std::string(trim(line))));
    auto id_it = record.find(kIdField);
    if (id_it == record.end()) {
      return Error(EINVAL, "db: snapshot record missing id");
    }
    loaded[id_it->second] = std::move(record);
  }
  records_ = std::move(loaded);
  index_.clear();
  for (const auto& [id, record] : records_) index_insert(record);
  return Result<void>::success();
}

}  // namespace tss::db
