// Embedded table store: the database substrate under the DSDB/GEMS
// abstraction.
//
// "The DSDB is similar to the DSFS, except that a database server is used to
// store file metadata as well as pointers to files. A user queries the
// database to yield the names of matching files, and then accesses them
// directly with the adapter." (§5)
//
// A Table holds records (string field -> string value maps) keyed by an "id"
// field, with equality-query secondary indexes on declared fields. State can
// be snapshotted to and recovered from a text stream — which is also what
// makes the §5 claim "the database could even be recovered automatically by
// rescanning the existing file data" testable here.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"

namespace tss::db {

// A record: flat string fields. "id" is the primary key.
using Record = std::map<std::string, std::string>;

inline constexpr const char* kIdField = "id";

// Wire/snapshot form: "k=v&k=v" with percent-encoded keys and values.
std::string encode_record(const Record& record);
Result<Record> decode_record(const std::string& token);

class Table {
 public:
  // `indexed_fields` get equality-lookup secondary indexes.
  explicit Table(std::vector<std::string> indexed_fields = {});

  // Inserts or replaces the record with the same id. Requires an id field.
  Result<void> put(const Record& record);
  Result<Record> get(const std::string& id) const;
  // Removing a missing id is not an error (idempotent).
  void remove(const std::string& id);

  // All records whose `field` equals `value`. O(log n + matches) for
  // indexed fields; full scan otherwise.
  std::vector<Record> query(const std::string& field,
                            const std::string& value) const;

  // Visits every record; the visitor may not mutate the table.
  void scan(const std::function<void(const Record&)>& visit) const;
  std::vector<std::string> ids() const;

  size_t size() const { return records_.size(); }
  const std::vector<std::string>& indexed_fields() const { return indexed_; }

  // Snapshot round trip: one encoded record per line.
  std::string serialize() const;
  Result<void> load(const std::string& snapshot);  // replaces contents

 private:
  void index_insert(const Record& record);
  void index_remove(const Record& record);

  std::vector<std::string> indexed_;
  std::map<std::string, Record> records_;  // id -> record
  // field -> (value -> ids)
  std::map<std::string, std::map<std::string, std::set<std::string>>> index_;
};

}  // namespace tss::db
