#include "fs/local.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

namespace tss::fs {
namespace {

class LocalFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/localfs_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    fs_ = std::make_unique<LocalFs>(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<LocalFs> fs_;
  static inline int counter_ = 0;
};

TEST_F(LocalFsTest, WriteReadRoundTrip) {
  ASSERT_TRUE(fs_->write_file("/a.txt", "hello").ok());
  auto data = fs_->read_file("/a.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello");
}

TEST_F(LocalFsTest, OpenPreadPwriteAtOffsets) {
  auto file = fs_->open("/f", OpenFlags::parse("rwc").value(), 0644);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file.value()->pwrite("abcdef", 6, 0).ok());
  ASSERT_TRUE(file.value()->pwrite("XY", 2, 2).ok());
  char buf[6];
  auto n = file.value()->pread(buf, 6, 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 6), "abXYef");
}

TEST_F(LocalFsTest, FstatTracksGrowth) {
  auto file = fs_->open("/g", OpenFlags::parse("wc").value(), 0644);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value()->fstat().value().size, 0u);
  ASSERT_TRUE(file.value()->pwrite("123456", 6, 0).ok());
  EXPECT_EQ(file.value()->fstat().value().size, 6u);
}

TEST_F(LocalFsTest, MkdirRecursiveCreatesChain) {
  ASSERT_TRUE(mkdir_recursive(*fs_, "/a/b/c/d").ok());
  auto info = fs_->stat("/a/b/c/d");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info.value().is_dir);
  // Idempotent.
  EXPECT_TRUE(mkdir_recursive(*fs_, "/a/b/c/d").ok());
}

TEST_F(LocalFsTest, RenameAndUnlink) {
  ASSERT_TRUE(fs_->write_file("/x", "1").ok());
  ASSERT_TRUE(fs_->rename("/x", "/y").ok());
  EXPECT_EQ(fs_->stat("/x").code(), ENOENT);
  ASSERT_TRUE(fs_->unlink("/y").ok());
  EXPECT_EQ(fs_->stat("/y").code(), ENOENT);
}

TEST_F(LocalFsTest, ReaddirListsEntries) {
  ASSERT_TRUE(fs_->write_file("/one", "1").ok());
  ASSERT_TRUE(fs_->mkdir("/two").ok());
  auto entries = fs_->readdir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 2u);
}

TEST_F(LocalFsTest, CopyFileBetweenFilesystems) {
  std::string other_root = root_ + "_other";
  std::filesystem::create_directories(other_root);
  LocalFs other(other_root);

  std::string payload(300000, 'p');
  for (size_t i = 0; i < payload.size(); i += 11) {
    payload[i] = static_cast<char>(i);
  }
  ASSERT_TRUE(fs_->write_file("/src", payload).ok());
  auto copied = copy_file(*fs_, "/src", other, "/dst", /*chunk_size=*/4096);
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied.value(), payload.size());
  EXPECT_EQ(other.read_file("/dst").value(), payload);
  std::filesystem::remove_all(other_root);
}

TEST_F(LocalFsTest, CloseIsIdempotent) {
  auto file = fs_->open("/c", OpenFlags::parse("wc").value(), 0644);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.value()->close().ok());
  EXPECT_TRUE(file.value()->close().ok());
  EXPECT_EQ(file.value()->pread(nullptr, 0, 0).code(), EBADF);
}

TEST_F(LocalFsTest, PathsAreSanitized) {
  ASSERT_TRUE(fs_->write_file("/../../escape", "x").ok());
  EXPECT_TRUE(std::filesystem::exists(root_ + "/escape"));
}

}  // namespace
}  // namespace tss::fs
