// Ablation — hot-set read fan-in: cold vs warm vs cooperative caching.
//
// The paper's CFS "dispenses with buffering and caching" (§5), which is the
// right call for consistency but the wrong one for a hot set: when hundreds
// of clients read the same few files, every read is a full round trip to one
// origin server. This harness measures the three regimes on the simulated
// cluster:
//
//   cold         no caching anywhere — every read is an origin getfile
//                (the paper's configuration).
//   warm         client-side cache (the CachedFs model): the first read of a
//                file is an origin getfile, every repeat is served locally
//                with zero RPCs.
//   cooperative  warm clients plus the server-side redirect capability: the
//                origin answers over-threshold hot getfiles with a
//                deflection to a preloaded sibling cache, so even the miss
//                storm of N first-reads fans out across peers instead of
//                serializing on one server.
//
// Clients run the same workload in all modes — `reads_per_client` reads
// round-robin over a small hot set — so cold vs warm is a throughput
// comparison, and cooperative at N vs 4N clients is a load-scaling one: the
// origin serves at most `threshold` data RPCs per path and deflects the
// rest, so the *maximum* per-server data load must grow sublinearly in
// client count (cold grows exactly linearly).
//
// Results go to stdout as a table and to BENCH_hot_read_fanin.json.
//
// Usage: bench_ablation_hot_read_fanin [out.json|--smoke]
//   --smoke  reduced sizes + regression gates: warm throughput >= 5x cold,
//            and cooperative max per-server data RPCs grows < 4x when the
//            client count grows 4x.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/common.h"
#include "chirp/redirect.h"
#include "sim/engine.h"

namespace tss::bench {
namespace {

using sim::Cluster;
using sim::Engine;
using sim::SimChirpClient;
using sim::SimChirpServer;
using sim::Task;

enum class Mode { kCold, kWarm, kCooperative };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kCold:
      return "cold";
    case Mode::kWarm:
      return "warm";
    default:
      return "cooperative";
  }
}

struct BenchConfig {
  int hot_files = 4;
  uint64_t file_bytes = 256 * 1024;
  int reads_per_client = 32;
  int num_peers = 4;
  uint64_t hot_threshold = 25;  // origin data serves per path before deflecting
  int clients = 250;
  int clients_scaled = 1000;  // the 4x point for the sublinearity gate
};

struct FaninPoint {
  std::string mode;
  int clients = 0;
  double seconds = 0;
  double mbps = 0;
  uint64_t bytes = 0;
  uint64_t data_rpcs_origin = 0;  // getfiles answered with bytes
  uint64_t data_rpcs_max = 0;     // max over origin and every peer
  uint64_t redirects = 0;         // deflection replies followed
};

std::string hot_path(int f) { return "/hot/file" + std::to_string(f); }

// One client: reads_per_client round-robin reads over the hot set. Warm and
// cooperative clients remember what they already hold (the CachedFs model);
// cooperative ones follow deflections to the named sibling.
Task<void> fanin_client(Cluster& cluster, int node, Mode mode,
                        SimChirpServer* origin,
                        std::vector<std::unique_ptr<SimChirpServer>>* peers,
                        const BenchConfig* cfg, int client_index,
                        std::vector<uint64_t>* data_rpcs, uint64_t* redirects,
                        uint64_t* bytes) {
  SimChirpClient conn(cluster, node, *origin,
                      "node" + std::to_string(client_index),
                      /*cooperative=*/mode == Mode::kCooperative);
  auto connected = co_await conn.connect();
  if (!connected.ok()) co_return;

  std::set<int> held;  // files already in this client's cache
  std::map<int, std::unique_ptr<SimChirpClient>> peer_conns;
  for (int r = 0; r < cfg->reads_per_client; r++) {
    int f = r % cfg->hot_files;
    if (mode != Mode::kCold && held.count(f)) {
      // Local cache hit: the bytes are delivered with zero RPCs.
      *bytes += cfg->file_bytes;
      continue;
    }
    if (mode == Mode::kCooperative) {
      auto fetch = co_await conn.getfile_hint(hot_path(f));
      if (!fetch.ok()) co_return;
      if (fetch.value().redirect) {
        // "peer<i>" -> peers[i]; dial the sibling on first use.
        int peer = std::stoi(fetch.value().redirect->host.substr(4));
        auto it = peer_conns.find(peer);
        if (it == peer_conns.end()) {
          auto dialed = std::make_unique<SimChirpClient>(
              cluster, node, *(*peers)[static_cast<size_t>(peer)],
              "node" + std::to_string(client_index));
          auto peer_up = co_await dialed->connect();
          if (!peer_up.ok()) co_return;
          it = peer_conns.emplace(peer, std::move(dialed)).first;
        }
        auto data = co_await it->second->getfile(hot_path(f));
        if (!data.ok()) co_return;
        (*data_rpcs)[static_cast<size_t>(1 + peer)]++;
        (*redirects)++;
      } else {
        (*data_rpcs)[0]++;
      }
    } else {
      auto data = co_await conn.getfile(hot_path(f));
      if (!data.ok()) co_return;
      (*data_rpcs)[0]++;
    }
    held.insert(f);
    *bytes += cfg->file_bytes;
  }
}

FaninPoint run_mode(Mode mode, int num_clients, const BenchConfig& cfg) {
  Engine engine;
  Cluster cluster(engine, Cluster::Config{});

  // Cooperative deflections name the sibling caches "peer<i>"; the port is
  // nominal (the sim routes by name).
  chirp::RedirectPolicy::Options policy_options;
  for (int p = 0; p < cfg.num_peers; p++) {
    policy_options.peers.push_back(
        {"peer" + std::to_string(p), static_cast<uint16_t>(9100 + p), 0});
  }
  policy_options.hot_threshold = cfg.hot_threshold;
  chirp::RedirectPolicy policy(policy_options);

  SimChirpServer::Options origin_options;
  if (mode == Mode::kCooperative) origin_options.redirect = &policy;
  SimChirpServer origin(cluster, origin_options);

  std::vector<std::unique_ptr<SimChirpServer>> peers;
  if (mode == Mode::kCooperative) {
    for (int p = 0; p < cfg.num_peers; p++) {
      peers.push_back(std::make_unique<SimChirpServer>(
          cluster, SimChirpServer::Options{}));
    }
  }

  // The hot set lives on the origin and (cooperative mode) on every sibling
  // cache, warmed so the measurement sees steady-state service times.
  auto mk = origin.backend().mkdir("/hot", 0755);
  (void)mk;
  origin.backend().take_completion();
  for (int f = 0; f < cfg.hot_files; f++) {
    auto pre = origin.backend().preload_file(hot_path(f), cfg.file_bytes);
    (void)pre;
    origin.backend().take_completion();
    auto warm = origin.backend().warm_file(hot_path(f));
    (void)warm;
    for (auto& peer : peers) {
      auto pmk = peer->backend().mkdir("/hot", 0755);
      (void)pmk;
      peer->backend().take_completion();
      auto ppre = peer->backend().preload_file(hot_path(f), cfg.file_bytes);
      (void)ppre;
      peer->backend().take_completion();
      auto pwarm = peer->backend().warm_file(hot_path(f));
      (void)pwarm;
    }
  }

  std::vector<uint64_t> data_rpcs(1 + static_cast<size_t>(cfg.num_peers), 0);
  uint64_t redirects = 0;
  std::vector<uint64_t> bytes(static_cast<size_t>(num_clients), 0);
  for (int c = 0; c < num_clients; c++) {
    int node = cluster.add_node();
    spawn(engine, fanin_client(cluster, node, mode, &origin, &peers, &cfg, c,
                               &data_rpcs, &redirects,
                               &bytes[static_cast<size_t>(c)]));
  }
  Nanos end = engine.run();

  FaninPoint point;
  point.mode = mode_name(mode);
  point.clients = num_clients;
  point.seconds = static_cast<double>(end) / kSecond;
  for (uint64_t b : bytes) point.bytes += b;
  point.mbps = point.seconds > 0
                   ? static_cast<double>(point.bytes) / 1e6 / point.seconds
                   : 0;
  point.data_rpcs_origin = data_rpcs[0];
  point.data_rpcs_max = *std::max_element(data_rpcs.begin(), data_rpcs.end());
  point.redirects = redirects;
  return point;
}

const FaninPoint* find_point(const std::vector<FaninPoint>& points,
                             const std::string& mode, int clients) {
  for (const FaninPoint& p : points) {
    if (p.mode == mode && p.clients == clients) return &p;
  }
  return nullptr;
}

// The --smoke gates (also run by scripts/check.sh).
int check_regressions(const std::vector<FaninPoint>& points,
                      const BenchConfig& cfg) {
  int failures = 0;
  const FaninPoint* cold = find_point(points, "cold", cfg.clients);
  const FaninPoint* warm = find_point(points, "warm", cfg.clients);
  const FaninPoint* coop = find_point(points, "cooperative", cfg.clients);
  const FaninPoint* coop4 = find_point(points, "cooperative",
                                       cfg.clients_scaled);
  if (!cold || !warm || !coop || !coop4) {
    std::fprintf(stderr, "FAIL: missing bench points\n");
    return 1;
  }
  if (warm->mbps < 5.0 * cold->mbps) {
    std::fprintf(stderr,
                 "FAIL: warm hot-set throughput %.1f MB/s < 5x cold "
                 "%.1f MB/s\n",
                 warm->mbps, cold->mbps);
    failures++;
  }
  double growth = coop->data_rpcs_max > 0
                      ? static_cast<double>(coop4->data_rpcs_max) /
                            static_cast<double>(coop->data_rpcs_max)
                      : 0;
  double client_growth = static_cast<double>(cfg.clients_scaled) /
                         static_cast<double>(cfg.clients);
  if (growth <= 0 || growth >= client_growth) {
    std::fprintf(stderr,
                 "FAIL: cooperative max per-server data RPCs grew %.2fx for "
                 "%.0fx clients (%llu -> %llu): not sublinear\n",
                 growth, client_growth,
                 static_cast<unsigned long long>(coop->data_rpcs_max),
                 static_cast<unsigned long long>(coop4->data_rpcs_max));
    failures++;
  }
  if (coop4->redirects == 0) {
    std::fprintf(stderr, "FAIL: cooperative mode never deflected\n");
    failures++;
  }
  return failures;
}

}  // namespace
}  // namespace tss::bench

int main(int argc, char** argv) {
  using namespace tss::bench;

  bool smoke = false;
  std::string out_path = "BENCH_hot_read_fanin.json";
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  BenchConfig cfg;
  if (smoke) {
    cfg.file_bytes = 64 * 1024;
    cfg.clients = 50;
    cfg.clients_scaled = 200;
  }

  print_header(
      "Ablation: hot-set read fan-in (cold vs warm vs cooperative)",
      "Every client reads the same small hot set round-robin. cold = every\n"
      "read an origin getfile; warm = client cache, repeats served locally;\n"
      "cooperative = warm + server redirect: over-threshold hot getfiles\n"
      "deflect to preloaded sibling caches, bounding origin data load.");
  print_row({"mode", "clients", "MB/s", "sim s", "origin data", "max data",
             "redirects"},
            13);

  std::vector<FaninPoint> points;
  struct Run {
    Mode mode;
    int clients;
  };
  std::vector<Run> runs = {{Mode::kCold, cfg.clients},
                           {Mode::kCold, cfg.clients_scaled},
                           {Mode::kWarm, cfg.clients},
                           {Mode::kCooperative, cfg.clients},
                           {Mode::kCooperative, cfg.clients_scaled}};
  for (const Run& run : runs) {
    FaninPoint p = run_mode(run.mode, run.clients, cfg);
    points.push_back(p);
    print_row({p.mode, std::to_string(p.clients), fmt_double(p.mbps, 1),
               fmt_double(p.seconds, 3),
               std::to_string(p.data_rpcs_origin),
               std::to_string(p.data_rpcs_max),
               std::to_string(p.redirects)},
              13);
  }

  std::ofstream json(out_path);
  json << "{\n  \"bench\": \"hot_read_fanin\",\n  \"hot_files\": "
       << cfg.hot_files << ",\n  \"file_bytes\": " << cfg.file_bytes
       << ",\n  \"reads_per_client\": " << cfg.reads_per_client
       << ",\n  \"num_peers\": " << cfg.num_peers
       << ",\n  \"hot_threshold\": " << cfg.hot_threshold
       << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); i++) {
    const FaninPoint& p = points[i];
    json << "    {\"mode\": \"" << p.mode << "\", \"clients\": " << p.clients
         << ", \"mb_per_sec\": " << fmt_double(p.mbps, 2)
         << ", \"sim_seconds\": " << fmt_double(p.seconds, 4)
         << ", \"bytes\": " << p.bytes
         << ", \"data_rpcs_origin\": " << p.data_rpcs_origin
         << ", \"data_rpcs_max\": " << p.data_rpcs_max
         << ", \"redirects\": " << p.redirects << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    int failures = check_regressions(points, cfg);
    if (failures > 0) return 1;
    std::printf("smoke checks passed: warm >= 5x cold throughput, "
                "cooperative per-server load sublinear in clients\n");
  }
  return 0;
}
