// ClientPool: checkout/checkin reuse, the EBUSY admission bound, health
// and idle eviction, dial backoff accounting, and the multi-thread
// checkout race — all against a live Chirp server.
#include "chirp/client_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "auth/hostname.h"
#include "chirp/test_util.h"
#include "util/clock.h"

namespace tss::chirp {
namespace {

using testing::ChirpServerFixture;

#ifdef TSS_TSAN_BUILD
constexpr int kRaceThreads = 4;
constexpr int kRaceOpsPerThread = 25;
#else
constexpr int kRaceThreads = 8;
constexpr int kRaceOpsPerThread = 50;
#endif

class ClientPoolTest : public ChirpServerFixture {
 protected:
  // Dials and authenticates one connection — the pool's DialFn contract.
  ClientPool::DialFn dialer() {
    return [this]() -> Result<Client> {
      TSS_ASSIGN_OR_RETURN(Client client,
                           Client::connect(server_->endpoint()));
      auth::HostnameClientCredential credential;
      auto subject = client.authenticate(credential);
      if (!subject.ok()) return std::move(subject).take_error();
      return client;
    };
  }

  ClientPool::Options pool_options(obs::Registry* registry, Clock* clock) {
    ClientPool::Options options;
    options.metrics = registry;
    options.clock = clock;
    // Unit tests drive eviction and probing explicitly.
    options.probe_idle_age = -1;
    options.dial_retry.max_attempts = 1;
    return options;
  }
};

TEST_F(ClientPoolTest, CheckinThenCheckoutReusesTheConnection) {
  start_server();
  obs::Registry registry;
  VirtualClock clock;
  ClientPool pool(dialer(), pool_options(&registry, &clock));

  {
    auto lease = pool.checkout();
    ASSERT_TRUE(lease.ok()) << lease.error().to_string();
    auto who = lease.value()->whoami();
    ASSERT_TRUE(who.ok());
    EXPECT_EQ(who.value(), "hostname:localhost");
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  EXPECT_EQ(pool.in_use_count(), 0u);

  {
    auto lease = pool.checkout();
    ASSERT_TRUE(lease.ok());
    EXPECT_TRUE(lease.value()->whoami().ok());
  }
  EXPECT_EQ(registry.counter_value("net.pool.dials"), 1u);
  EXPECT_EQ(registry.counter_value("net.pool.reused"), 1u);
  EXPECT_EQ(registry.counter_value("net.pool.checkouts"), 2u);
  EXPECT_EQ(registry.gauge("net.pool.idle")->value(), 1);
  EXPECT_EQ(registry.gauge("net.pool.in_use")->value(), 0);
}

TEST_F(ClientPoolTest, ExhaustedPoolAnswersTypedEbusyWithoutBlocking) {
  start_server();
  obs::Registry registry;
  VirtualClock clock;
  ClientPool::Options options = pool_options(&registry, &clock);
  options.max_connections = 2;
  ClientPool pool(dialer(), options);

  auto a = pool.checkout();
  auto b = pool.checkout();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.checkout();
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.error().code, EBUSY);
  EXPECT_EQ(registry.counter_value("net.pool.exhausted"), 1u);
  EXPECT_EQ(pool.in_use_count(), 2u);

  // Releasing a lease makes the slot available again.
  a = Error(ECANCELED, "dropped");
  auto d = pool.checkout();
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(registry.counter_value("net.pool.reused"), 1u);
}

TEST_F(ClientPoolTest, PoisonedLeaseIsDiscardedNotRecycled) {
  start_server();
  obs::Registry registry;
  VirtualClock clock;
  ClientPool pool(dialer(), pool_options(&registry, &clock));

  {
    auto lease = pool.checkout();
    ASSERT_TRUE(lease.ok());
    lease.value().poison();
  }
  EXPECT_EQ(pool.idle_count(), 0u);
  EXPECT_EQ(registry.counter_value("net.pool.discarded"), 1u);

  // The next checkout dials fresh.
  auto lease = pool.checkout();
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(registry.counter_value("net.pool.dials"), 2u);
  EXPECT_EQ(registry.counter_value("net.pool.reused"), 0u);
}

TEST_F(ClientPoolTest, StaleIdleEntriesAreEvictedAtCheckout) {
  start_server();
  obs::Registry registry;
  VirtualClock clock;
  ClientPool::Options options = pool_options(&registry, &clock);
  options.idle_timeout = 10 * kSecond;
  ClientPool pool(dialer(), options);

  { auto lease = pool.checkout(); ASSERT_TRUE(lease.ok()); }
  EXPECT_EQ(pool.idle_count(), 1u);
  clock.advance(11 * kSecond);  // past idle_timeout

  auto lease = pool.checkout();
  ASSERT_TRUE(lease.ok());
  EXPECT_TRUE(lease.value()->whoami().ok());
  EXPECT_EQ(registry.counter_value("net.pool.idle_evictions"), 1u);
  EXPECT_EQ(registry.counter_value("net.pool.dials"), 2u);
  EXPECT_EQ(registry.counter_value("net.pool.reused"), 0u);
}

TEST_F(ClientPoolTest, EvictIdleSweepsOnlyStaleEntries) {
  start_server();
  obs::Registry registry;
  VirtualClock clock;
  ClientPool::Options options = pool_options(&registry, &clock);
  options.idle_timeout = 10 * kSecond;
  options.max_connections = 4;
  ClientPool pool(dialer(), options);

  // Two idle entries checked in at different times.
  {
    auto a = pool.checkout();
    auto b = pool.checkout();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
  }
  EXPECT_EQ(pool.idle_count(), 2u);
  clock.advance(11 * kSecond);
  {
    auto c = pool.checkout();  // evicts both stale entries, dials fresh
    ASSERT_TRUE(c.ok());
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  clock.advance(5 * kSecond);  // fresh entry is 5s old: not stale
  EXPECT_EQ(pool.evict_idle(), 0u);
  clock.advance(6 * kSecond);  // now 11s old
  EXPECT_EQ(pool.evict_idle(), 1u);
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST_F(ClientPoolTest, DialFailuresBackOffUnderThePolicy) {
  start_server();
  obs::Registry registry;
  VirtualClock clock;
  int dial_calls = 0;
  ClientPool::DialFn real = dialer();
  ClientPool::DialFn flaky = [&]() -> Result<Client> {
    if (dial_calls++ < 2) return Error(ECONNREFUSED, "injected dial failure");
    return real();
  };
  ClientPool::Options options = pool_options(&registry, &clock);
  options.dial_retry.max_attempts = 5;
  options.dial_retry.base_delay = 5 * kMillisecond;
  options.jitter_seed = 7;
  ClientPool pool(std::move(flaky), options);

  Nanos before = clock.now();
  auto lease = pool.checkout();
  ASSERT_TRUE(lease.ok()) << lease.error().to_string();
  EXPECT_EQ(dial_calls, 3);
  EXPECT_EQ(registry.counter_value("net.pool.dials"), 3u);
  EXPECT_EQ(registry.counter_value("net.pool.dial_failures"), 2u);
  EXPECT_EQ(registry.counter_value("net.pool.backoff_sleeps"), 2u);
  EXPECT_GT(clock.now(), before);  // the backoff really slept (virtually)
}

TEST_F(ClientPoolTest, ExhaustedDialAttemptsSurfaceTheLastError) {
  obs::Registry registry;
  VirtualClock clock;
  ClientPool::DialFn dead = []() -> Result<Client> {
    return Error(ECONNREFUSED, "nobody listening");
  };
  ClientPool::Options options = pool_options(&registry, &clock);
  options.dial_retry.max_attempts = 3;
  options.dial_retry.base_delay = 1 * kMillisecond;
  ClientPool pool(std::move(dead), options);

  auto lease = pool.checkout();
  ASSERT_FALSE(lease.ok());
  EXPECT_EQ(lease.error().code, ECONNREFUSED);
  EXPECT_EQ(registry.counter_value("net.pool.dial_failures"), 3u);
  // The reserved slot was released: the pool is not leaked full.
  EXPECT_EQ(pool.in_use_count(), 0u);
}

TEST_F(ClientPoolTest, ProbeEvictsHalfDeadConnectionsAndRedials) {
  start_server();
  obs::Registry registry;
  VirtualClock clock;
  ClientPool::Options options = pool_options(&registry, &clock);
  options.probe_idle_age = 0;  // whoami-probe every reuse
  ClientPool pool(dialer(), options);

  { auto lease = pool.checkout(); ASSERT_TRUE(lease.ok()); }
  EXPECT_EQ(pool.idle_count(), 1u);

  // Kill the server: the idle connection is now silently dead. The probe
  // must catch it at checkout and the redial must fail loudly.
  server_->stop();
  auto lease = pool.checkout();
  ASSERT_FALSE(lease.ok());
  EXPECT_EQ(registry.counter_value("net.pool.health_evictions"), 1u);
  EXPECT_GE(registry.counter_value("net.pool.dial_failures"), 1u);
  EXPECT_EQ(pool.idle_count(), 0u);
  EXPECT_EQ(pool.in_use_count(), 0u);
}

TEST_F(ClientPoolTest, ManyThreadsCheckoutAndCheckinWithoutLosingSlots) {
  start_server();
  obs::Registry registry;
  ClientPool::Options options;
  options.metrics = &registry;
  options.max_connections = kRaceThreads;
  options.max_idle = kRaceThreads;
  options.probe_idle_age = -1;
  ClientPool pool(dialer(), options);

  std::atomic<int> rpcs_ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kRaceThreads);
  for (int t = 0; t < kRaceThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRaceOpsPerThread; i++) {
        auto lease = pool.checkout();
        // Each thread holds at most one lease, so the pool can never be
        // exhausted here.
        ASSERT_TRUE(lease.ok()) << lease.error().to_string();
        if (lease.value()->whoami().ok()) {
          rpcs_ok.fetch_add(1, std::memory_order_relaxed);
        } else {
          lease.value().poison();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(rpcs_ok.load(), kRaceThreads * kRaceOpsPerThread);
  EXPECT_EQ(pool.in_use_count(), 0u);
  EXPECT_LE(pool.idle_count(), static_cast<size_t>(kRaceThreads));
  EXPECT_EQ(registry.counter_value("net.pool.exhausted"), 0u);
  EXPECT_EQ(registry.counter_value("net.pool.checkouts"),
            static_cast<uint64_t>(kRaceThreads) * kRaceOpsPerThread);
  EXPECT_EQ(registry.gauge("net.pool.in_use")->value(), 0);
}

}  // namespace
}  // namespace tss::chirp
