// Database server: tables over TCP, with optional snapshot persistence.
//
// Protocol (line-oriented, framing as elsewhere):
//   mktable <name> <field,field,...>      -> ok        (idempotent)
//   put <table> <urlenc record>           -> ok
//   get <table> <id>                      -> ok <urlenc record>
//   del <table> <id>                      -> ok
//   query <table> <field> <value>         -> ok <count>  + count record lines
//   scan <table>                          -> ok <count>  + count record lines
//   count <table>                         -> ok <n>
//   sync                                  -> ok        (snapshot to disk)
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "db/table.h"
#include "net/server_loop.h"

namespace tss::db {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    // When non-empty, tables snapshot to "<dir>/<table>.tbl" on sync and on
    // stop, and are recovered from there on start.
    std::string snapshot_dir;
    Nanos io_timeout = 30 * kSecond;
  };

  explicit Server(Options options);
  ~Server();

  Result<void> start();
  void stop();
  uint16_t port() const { return loop_.port(); }
  net::Endpoint endpoint() const {
    return net::Endpoint{options_.host, loop_.port()};
  }

  // In-process access (the sim drivers and tests use this directly).
  Table& table(const std::string& name,
               std::vector<std::string> indexed_fields = {});
  Result<void> snapshot_all();

 private:
  void serve_connection(net::TcpSocket sock);
  Result<void> recover();

  Options options_;
  net::ServerLoop loop_;
  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace tss::db
