#include "parrot/tracer.h"

#include <sys/ptrace.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <sys/user.h>
#include <sys/wait.h>
#include <unistd.h>

#include <climits>
#include <csignal>
#include <cstring>
#include <map>

#include "util/logging.h"
#include "util/path.h"
#include "util/strings.h"

namespace tss::parrot {

#if defined(__x86_64__) && defined(__linux__)

bool tracer_supported() { return true; }

namespace {

// Which argument register carries the pathname for each intercepted syscall.
// x86-64 syscall args: rdi, rsi, rdx, r10, r8, r9.
enum class PathArg { kNone, kArg0, kArg1 };

PathArg path_arg_for(long syscall_number) {
  switch (syscall_number) {
    case SYS_open:
    case SYS_stat:
    case SYS_lstat:
    case SYS_access:
    case SYS_readlink:
    case SYS_execve:
    case SYS_truncate:
    case SYS_chdir:
      return PathArg::kArg0;
    case SYS_openat:
    case SYS_newfstatat:
    case SYS_statx:
    case SYS_faccessat:
    case SYS_readlinkat:
    case SYS_execveat:
      return PathArg::kArg1;
    default:
      return PathArg::kNone;
  }
}

unsigned long long* arg_slot(user_regs_struct& regs, PathArg which) {
  return which == PathArg::kArg0 ? &regs.rdi : &regs.rsi;
}

// Reads a NUL-terminated string from the child's address space.
Result<std::string> read_child_string(pid_t pid, unsigned long long addr) {
  std::string out;
  char buf[256];
  while (out.size() < PATH_MAX) {
    iovec local{buf, sizeof buf};
    iovec remote{reinterpret_cast<void*>(addr + out.size()), sizeof buf};
    ssize_t n = process_vm_readv(pid, &local, 1, &remote, 1, 0);
    if (n <= 0) return Error::from_errno("process_vm_readv");
    for (ssize_t i = 0; i < n; i++) {
      if (buf[i] == '\0') return out;
      out.push_back(buf[i]);
    }
  }
  return Error(ENAMETOOLONG, "child path not terminated");
}

Result<void> write_child_bytes(pid_t pid, unsigned long long addr,
                               const void* data, size_t size) {
  iovec local{const_cast<void*>(data), size};
  iovec remote{reinterpret_cast<void*>(addr), size};
  ssize_t n = process_vm_writev(pid, &local, 1, &remote, 1, 0);
  if (n < 0 || static_cast<size_t>(n) != size) {
    return Error::from_errno("process_vm_writev");
  }
  return Result<void>::success();
}

}  // namespace

Result<TraceStats> trace_run(const std::vector<std::string>& argv,
                             const TraceOptions& options) {
  if (argv.empty()) return Error(EINVAL, "empty argv");

  pid_t pid = ::fork();
  if (pid < 0) return Error::from_errno("fork");
  if (pid == 0) {
    // Child: request tracing and exec. The kernel delivers a SIGTRAP at
    // exec, handing control to the tracer before the first instruction.
    ::ptrace(PTRACE_TRACEME, 0, nullptr, nullptr);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    _exit(127);
  }

  TraceStats stats;
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) return Error::from_errno("waitpid");
  if (WIFEXITED(status)) {
    // exec itself failed (binary missing): the child exited before any
    // trap was delivered.
    stats.exit_code = WEXITSTATUS(status);
    return stats;
  }
  if (!WIFSTOPPED(status)) {
    return Error(ECHILD, "child did not stop at exec");
  }
  // TRACESYSGOOD distinguishes syscall stops (SIGTRAP|0x80) from genuine
  // SIGTRAPs; EXITKILL guarantees no orphan if the tracer dies; the
  // fork/vfork/clone options make children of the application traced too —
  // real workloads (shells, scripts) fork constantly.
  ::ptrace(PTRACE_SETOPTIONS, pid, nullptr,
           PTRACE_O_TRACESYSGOOD | PTRACE_O_EXITKILL | PTRACE_O_TRACEFORK |
               PTRACE_O_TRACEVFORK | PTRACE_O_TRACECLONE);

  std::string prefix =
      options.virtual_prefix.empty() ? "" : path::sanitize(options.virtual_prefix);

  // Per-process entry/exit toggle; new children appear via SIGSTOP or the
  // fork events and are resumed into syscall-stop mode.
  std::map<pid_t, bool> in_syscall;
  in_syscall[pid] = false;

  auto resume = [](pid_t p, int sig = 0) {
    ::ptrace(PTRACE_SYSCALL, p, nullptr,
             reinterpret_cast<void*>(static_cast<intptr_t>(sig)));
  };
  resume(pid);

  while (!in_syscall.empty()) {
    pid_t stopped = ::waitpid(-1, &status, __WALL);
    if (stopped < 0) {
      if (errno == ECHILD) break;
      return Error::from_errno("waitpid");
    }
    if (WIFEXITED(status) || WIFSIGNALED(status)) {
      if (stopped == pid) {
        stats.exit_code = WIFEXITED(status) ? WEXITSTATUS(status)
                                            : 128 + WTERMSIG(status);
      }
      in_syscall.erase(stopped);
      continue;
    }
    if (!WIFSTOPPED(status)) continue;

    if (!in_syscall.count(stopped)) {
      // A newly reported child (fork/clone event delivers it stopped).
      in_syscall[stopped] = false;
      resume(stopped);
      continue;
    }

    int sig = WSTOPSIG(status);
    if (sig != (SIGTRAP | 0x80)) {
      // Swallow trace-event SIGTRAPs (exec, fork notifications); forward
      // genuine signals to the process.
      bool trace_event = sig == SIGTRAP || (status >> 16) != 0;
      resume(stopped, trace_event ? 0 : sig);
      continue;
    }

    bool entering = !in_syscall[stopped];
    in_syscall[stopped] = entering;
    if (!entering) {
      resume(stopped);
      continue;
    }
    stats.syscall_count++;

    if (prefix.empty()) {
      resume(stopped);
      continue;
    }

    user_regs_struct regs{};
    if (::ptrace(PTRACE_GETREGS, stopped, nullptr, &regs) < 0) {
      resume(stopped);
      continue;
    }
    PathArg which = path_arg_for(static_cast<long>(regs.orig_rax));
    if (which == PathArg::kNone) {
      resume(stopped);
      continue;
    }

    unsigned long long* slot = arg_slot(regs, which);
    auto child_path = read_child_string(stopped, *slot);
    if (child_path.ok()) {
      std::string canonical = path::sanitize(child_path.value());
      if (path::is_within(prefix, canonical) && canonical != prefix) {
        std::string virtual_path = canonical.substr(prefix.size());
        std::string replacement;
        if (options.fetch) {
          auto fetched = options.fetch(virtual_path);
          if (fetched.ok()) {
            replacement = fetched.value();
          } else {
            stats.fetch_failures++;
            // Point the syscall at a path that cannot exist so the
            // application observes ENOENT, the same surface a missing
            // remote file presents.
            replacement = "/\x01tss-enoent\x01";
          }
        } else {
          stats.fetch_failures++;
          replacement = "/\x01tss-enoent\x01";
        }

        // Plant the replacement string on the child's stack, well below
        // rsp: the memory only needs to stay intact while the kernel copies
        // the path, i.e. for the duration of this very syscall.
        unsigned long long scratch = regs.rsp - 4096;
        if (write_child_bytes(stopped, scratch, replacement.c_str(),
                              replacement.size() + 1)
                .ok()) {
          *slot = scratch;
          if (::ptrace(PTRACE_SETREGS, stopped, nullptr, &regs) == 0) {
            stats.rewrites++;
          }
        }
      }
    }
    resume(stopped);
  }
  return stats;
}

#else  // !x86-64 Linux

bool tracer_supported() { return false; }

Result<TraceStats> trace_run(const std::vector<std::string>&,
                             const TraceOptions&) {
  return Error(ENOSYS, "ptrace tracer only implemented for x86-64 Linux");
}

#endif

}  // namespace tss::parrot
