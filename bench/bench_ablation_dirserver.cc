// Ablation — dedicated DSFS directory server vs double duty.
//
// §5: "A single file server might be dedicated for use as a DSFS directory,
// or it might serve double duty as both directory and file server." This
// harness measures the cost of double duty across the three Figure 6-8
// regimes: the directory server answers a stub fetch for *every* logical
// read, so when it also serves data, stub latency contends with bulk
// transfers on its port and disk.
#include "bench/common.h"

int main() {
  using namespace tss::bench;
  print_header(
      "Ablation: dedicated directory server vs double duty (DSFS)",
      "Same workloads as Figures 6-8 at 4 data servers; 'double duty' puts\n"
      "the directory tree on data server 0, 'dedicated' adds a separate\n"
      "directory-only server.");
  print_row({"regime", "double duty", "dedicated", "gain"}, 18);

  struct Regime {
    const char* name;
    int files;
    uint64_t file_bytes;
    int reads;
  };
  const Regime regimes[] = {
      {"net-bound", 128, 1 << 20, 60},
      {"mixed", 1280, 1 << 20, 120},
      {"disk-bound", 1280, 10 << 20, 8},
  };
  for (const Regime& regime : regimes) {
    DsfsScalingParams params;
    params.num_servers = 4;
    params.num_files = regime.files;
    params.file_bytes = regime.file_bytes;
    params.reads_per_client = regime.reads;

    params.dedicated_directory = false;
    double shared = run_dsfs_scaling(params).mb_per_sec;
    params.dedicated_directory = true;
    double dedicated = run_dsfs_scaling(params).mb_per_sec;
    print_row({regime.name, fmt_double(shared) + " MB/s",
               fmt_double(dedicated) + " MB/s",
               fmt_double(100.0 * (dedicated - shared) / shared, 1) + "%"},
              18);
  }
  std::printf(
      "\nMeasured: double duty is essentially free in every regime — stub\n"
      "fetches are tiny and cache-resident, so they never contend with the\n"
      "bulk bottleneck (port, backplane, or disks). This is why the paper\n"
      "can treat the choice as a shrug; a dedicated directory server buys\n"
      "nothing until metadata rates are enormous.\n");
  return 0;
}
