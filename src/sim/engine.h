// Discrete-event simulation engine with C++20 coroutine tasks.
//
// The paper's scalability and preservation experiments (Figures 6-9, the SP5
// table) depend on 2005-era hardware limits — 1 Gb/s ports, a 300 MB/s
// switch backplane, 10 MB/s disks, 512 MB buffer caches. This engine hosts a
// virtual cluster with those resources so the same protocol code can be
// driven against them deterministically (DESIGN.md §3, substitution 1).
//
// Concurrency model: a single-threaded event loop over virtual time. Client
// workloads are coroutines (`Task<T>`) that `co_await` timers and resource
// completions; there is no real blocking and no nondeterminism.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "util/clock.h"
#include "util/result.h"

namespace tss::sim {

class Engine {
 public:
  Nanos now() const { return now_; }

  // Schedules `fn` at absolute virtual time `at` (clamped to now).
  void schedule_at(Nanos at, std::function<void()> fn);
  void schedule_after(Nanos delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  // Runs until the event queue is empty. Returns the final virtual time.
  Nanos run();
  // Runs until virtual time `deadline` (events at exactly `deadline` run).
  void run_until(Nanos deadline);

  // Number of spawned coroutines that have not yet finished.
  size_t pending_tasks() const { return pending_tasks_; }

  // --- Awaitables -----------------------------------------------------------
  struct SleepAwaiter {
    Engine& engine;
    Nanos wake_at;
    bool await_ready() const { return wake_at <= engine.now(); }
    void await_suspend(std::coroutine_handle<> handle) {
      engine.schedule_at(wake_at, [handle] { handle.resume(); });
    }
    void await_resume() const {}
  };
  SleepAwaiter sleep_until(Nanos at) { return SleepAwaiter{*this, at}; }
  SleepAwaiter sleep_for(Nanos d) { return SleepAwaiter{*this, now_ + d}; }

  // Internal: task accounting used by spawn(); not for client code.
  void start_task_internal() { pending_tasks_++; }
  void finish_task_internal() { pending_tasks_--; }

 private:
  struct Event {
    Nanos at;
    uint64_t seq;  // FIFO tie-break keeps same-time events deterministic
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  size_t pending_tasks_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
};

// A lazily-started coroutine returning T. Awaiting a Task starts it and
// resumes the awaiter when it completes. Tasks are single-consumer and
// move-only.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type {
    std::optional<T> value;
    std::coroutine_handle<> continuation;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) noexcept {
        auto continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { std::terminate(); }
  };

  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  T await_resume() { return std::move(*handle_.promise().value); }

 private:
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> handle) noexcept {
        auto continuation = handle.promise().continuation;
        return continuation ? continuation : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  explicit Task(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {}

 private:
  std::coroutine_handle<promise_type> handle_;
};

// Runs a Task<void> to completion in the background ("fire and forget"):
// workload generators are spawned this way. The engine's pending_tasks()
// counter tracks them; Engine::run() returning with pending_tasks() == 0
// means every workload finished.
void spawn(Engine& engine, Task<void> task);

}  // namespace tss::sim
