// Figure 3 — "System Call Latency".
//
// Paper: "The overhead charged on individual system calls by the Parrot
// adapter. Most calls are slowed by an order of magnitude." Measured on a
// 2.8 GHz Pentium 4 with 1000 cycles of 100,000 iterations per call.
//
// This bench is a *real measurement*, not a simulation: the same
// self-timing worker binary runs each system call in a loop, once natively
// and once under the parrot ptrace tracer (src/parrot). The tracer is a
// pass-through — the slowdown is purely the per-call context switches of
// the debugging interface, exactly the cost the paper's figure charges.
#include "bench/common.h"
#include "bench/worker_util.h"

int main(int, char** argv) {
  using namespace tss::bench;
  if (!tss::parrot::tracer_supported()) {
    std::printf("parrot tracer unsupported on this platform; skipping\n");
    return 0;
  }
  std::string worker = find_worker(argv[0]);
  std::string scratch =
      "/tmp/tss-fig3-scratch-" + std::to_string(::getpid());

  struct Case {
    const char* name;
    const char* call;
    long iterations_native;
    long iterations_traced;
  };
  // Traced runs use fewer iterations: each call costs microseconds there.
  const Case cases[] = {
      {"getpid", "getpid", 400000, 40000},
      {"stat", "stat", 200000, 30000},
      {"open/close", "open-close", 100000, 15000},
      {"read 1b", "read-1", 200000, 30000},
      {"read 8kb", "read-8k", 100000, 20000},
      {"write 1b", "write-1", 200000, 30000},
      {"write 8kb", "write-8k", 100000, 20000},
  };

  print_header("Figure 3: system call latency, plain Unix vs through Parrot",
               "Real ptrace measurement on this host. Paper shape: most "
               "calls slowed by an order of magnitude.");
  print_row({"call", "unix", "parrot", "slowdown"});

  for (const Case& c : cases) {
    auto native = run_worker(
        worker, {c.call, std::to_string(c.iterations_native), scratch},
        /*traced=*/false, "ns_per_call");
    auto traced = run_worker(
        worker, {c.call, std::to_string(c.iterations_traced), scratch},
        /*traced=*/true, "ns_per_call");
    if (!native.ok() || !traced.ok()) {
      print_row({c.name, "error", "error", "-"});
      continue;
    }
    double slowdown = static_cast<double>(traced.value()) /
                      static_cast<double>(std::max<int64_t>(1, native.value()));
    print_row({c.name, fmt_us(static_cast<double>(native.value())),
               fmt_us(static_cast<double>(traced.value())),
               fmt_double(slowdown, 1) + "x"});
  }
  ::unlink(scratch.c_str());
  return 0;
}
