# Empty dependencies file for gems_test.
# This may be replaced when dependencies are built.
