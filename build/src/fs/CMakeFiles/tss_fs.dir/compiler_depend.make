# Empty compiler generated dependencies file for tss_fs.
# This may be replaced when dependencies are built.
