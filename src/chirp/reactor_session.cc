#include "chirp/reactor_session.h"

#include <fcntl.h>

#include <chrono>
#include <cstring>
#include <limits>

#include "net/buffer_pool.h"
#include "net/fair_queue.h"

#include "util/logging.h"
#include "util/path.h"
#include "util/strings.h"

namespace tss::chirp {

namespace {
constexpr size_t kStreamChunk = 256 * 1024;
// Below this, a getfile fits in one pooled chunk and the dup/queue machinery
// of the zero-copy path costs more than it saves.
constexpr uint64_t kSendfileThreshold = 32 * 1024;

// Handed to non-interactive auth attempts, which never touch it; if a
// method unexpectedly does, the attempt fails instead of deadlocking the
// loop thread.
class NullChallengeIo final : public auth::ChallengeIo {
 public:
  Result<void> send_challenge(const std::string&) override {
    return Error(EPROTO, "interactive auth unavailable on this path");
  }
  Result<std::string> read_response() override {
    return Error(EPROTO, "interactive auth unavailable on this path");
  }
};
}  // namespace

// --- AuthExecutor -----------------------------------------------------------

AuthExecutor::AuthExecutor(int threads)
    : max_threads_(threads < 1 ? 1 : threads) {}

AuthExecutor::~AuthExecutor() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
    // Unstarted attempts are dropped: their connections are gone (the loop
    // stops before the executor) and the captures clean up via RAII.
    work_.clear();
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void AuthExecutor::submit(std::function<void()> work) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (stop_) return;
  work_.push_back(std::move(work));
  if (idle_ == 0 && static_cast<int>(threads_.size()) < max_threads_) {
    threads_.emplace_back([this] { run(); });
  }
  cv_.notify_one();
}

void AuthExecutor::run() {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    ++idle_;
    cv_.wait(lk, [&] { return stop_ || !work_.empty(); });
    --idle_;
    if (stop_) return;
    auto work = std::move(work_.front());
    work_.pop_front();
    lk.unlock();
    work();
    lk.lock();
  }
}

// --- AuthBridge -------------------------------------------------------------

namespace detail {

// Owns one granted-but-not-yet-claimed fair-share slot. The resume closure
// captures a shared_ptr to one of these: if the closure is destroyed without
// running (connection gone, driver stopped), the destructor returns the slot
// so the queue's accounting stays balanced. disarm() transfers ownership to
// the session (which then releases via FairQueue::finish itself).
class SlotGuard {
 public:
  explicit SlotGuard(net::FairQueue* fair) : fair_(fair) {}
  ~SlotGuard() {
    if (fair_ != nullptr) fair_->finish();
  }
  SlotGuard(const SlotGuard&) = delete;
  SlotGuard& operator=(const SlotGuard&) = delete;
  void disarm() { fair_ = nullptr; }

 private:
  net::FairQueue* fair_;
};

// ChallengeIo whose server side lives on the loop thread: challenges are
// posted to the connection's output buffer, responses arrive via deliver()
// when the session (in kAuthPending) extracts lines from the input decoder.
// The executor thread blocks in read_response with a deadline.
class AuthBridge final : public auth::ChallengeIo {
 public:
  AuthBridge(net::ConnRef conn, Nanos timeout)
      : conn_(std::move(conn)), timeout_(timeout) {}

  Result<void> send_challenge(const std::string& data) override {
    conn_.post([line = "challenge " + url_encode(data) + "\n"](net::Conn& c) {
      c.write(line);
    });
    return Result<void>::success();
  }

  Result<std::string> read_response() override {
    std::unique_lock<std::mutex> lk(mutex_);
    cv_.wait_for(lk, std::chrono::nanoseconds(timeout_),
                 [&] { return closed_ || !lines_.empty(); });
    if (!lines_.empty()) {
      std::string line = std::move(lines_.front());
      lines_.pop_front();
      return url_decode(line);
    }
    if (closed_) return Error(ECONNRESET, "connection closed during auth");
    return Error(ETIMEDOUT, "timeout waiting for challenge response");
  }

  void deliver(std::string line) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      lines_.push_back(std::move(line));
    }
    cv_.notify_all();
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  net::ConnRef conn_;
  Nanos timeout_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> lines_;
  bool closed_ = false;
};

}  // namespace detail

// --- ServerSession ----------------------------------------------------------

ServerSession::~ServerSession() = default;

void ServerSession::on_start(net::Conn& c) {
  auth::PeerInfo peer;
  if (auto ep = c.peer(); ep.ok()) peer.ip = ep.value().host;
  peer_ip_ = peer.ip;
  core_.emplace(*params_.config, *params_.backend, peer);
  if (params_.config->metrics) {
    active_gauge_ =
        params_.config->metrics->gauge("chirp.server.active_sessions");
    active_gauge_->add(1);
  }
  c.set_timeout(idle_wait());
}

void ServerSession::on_close(net::Conn& c) {
  if (bridge_) {
    bridge_->shutdown();  // wake a blocked auth helper; its attempt fails
    bridge_.reset();
  }
  if (core_) {
    // A connection lost mid-stream records the op the way the blocking pump
    // did: EPIPE, with the bytes that actually moved.
    if (state_ == State::kSendFile) {
      if (sendfile_mode_) {
        // The session never saw the bytes; infer progress from what is
        // still queued (the unsent tail of the region, plus any unflushed
        // response bytes — clamp rather than go negative).
        uint64_t pending = c.output_pending();
        offset_ = pending >= size_ ? 0 : size_ - pending;
      }
      core_->stream_close(handle_);
      finish_stream_op(Op::kGetfile, 0, offset_, EPIPE);
    } else if (state_ == State::kRecvFile) {
      core_->stream_close(handle_);
      finish_stream_op(Op::kPutfile, offset_, 0, EPIPE);
    } else if (state_ == State::kRecvSum) {
      // Body landed but the trailer never arrived; the handle is already
      // closed, only the op record is outstanding.
      finish_stream_op(Op::kPutfile, offset_, 0, EPIPE);
    }
  }
  release_slot();
  state_ = State::kRequestLine;
  sendfile_mode_ = false;
  if (active_gauge_) {
    active_gauge_->sub(1);
    active_gauge_ = nullptr;
  }
  // Session state (open handles, auth binding) dies with the connection —
  // SessionCore's destructor releases everything, per §4's semantics.
}

bool ServerSession::on_timeout(net::Conn&) {
  if (state_ == State::kRequestLine) {
    // Reaping must be visible: operators see stalled clients in the log and
    // the idle_reaped counter, not a mystery disconnect.
    TSS_WARN("chirp") << "reaping idle session from " << peer_ip_ << " after "
                      << idle_wait() / kMillisecond << "ms without a request";
    if (params_.config->metrics) {
      params_.config->metrics->counter("chirp.server.idle_reaped")->add();
    }
  }
  return false;  // mid-request stall: drop, exactly like an io timeout
}

bool ServerSession::on_input(net::Conn& c) { return step(c); }

void ServerSession::respond(net::Conn& c, const Response& resp) {
  c.write(encode_response_line(resp));
  c.write("\n");
}

void ServerSession::to_request_line(net::Conn& c) {
  release_slot();  // the request that held it is fully answered
  state_ = State::kRequestLine;
  c.set_timeout(idle_wait());
}

bool ServerSession::step(net::Conn& c) {
  for (;;) {
    switch (state_) {
      case State::kRequestLine: {
        auto line = c.input().try_line();
        if (!line.ok()) return false;  // oversized line: drop the connection
        if (!line.value()) {
          // Need more bytes; EOF here is a clean disconnect.
          return !c.input_eof();
        }
        if (!begin_request(c, *line.value())) return false;
        continue;
      }

      case State::kReadBody: {
        body_got_ += c.input().read(body_.data() + body_got_,
                                    body_.size() - body_got_);
        if (body_got_ < body_.size()) {
          return !c.input_eof();
        }
        SessionCore::Payload payload;
        payload.data = body_.data();
        payload.size = body_.size();
        dispatch_buffered(c, payload);
        continue;
      }

      case State::kAdmitPending:
        // Parked for a fair-share slot: nothing is consumed, so a flooding
        // key backs up its own TCP stream. EOF while parked is a clean
        // disconnect (the queued grant self-returns via its guard).
        return !c.input_eof();

      case State::kAuthPending: {
        // Challenge responses ride the control stream; hand complete lines
        // to the helper thread blocked in read_response.
        for (;;) {
          auto line = c.input().try_line();
          if (!line.ok()) return false;
          if (!line.value()) break;
          bridge_->deliver(std::move(*line.value()));
        }
        return !c.input_eof();
      }

      case State::kSendFile:
        // Strict request/response protocol: nothing to read mid-send. Any
        // pipelined bytes stay buffered until the stream completes.
        return true;

      case State::kRecvFile: {
        // One pooled scratch buffer per delivery (returned to the pool on
        // scope exit); the string fallback covers pool exhaustion.
        net::PoolBuffer pool_buf;
        char* scratch = nullptr;
        size_t scratch_cap = 0;
        while (offset_ < size_ && !c.input().empty()) {
          if (scratch == nullptr) {
            pool_buf = net::BufferPool::global().acquire();
            if (pool_buf.valid()) {
              scratch = pool_buf.data();
              scratch_cap = pool_buf.capacity();
            } else {
              chunk_.resize(kStreamChunk);
              scratch = chunk_.data();
              scratch_cap = kStreamChunk;
            }
          }
          size_t want = static_cast<size_t>(std::min<uint64_t>(
              size_ - offset_, std::min(scratch_cap, kStreamChunk)));
          size_t got = c.input().read(scratch, want);
          if (got == 0) break;
          if (core_->checksum_negotiated()) {
            stream_sum_.update(scratch, got);
          }
          if (write_rc_.ok()) {
            auto n = core_->backend().pwrite(handle_, scratch, got,
                                             static_cast<int64_t>(offset_));
            if (!n.ok()) {
              write_rc_ = std::move(n).take_error();
            } else if (n.value() != got) {
              write_rc_ = Error(EIO, "short putfile write");
            }
          }
          offset_ += got;
        }
        if (offset_ < size_) {
          // EOF mid-body: on_close records the op as EPIPE.
          return !c.input_eof();
        }
        core_->stream_close(handle_);
        if (core_->checksum_negotiated()) {
          // The client's sum trailer follows the body; hold the verdict
          // until it is verified.
          state_ = State::kRecvSum;
          continue;
        }
        Response resp = write_rc_.ok() ? Response{}
                                       : Response::failure(write_rc_.error());
        finish_stream_op(Op::kPutfile, offset_, 0, resp.err);
        respond(c, resp);
        to_request_line(c);
        continue;
      }

      case State::kRecvSum: {
        auto line = c.input().try_line();
        if (!line.ok()) return false;
        if (!line.value()) return !c.input_eof();
        Response resp;
        auto digest = parse_sum_line(*line.value());
        if (!write_rc_.ok()) {
          resp = Response::failure(write_rc_.error());
        } else if (!digest.ok() || digest.value() != stream_sum_.digest()) {
          // The bytes that reached us are either unverifiable (mangled
          // trailer) or provably not the bytes the client sent. Refuse the
          // op and remove the damaged file rather than leave silent
          // corruption at rest.
          (void)core_->backend().unlink(path::sanitize(req_.path));
          if (params_.config->metrics) {
            params_.config->metrics
                ->counter("chirp.server.integrity.mismatch")
                ->add();
          }
          resp = digest.ok()
                     ? Response::failure(EBADMSG, "putfile checksum mismatch")
                     : Response::failure(digest.error());
        }
        finish_stream_op(Op::kPutfile, offset_, 0, resp.err);
        respond(c, resp);
        to_request_line(c);
        continue;
      }

      case State::kDrainBody: {
        size_t want = static_cast<size_t>(std::min<uint64_t>(
            drain_remaining_, std::numeric_limits<size_t>::max()));
        drain_remaining_ -= c.input().discard(want);
        if (drain_remaining_ > 0) {
          return !c.input_eof();
        }
        // Only putfile sends a trailer line after its body (pwrite's digest
        // rides on the request line itself).
        if (req_.op == Op::kPutfile && core_->checksum_negotiated()) {
          state_ = State::kDrainSum;
          continue;
        }
        finish_stream_op(req_.op, size_, 0, pending_resp_.err);
        respond(c, pending_resp_);
        to_request_line(c);
        continue;
      }

      case State::kDrainSum: {
        // The op already failed; the trailer just has to leave the stream.
        auto line = c.input().try_line();
        if (!line.ok()) return false;
        if (!line.value()) return !c.input_eof();
        finish_stream_op(req_.op, size_, 0, pending_resp_.err);
        respond(c, pending_resp_);
        to_request_line(c);
        continue;
      }
    }
  }
}

bool ServerSession::begin_request(net::Conn& c, const std::string& line) {
  auto parsed = parse_request_line(line);
  if (!parsed.ok()) {
    respond(c, Response::failure(parsed.error()));
    return true;
  }
  req_ = std::move(parsed).value();

  // Weighted fair-share admission. version/auth are exempt — they establish
  // the identity fairness is keyed on, and parking them would deadlock the
  // handshake. A large promised body costs more than a control op, so a hog
  // uploading in bulk drains its deficit faster.
  net::FairQueue* fair = params_.config->fair;
  if (fair != nullptr && req_.op != Op::kVersion && req_.op != Op::kAuth) {
    uint64_t cost = 1 + req_.payload_len() / kStreamChunk;
    auto guard = std::make_shared<detail::SlotGuard>(fair);
    auto verdict = fair->admit(
        admit_key(), cost,
        [self = shared_from_this(), guard, ref = c.ref()] {
          ref.post([self, guard](net::Conn& conn) {
            self->resume_admitted(conn, guard);
          });
        });
    switch (verdict) {
      case net::FairQueue::Verdict::kRun:
        guard->disarm();  // the session owns the slot now
        slot_held_ = true;
        break;
      case net::FairQueue::Verdict::kQueued:
        // The queue holds the resume closure (and with it the armed guard);
        // input stays buffered until the key wins a slot.
        state_ = State::kAdmitPending;
        c.set_timeout(params_.io_timeout);
        return true;
      case net::FairQueue::Verdict::kRejected:
        guard->disarm();  // no slot was granted
        return refuse_request(
            c, Response::failure(EBUSY, "fair-share backlog full"));
    }
  }
  return continue_request(c);
}

bool ServerSession::continue_request(net::Conn& c) {
  if (req_.op == Op::kAuth) return begin_auth(c);
  if (req_.op == Op::kGetfile) return begin_getfile(c);
  if (req_.op == Op::kPutfile) return begin_putfile(c);

  uint64_t body = req_.payload_len();
  if (body > 0) {
    body_.clear();
    body_.resize(static_cast<size_t>(body));
    body_got_ = 0;
    state_ = State::kReadBody;
    c.set_timeout(params_.io_timeout);
    return true;
  }
  dispatch_buffered(c, SessionCore::Payload{});
  return true;
}

void ServerSession::resume_admitted(
    net::Conn& c, const std::shared_ptr<detail::SlotGuard>& guard) {
  if (state_ != State::kAdmitPending) return;  // guard returns the slot
  guard->disarm();
  slot_held_ = true;
  state_ = State::kRequestLine;  // continue_request sets the real state
  if (!continue_request(c)) {
    c.close();
    return;
  }
  // The rest of the pipeline may already be buffered behind the parked
  // request.
  if (!step(c)) c.close();
}

std::string ServerSession::admit_key() const {
  return core_->authenticated() ? core_->subject().to_string()
                                : "ip:" + peer_ip_;
}

void ServerSession::release_slot() {
  if (!slot_held_) return;
  slot_held_ = false;
  params_.config->fair->finish();
}

void ServerSession::finish_stream_op(Op op, uint64_t bytes_in,
                                     uint64_t bytes_out, int err) {
  core_->record_op(op, op_start_, bytes_in, bytes_out, err);
  core_->quota_account(op, bytes_in + bytes_out,
                       err == EDQUOT || err == EBUSY);
}

bool ServerSession::refuse_request(net::Conn& c, Response resp) {
  op_start_ = core_->clock().now();
  uint64_t body = req_.payload_len();
  bool sum_trailer =
      req_.op == Op::kPutfile && core_->checksum_negotiated();
  if (body > 0 || sum_trailer) {
    pending_resp_ = std::move(resp);
    size_ = body;
    drain_remaining_ = body;
    state_ = body > 0 ? State::kDrainBody : State::kDrainSum;
    c.set_timeout(params_.io_timeout);
    return true;
  }
  finish_stream_op(req_.op, 0, 0, resp.err);
  respond(c, resp);
  to_request_line(c);
  return true;
}

void ServerSession::dispatch_buffered(net::Conn& c,
                                      SessionCore::Payload payload) {
  std::string response_payload;
  Response resp = core_->handle(req_, payload, &response_payload);
  c.write(encode_response_line(resp));
  c.write("\n");
  // Move the payload into the output queue — the transport gathers the
  // header and payload into one writev, no concatenation copy.
  if (resp.ok() && !response_payload.empty()) {
    c.write_owned(std::move(response_payload));
  }
  to_request_line(c);
}

bool ServerSession::begin_auth(net::Conn& c) {
  op_start_ = core_->clock().now();
  auth::ServerAuth* auth = params_.config->auth;
  bool interactive = auth != nullptr && auth->interactive(req_.auth_method) &&
                     !core_->authenticated() &&
                     params_.auth_executor != nullptr;
  if (!interactive) {
    // Non-interactive methods (and all precheck failures) complete without
    // challenge rounds, right here on the loop thread.
    NullChallengeIo io;
    auto subject = core_->authenticate(req_.auth_method, req_.auth_arg, io);
    Response resp;
    if (subject.ok()) {
      resp.args.push_back(url_encode(subject.value().to_string()));
    } else {
      resp = Response::failure(subject.error());
    }
    core_->record_op(Op::kAuth, op_start_, 0, 0, resp.err);
    respond(c, resp);
    return true;
  }

  bridge_ = std::make_shared<detail::AuthBridge>(c.ref(), params_.io_timeout);
  state_ = State::kAuthPending;
  c.set_timeout(params_.io_timeout);
  // The helper owns a reference to the session, so SessionCore stays alive
  // however the connection ends; the verdict is posted back and silently
  // dropped if the connection is already gone.
  params_.auth_executor->submit(
      [self = shared_from_this(), bridge = bridge_, ref = c.ref(),
       method = req_.auth_method, arg = req_.auth_arg] {
        auto result = self->core_->authenticate(method, arg, *bridge);
        ref.post([self, result = std::move(result)](net::Conn& conn) {
          self->finish_auth(conn, result);
        });
      });
  return true;
}

void ServerSession::finish_auth(net::Conn& c,
                                const Result<auth::Subject>& result) {
  if (state_ != State::kAuthPending) return;
  bridge_.reset();
  Response resp;
  if (result.ok()) {
    resp.args.push_back(url_encode(result.value().to_string()));
  } else {
    resp = Response::failure(result.error());
  }
  core_->record_op(Op::kAuth, op_start_, 0, 0, resp.err);
  respond(c, resp);
  to_request_line(c);
  // The client's next request may already be buffered behind the handshake.
  if (!step(c)) c.close();
}

bool ServerSession::begin_getfile(net::Conn& c) {
  op_start_ = core_->clock().now();
  // Streamed ops bypass SessionCore::handle, so the quota gate is applied
  // here — same token buckets, same typed EDQUOT as the buffered engine.
  if (auto refusal = core_->quota_admit(Op::kGetfile)) {
    return refuse_request(c, *refusal);
  }
  // Hot-set deflection: a redirect reply is control only — one line, no
  // payload, no backend open. Same decision point as the buffered engine's
  // do_getfile.
  if (auto deflect = core_->getfile_redirect(req_.path)) {
    finish_stream_op(Op::kGetfile, 0, 0, 0);
    respond(c, *deflect);
    to_request_line(c);
    return true;
  }
  uint64_t size = 0;
  auto handle = core_->stream_open_read(req_.path, &size);
  if (!handle.ok()) {
    Response resp = Response::failure(handle.error());
    finish_stream_op(Op::kGetfile, 0, 0, resp.err);
    respond(c, resp);
    to_request_line(c);
    return true;
  }
  Response resp;
  resp.args.push_back(std::to_string(size));
  respond(c, resp);
  stream_sum_ = Fnv1a64();
  if (size == 0) {
    if (core_->checksum_negotiated()) {
      c.write(encode_sum_line(stream_sum_.digest()));
      c.write("\n");
    }
    core_->stream_close(handle.value());
    finish_stream_op(Op::kGetfile, 0, 0, 0);
    to_request_line(c);
    return true;
  }
  handle_ = handle.value();
  size_ = size;
  offset_ = 0;
  sendfile_mode_ = false;
  state_ = State::kSendFile;
  // Zero-copy eligibility: the transport must support it (reactor ConnCore
  // does, a test double may not), the backend must have a real fd, and no
  // checksum may be negotiated — sendfile bypasses user space, so there is
  // nothing to digest; checksumming clients stay on the pread path.
  if (c.can_stream_file() && !core_->checksum_negotiated() &&
      size >= kSendfileThreshold) {
    auto sfd = core_->backend().stream_fd(handle_);
    if (sfd.ok()) {
      // Dup: the queued region may outlive the backend handle (the session
      // keeps the handle open until completion, but teardown ordering must
      // not matter).
      int dup = ::fcntl(sfd.value(), F_DUPFD_CLOEXEC, 0);
      if (dup >= 0) {
        c.write_file_region(net::Fd(dup), 0, size);
        sendfile_mode_ = true;
      }
    }
  }
  c.set_timeout(params_.io_timeout);
  c.want_output_space(true);
  return true;
}

bool ServerSession::on_output_space(net::Conn& c) {
  if (state_ != State::kSendFile) {
    c.want_output_space(false);
    return true;
  }
  if (sendfile_mode_) {
    // The transport is streaming the region; nothing to produce. Completion
    // is the queue reaching empty.
    if (c.output_pending() > 0) return true;
    offset_ = size_;
    sendfile_mode_ = false;
    c.want_output_space(false);
    core_->stream_close(handle_);
    finish_stream_op(Op::kGetfile, 0, size_, 0);
    to_request_line(c);
    // Pipelined requests may already be buffered behind the transfer.
    return step(c);
  }
  while (offset_ < size_ &&
         c.output_pending() < net::Conn::kOutputHighWater) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(size_ - offset_, kStreamChunk));
    // Read into a pooled buffer and move it into the output queue — the
    // chunk crosses user space once instead of being copied into a growing
    // string. Pool exhaustion falls back to the string scratch.
    net::PoolBuffer buf = net::BufferPool::global().acquire();
    char* data;
    if (buf.valid() && buf.capacity() >= want) {
      data = buf.data();
    } else {
      buf.reset();
      chunk_.resize(want);
      data = chunk_.data();
    }
    auto n = core_->backend().pread(handle_, data, want,
                                    static_cast<int64_t>(offset_));
    size_t got;
    if (!n.ok() || n.value() == 0) {
      // The size was already promised; pad with zeros to keep the stream in
      // sync (the file shrank mid-transfer).
      std::memset(data, 0, want);
      got = want;
    } else {
      got = n.value();
    }
    if (core_->checksum_negotiated()) stream_sum_.update(data, got);
    if (buf.valid()) {
      c.write_buffer(std::move(buf), got);
    } else {
      c.write(std::string_view(data, got));
    }
    offset_ += got;
  }
  if (offset_ >= size_) {
    if (core_->checksum_negotiated()) {
      // Digest of the bytes as actually streamed — including any zero
      // padding — so the client verifies what it received, not what the
      // file once was.
      c.write(encode_sum_line(stream_sum_.digest()));
      c.write("\n");
    }
    c.want_output_space(false);
    core_->stream_close(handle_);
    finish_stream_op(Op::kGetfile, 0, offset_, 0);
    to_request_line(c);
    // Pipelined requests may already be buffered behind the transfer.
    return step(c);
  }
  return true;
}

bool ServerSession::begin_putfile(net::Conn& c) {
  op_start_ = core_->clock().now();
  size_ = req_.length;
  offset_ = 0;
  stream_sum_ = Fnv1a64();
  if (auto refusal = core_->quota_admit(Op::kPutfile)) {
    return refuse_request(c, *refusal);
  }
  auto handle = core_->stream_open_write(req_.path, req_.mode);
  if (!handle.ok()) {
    // Drain the promised body (and sum trailer) so the connection stays
    // usable.
    return refuse_request(c, Response::failure(handle.error()));
  }
  handle_ = handle.value();
  write_rc_ = Result<void>::success();
  if (size_ == 0) {
    core_->stream_close(handle_);
    if (core_->checksum_negotiated()) {
      state_ = State::kRecvSum;
      c.set_timeout(params_.io_timeout);
      return true;
    }
    finish_stream_op(Op::kPutfile, 0, 0, 0);
    respond(c, Response{});
    to_request_line(c);
    return true;
  }
  state_ = State::kRecvFile;
  c.set_timeout(params_.io_timeout);
  return true;
}

}  // namespace tss::chirp
