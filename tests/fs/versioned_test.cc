// VersionedFs tests: snapshot-on-modify, history, restore, and the
// distributed-backup composition (versions over a replicated store).
#include "fs/versioned.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "fs/local.h"
#include "fs/replicated.h"

namespace tss::fs {
namespace {

class VersionedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/versioned_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(root_);
    base_ = std::make_unique<LocalFs>(root_);
    fs_ = std::make_unique<VersionedFs>(base_.get());
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
  std::unique_ptr<LocalFs> base_;
  std::unique_ptr<VersionedFs> fs_;
  static inline int counter_ = 0;
};

TEST_F(VersionedTest, FirstWriteHasNoHistory) {
  ASSERT_TRUE(fs_->write_file("/a.txt", "v1").ok());
  auto history = fs_->versions("/a.txt");
  ASSERT_TRUE(history.ok());
  EXPECT_TRUE(history.value().empty());
}

TEST_F(VersionedTest, EachOverwriteSnapshotsThePrevious) {
  ASSERT_TRUE(fs_->write_file("/a.txt", "version one").ok());
  ASSERT_TRUE(fs_->write_file("/a.txt", "version two").ok());
  ASSERT_TRUE(fs_->write_file("/a.txt", "version three").ok());

  EXPECT_EQ(fs_->read_file("/a.txt").value(), "version three");
  auto history = fs_->versions("/a.txt");
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history.value().size(), 2u);
  EXPECT_EQ(fs_->read_version("/a.txt", 1).value(), "version one");
  EXPECT_EQ(fs_->read_version("/a.txt", 2).value(), "version two");
}

TEST_F(VersionedTest, UnlinkPreservesForensicCopy) {
  ASSERT_TRUE(fs_->write_file("/evidence.log", "the facts").ok());
  ASSERT_TRUE(fs_->unlink("/evidence.log").ok());
  EXPECT_EQ(fs_->stat("/evidence.log").code(), ENOENT);
  // "forensic analysis of data over time" (§10).
  EXPECT_EQ(fs_->read_version("/evidence.log", 1).value(), "the facts");
}

TEST_F(VersionedTest, RestoreBringsBackOldContentAndIsUndoable) {
  ASSERT_TRUE(fs_->write_file("/doc", "draft").ok());
  ASSERT_TRUE(fs_->write_file("/doc", "final").ok());
  ASSERT_TRUE(fs_->restore("/doc", 1).ok());
  EXPECT_EQ(fs_->read_file("/doc").value(), "draft");
  // The restore snapshotted "final" first, so it is recoverable too.
  auto history = fs_->versions("/doc").value();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(fs_->read_version("/doc", 2).value(), "final");
}

TEST_F(VersionedTest, TruncateSnapshotsFirst) {
  ASSERT_TRUE(fs_->write_file("/t", "0123456789").ok());
  ASSERT_TRUE(fs_->truncate("/t", 2).ok());
  EXPECT_EQ(fs_->read_file("/t").value(), "01");
  EXPECT_EQ(fs_->read_version("/t", 1).value(), "0123456789");
}

TEST_F(VersionedTest, RenameOverSnapshotsTheVictim) {
  ASSERT_TRUE(fs_->write_file("/old", "old content").ok());
  ASSERT_TRUE(fs_->write_file("/target", "will be crushed").ok());
  ASSERT_TRUE(fs_->rename("/old", "/target").ok());
  EXPECT_EQ(fs_->read_file("/target").value(), "old content");
  EXPECT_EQ(fs_->read_version("/target", 1).value(), "will be crushed");
  // The source's history survives under its old name.
  EXPECT_EQ(fs_->read_version("/old", 1).value(), "old content");
}

TEST_F(VersionedTest, VersionTreeHiddenAndProtected) {
  ASSERT_TRUE(fs_->write_file("/x", "1").ok());
  ASSERT_TRUE(fs_->write_file("/x", "2").ok());
  auto entries = fs_->readdir("/");
  ASSERT_TRUE(entries.ok());
  for (const auto& e : entries.value()) {
    EXPECT_NE(e.name, ".versions");
  }
  EXPECT_EQ(fs_->unlink("/.versions/%2Fx/1").code(), EACCES);
  EXPECT_EQ(
      fs_->open("/.versions/%2Fx/1", OpenFlags::parse("w").value(), 0644)
          .code(),
      EACCES);
}

TEST_F(VersionedTest, PurgeReclaimsHistory) {
  ASSERT_TRUE(fs_->write_file("/p", "1").ok());
  ASSERT_TRUE(fs_->write_file("/p", "2").ok());
  ASSERT_TRUE(fs_->write_file("/p", "3").ok());
  ASSERT_EQ(fs_->versions("/p").value().size(), 2u);
  ASSERT_TRUE(fs_->purge_versions("/p").ok());
  EXPECT_TRUE(fs_->versions("/p").value().empty());
  EXPECT_EQ(fs_->read_file("/p").value(), "3");  // current content untouched
}

TEST_F(VersionedTest, OpenForReadDoesNotSnapshot) {
  ASSERT_TRUE(fs_->write_file("/r", "stable").ok());
  auto file = fs_->open("/r", OpenFlags::parse("r").value(), 0);
  ASSERT_TRUE(file.ok());
  char buf[6];
  ASSERT_TRUE(file.value()->pread(buf, 6, 0).ok());
  EXPECT_TRUE(fs_->versions("/r").value().empty());
}

TEST_F(VersionedTest, DistributedBackupComposition) {
  // §10's backup sketch: version history stored on a *replicated* backing
  // store — losing one replica loses no history. Recursive abstractions
  // composing three deep: VersionedFs(ReplicatedFs(LocalFs x2)).
  std::string a = root_ + "-repl-a";
  std::string b = root_ + "-repl-b";
  std::filesystem::create_directories(a);
  std::filesystem::create_directories(b);
  LocalFs replica_a(a), replica_b(b);
  ReplicatedFs mirrored({&replica_a, &replica_b});
  VersionedFs backup(&mirrored);

  ASSERT_TRUE(backup.write_file("/thesis.tex", "chapter 1").ok());
  ASSERT_TRUE(backup.write_file("/thesis.tex", "chapter 1 and 2").ok());
  // Destroy replica A entirely.
  std::filesystem::remove_all(a);
  std::filesystem::create_directories(a);
  // History and current content still fully available via replica B.
  EXPECT_EQ(backup.read_file("/thesis.tex").value(), "chapter 1 and 2");
  EXPECT_EQ(backup.read_version("/thesis.tex", 1).value(), "chapter 1");
  std::filesystem::remove_all(a);
  std::filesystem::remove_all(b);
}

}  // namespace
}  // namespace tss::fs
