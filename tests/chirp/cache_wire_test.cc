// Cooperative-cache wire tests over live TCP servers (both engines via
// TSS_NET_MODE, as scripts/check.sh runs them): a hot file crossing the
// redirect threshold deflects capability-offering clients to a sibling
// cache, which serves the identical bytes; clients that never offered the
// capability are always served directly; a hint without a dialer surfaces
// as EREMOTE; and the adapter's CachedFs layer turns repeat reads of a
// mounted /cfs path into local hits with zero RPCs.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <memory>
#include <string>

#include "adapter/adapter.h"
#include "auth/hostname.h"
#include "chirp/client.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/local.h"
#include "obs/metrics.h"

namespace tss::chirp {
namespace {

// Two live servers — an origin that deflects hot getfiles and a sibling
// cache holding the same content — each exporting its own temp root.
class CacheWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/cachewire_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    origin_root_ = base_ + "/origin";
    peer_root_ = base_ + "/peer";
    std::filesystem::create_directories(origin_root_);
    std::filesystem::create_directories(peer_root_);
  }

  void TearDown() override {
    if (origin_) origin_->stop();
    if (peer_) peer_->stop();
    std::filesystem::remove_all(base_);
  }

  std::unique_ptr<Server> start_one(const std::string& root,
                                    obs::Registry* registry,
                                    ServerOptions options) {
    options.owner = "unix:testowner";
    options.root_acl = acl::Acl::parse("hostname:localhost rwldav(rwlda)\n")
                           .value();
    options.metrics = registry;
    auto auth = std::make_unique<auth::ServerAuth>();
    auth->add(std::make_unique<auth::HostnameServerMethod>());
    auto server = std::make_unique<Server>(
        std::move(options), std::make_unique<PosixBackend>(root),
        std::move(auth));
    EXPECT_TRUE(server->start().ok());
    return server;
  }

  // Starts the sibling first (its port seeds the origin's peer list).
  void start_cluster(uint64_t threshold) {
    peer_ = start_one(peer_root_, &peer_metrics_, ServerOptions{});
    ServerOptions origin_options;
    origin_options.cache_peers = {
        {"127.0.0.1", peer_->port(), /*ttl_ms=*/0}};
    origin_options.redirect_hot_threshold = threshold;
    origin_options.redirect_ttl_ms = 60'000;
    origin_ = start_one(origin_root_, &origin_metrics_, origin_options);
  }

  // A dialer that connects-and-authenticates to whatever endpoint the hint
  // names (non-cooperative, as a real sibling leg must be).
  static Client::Options::Dialer test_dialer() {
    return [](const net::Endpoint& endpoint) -> Result<Client> {
      TSS_ASSIGN_OR_RETURN(Client peer,
                           Client::connect(endpoint, Client::Options{}));
      auth::HostnameClientCredential credential;
      auto subject = peer.authenticate(credential);
      if (!subject.ok()) return std::move(subject).take_error();
      return peer;
    };
  }

  Client connect(Client::Options options, Server& server) {
    auto client = Client::connect(server.endpoint(), std::move(options));
    EXPECT_TRUE(client.ok()) << client.error().to_string();
    auth::HostnameClientCredential credential;
    auto subject = client.value().authenticate(credential);
    EXPECT_TRUE(subject.ok()) << subject.error().to_string();
    return std::move(client).value();
  }

  uint64_t origin_requests() {
    return origin_metrics_.counter("chirp.server.requests")->value();
  }

  std::string base_, origin_root_, peer_root_;
  obs::Registry origin_metrics_, peer_metrics_;
  std::unique_ptr<Server> origin_, peer_;
  static inline int counter_ = 0;
};

TEST_F(CacheWireTest, HotGetfileDeflectsToSiblingAndLeaseSticksThere) {
  start_cluster(/*threshold=*/2);
  const std::string payload = "hot bytes, identical on both servers";
  fs::LocalFs origin_fs(origin_root_), peer_fs(peer_root_);
  ASSERT_TRUE(origin_fs.write_file("/hot", payload).ok());
  ASSERT_TRUE(peer_fs.write_file("/hot", payload).ok());

  obs::Registry client_metrics;
  Client::Options options;
  options.cooperative = true;
  options.redirect_dialer = test_dialer();
  options.metrics = &client_metrics;
  Client client = connect(options, *origin_);

  // Under the threshold: the origin serves directly.
  EXPECT_EQ(client.getfile("/hot").value(), payload);
  EXPECT_EQ(client.getfile("/hot").value(), payload);
  EXPECT_FALSE(client.last_redirect().has_value());

  // Over it: a deflection, followed transparently to the sibling — the
  // caller still sees the bytes, plus the hint in last_redirect().
  EXPECT_EQ(client.getfile("/hot").value(), payload);
  ASSERT_TRUE(client.last_redirect().has_value());
  EXPECT_EQ(client.last_redirect()->port, peer_->port());
  EXPECT_EQ(origin_metrics_.counter("chirp.server.redirects")->value(), 1u);
  EXPECT_EQ(client_metrics.counter("fs.cache.redirect")->value(), 1u);

  // While the lease lives, fetches go straight to the sibling: the origin
  // sees no further traffic for the path.
  uint64_t origin_before = origin_requests();
  EXPECT_EQ(client.getfile("/hot").value(), payload);
  EXPECT_EQ(client.getfile("/hot").value(), payload);
  EXPECT_EQ(origin_requests(), origin_before);
}

TEST_F(CacheWireTest, NonCooperativeClientIsAlwaysServedDirectly) {
  start_cluster(/*threshold=*/1);
  const std::string payload = "served straight, no capability offered";
  fs::LocalFs origin_fs(origin_root_);
  ASSERT_TRUE(origin_fs.write_file("/hot", payload).ok());

  Client client = connect(Client::Options{}, *origin_);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(client.getfile("/hot").value(), payload) << i;
  }
  EXPECT_EQ(origin_metrics_.counter("chirp.server.redirects")->value(), 0u);
}

TEST_F(CacheWireTest, HintWithoutDialerSurfacesAsEremote) {
  start_cluster(/*threshold=*/1);
  fs::LocalFs origin_fs(origin_root_);
  ASSERT_TRUE(origin_fs.write_file("/hot", "bytes").ok());

  Client::Options options;
  options.cooperative = true;  // offers the capability, cannot follow hints
  Client client = connect(options, *origin_);
  EXPECT_EQ(client.getfile("/hot").value(), "bytes");
  auto deflected = client.getfile("/hot");
  ASSERT_FALSE(deflected.ok());
  EXPECT_EQ(deflected.error().code, EREMOTE);
  ASSERT_TRUE(client.last_redirect().has_value());
  EXPECT_EQ(client.last_redirect()->port, peer_->port());
}

TEST_F(CacheWireTest, StreamingGetfileFollowsTheHintToo) {
  start_cluster(/*threshold=*/1);
  const std::string payload(8192, 's');
  fs::LocalFs origin_fs(origin_root_), peer_fs(peer_root_);
  ASSERT_TRUE(origin_fs.write_file("/hot", payload).ok());
  ASSERT_TRUE(peer_fs.write_file("/hot", payload).ok());

  Client::Options options;
  options.cooperative = true;
  options.redirect_dialer = test_dialer();
  Client client = connect(options, *origin_);

  std::string streamed;
  auto sink = [&](std::string_view chunk) -> Result<void> {
    streamed.append(chunk);
    return Result<void>::success();
  };
  ASSERT_EQ(client.getfile_to("/hot", sink).value(), payload.size());
  streamed.clear();
  // Second fetch crosses the threshold: deflected, followed, identical.
  ASSERT_EQ(client.getfile_to("/hot", sink).value(), payload.size());
  EXPECT_EQ(streamed, payload);
  ASSERT_TRUE(client.last_redirect().has_value());
}

// The client half of the tentpole end to end: an adapter mount over the
// origin with the CachedFs layer on — the first read misses through to the
// server, the repeat is served from local blocks with zero RPCs.
TEST_F(CacheWireTest, AdapterCachedMountServesRepeatsLocally) {
  start_cluster(/*threshold=*/1000);  // redirects off for this one
  const std::string payload = "adapter-cached contents";
  fs::LocalFs origin_fs(origin_root_);
  ASSERT_TRUE(origin_fs.write_file("/doc", payload).ok());

  obs::Registry cache_metrics;
  adapter::Adapter::Options options;
  options.credentials.push_back(
      std::make_shared<auth::HostnameClientCredential>());
  options.cache_capacity_bytes = 1 << 20;
  options.cache_metrics = &cache_metrics;
  adapter::Adapter adapter(options);

  std::string mount = "/cfs/127.0.0.1:" + std::to_string(origin_->port());
  EXPECT_EQ(adapter.read_file(mount + "/doc").value(), payload);
  uint64_t rpcs_after_first = origin_requests();
  EXPECT_EQ(adapter.read_file(mount + "/doc").value(), payload);
  EXPECT_EQ(origin_requests(), rpcs_after_first);  // zero RPCs on the hit
  EXPECT_EQ(cache_metrics.counter("fs.cache.miss")->value(), 1u);
  EXPECT_EQ(cache_metrics.counter("fs.cache.hit")->value(), 1u);

  // Writes through the same mount invalidate, and reads see them.
  ASSERT_TRUE(adapter.write_file(mount + "/doc", "rewritten").ok());
  EXPECT_EQ(adapter.read_file(mount + "/doc").value(), "rewritten");
  EXPECT_GE(cache_metrics.counter("fs.cache.invalidate")->value(), 1u);
}

}  // namespace
}  // namespace tss::chirp
