// AdapterFs: the adapter's namespace presented back as a FileSystem.
//
// Recursive abstraction, once more: the adapter consumes FileSystems and —
// with this shim — implements one, so any component written against the
// FileSystem interface (the SP5 workload, GEMS, another DistFs...) can run
// on top of the full mountlist namespace.
#pragma once

#include "adapter/adapter.h"
#include "fs/filesystem.h"

namespace tss::adapter {

class AdapterFs final : public fs::FileSystem {
 public:
  explicit AdapterFs(Adapter& adapter) : adapter_(adapter) {}

  Result<std::unique_ptr<fs::File>> open(const std::string& path,
                                         const fs::OpenFlags& flags,
                                         uint32_t mode) override {
    TSS_ASSIGN_OR_RETURN(Adapter::Resolved r, adapter_.resolve(path));
    return r.fs->open(r.path, flags, mode);
  }
  using FileSystem::open;

  Result<fs::StatInfo> stat(const std::string& path) override {
    return adapter_.stat(path);
  }
  Result<void> unlink(const std::string& path) override {
    return adapter_.unlink(path);
  }
  Result<void> rename(const std::string& from,
                      const std::string& to) override {
    return adapter_.rename(from, to);
  }
  Result<void> mkdir(const std::string& path, uint32_t mode) override {
    return adapter_.mkdir(path, mode);
  }
  using FileSystem::mkdir;
  Result<void> rmdir(const std::string& path) override {
    return adapter_.rmdir(path);
  }
  Result<void> truncate(const std::string& path, uint64_t size) override {
    return adapter_.truncate(path, size);
  }
  Result<std::vector<fs::DirEntry>> readdir(const std::string& path) override {
    return adapter_.readdir(path);
  }
  Result<std::string> read_file(const std::string& path) override {
    return adapter_.read_file(path);
  }
  Result<void> write_file(const std::string& path, std::string_view data,
                          uint32_t mode) override {
    return adapter_.write_file(path, data, mode);
  }
  using FileSystem::write_file;

 private:
  Adapter& adapter_;
};

}  // namespace tss::adapter
