# Empty compiler generated dependencies file for tss_gems.
# This may be replaced when dependencies are built.
