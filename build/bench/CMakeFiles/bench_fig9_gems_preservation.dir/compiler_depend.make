# Empty compiler generated dependencies file for bench_fig9_gems_preservation.
# This may be replaced when dependencies are built.
