#include "chirp/quota.h"

#include <algorithm>

namespace tss::chirp {

namespace {

double burst_of(uint64_t burst, uint64_t rate) {
  if (burst != 0) return static_cast<double>(burst);
  return static_cast<double>(std::max<uint64_t>(rate, 1));
}

}  // namespace

QuotaManager::QuotaManager(Options options) : options_(std::move(options)) {
  if (options_.clock == nullptr) options_.clock = &RealClock::instance();
  if (options_.metrics != nullptr) {
    admitted_ = options_.metrics->counter("tenant.quota.admitted");
    rejected_ = options_.metrics->counter("tenant.quota.rejected");
  }
}

QuotaManager::Bucket& QuotaManager::bucket_locked(const std::string& subject) {
  auto it = buckets_.find(subject);
  if (it != buckets_.end()) return it->second;
  Bucket b;
  auto limits_it = options_.per_subject.find(subject);
  b.limits = limits_it != options_.per_subject.end() ? limits_it->second
                                                     : options_.default_limits;
  // Buckets start full: a new subject gets its burst up front.
  b.ops = burst_of(b.limits.ops_burst, b.limits.ops_per_sec);
  b.bytes = burst_of(b.limits.bytes_burst, b.limits.bytes_per_sec);
  b.last_refill = options_.clock->now();
  return buckets_.emplace(subject, std::move(b)).first->second;
}

void QuotaManager::refill_locked(Bucket& b) {
  Nanos now = options_.clock->now();
  if (now <= b.last_refill) return;
  double dt = static_cast<double>(now - b.last_refill) / kSecond;
  b.last_refill = now;
  if (b.limits.ops_per_sec != 0) {
    b.ops = std::min(b.ops + dt * static_cast<double>(b.limits.ops_per_sec),
                     burst_of(b.limits.ops_burst, b.limits.ops_per_sec));
  }
  if (b.limits.bytes_per_sec != 0) {
    b.bytes =
        std::min(b.bytes + dt * static_cast<double>(b.limits.bytes_per_sec),
                 burst_of(b.limits.bytes_burst, b.limits.bytes_per_sec));
  }
}

Result<void> QuotaManager::admit(const std::string& subject) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = bucket_locked(subject);
  if (b.limits.unlimited()) return Result<void>::success();
  refill_locked(b);
  if ((b.limits.ops_per_sec != 0 && b.ops <= 0) ||
      (b.limits.bytes_per_sec != 0 && b.bytes <= 0)) {
    if (rejected_ != nullptr) rejected_->add(1);
    return Error(EDQUOT, "quota exceeded for " + subject);
  }
  if (admitted_ != nullptr) admitted_->add(1);
  return Result<void>::success();
}

void QuotaManager::charge(const std::string& subject, uint64_t ops,
                          uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = bucket_locked(subject);
  if (b.limits.unlimited()) return;
  refill_locked(b);
  if (b.limits.ops_per_sec != 0) b.ops -= static_cast<double>(ops);
  if (b.limits.bytes_per_sec != 0) b.bytes -= static_cast<double>(bytes);
}

QuotaManager::Balance QuotaManager::balance(const std::string& subject) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& b = bucket_locked(subject);
  refill_locked(b);
  return Balance{b.ops, b.bytes};
}

}  // namespace tss::chirp
