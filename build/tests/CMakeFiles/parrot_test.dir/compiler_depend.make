# Empty compiler generated dependencies file for parrot_test.
# This may be replaced when dependencies are built.
