// Buffered line+blob framing over a TCP socket.
//
// All TSS wire protocols (Chirp, catalog, NFS baseline, db) are line-oriented
// ASCII control with length-delimited binary payloads, in the style of the
// real Chirp protocol. LineStream provides buffered reads (so a line and the
// blob following it cost one recv) and buffered writes with explicit flush
// (so a request line plus its payload cost one send — important for the
// latency measurements in Figures 4 and 5).
#pragma once

#include <string>
#include <string_view>

#include "net/socket.h"
#include "util/result.h"

namespace tss::net {

class LineStream {
 public:
  // Default per-operation timeout 30s; override per call site as needed.
  explicit LineStream(TcpSocket sock, Nanos timeout = 30 * kSecond);

  LineStream(LineStream&&) = default;
  LineStream& operator=(LineStream&&) = default;

  void set_timeout(Nanos timeout) { timeout_ = timeout; }
  Nanos timeout() const { return timeout_; }

  // Reads one '\n'-terminated line (terminator stripped; a trailing '\r' is
  // also stripped for telnet-friendliness). Fails with EMSGSIZE if the line
  // exceeds max_len, ECONNRESET on EOF mid-line, and returns an empty
  // optional-style EPIPE error on clean EOF at a line boundary.
  Result<std::string> read_line(size_t max_len = 64 * 1024);

  // Reads exactly `size` raw bytes (payload following a header line).
  Result<void> read_blob(void* data, size_t size);

  // Appends a line (terminator added) to the output buffer.
  void write_line(std::string_view line);

  // Appends raw payload bytes to the output buffer.
  void write_blob(const void* data, size_t size);

  // Sends everything buffered.
  Result<void> flush();

  // Convenience: write line, flush, used by simple request/response turns.
  Result<void> send_line(std::string_view line);

  bool valid() const { return sock_.valid(); }
  void close() { sock_.close(); }
  TcpSocket& socket() { return sock_; }

 private:
  Result<void> fill();

  TcpSocket sock_;
  Nanos timeout_;
  std::string rbuf_;
  size_t rpos_ = 0;
  std::string wbuf_;
};

}  // namespace tss::net
