file(REMOVE_RECURSE
  "libtss_acl.a"
)
