// Wire definitions shared by the NFS-baseline server and client.
//
// This models the properties the paper attributes to NFS in its
// measurements (DESIGN.md §3, substitution 4):
//   - filehandle-based, per-component LOOKUP name resolution
//     ("CFS has lower latency for stat and open/close, because it does not
//      require lookup operations to resolve names to inodes", §7);
//   - READ/WRITE RPCs capped at 4 KB
//     ("Parrot+CFS achieves higher bandwidth than Unix+NFS because it uses
//      variable sized messages over TCP instead of 4KB RPC packets", Fig 5);
//   - strict request-response, one outstanding RPC per connection;
//   - caching disabled, matching the paper's apples-to-apples comparison.
//
// RPCs (line-oriented, same framing conventions as Chirp):
//   mount                                   -> ok <root_fh>
//   lookup <dir_fh> <name>                  -> ok <fh> <stat fields>
//   getattr <fh>                            -> ok <stat fields>
//   read <fh> <offset> <count<=4096>        -> ok <n> + n payload bytes
//   write <fh> <offset> <count<=4096>       -> (payload) ok <n>
//   create <dir_fh> <name> <mode>           -> ok <fh> <stat fields>
//   remove <dir_fh> <name>                  -> ok
//   rename <dfh1> <n1> <dfh2> <n2>          -> ok
//   mkdir <dir_fh> <name> <mode>            -> ok <fh>
//   rmdir <dir_fh> <name>                   -> ok
//   readdir <dir_fh>                        -> ok <count> + count name lines
//   truncate <fh> <size>                    -> ok
#pragma once

#include <cstdint>

namespace tss::nfs {

// "4KB RPC packets" (§7, Figure 5 caption).
constexpr uint64_t kMaxTransfer = 4096;

using FileHandle = uint64_t;
constexpr FileHandle kInvalidHandle = 0;

}  // namespace tss::nfs
