
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/line_stream.cc" "src/net/CMakeFiles/tss_net.dir/line_stream.cc.o" "gcc" "src/net/CMakeFiles/tss_net.dir/line_stream.cc.o.d"
  "/root/repo/src/net/server_loop.cc" "src/net/CMakeFiles/tss_net.dir/server_loop.cc.o" "gcc" "src/net/CMakeFiles/tss_net.dir/server_loop.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/net/CMakeFiles/tss_net.dir/socket.cc.o" "gcc" "src/net/CMakeFiles/tss_net.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tss_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
