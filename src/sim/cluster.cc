#include "sim/cluster.h"

#include <vector>

namespace tss::sim {

Cluster::Cluster(Engine& engine, Config config)
    : engine_(engine),
      config_(config),
      backplane_(engine, config.backplane_bytes_per_sec) {}

int Cluster::add_node() {
  Node node;
  node.tx = std::make_unique<RateQueue>(engine_, config_.nic_bytes_per_sec);
  node.rx = std::make_unique<RateQueue>(engine_, config_.nic_bytes_per_sec);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

Task<void> Cluster::transfer(int from, int to, uint64_t bytes) {
  // Zero-byte messages still cost a propagation delay.
  if (bytes == 0) {
    co_await engine_.sleep_for(config_.link_latency);
    co_return;
  }
  // Chunks pipeline through the three stages: chunk i+1 may enter the
  // sender port as soon as chunk i has left it (not when it has fully
  // arrived), so a single flow runs at the slowest stage's rate instead of
  // paying the whole store-and-forward chain per chunk. A sliding window
  // bounds bytes in flight, standing in for TCP flow control; the coroutine
  // yields at every chunk boundary, which is what interleaves concurrent
  // flows fairly on the shared reservation timelines.
  constexpr size_t kWindowChunks = 16;
  std::vector<Nanos> inflight;  // rx completion times, indexed modulo window
  inflight.reserve(kWindowChunks);
  size_t sent = 0;
  uint64_t remaining = bytes;
  Nanos t = engine_.now();
  Nanos last_rx = t;
  while (remaining > 0) {
    if (sent >= kWindowChunks) {
      Nanos window_edge = inflight[sent % kWindowChunks];
      if (window_edge > engine_.now()) {
        co_await engine_.sleep_until(window_edge);
      }
      if (t < window_edge) t = window_edge;
    }
    uint64_t chunk = std::min(remaining, config_.transfer_chunk);
    Nanos tx_done = nodes_[static_cast<size_t>(from)].tx->reserve(t, chunk);
    Nanos bp_done = backplane_.reserve(tx_done, chunk);
    Nanos rx_done = nodes_[static_cast<size_t>(to)].rx->reserve(bp_done, chunk);
    if (sent < kWindowChunks) {
      inflight.push_back(rx_done);
    } else {
      inflight[sent % kWindowChunks] = rx_done;
    }
    sent++;
    last_rx = rx_done;
    remaining -= chunk;
    t = tx_done;  // next chunk enters the sender port after this one leaves
    if (tx_done > engine_.now()) co_await engine_.sleep_until(tx_done);
  }
  if (last_rx > engine_.now()) co_await engine_.sleep_until(last_rx);
  co_await engine_.sleep_for(config_.link_latency);
}

Nanos Cluster::reserve_transfer(int from, int to, uint64_t bytes) {
  Nanos t = engine_.now();
  uint64_t remaining = bytes;
  Nanos last_rx = t;
  while (remaining > 0) {
    uint64_t chunk = std::min(remaining, config_.transfer_chunk);
    Nanos tx_done = nodes_[static_cast<size_t>(from)].tx->reserve(t, chunk);
    Nanos bp_done = backplane_.reserve(tx_done, chunk);
    last_rx = nodes_[static_cast<size_t>(to)].rx->reserve(bp_done, chunk);
    t = tx_done;
    remaining -= chunk;
  }
  return last_rx + config_.link_latency;
}


}  // namespace tss::sim
