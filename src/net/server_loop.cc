#include "net/server_loop.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>

#include "util/logging.h"

namespace tss::net {

namespace {

// Session wrapper that keeps the loop's live-connection count honest on the
// reactor engine: decremented exactly once, on on_close — or on destruction
// if the connection was never adopted (shutdown race).
class CountedSession final : public ReactorSession {
 public:
  CountedSession(std::shared_ptr<ReactorSession> inner,
                 std::atomic<size_t>* active)
      : inner_(std::move(inner)), active_(active) {}
  ~CountedSession() override {
    if (!closed_) active_->fetch_sub(1);
  }

  void on_start(Conn& c) override { inner_->on_start(c); }
  bool on_input(Conn& c) override { return inner_->on_input(c); }
  bool on_output_space(Conn& c) override { return inner_->on_output_space(c); }
  bool on_timeout(Conn& c) override { return inner_->on_timeout(c); }
  void on_close(Conn& c) override {
    inner_->on_close(c);
    closed_ = true;
    active_->fetch_sub(1);
  }

 private:
  std::shared_ptr<ReactorSession> inner_;
  std::atomic<size_t>* active_;
  bool closed_ = false;
};

}  // namespace

Mode default_mode() {
  if (const char* env = std::getenv("TSS_NET_MODE")) {
    std::string_view v(env);
    if (v == "thread") return Mode::kThreadPerConnection;
    if (v == "reactor") return Mode::kReactor;
    TSS_WARN("net") << "unknown TSS_NET_MODE '" << v << "', using reactor";
  }
  return Mode::kReactor;
}

Result<void> ServerLoop::start_common(const std::string& host, uint16_t port,
                                      Limits limits) {
  TSS_ASSIGN_OR_RETURN(listener_, TcpListener::listen(host, port));
  port_ = listener_.port();
  limits_ = std::move(limits);
  return Result<void>::success();
}

Result<void> ServerLoop::start(const std::string& host, uint16_t port,
                               Handler handler, Limits limits) {
  TSS_RETURN_IF_ERROR(start_common(host, port, std::move(limits)));
  handler_ = std::move(handler);
  mode_ = Mode::kThreadPerConnection;  // raw handlers block; no reactor
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Result<void>::success();
}

Result<void> ServerLoop::start(const std::string& host, uint16_t port,
                               SessionFactory factory, Limits limits) {
  TSS_RETURN_IF_ERROR(start_common(host, port, std::move(limits)));
  factory_ = std::move(factory);
  mode_ = limits_.mode == Mode::kAuto ? default_mode() : limits_.mode;
  if (mode_ == Mode::kReactor) {
    EventLoop::Options opts;
    opts.workers = limits_.reactor_workers;
    opts.force_poll = limits_.force_poll;
    opts.metrics = limits_.metrics;
    loop_ = std::make_unique<EventLoop>(opts);
    auto rc = loop_->start();
    if (!rc.ok()) {
      loop_.reset();
      listener_.close();
      return rc;
    }
  }
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Result<void>::success();
}

void ServerLoop::accept_loop() {
  while (running_.load()) {
    auto sock = listener_.accept(200 * kMillisecond);
    if (!sock.ok()) {
      if (sock.error().code == ETIMEDOUT) continue;
      if (running_.load()) {
        TSS_DEBUG("net") << "accept: " << sock.error().to_string();
      }
      break;
    }
    if (limits_.max_connections > 0 &&
        active_.load() >= limits_.max_connections) {
      // Over the cap: tell the client why (best effort), then close. A
      // refusal must be visible — to the client as a typed error instead of
      // a bare EOF, and to the operator in the log and the metrics.
      rejected_.fetch_add(1);
      if (limits_.rejected_counter) limits_.rejected_counter->add();
      TSS_WARN("net") << "connection cap (" << limits_.max_connections
                      << ") reached, refusing client";
      if (!limits_.reject_notice.empty()) {
        (void)sock.value().write_all(limits_.reject_notice.data(),
                                     limits_.reject_notice.size(),
                                     kSecond);
      }
      sock.value().close();
      continue;
    }
    accepted_.fetch_add(1);
    active_.fetch_add(1);
    if (mode_ == Mode::kReactor) {
      auto session =
          std::make_shared<CountedSession>(factory_(), &active_);
      auto rc = loop_->adopt(std::move(sock).value(), std::move(session));
      if (!rc.ok()) {
        // Loop is stopping; the CountedSession destructor restores active_.
        TSS_DEBUG("net") << "adopt: " << rc.error().to_string();
      }
      continue;
    }
    spawn_thread(std::move(sock).value());
  }
}

void ServerLoop::spawn_thread(TcpSocket sock) {
  uint64_t id;
  std::lock_guard<std::mutex> lock(mutex_);
  id = next_conn_id_++;
  Connection& conn = conns_[id];
  // dup the fd so stop() can shutdown() a blocked handler without racing
  // fd reuse: we own the dup until we close it ourselves.
  conn.dup_fd = ::dup(sock.raw_fd());
  // The mutex is held until the thread object lands in the entry, so the
  // handler's finish_connection() (which needs the same mutex) cannot
  // observe a half-built entry however fast the connection completes.
  conn.thread = std::thread([this, id, s = std::move(sock)]() mutable {
    if (factory_) {
      drive_session_blocking(std::move(s), factory_(), limits_.metrics);
    } else {
      handler_(std::move(s));
    }
    finish_connection(id);
  });
}

void ServerLoop::finish_connection(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.fetch_sub(1);
  auto it = conns_.find(id);
  // Entry gone: stop() owns the thread object now and will join us.
  if (it == conns_.end()) return;
  if (it->second.dup_fd >= 0) ::close(it->second.dup_fd);
  // A thread cannot join itself, so completion *is* the reap: detach and
  // drop the entry. Nothing after this point touches the ServerLoop, which
  // is what makes the detach safe against a racing stop()/destruction —
  // stop() only returns once every remaining *entry* is joined, and this
  // entry is gone before the lock is released.
  it->second.thread.detach();
  conns_.erase(it);
}

void ServerLoop::stop() {
  if (!running_.exchange(false)) return;
  // Wake the acceptor with shutdown() rather than close(): close() would
  // mutate the listener Fd while the accept thread is reading it (a data
  // race, and the fd number could be reused under the acceptor's feet).
  // shutdown() only reads the descriptor; accept fails immediately with
  // EINVAL and the loop exits. The 200ms accept timeout is the fallback on
  // platforms where shutdown on a listener is a no-op.
  if (listener_.valid()) ::shutdown(listener_.raw_fd(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  if (loop_) {
    loop_->stop();
    loop_.reset();
  }
  std::unordered_map<uint64_t, Connection> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(conns_);
  }
  for (auto& [id, c] : conns) {
    if (c.dup_fd >= 0) ::shutdown(c.dup_fd, SHUT_RDWR);
  }
  for (auto& [id, c] : conns) {
    if (c.thread.joinable()) c.thread.join();
    if (c.dup_fd >= 0) ::close(c.dup_fd);
  }
}

}  // namespace tss::net
