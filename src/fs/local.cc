#include "fs/local.h"

#include "util/path.h"

namespace tss::fs {

namespace {

class LocalFile final : public File {
 public:
  LocalFile(chirp::PosixBackend& backend, int handle)
      : backend_(backend), handle_(handle) {}
  ~LocalFile() override { (void)close(); }

  Result<size_t> pread(void* data, size_t size, int64_t offset) override {
    if (handle_ < 0) return Error(EBADF, "file closed");
    return backend_.pread(handle_, data, size, offset);
  }
  Result<size_t> pwrite(const void* data, size_t size,
                        int64_t offset) override {
    if (handle_ < 0) return Error(EBADF, "file closed");
    return backend_.pwrite(handle_, data, size, offset);
  }
  Result<void> fsync() override {
    if (handle_ < 0) return Error(EBADF, "file closed");
    return backend_.fsync(handle_);
  }
  Result<StatInfo> fstat() override {
    if (handle_ < 0) return Error(EBADF, "file closed");
    return backend_.fstat(handle_);
  }
  Result<void> close() override {
    if (handle_ < 0) return Result<void>::success();
    auto rc = backend_.close(handle_);
    handle_ = -1;
    return rc;
  }

 private:
  chirp::PosixBackend& backend_;
  int handle_;
};

}  // namespace

LocalFs::LocalFs(std::string root) : backend_(std::move(root)) {}

Result<std::unique_ptr<File>> LocalFs::open(const std::string& p,
                                            const OpenFlags& flags,
                                            uint32_t mode) {
  TSS_ASSIGN_OR_RETURN(int handle,
                       backend_.open(path::sanitize(p), flags, mode));
  return std::unique_ptr<File>(new LocalFile(backend_, handle));
}

Result<StatInfo> LocalFs::stat(const std::string& p) {
  return backend_.stat(path::sanitize(p));
}

Result<void> LocalFs::unlink(const std::string& p) {
  return backend_.unlink(path::sanitize(p));
}

Result<void> LocalFs::rename(const std::string& from, const std::string& to) {
  return backend_.rename(path::sanitize(from), path::sanitize(to));
}

Result<void> LocalFs::mkdir(const std::string& p, uint32_t mode) {
  return backend_.mkdir(path::sanitize(p), mode);
}

Result<void> LocalFs::rmdir(const std::string& p) {
  return backend_.rmdir(path::sanitize(p));
}

Result<void> LocalFs::truncate(const std::string& p, uint64_t size) {
  return backend_.truncate(path::sanitize(p), size);
}

Result<std::vector<DirEntry>> LocalFs::readdir(const std::string& p) {
  return backend_.readdir(path::sanitize(p));
}

Result<std::string> LocalFs::read_file(const std::string& p) {
  return backend_.read_file(path::sanitize(p));
}

Result<void> LocalFs::write_file(const std::string& p, std::string_view data,
                                 uint32_t mode) {
  return backend_.write_file(path::sanitize(p), data, mode);
}

}  // namespace tss::fs
