// The Chirp server connection as a resumable state machine.
//
// ServerSession implements net::ReactorSession: it consumes whatever bytes
// the transport has buffered, advances a small per-connection state machine
// (request line -> body / auth / streamed getfile / streamed putfile), and
// yields whenever a frame is incomplete or the output buffer is full. The
// same object serves both execution engines — the epoll reactor drives it
// from readiness events; thread-per-connection mode drives it through
// net::drive_session_blocking — so admission, reaping, metrics, and wire
// behaviour are identical in both modes (the PR 1-2 test suites are the
// contract).
//
// Interactive authentication (the unix method's challenge/response round)
// cannot run on a loop thread: the server must block until the client
// answers. Those attempts are bridged to an AuthExecutor helper thread that
// runs SessionCore::authenticate against a condvar-backed ChallengeIo and
// posts the verdict back to the connection via ConnRef::post. The common
// non-interactive methods (hostname, globus, kerberos — see
// auth::ServerMethod::interactive) complete inline on the loop thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chirp/session.h"
#include "net/event_loop.h"
#include "util/checksum.h"

namespace tss::chirp {

// Bounded helper pool for interactive auth attempts. Threads are started
// lazily on first use (a server that never sees a unix auth spends none) and
// capped, so the server's thread count stays workers + acceptor (+ at most
// `threads` during interactive handshakes). Each attempt blocks at most the
// session io timeout, so a stalled client cannot pin a helper forever.
class AuthExecutor {
 public:
  explicit AuthExecutor(int threads = 2);
  ~AuthExecutor();
  AuthExecutor(const AuthExecutor&) = delete;
  AuthExecutor& operator=(const AuthExecutor&) = delete;

  void submit(std::function<void()> work);

 private:
  void run();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> work_;
  std::vector<std::thread> threads_;
  int max_threads_;
  int idle_ = 0;
  bool stop_ = false;
};

namespace detail {
class AuthBridge;
class SlotGuard;
}

// Everything a session needs from its server. Pointers are not owned and
// must outlive the session (the Server guarantees this by stopping its loop
// and joining the auth executor before releasing config/backend/auth).
struct SessionParams {
  const ServerConfig* config = nullptr;
  Backend* backend = nullptr;
  Nanos io_timeout = 30 * kSecond;
  // Idle gap allowed between requests; 0 = io_timeout (the pre-existing
  // behaviour). See ServerOptions::idle_timeout.
  Nanos idle_timeout = 0;
  // Null disables interactive auth methods (they fail with EPROTO).
  AuthExecutor* auth_executor = nullptr;
};

class ServerSession final : public net::ReactorSession,
                            public std::enable_shared_from_this<ServerSession> {
 public:
  explicit ServerSession(SessionParams params) : params_(params) {}
  ~ServerSession() override;

  void on_start(net::Conn& c) override;
  bool on_input(net::Conn& c) override;
  bool on_output_space(net::Conn& c) override;
  bool on_timeout(net::Conn& c) override;
  void on_close(net::Conn& c) override;

 private:
  enum class State {
    kRequestLine,   // waiting for the next request line
    kReadBody,      // buffering a bounded RPC payload (pwrite, setacl, ...)
    kAdmitPending,  // parked in the fair-share queue; input stays buffered
    kAuthPending,   // interactive auth running on the executor
    kSendFile,     // streaming getfile: refill on output space
    kRecvFile,     // streaming putfile: consume body chunks into the backend
    kRecvSum,      // putfile body done: verify the client's checksum trailer
    kDrainBody,    // putfile was denied: discard the promised body, respond
    kDrainSum,     // ...and the checksum trailer the client still sends
  };

  bool step(net::Conn& c);
  bool begin_request(net::Conn& c, const std::string& line);
  // The post-admission half of begin_request: body read / auth / streams /
  // buffered dispatch. Runs immediately on kRun, or from resume_admitted
  // once a parked request wins its fair-share slot.
  bool continue_request(net::Conn& c);
  // Invoked (via ConnRef::post) when the fair queue grants a parked request.
  void resume_admitted(net::Conn& c,
                       const std::shared_ptr<detail::SlotGuard>& guard);
  // Refuses the current request with `resp`, draining any promised body so
  // the connection stays usable. Used for fair-share EBUSY and quota EDQUOT.
  bool refuse_request(net::Conn& c, Response resp);
  // record_op + per-subject quota accounting for ops the transport streams
  // (or drains) around SessionCore::handle.
  void finish_stream_op(Op op, uint64_t bytes_in, uint64_t bytes_out,
                        int err);
  // Returns this request's fair-share slot, if one is held.
  void release_slot();
  // Fair-share key: the authenticated subject, else the peer address.
  std::string admit_key() const;
  bool begin_auth(net::Conn& c);
  void finish_auth(net::Conn& c, const Result<auth::Subject>& result);
  bool begin_getfile(net::Conn& c);
  bool begin_putfile(net::Conn& c);
  void dispatch_buffered(net::Conn& c, SessionCore::Payload payload);
  void respond(net::Conn& c, const Response& resp);
  void to_request_line(net::Conn& c);
  Nanos idle_wait() const {
    return params_.idle_timeout > 0 ? params_.idle_timeout
                                    : params_.io_timeout;
  }

  SessionParams params_;
  std::optional<SessionCore> core_;
  obs::Gauge* active_gauge_ = nullptr;
  std::string peer_ip_;
  State state_ = State::kRequestLine;

  Request req_;
  Nanos op_start_ = 0;
  std::string body_;   // buffered RPC payload (kReadBody)
  size_t body_got_ = 0;
  std::string chunk_;  // streaming scratch (fallback when the pool is dry)
  int handle_ = -1;    // backend handle for the in-flight stream
  // Getfile is being streamed zero-copy: the whole file region sits in the
  // connection's output queue (an fd + counters, not bytes) and completion
  // is observed as the queue draining to empty.
  bool sendfile_mode_ = false;
  // This request holds a fair-share concurrency slot (released when the
  // response is complete or the connection dies).
  bool slot_held_ = false;
  uint64_t size_ = 0;
  uint64_t offset_ = 0;
  uint64_t drain_remaining_ = 0;
  Fnv1a64 stream_sum_;  // running digest of the in-flight stream body
  Response pending_resp_;
  Result<void> write_rc_ = Result<void>::success();
  std::shared_ptr<detail::AuthBridge> bridge_;
};

}  // namespace tss::chirp
