file(REMOVE_RECURSE
  "CMakeFiles/bio_gems.dir/bio_gems.cpp.o"
  "CMakeFiles/bio_gems.dir/bio_gems.cpp.o.d"
  "bio_gems"
  "bio_gems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bio_gems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
