# Empty dependencies file for tss_cli.
# This may be replaced when dependencies are built.
