// DistFs tests: DPFS (local metadata) and DSFS (metadata on a Chirp server),
// the §5 crash-ordering protocol, and failure coherence.
#include "fs/dist.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "auth/hostname.h"
#include "chirp/posix_backend.h"
#include "chirp/server.h"
#include "fs/cfs.h"
#include "fs/local.h"
#include "fs/stub.h"

namespace tss::fs {
namespace {

TEST(Stub, SerializeParseRoundTrip) {
  Stub stub{"host5", "/mydpfs/file596"};
  auto parsed = Stub::parse(stub.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().server, "host5");
  EXPECT_EQ(parsed.value().data_path, "/mydpfs/file596");
}

TEST(Stub, RejectsNonStubContent) {
  EXPECT_FALSE(Stub::parse("just some file contents").ok());
  EXPECT_FALSE(Stub::parse("").ok());
  EXPECT_FALSE(Stub::parse("tssstub v1\nserver x\n").ok());  // missing path
}

TEST(Stub, NamesWithSpacesSurvive) {
  Stub stub{"data server 1", "/vol/file with space"};
  auto parsed = Stub::parse(stub.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().server, "data server 1");
  EXPECT_EQ(parsed.value().data_path, "/vol/file with space");
}

// --- DPFS: metadata in a local directory, data on N LocalFs "servers" -----

class DpfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/dpfs_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    std::filesystem::create_directories(base_ + "/meta");
    meta_ = std::make_unique<LocalFs>(base_ + "/meta");
    for (int i = 0; i < 3; i++) {
      std::string dir = base_ + "/server" + std::to_string(i);
      std::filesystem::create_directories(dir);
      data_.push_back(std::make_unique<LocalFs>(dir));
      servers_["host" + std::to_string(i)] = data_.back().get();
    }
    DistFs::Options options;
    options.volume = "/mydpfs";
    options.name_seed = 42;
    options.client_id = "testclient";
    fs_ = std::make_unique<DistFs>(meta_.get(), servers_, options);
    ASSERT_TRUE(fs_->format().ok());
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string base_;
  std::unique_ptr<LocalFs> meta_;
  std::vector<std::unique_ptr<LocalFs>> data_;
  std::map<std::string, FileSystem*> servers_;
  std::unique_ptr<DistFs> fs_;
  static inline int counter_ = 0;
};

TEST_F(DpfsTest, FormatCreatesVolumeDirectories) {
  for (auto& server : data_) {
    auto info = server->stat("/mydpfs");
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(info.value().is_dir);
  }
}

TEST_F(DpfsTest, WriteReadThroughStub) {
  ASSERT_TRUE(fs_->write_file("/paper.txt", "the content").ok());
  EXPECT_EQ(fs_->read_file("/paper.txt").value(), "the content");

  // The metadata entry is a stub pointing at one of the servers.
  auto stub = fs_->locate("/paper.txt");
  ASSERT_TRUE(stub.ok());
  EXPECT_TRUE(servers_.count(stub.value().server));
  FileSystem* server = servers_[stub.value().server];
  EXPECT_EQ(server->read_file(stub.value().data_path).value(), "the content");
}

TEST_F(DpfsTest, StatReportsDataFileSizeNotStubSize) {
  std::string data(5000, 'd');
  ASSERT_TRUE(fs_->write_file("/big", data).ok());
  auto info = fs_->stat("/big");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, data.size());
}

TEST_F(DpfsTest, FilesSpreadAcrossServers) {
  for (int i = 0; i < 30; i++) {
    ASSERT_TRUE(
        fs_->write_file("/f" + std::to_string(i), "x").ok());
  }
  std::set<std::string> used;
  for (int i = 0; i < 30; i++) {
    used.insert(fs_->locate("/f" + std::to_string(i)).value().server);
  }
  // With 30 files on 3 servers, all servers should hold data.
  EXPECT_EQ(used.size(), 3u);
}

TEST_F(DpfsTest, NameOnlyOperationsDontTouchDataServers) {
  ASSERT_TRUE(fs_->write_file("/doc", "contents").ok());
  Stub before = fs_->locate("/doc").value();

  ASSERT_TRUE(fs_->mkdir("/figures").ok());
  ASSERT_TRUE(fs_->rename("/doc", "/figures/doc").ok());

  // The data file did not move.
  Stub after = fs_->locate("/figures/doc").value();
  EXPECT_EQ(before.server, after.server);
  EXPECT_EQ(before.data_path, after.data_path);
  EXPECT_EQ(fs_->read_file("/figures/doc").value(), "contents");
}

TEST_F(DpfsTest, UnlinkRemovesDataThenStub) {
  ASSERT_TRUE(fs_->write_file("/dead", "x").ok());
  Stub stub = fs_->locate("/dead").value();
  ASSERT_TRUE(fs_->unlink("/dead").ok());
  EXPECT_EQ(fs_->stat("/dead").code(), ENOENT);
  EXPECT_EQ(servers_[stub.server]->stat(stub.data_path).code(), ENOENT);
}

TEST_F(DpfsTest, ExclusiveCreateCollisionAborts) {
  ASSERT_TRUE(fs_->write_file("/exists", "1").ok());
  auto second =
      fs_->open("/exists", OpenFlags::parse("wcx").value(), 0644);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, EEXIST);
}

TEST_F(DpfsTest, NonExclusiveCreateOpensExisting) {
  ASSERT_TRUE(fs_->write_file("/shared", "original").ok());
  Stub before = fs_->locate("/shared").value();
  auto file = fs_->open("/shared", OpenFlags::parse("rwc").value(), 0644);
  ASSERT_TRUE(file.ok());
  // Same data file — no new stub was created.
  Stub after = fs_->locate("/shared").value();
  EXPECT_EQ(before.data_path, after.data_path);
}

TEST_F(DpfsTest, CrashAfterStubCreateLeavesDanglingStubNotGarbage) {
  // Inject a crash between step 2 (stub created) and step 3 (data file
  // created). Invariant from §5: a stub with no data file is acceptable
  // (opens yield ENOENT); a data file with no stub is not.
  fs_->set_fault_hook([](const std::string& point) -> Result<void> {
    if (point == "stub-created") return Error(EIO, "injected crash");
    return Result<void>::success();
  });
  auto file = fs_->open("/crashed", OpenFlags::parse("wc").value(), 0644);
  ASSERT_FALSE(file.ok());
  fs_->set_fault_hook(nullptr);

  // The stub exists (dangling)...
  EXPECT_TRUE(meta_->stat("/crashed").ok());
  // ...and opening it reports "file not found", per the paper.
  auto open_attempt = fs_->open("/crashed", OpenFlags::parse("r").value(), 0);
  ASSERT_FALSE(open_attempt.ok());
  EXPECT_EQ(open_attempt.error().code, ENOENT);
  // No orphan data file exists on any server.
  for (auto& server : data_) {
    auto entries = server->readdir("/mydpfs");
    ASSERT_TRUE(entries.ok());
    EXPECT_TRUE(entries.value().empty());
  }
  // A dangling stub "is easily deleted by a user".
  EXPECT_TRUE(fs_->unlink("/crashed").ok());
  EXPECT_EQ(meta_->stat("/crashed").code(), ENOENT);
}

TEST_F(DpfsTest, CrashDuringUnlinkAlsoLeavesOnlyDanglingStub) {
  ASSERT_TRUE(fs_->write_file("/halfdead", "x").ok());
  Stub stub = fs_->locate("/halfdead").value();
  fs_->set_fault_hook([](const std::string& point) -> Result<void> {
    if (point == "data-deleted") return Error(EIO, "injected crash");
    return Result<void>::success();
  });
  EXPECT_FALSE(fs_->unlink("/halfdead").ok());
  fs_->set_fault_hook(nullptr);

  // Data gone, stub remains: same dangling-stub invariant.
  EXPECT_EQ(servers_[stub.server]->stat(stub.data_path).code(), ENOENT);
  EXPECT_TRUE(meta_->stat("/halfdead").ok());
  // Retry completes the deletion.
  EXPECT_TRUE(fs_->unlink("/halfdead").ok());
}

TEST_F(DpfsTest, FailureCoherenceUnknownServerOnlyAffectsItsFiles) {
  // Write files until at least one lands on host1 and one elsewhere.
  ASSERT_TRUE(fs_->write_file("/a", "A").ok());
  ASSERT_TRUE(fs_->write_file("/b", "B").ok());
  ASSERT_TRUE(fs_->write_file("/c", "C").ok());
  ASSERT_TRUE(fs_->write_file("/d", "D").ok());

  // Simulate losing host1: remount without it.
  std::map<std::string, FileSystem*> degraded = servers_;
  degraded.erase("host1");
  DistFs::Options options;
  options.volume = "/mydpfs";
  options.name_seed = 43;
  DistFs partial(meta_.get(), degraded, options);

  int readable = 0, unreachable = 0;
  for (const char* name : {"/a", "/b", "/c", "/d"}) {
    auto data = partial.read_file(name);
    if (data.ok()) {
      readable++;
    } else {
      EXPECT_EQ(data.error().code, EHOSTUNREACH);
      unreachable++;
    }
  }
  // The directory structure is fully navigable regardless.
  auto entries = partial.readdir("/");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 4u);
  // Our seed spreads files over all three servers, so both cases occur.
  EXPECT_GT(readable, 0);
  EXPECT_GT(unreachable, 0);
}

// --- DSFS: the same class with its metadata on a Chirp server --------------

class DsfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/dsfs_" + std::to_string(::getpid()) +
            "_" + std::to_string(counter_++);
    // One Chirp server doubles as directory server; two more hold data.
    // ("A single file server might be dedicated for use as a DSFS directory,
    // or it might serve double duty as both directory and file server.")
    for (int i = 0; i < 3; i++) {
      std::string dir = base_ + "/export" + std::to_string(i);
      std::filesystem::create_directories(dir);
      chirp::ServerOptions options;
      options.owner = "unix:testowner";
      options.root_acl =
          acl::Acl::parse("hostname:localhost rwldav(rwlda)\n").value();
      auto auth = std::make_unique<auth::ServerAuth>();
      auth->add(std::make_unique<auth::HostnameServerMethod>());
      servers_.push_back(std::make_unique<chirp::Server>(
          options, std::make_unique<chirp::PosixBackend>(dir),
          std::move(auth)));
      ASSERT_TRUE(servers_.back()->start().ok());

      auto credential = std::make_shared<auth::HostnameClientCredential>();
      CfsFs::Options cfs_options;
      cfs_options.retry.base_delay = 5 * kMillisecond;
      mounts_.push_back(std::make_unique<CfsFs>(
          chirp_connector(servers_.back()->endpoint(), {credential}),
          cfs_options));
    }
    server_map_["dir"] = mounts_[0].get();  // double duty
    server_map_["data1"] = mounts_[1].get();
    server_map_["data2"] = mounts_[2].get();

    DistFs::Options options;
    options.volume = "/dsfs-volume";
    options.name_seed = 7;
    // Metadata lives on a *file server*, making this a DSFS.
    fs_ = std::make_unique<DistFs>(mounts_[0].get(), server_map_, options);
    ASSERT_TRUE(fs_->format().ok());
  }

  void TearDown() override {
    for (auto& server : servers_) server->stop();
    std::filesystem::remove_all(base_);
  }

  std::string base_;
  std::vector<std::unique_ptr<chirp::Server>> servers_;
  std::vector<std::unique_ptr<CfsFs>> mounts_;
  std::map<std::string, FileSystem*> server_map_;
  std::unique_ptr<DistFs> fs_;
  static inline int counter_ = 0;
};

TEST_F(DsfsTest, EndToEndReadWrite) {
  ASSERT_TRUE(fs_->mkdir("/results").ok());
  std::string data(100000, 'r');
  ASSERT_TRUE(fs_->write_file("/results/run1.dat", data).ok());
  EXPECT_EQ(fs_->read_file("/results/run1.dat").value(), data);
  auto info = fs_->stat("/results/run1.dat");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().size, data.size());
}

TEST_F(DsfsTest, MultipleClientsShareTheFilesystem) {
  // A second, independent client stack sees the first client's files —
  // the property that distinguishes DSFS from DPFS (§5).
  ASSERT_TRUE(fs_->write_file("/shared.txt", "from client A").ok());

  std::vector<std::unique_ptr<CfsFs>> mounts2;
  std::map<std::string, FileSystem*> map2;
  const char* names[] = {"dir", "data1", "data2"};
  for (int i = 0; i < 3; i++) {
    auto credential = std::make_shared<auth::HostnameClientCredential>();
    mounts2.push_back(std::make_unique<CfsFs>(
        chirp_connector(servers_[i]->endpoint(), {credential})));
    map2[names[i]] = mounts2.back().get();
  }
  DistFs::Options options;
  options.volume = "/dsfs-volume";
  options.name_seed = 8;
  DistFs client_b(mounts2[0].get(), map2, options);

  EXPECT_EQ(client_b.read_file("/shared.txt").value(), "from client A");
  ASSERT_TRUE(client_b.write_file("/reply.txt", "from client B").ok());
  EXPECT_EQ(fs_->read_file("/reply.txt").value(), "from client B");
}

TEST_F(DsfsTest, ConcurrentExclusiveCreateOneWinner) {
  // Two clients race to create the same file with O_EXCL; the Chirp
  // exclusive open arbitrates ("in the event of a name collision between
  // two processes, file creation can be aborted", §5).
  std::vector<std::unique_ptr<CfsFs>> mounts2;
  std::map<std::string, FileSystem*> map2;
  const char* names[] = {"dir", "data1", "data2"};
  for (int i = 0; i < 3; i++) {
    auto credential = std::make_shared<auth::HostnameClientCredential>();
    mounts2.push_back(std::make_unique<CfsFs>(
        chirp_connector(servers_[i]->endpoint(), {credential})));
    map2[names[i]] = mounts2.back().get();
  }
  DistFs::Options options;
  options.volume = "/dsfs-volume";
  options.name_seed = 9;
  DistFs client_b(mounts2[0].get(), map2, options);

  auto a = fs_->open("/race", OpenFlags::parse("wcx").value(), 0644);
  auto b = client_b.open("/race", OpenFlags::parse("wcx").value(), 0644);
  EXPECT_NE(a.ok(), b.ok());  // exactly one winner
  if (!a.ok()) {
    EXPECT_EQ(a.error().code, EEXIST);
  }
  if (!b.ok()) {
    EXPECT_EQ(b.error().code, EEXIST);
  }
}

TEST_F(DsfsTest, LosingADataServerKeepsTreeNavigable) {
  ASSERT_TRUE(fs_->mkdir("/dir1").ok());
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(
        fs_->write_file("/dir1/f" + std::to_string(i), "data").ok());
  }
  // Find a file on data1, then kill data1 (server index 1).
  std::string on_data1;
  for (int i = 0; i < 8; i++) {
    std::string name = "/dir1/f" + std::to_string(i);
    if (fs_->locate(name).value().server == "data1") {
      on_data1 = name;
      break;
    }
  }
  ASSERT_FALSE(on_data1.empty());
  servers_[1]->stop();

  // Directory listing still works (metadata is on server 0).
  auto entries = fs_->readdir("/dir1");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 8u);

  // Files on the dead server fail; others still read fine.
  // (CfsFs retries exhaust quickly with the short test backoff.)
  auto dead = fs_->read_file(on_data1);
  EXPECT_FALSE(dead.ok());
  for (int i = 0; i < 8; i++) {
    std::string name = "/dir1/f" + std::to_string(i);
    if (fs_->locate(name).value().server != "data1") {
      EXPECT_TRUE(fs_->read_file(name).ok()) << name;
    }
  }
}

}  // namespace
}  // namespace tss::fs
