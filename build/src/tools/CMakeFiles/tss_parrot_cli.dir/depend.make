# Empty dependencies file for tss_parrot_cli.
# This may be replaced when dependencies are built.
