// Hierarchical space allocation with a crash-safe recovery journal.
//
// The paper's file server enforces "storage space allocated by the owner";
// cctools' chirp realizes that as per-directory allocations: mkalloc(dir,
// limit) carves `limit` bytes out of the nearest enclosing allocation, and
// every byte written under `dir` is charged against `dir`'s own budget. The
// tracker here is that accountant, shared by the Chirp POSIX backend (which
// enforces it at pwrite/putfile time with a typed ENOSPC) and by GEMS (which
// uses it as the reserve-then-commit arbiter for its replica space budget).
//
// Model (matching chirp_alloc.c):
//  - The export root "/" always holds an allocation (limit 0 = unlimited).
//  - mkalloc(dir, limit) pre-charges the FULL `limit` to the enclosing
//    allocation's inuse; bytes written under `dir` then charge only `dir`.
//    A child exceeding its own limit is ENOSPC even if the parent has room.
//  - rmdir of an allocation root refunds its limit to the parent.
//  - rename across allocation roots transfers the byte charge (and can
//    itself be refused with ENOSPC if the destination lacks room).
//
// Durability: every state change is a checksummed record appended to a text
// journal (written BEFORE the backend write it authorizes, so a crash between
// the two overcounts conservatively — budgets are never silently violated).
// Replay stops at the first torn/corrupt record and truncates the tail; a
// compaction snapshot (A records for every allocation, then absolute U
// records) is rewritten on open and when the journal grows past a threshold.
// Records are not fsync'd individually: recovery from a process kill is exact
// via the page cache; whole-OS-crash durability rides on the compaction
// fsync. See docs/MULTITENANCY.md for the record grammar.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/result.h"

namespace tss::chirp {

// The allocation journal file name, reserved at the export root (its
// ".tmp" compaction sibling is reserved too). Hidden from listings and
// refused by direct file operations, like the ACL files.
inline constexpr const char* kAllocJournalName = ".__alloc__";

// One allocation as reported by lsalloc: the governing root, its limit
// (0 = unlimited) and the bytes currently charged against it (file bytes
// plus the pre-charged limits of child allocations).
struct AllocInfo {
  std::string root;
  uint64_t limit = 0;
  uint64_t inuse = 0;
};

class AllocTracker {
 public:
  struct Options {
    // Journal file on the host filesystem. Empty = in-memory only (no
    // durability; GEMS uses this — its catalog is the durable record).
    std::string journal_path;
    // Budget of the root allocation "/". 0 = unlimited.
    uint64_t root_limit = 0;
    // Registry for tenant.alloc.* metrics. Null = no metrics.
    obs::Registry* metrics = nullptr;
  };

  // Opens the tracker, replaying (and truncating a torn tail of) the journal
  // when one is configured, then compacting it.
  static Result<std::unique_ptr<AllocTracker>> open(Options options);

  ~AllocTracker();
  AllocTracker(const AllocTracker&) = delete;
  AllocTracker& operator=(const AllocTracker&) = delete;

  // Creates an allocation of `limit` bytes at canonical directory `dir`,
  // pre-charging `limit` to the enclosing allocation. EEXIST if `dir`
  // already holds one (or is "/"), EINVAL for limit 0, ENOSPC if the
  // enclosing allocation lacks room.
  Result<void> mkalloc(const std::string& dir, uint64_t limit);

  // The allocation governing `path` (the path itself if it is a root).
  Result<AllocInfo> lsalloc(const std::string& path) const;

  // Charges `bytes` against the allocation governing `path`; journaled
  // before returning so a crash after the grant overcounts, never under.
  // Typed ENOSPC when the budget lacks room.
  Result<void> charge(const std::string& path, uint64_t bytes);

  // Returns `bytes` to the allocation governing `path` (clamped at zero).
  void release(const std::string& path, uint64_t bytes);

  // Moves a byte charge between the allocations governing `from` and `to`
  // (rename support). No-op when both share a root; ENOSPC when the
  // destination lacks room — the caller must then refuse the rename.
  Result<void> transfer(const std::string& from, const std::string& to,
                        uint64_t bytes);

  // The directory at `dir` was removed: drop its allocation (if any) and
  // refund its limit to the enclosing allocation.
  void note_rmdir(const std::string& dir);

  // Sets the committed inuse of the allocation governing `path` absolutely.
  // For callers with an external source of truth (GEMS' catalog) that
  // re-derive usage before reserving.
  void sync_inuse(const std::string& path, uint64_t bytes);

  // Two-phase charge: reserve() holds `bytes` as pending (counted against
  // the limit, visible to racing reservers), then either commit() converts
  // the hold into a committed charge, commit_external() drops the hold
  // because an external accountant (sync_inuse) now owns the bytes, or
  // abort()/destruction releases it.
  class Reservation {
   public:
    Reservation() = default;
    Reservation(Reservation&& other) noexcept { *this = std::move(other); }
    Reservation& operator=(Reservation&& other) noexcept;
    ~Reservation() { abort(); }
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;

    void commit();
    void commit_external();
    void abort();
    bool held() const { return tracker_ != nullptr; }
    uint64_t bytes() const { return bytes_; }

   private:
    friend class AllocTracker;
    Reservation(AllocTracker* tracker, std::string root, uint64_t bytes)
        : tracker_(tracker), root_(std::move(root)), bytes_(bytes) {}
    AllocTracker* tracker_ = nullptr;
    std::string root_;
    uint64_t bytes_ = 0;
  };
  Result<Reservation> reserve(const std::string& path, uint64_t bytes);

  // Full accountant state, for tests and the model oracle.
  struct Entry {
    std::string root;
    uint64_t limit = 0;
    uint64_t inuse = 0;
    uint64_t pending = 0;
  };
  std::vector<Entry> snapshot() const;

  // Rewrites the journal as a compaction snapshot (no-op in-memory).
  Result<void> compact();

  // Journal records appended since open (tests).
  uint64_t journal_records() const;

 private:
  struct Alloc {
    uint64_t limit = 0;    // 0 = unlimited (root only)
    uint64_t inuse = 0;    // committed bytes + child-limit pre-charges
    uint64_t pending = 0;  // reserved, not yet committed
  };

  explicit AllocTracker(Options options);

  // Replays the journal at options_.journal_path into allocs_, truncating a
  // torn or corrupt tail. Returns the number of records applied.
  Result<uint64_t> replay();

  // Nearest enclosing allocation root of canonical `path` (locked).
  const std::string& enclosing_root(const std::string& path) const;
  // Free room in `a`, with `extra` uncommitted bytes on top of pending.
  static bool fits(const Alloc& a, uint64_t bytes);

  // Appends one checksummed record line; body is e.g. "C /data +4096".
  void append_record(const std::string& body);
  void maybe_compact_locked();
  Result<void> compact_locked();
  void update_gauge_locked();

  // Reservation plumbing (lock taken inside).
  void reservation_commit(const std::string& root, uint64_t bytes);
  void reservation_drop(const std::string& root, uint64_t bytes,
                        bool external);

  Options options_;
  mutable std::mutex mutex_;
  std::map<std::string, Alloc> allocs_;  // canonical dir -> allocation
  int journal_fd_ = -1;
  uint64_t records_since_compact_ = 0;
  uint64_t total_records_ = 0;
  uint64_t file_bytes_ = 0;  // committed file bytes across all allocations

  obs::Counter* mkallocs_ = nullptr;
  obs::Counter* enospc_ = nullptr;
  obs::Counter* journal_appends_ = nullptr;
  obs::Counter* journal_replayed_ = nullptr;
  obs::Counter* journal_compactions_ = nullptr;
  obs::Gauge* inuse_gauge_ = nullptr;
};

}  // namespace tss::chirp
