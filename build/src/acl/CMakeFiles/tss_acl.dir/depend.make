# Empty dependencies file for tss_acl.
# This may be replaced when dependencies are built.
