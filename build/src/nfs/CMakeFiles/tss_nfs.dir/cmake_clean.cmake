file(REMOVE_RECURSE
  "CMakeFiles/tss_nfs.dir/client.cc.o"
  "CMakeFiles/tss_nfs.dir/client.cc.o.d"
  "CMakeFiles/tss_nfs.dir/server.cc.o"
  "CMakeFiles/tss_nfs.dir/server.cc.o.d"
  "libtss_nfs.a"
  "libtss_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tss_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
